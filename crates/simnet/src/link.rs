//! Link model: delivery latency and message loss.

use crate::event::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A simple wide-area link model: uniform latency in
/// `[min_latency, max_latency]` (µs) and i.i.d. drop probability.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Minimum one-way latency in microseconds.
    pub min_latency: SimTime,
    /// Maximum one-way latency in microseconds.
    pub max_latency: SimTime,
    /// Probability a message is silently dropped.
    pub drop_rate: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        // 20–200 ms — typical wide-area P2P latencies.
        LinkModel { min_latency: 20_000, max_latency: 200_000, drop_rate: 0.0 }
    }
}

impl LinkModel {
    /// Lossless link with fixed latency (handy for deterministic tests).
    pub fn fixed(latency: SimTime) -> Self {
        LinkModel { min_latency: latency, max_latency: latency, drop_rate: 0.0 }
    }

    /// Builder-style drop-rate setter.
    pub fn with_drop_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop rate must be in [0,1]");
        self.drop_rate = p;
        self
    }

    /// Sample the fate of one message: `None` = dropped, `Some(delay)` =
    /// delivered after `delay` µs.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<SimTime> {
        if self.drop_rate > 0.0 && rng.random::<f64>() < self.drop_rate {
            return None;
        }
        let delay = if self.max_latency > self.min_latency {
            rng.random_range(self.min_latency..=self.max_latency)
        } else {
            self.min_latency
        };
        Some(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_link_is_deterministic() {
        let l = LinkModel::fixed(1_000);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(l.sample(&mut rng), Some(1_000));
        }
    }

    #[test]
    fn latencies_stay_in_range() {
        let l = LinkModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let d = l.sample(&mut rng).unwrap();
            assert!((20_000..=200_000).contains(&d));
        }
    }

    #[test]
    fn drop_rate_is_respected() {
        let l = LinkModel::fixed(10).with_drop_rate(0.3);
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 20_000;
        let drops = (0..trials).filter(|_| l.sample(&mut rng).is_none()).count();
        let p = drops as f64 / trials as f64;
        assert!((p - 0.3).abs() < 0.02, "drop rate {p}");
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn invalid_drop_rate_panics() {
        let _ = LinkModel::default().with_drop_rate(1.5);
    }
}
