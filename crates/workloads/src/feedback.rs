//! Feedback-graph generation: the honest/polluted trust-matrix pair.
//!
//! Every peer issues feedback for a power-law number of partners
//! (`d_max = 200`, `d_avg = 20` by default, per Table 2). For each feedback
//! edge `i → j` we simulate `m` transactions in which `j` serves authentic
//! content with its intrinsic authenticity rate; the number of authentic
//! outcomes is the *honest* raw score `r_ij`.
//!
//! The generator returns **two** trust matrices built from the *same*
//! transaction outcomes:
//!
//! * the **honest** matrix — every rating reports the observed outcomes
//!   truthfully. Its power-iteration eigenvector is the "calculated"
//!   ground truth `v` of Eq. 8;
//! * the **polluted** matrix — malicious raters lie per the threat model:
//!   independent attackers invert their ratings ("rate the peers who
//!   provide good service very low and those who provide bad service very
//!   high"), collusive attackers max-rate their group mates and zero-rate
//!   outsiders. This is the matrix the reputation system actually sees,
//!   and its aggregate is the "gossiped" `u` of Eq. 8.

use crate::population::{PeerKind, Population};
use gossiptrust_core::id::NodeId;
use gossiptrust_core::local::LocalTrust;
use gossiptrust_core::matrix::TrustMatrix;
use rand::seq::index::sample as index_sample;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Feedback-graph knobs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FeedbackConfig {
    /// Average feedback out-degree (Table 2: 20).
    pub d_avg: usize,
    /// Maximum feedback out-degree (Table 2: 200).
    pub d_max: usize,
    /// Simulated transactions per feedback edge.
    pub transactions_per_edge: usize,
    /// Zipf exponent of *target popularity*: who gets rated is skewed —
    /// a few popular peers transact (and hence get rated) far more than
    /// the tail, mirroring the measured power-law feedback distributions
    /// ("the number of feedbacks … is power law distributed", §6.1, and
    /// PowerTrust's central premise). Popularity is assigned by a random
    /// permutation independent of honesty. 0 = uniform targets.
    pub target_skew: f64,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig { d_avg: 20, d_max: 200, transactions_per_edge: 5, target_skew: 0.8 }
    }
}

/// Result of feedback generation.
#[derive(Clone, Debug)]
pub struct FeedbackOutcome {
    /// Trust matrix under fully truthful reporting (ground truth).
    pub honest: TrustMatrix,
    /// Trust matrix as distorted by the malicious raters.
    pub polluted: TrustMatrix,
    /// Number of feedback edges generated.
    pub edges: usize,
}

/// Sample a binomial count: successes in `m` Bernoulli(`p`) trials.
fn binomial<R: Rng + ?Sized>(m: usize, p: f64, rng: &mut R) -> usize {
    (0..m).filter(|_| rng.random::<f64>() < p).count()
}

/// Generate the feedback graph and both trust matrices for `population`.
pub fn generate<R: Rng + ?Sized>(
    population: &Population,
    config: &FeedbackConfig,
    rng: &mut R,
) -> FeedbackOutcome {
    let n = population.n();
    assert!(n >= 2, "feedback needs at least two peers");
    assert!(config.target_skew >= 0.0, "target skew must be non-negative");
    let m = config.transactions_per_edge.max(1);
    let degree_dist = crate::powerlaw::DegreeSequence::new(
        config.d_avg.min(config.d_max - 1).max(1),
        config.d_max,
    );

    // Popularity-skewed target sampling: peer `popularity[r]` has rank
    // `r + 1` in a Zipf(target_skew) law. The permutation decouples
    // popularity from both node id and honesty.
    let target_zipf = crate::powerlaw::Zipf::new(n, config.target_skew);
    let mut popularity: Vec<u32> = (0..n as u32).collect();
    {
        use rand::seq::SliceRandom;
        popularity.shuffle(rng);
    }

    let mut honest_rows = vec![LocalTrust::new(); n];
    let mut polluted_rows = vec![LocalTrust::new(); n];
    let mut edges = 0usize;

    for i in 0..n {
        let rater = NodeId::from_index(i);
        let kind = population.kind(rater);
        let degree = degree_dist.sample(rng).min(n - 1);

        // Target set: `degree` distinct peers ≠ i; collusive raters always
        // include their group mates (they manufacture in-group feedback).
        let mut targets: Vec<usize> = Vec::with_capacity(degree + 4);
        if let PeerKind::Collusive(g) = kind {
            targets.extend(
                population
                    .collusion_group(g)
                    .into_iter()
                    .filter(|&t| t != rater)
                    .map(|t| t.index()),
            );
        }
        // Fill the rest by popularity-skewed sampling without replacement
        // (rejection against self, collusion mates and duplicates); fall
        // back to uniform slots if rejection stalls on tiny networks.
        let want = degree.saturating_sub(targets.len());
        if want > 0 {
            let mut picked = 0usize;
            let mut attempts = 0usize;
            let max_attempts = 40 * want + 40;
            while picked < want && attempts < max_attempts {
                attempts += 1;
                let t = popularity[target_zipf.sample(rng) - 1] as usize;
                if t != i && !targets.contains(&t) {
                    targets.push(t);
                    picked += 1;
                }
            }
            if picked < want {
                for raw in index_sample(rng, n - 1, (want - picked).min(n - 1)) {
                    let t = if raw >= i { raw + 1 } else { raw };
                    if !targets.contains(&t) {
                        targets.push(t);
                    }
                }
            }
        }

        for &t in &targets {
            let target = NodeId::from_index(t);
            let authentic = binomial(m, population.authenticity(target), rng);
            edges += 1;
            // Honest (ground-truth) rating: the observed outcomes.
            honest_rows[i].add_feedback(target, authentic as f64);
            // Polluted rating per the rater's kind.
            let lied = match kind {
                PeerKind::Honest => authentic as f64,
                PeerKind::IndependentMalicious => (m - authentic) as f64,
                PeerKind::Collusive(_) => {
                    if population.same_collusion_group(rater, target) {
                        m as f64
                    } else {
                        0.0
                    }
                }
            };
            polluted_rows[i].add_feedback(target, lied);
        }
    }

    FeedbackOutcome {
        honest: TrustMatrix::from_rows(&honest_rows),
        polluted: TrustMatrix::from_rows(&polluted_rows),
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::ThreatConfig;
    use gossiptrust_core::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> FeedbackConfig {
        FeedbackConfig { d_avg: 5, d_max: 20, transactions_per_edge: 5, target_skew: 0.8 }
    }

    #[test]
    fn benign_population_matrices_agree() {
        let mut rng = StdRng::seed_from_u64(1);
        let pop = Population::generate(60, &ThreatConfig::benign(), &mut rng);
        let out = generate(&pop, &small_config(), &mut rng);
        assert_eq!(out.honest, out.polluted, "no liars → identical matrices");
        assert!(out.edges > 0);
        assert!(out.honest.is_row_stochastic(1e-9));
    }

    #[test]
    fn malicious_raters_distort_only_their_rows() {
        let mut rng = StdRng::seed_from_u64(2);
        let pop = Population::generate(60, &ThreatConfig::independent(0.2), &mut rng);
        let out = generate(&pop, &small_config(), &mut rng);
        for i in 0..60 {
            let id = NodeId(i);
            let honest_row: Vec<_> = {
                let (c, v) = out.honest.row(id);
                c.iter().zip(v).map(|(&c, &v)| (c, v)).collect()
            };
            let polluted_row: Vec<_> = {
                let (c, v) = out.polluted.row(id);
                c.iter().zip(v).map(|(&c, &v)| (c, v)).collect()
            };
            if !pop.kind(id).is_malicious() {
                assert_eq!(honest_row, polluted_row, "honest row {i} must be identical");
            }
        }
    }

    #[test]
    fn honest_ground_truth_ranks_honest_above_malicious() {
        let mut rng = StdRng::seed_from_u64(3);
        let pop = Population::generate(100, &ThreatConfig::independent(0.3), &mut rng);
        let out = generate(&pop, &small_config(), &mut rng);
        // α = 0 isolates the eigenvector signal (the uniform α-jump would
        // compress the honest/malicious gap by a constant floor).
        let solver = PowerIteration::new(Params::for_network(100).with_alpha(0.0));
        let v = solver.solve(&out.honest, &Prior::uniform(100)).vector;
        let avg = |ids: &[NodeId]| ids.iter().map(|&i| v.score(i)).sum::<f64>() / ids.len() as f64;
        let honest_avg = avg(&pop.honest_peers());
        let mal_avg = avg(&pop.malicious_peers());
        assert!(honest_avg > 1.5 * mal_avg, "honest {honest_avg} vs malicious {mal_avg}");
    }

    #[test]
    fn collusion_boosts_group_scores_in_polluted_matrix() {
        // The boost is heavy-tailed across seeds (the honest-truth scores
        // of unpopular colluders can be tiny), so average several seeds.
        let mut boosts = Vec::new();
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            let pop = Population::generate(100, &ThreatConfig::collusive(0.2, 5), &mut rng);
            let out = generate(&pop, &small_config(), &mut rng);
            let solver = PowerIteration::new(Params::for_network(100).with_alpha(0.0));
            let honest_v = solver.solve(&out.honest, &Prior::uniform(100)).vector;
            let polluted_v = solver.solve(&out.polluted, &Prior::uniform(100)).vector;
            let avg = |v: &ReputationVector, ids: &[NodeId]| {
                ids.iter().map(|&i| v.score(i)).sum::<f64>() / ids.len() as f64
            };
            let mal = pop.malicious_peers();
            boosts.push(avg(&polluted_v, &mal) / avg(&honest_v, &mal).max(1e-12));
        }
        let mean = boosts.iter().sum::<f64>() / boosts.len() as f64;
        assert!(mean > 2.0, "collusion should inflate group scores, boosts={boosts:?}");
        assert!(
            boosts.iter().filter(|&&b| b > 1.0).count() >= 4,
            "most seeds should show a boost: {boosts:?}"
        );
    }

    #[test]
    fn pollution_error_grows_with_gamma() {
        let err_at = |gamma: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let pop = Population::generate(150, &ThreatConfig::independent(gamma), &mut rng);
            let out = generate(&pop, &small_config(), &mut rng);
            let solver = PowerIteration::new(Params::for_network(150));
            let honest = solver.solve(&out.honest, &Prior::uniform(150)).vector;
            let polluted = solver.solve(&out.polluted, &Prior::uniform(150)).vector;
            honest.rms_relative_error(&polluted).unwrap()
        };
        // Average over a few seeds to tame variance.
        let lo: f64 = (0..4).map(|s| err_at(0.05, s)).sum::<f64>() / 4.0;
        let hi: f64 = (0..4).map(|s| err_at(0.40, s)).sum::<f64>() / 4.0;
        assert!(hi > lo, "more liars must mean more distortion: {lo} vs {hi}");
    }

    #[test]
    fn degrees_respect_caps() {
        let mut rng = StdRng::seed_from_u64(5);
        let pop = Population::generate(30, &ThreatConfig::benign(), &mut rng);
        let cfg =
            FeedbackConfig { d_avg: 10, d_max: 200, transactions_per_edge: 3, target_skew: 0.8 };
        let out = generate(&pop, &cfg, &mut rng);
        // No row can have more entries than n-1 (and none can self-rate).
        for i in 0..30 {
            let (cols, _) = out.polluted.row(NodeId(i));
            assert!(cols.len() <= 29);
            assert!(!cols.contains(&i));
        }
    }

    #[test]
    fn binomial_is_unbiased() {
        let mut rng = StdRng::seed_from_u64(6);
        let trials = 20_000;
        let total: usize = (0..trials).map(|_| binomial(10, 0.3, &mut rng)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = small_config();
        let gen = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let pop = Population::generate(40, &ThreatConfig::independent(0.1), &mut rng);
            generate(&pop, &cfg, &mut rng)
        };
        let a = gen(7);
        let b = gen(7);
        assert_eq!(a.honest, b.honest);
        assert_eq!(a.polluted, b.polluted);
        assert_eq!(a.edges, b.edges);
    }
}
