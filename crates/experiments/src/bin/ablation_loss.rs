//! Ablation: message-loss tolerance of the gossip engine.

use gossiptrust_experiments::ablations::loss_tolerance;
use gossiptrust_experiments::{Scale, TextTable};

fn main() {
    let scale = Scale::from_env();
    println!("Ablation — link-failure tolerance ({scale:?} scale)\n");
    let rows = loss_tolerance(scale);
    let mut t = TextTable::new(vec![
        "loss rate",
        "steps/cycle",
        "gossip error",
        "final rms error",
    ]);
    for r in &rows {
        t.row(vec![
            format!("{:.2}", r.loss_rate),
            format!("{:.1}", r.steps),
            format!("{:.2e}", r.gossip_error),
            format!("{:.2e}", r.final_error),
        ]);
    }
    print!("{}", t.render());
}
