//! Load generator: replay a Zipf query mix against a [`ServiceHandle`].
//!
//! Query popularity in P2P systems is Zipf-like (the repo's workload crate
//! models Gnutella's two-segment variant); the load generator replays that
//! skew: which peer a query asks about is drawn from a Zipf over the
//! *current snapshot's ranking*, so popular (highly reputable) peers are
//! queried most — exactly the hot-read pattern the lock-free snapshot path
//! is built for. The mix interleaves `get_score` / `rank_of` / `top_k`
//! queries with feedback writes, runs epochs in the background, and
//! reports queries/sec plus p50/p99 latency into `BENCH_service.json`.

use crate::service::ServiceHandle;
use crate::stats::StatsReport;
use gossiptrust_core::id::NodeId;
use gossiptrust_obs::{Deadline, HistogramSnapshot, Stopwatch};
use gossiptrust_workloads::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Load-run configuration.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Total queries to issue.
    pub queries: usize,
    /// Zipf exponent of the peer-popularity skew.
    pub zipf_exponent: f64,
    /// Fraction of operations that are feedback writes (0.0..1.0).
    pub write_fraction: f64,
    /// `k` used for `top_k` queries.
    pub top_k: usize,
    /// Run one epoch every this many operations (0 = never).
    pub epoch_every: usize,
    /// RNG seed for the query mix.
    pub seed: u64,
    /// First retry backoff for shed writes (microseconds; decorrelated
    /// jitter grows from here).
    pub retry_base_us: u64,
    /// Backoff ceiling (microseconds).
    pub retry_cap_us: u64,
    /// Total per-request deadline budget across all retries
    /// (microseconds); exhausted budget gives the write up.
    pub request_budget_us: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            queries: 50_000,
            zipf_exponent: 0.9,
            write_fraction: 0.1,
            top_k: 10,
            epoch_every: 10_000,
            seed: 1,
            retry_base_us: 50,
            retry_cap_us: 5_000,
            request_budget_us: 20_000,
        }
    }
}

/// Next decorrelated-jitter backoff: uniform in `base..=prev * 3`, capped.
/// Decorrelated jitter (vs plain exponential) spreads retry instants so a
/// shed burst does not come back as a synchronized thundering herd.
fn next_backoff_us(rng: &mut StdRng, base: u64, cap: u64, prev: u64) -> u64 {
    let hi = prev.saturating_mul(3).clamp(base, cap);
    rng.random_range(base..=hi.max(base))
}

/// Results of one load run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Queries actually issued (reads only; writes are extra).
    pub queries: usize,
    /// Feedback writes interleaved.
    pub writes: usize,
    /// Epochs triggered during the run.
    pub epochs: usize,
    /// Read throughput over the whole run.
    pub queries_per_sec: f64,
    /// Median read latency (microseconds).
    pub p50_us: f64,
    /// 99th-percentile read latency (microseconds).
    pub p99_us: f64,
    /// Mean epoch wall time as reported by the epoch loop (milliseconds);
    /// 0 when no epoch ran.
    pub epoch_wall_ms: f64,
    /// Writes retried after a retriable shed (`ServeError::Overloaded`).
    pub retries: usize,
    /// Writes abandoned after the per-request deadline budget ran out.
    pub gave_up: usize,
    /// Service counters at the end of the run.
    pub stats: StatsReport,
    /// Bucketed query-latency snapshot (ns) from the service's obs
    /// registry — the same histogram the `metrics` verb exposes, so the
    /// bench file and a live scrape agree on what was measured.
    pub query_hist: HistogramSnapshot,
    /// Bucketed ingest-latency snapshot (ns) from the obs registry.
    pub ingest_hist: HistogramSnapshot,
}

/// Drive `config.queries` operations against `handle`, measuring latency.
///
/// Latency is measured per read query with an obs [`Stopwatch`]; the
/// percentile extraction sorts the raw samples (no histogram bucketing
/// error), while the service's own registry histograms are snapshotted
/// into the report for the bucketed view.
pub fn run(handle: &ServiceHandle, config: &LoadConfig) -> LoadReport {
    let n = handle.n();
    let obs = handle.obs();
    let zipf = Zipf::new(n, config.zipf_exponent);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut latencies_us: Vec<f64> = Vec::with_capacity(config.queries);
    let mut writes = 0usize;
    let mut retries = 0usize;
    let mut gave_up = 0usize;
    let mut epochs = 0usize;
    let mut epoch_wall_ms_total = 0.0;
    let started = Stopwatch::start();
    let mut issued = 0usize;
    let mut ops = 0usize;

    while issued < config.queries {
        ops += 1;
        if config.epoch_every > 0 && ops % config.epoch_every == 0 {
            if let Ok(outcome) = handle.run_epoch_now() {
                epochs += 1;
                epoch_wall_ms_total += outcome.wall_ms;
            }
        }
        // Map the sampled Zipf *rank* onto the currently published ranking:
        // rank 1 = today's most reputable peer.
        let rank = zipf.sample(&mut rng) - 1;
        let peer = handle.snapshot().ranking[rank];
        if rng.random::<f64>() < config.write_fraction {
            let target = NodeId::from_index(rng.random_range(0..n));
            // Retriable sheds are retried with decorrelated-jitter backoff
            // until the per-request budget runs out; anything else is
            // final on the first answer.
            let deadline = Deadline::after(Duration::from_micros(config.request_budget_us));
            let mut backoff_us = config.retry_base_us;
            loop {
                match handle.record(peer, target, 1.0) {
                    Err(e) if e.retriable() => {
                        if deadline.expires_within(Duration::from_micros(backoff_us)) {
                            gave_up += 1;
                            break;
                        }
                        std::thread::sleep(Duration::from_micros(backoff_us));
                        backoff_us = next_backoff_us(
                            &mut rng,
                            config.retry_base_us,
                            config.retry_cap_us,
                            backoff_us,
                        );
                        retries += 1;
                        obs.ingest_retries.inc();
                    }
                    _ => break,
                }
            }
            writes += 1;
            continue;
        }
        let t0 = Stopwatch::start();
        match issued % 3 {
            0 => {
                let _ = handle.get_score(peer);
            }
            1 => {
                let _ = handle.rank_of(peer);
            }
            _ => {
                let _ = handle.top_k(config.top_k);
            }
        }
        latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
        issued += 1;
    }

    let elapsed = started.elapsed().as_secs_f64();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let percentile = |p: f64| -> f64 {
        if latencies_us.is_empty() {
            return 0.0;
        }
        let idx = ((latencies_us.len() as f64 - 1.0) * p).round() as usize;
        latencies_us[idx]
    };

    LoadReport {
        queries: issued,
        writes,
        epochs,
        queries_per_sec: if elapsed > 0.0 {
            issued as f64 / elapsed
        } else {
            0.0
        },
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
        epoch_wall_ms: if epochs > 0 {
            epoch_wall_ms_total / epochs as f64
        } else {
            0.0
        },
        retries,
        gave_up,
        stats: handle.stats_report(),
        query_hist: obs.query_ns.snapshot(),
        ingest_hist: obs.ingest_ns.snapshot(),
    }
}

/// Append one histogram snapshot as flat `hist_<name>_{p50,p90,p99,max}_us`
/// keys (the snapshot records nanoseconds; the bench file speaks µs like
/// the sampled percentiles). Flat keys keep the document parseable by
/// [`crate::json::parse_flat`], which `baseline_delta` relies on.
fn hist_fields(
    obj: crate::json::JsonObj,
    name: &str,
    h: &HistogramSnapshot,
) -> crate::json::JsonObj {
    obj.num(&format!("hist_{name}_p50_us"), h.p50 as f64 / 1e3)
        .num(&format!("hist_{name}_p90_us"), h.p90 as f64 / 1e3)
        .num(&format!("hist_{name}_p99_us"), h.p99 as f64 / 1e3)
        .num(&format!("hist_{name}_max_us"), h.max as f64 / 1e3)
        .int(&format!("hist_{name}_count"), h.count)
}

/// Render a [`LoadReport`] as the `BENCH_service.json` document.
///
/// `cores` is recorded the same way `BENCH_engine.json` does, so the two
/// benchmark files stay comparable machine-to-machine.
pub fn report_json(report: &LoadReport, n: usize, cores: usize, quick: bool) -> String {
    use crate::json::JsonObj;
    let obj = JsonObj::new()
        .str("bench", "service_queries")
        .bool("quick", quick)
        .int("cores", cores as u64)
        .int("n", n as u64)
        .int("queries", report.queries as u64)
        .int("writes", report.writes as u64)
        .int("epochs", report.epochs as u64)
        .num("queries_per_sec", report.queries_per_sec)
        .num("p50_us", report.p50_us)
        .num("p99_us", report.p99_us)
        .num("epoch_wall_ms", report.epoch_wall_ms)
        .int("retries", report.retries as u64)
        .int("gave_up", report.gave_up as u64)
        .int("epochs_published", report.stats.epochs_published)
        .int("epochs_degraded", report.stats.epochs_degraded)
        .int("epochs_panicked", report.stats.epochs_panicked)
        .int("epochs_overrun", report.stats.epochs_overrun)
        .int("queries_served", report.stats.queries_served)
        .int("requests_shed", report.stats.requests_shed)
        .int("conns_rejected", report.stats.conns_rejected)
        .int("conns_timed_out", report.stats.conns_timed_out)
        .int("wal_replayed_records", report.stats.wal_replayed_records);
    let obj = hist_fields(obj, "query", &report.query_hist);
    hist_fields(obj, "ingest", &report.ingest_hist).finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::service::{ReputationService, ServiceConfig};

    #[test]
    fn load_run_reports_sane_numbers() {
        let service = ReputationService::start(ServiceConfig::new(30));
        let h = service.handle();
        for i in 0..30 {
            h.record(NodeId::from_index(i), NodeId::from_index((i + 1) % 30), 1.0)
                .expect("in range");
        }
        let config = LoadConfig {
            queries: 300,
            epoch_every: 100,
            write_fraction: 0.2,
            ..LoadConfig::default()
        };
        let report = run(&h, &config);
        assert_eq!(report.queries, 300);
        assert!(report.epochs >= 1, "epoch_every must trigger epochs");
        assert!(report.queries_per_sec > 0.0);
        assert!(report.p99_us >= report.p50_us);
        assert!(report.stats.queries_served >= 300);
        // The JSON document parses with our own parser and carries cores.
        let doc = report_json(&report, 30, 4, true);
        let obj = json::parse_flat(&doc).expect("bench json parses");
        assert_eq!(json::get_num(&obj, "cores"), Some(4.0));
        assert_eq!(json::get_str(&obj, "bench"), Some("service_queries"));
        assert_eq!(json::get_index(&obj, "retries"), Some(report.retries as u32));
        assert_eq!(json::get_index(&obj, "requests_shed"), Some(0));
        // The bucketed registry view rides along as flat keys.
        assert_eq!(json::get_index(&obj, "hist_query_count"), Some(300));
        let p50 = json::get_num(&obj, "hist_query_p50_us").expect("hist p50");
        let p99 = json::get_num(&obj, "hist_query_p99_us").expect("hist p99");
        let max = json::get_num(&obj, "hist_query_max_us").expect("hist max");
        assert!(p50 <= p99 && p99 <= max, "percentiles are ordered: {p50} {p99} {max}");
        assert!(json::get_index(&obj, "hist_ingest_count").expect("ingest count") > 0);
        service.shutdown();
    }

    #[test]
    fn shed_writes_are_retried_with_backoff_then_given_up() {
        // A 2-event queue that is never folded (epoch_every = 0): the
        // backlog fills after two writes and every later write sheds,
        // retries under its budget, and finally gives up.
        let service = ReputationService::start(ServiceConfig::new(12).with_ingest_queue(2));
        let h = service.handle();
        let config = LoadConfig {
            queries: 40,
            epoch_every: 0,
            write_fraction: 0.5,
            request_budget_us: 2_000,
            ..LoadConfig::default()
        };
        let report = run(&h, &config);
        assert!(report.writes > 2, "the mix must attempt more writes than the queue holds");
        assert!(report.retries > 0, "shed writes must be retried");
        assert!(report.gave_up > 0, "an undrained queue must exhaust retry budgets");
        assert!(report.stats.requests_shed > 0, "the admission gate counts every shed");
        assert_eq!(h.events_ingested(), 2, "only the admitted writes landed");
        service.shutdown();
    }
}
