//! A lightweight span/trace layer: structured start/end events in a
//! bounded ring buffer, cheap enough to leave on in production.
//!
//! A [`Tracer`] hands out [`Span`]s; a span can open child spans, and the
//! resulting parent/child ids let a reader reassemble the tree from the
//! flat event stream. The ring is bounded — when full, the **oldest**
//! events are dropped (and counted), so a scrape always sees the most
//! recent activity.
//!
//! Span discipline is enforced structurally: a child [`Span`] outliving
//! its parent would emit an `End` for the parent before the child's,
//! which no tree reassembly can repair. Dropping a parent with live
//! children therefore panics ("torn span") — unless the thread is already
//! panicking, in which case the guard stays quiet so an unwinding epoch
//! (e.g. under chaos fault injection) is not escalated into an abort.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::time::Stopwatch;

/// Whether a [`TraceEvent`] opens or closes a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// The span was opened.
    Start,
    /// The span was closed (dropped).
    End,
}

/// One structured event in the trace ring.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Id of the span this event belongs to (unique per tracer, never 0).
    pub span_id: u64,
    /// Id of the parent span, or 0 for a root span.
    pub parent_id: u64,
    /// The span's static name.
    pub name: &'static str,
    /// Start or end.
    pub kind: EventKind,
    /// Nanoseconds since the tracer was created.
    pub t_ns: u64,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// Hands out spans and stores their events in a bounded ring buffer.
///
/// Always used behind an [`Arc`], which spans clone to reach the ring on
/// drop: `let tracer = Arc::new(Tracer::new(4096));`.
#[derive(Debug)]
pub struct Tracer {
    origin: Stopwatch,
    next_id: AtomicU64,
    capacity: usize,
    ring: Mutex<Ring>,
}

impl Tracer {
    /// A tracer whose ring holds at most `capacity` events.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "tracer capacity must be at least 1");
        Tracer {
            origin: Stopwatch::start(),
            next_id: AtomicU64::new(1),
            capacity,
            ring: Mutex::new(Ring { events: VecDeque::new(), dropped: 0 }),
        }
    }

    /// Open a root span.
    pub fn span(self: &Arc<Self>, name: &'static str) -> Span {
        self.open(name, 0, None)
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock().expect("trace ring poisoned");
        ring.events.iter().cloned().collect()
    }

    /// How many events have been evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("trace ring poisoned").dropped
    }

    fn open(
        self: &Arc<Self>,
        name: &'static str,
        parent_id: u64,
        parent_open: Option<Arc<AtomicU64>>,
    ) -> Span {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.push(TraceEvent {
            span_id: id,
            parent_id,
            name,
            kind: EventKind::Start,
            t_ns: self.origin.elapsed_ns(),
        });
        Span {
            tracer: Arc::clone(self),
            id,
            parent_id,
            name,
            start: Stopwatch::start(),
            open_children: Arc::new(AtomicU64::new(0)),
            parent_open,
        }
    }

    fn push(&self, ev: TraceEvent) {
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        while ring.events.len() >= self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(ev);
    }
}

/// An open span. Closing happens on drop, which emits the `End` event.
#[derive(Debug)]
pub struct Span {
    tracer: Arc<Tracer>,
    id: u64,
    parent_id: u64,
    name: &'static str,
    start: Stopwatch,
    open_children: Arc<AtomicU64>,
    parent_open: Option<Arc<AtomicU64>>,
}

impl Span {
    /// This span's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Open a child span. The child must be dropped before this span is.
    pub fn child(&self, name: &'static str) -> Span {
        self.open_children.fetch_add(1, Ordering::Relaxed);
        self.tracer.open(name, self.id, Some(Arc::clone(&self.open_children)))
    }

    /// Nanoseconds since this span was opened — handy for recording the
    /// same interval into a [`Histogram`](crate::Histogram).
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed_ns()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let open = self.open_children.load(Ordering::Relaxed);
        if open != 0 && !std::thread::panicking() {
            panic!(
                "torn span: {open} child span(s) outlive parent {:?} (id {})",
                self.name, self.id
            );
        }
        self.tracer.push(TraceEvent {
            span_id: self.id,
            parent_id: self.parent_id,
            name: self.name,
            kind: EventKind::End,
            t_ns: self.tracer.origin.elapsed_ns(),
        });
        if let Some(parent) = &self.parent_open {
            parent.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_emit_paired_events_with_parent_links() {
        let tracer = Arc::new(Tracer::new(64));
        {
            let epoch = tracer.span("epoch");
            {
                let _fold = epoch.child("fold");
            }
            {
                let _agg = epoch.child("aggregate");
            }
        }
        let evs = tracer.events();
        assert_eq!(evs.len(), 6);
        let starts: Vec<_> = evs.iter().filter(|e| e.kind == EventKind::Start).collect();
        assert_eq!(starts.len(), 3);
        let epoch_id = starts
            .iter()
            .find(|e| e.name == "epoch")
            .expect("epoch start")
            .span_id;
        for child in ["fold", "aggregate"] {
            let s = starts.iter().find(|e| e.name == child).expect("child start");
            assert_eq!(s.parent_id, epoch_id, "{child} must point at epoch");
        }
        // Children end before the parent does.
        let end_order: Vec<_> = evs
            .iter()
            .filter(|e| e.kind == EventKind::End)
            .map(|e| e.name)
            .collect();
        assert_eq!(end_order, ["fold", "aggregate", "epoch"]);
        // Timestamps are monotone in buffer order.
        assert!(evs.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let tracer = Arc::new(Tracer::new(4));
        for _ in 0..5 {
            let _s = tracer.span("tick"); // 2 events each: start + end
        }
        let evs = tracer.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(tracer.dropped(), 6);
        // The survivors are the most recent events.
        let newest = evs.last().expect("non-empty ring").span_id;
        assert_eq!(newest, 5);
    }

    #[test]
    #[should_panic(expected = "torn span")]
    fn torn_span_panics() {
        let tracer = Arc::new(Tracer::new(16));
        let parent = tracer.span("parent");
        let child = parent.child("child");
        drop(parent); // child still open → structural bug → panic
        drop(child);
    }

    #[test]
    fn unwinding_does_not_double_panic() {
        // A panic while child spans are open must unwind cleanly (no
        // abort): the torn-span guard stands down when already panicking.
        let tracer = Arc::new(Tracer::new(16));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let parent = tracer.span("epoch");
            let _child = parent.child("fold");
            panic!("injected fault");
        }));
        assert!(result.is_err());
    }

    #[test]
    fn elapsed_ns_grows() {
        let tracer = Arc::new(Tracer::new(16));
        let span = tracer.span("work");
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(span.elapsed_ns() >= 1_000_000);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = Tracer::new(0);
    }
}
