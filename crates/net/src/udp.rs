//! UDP/localhost transport: one socket per node, one datagram per push.
//!
//! Demonstrates the protocol over a real lossy, reordering medium. Each
//! node binds an ephemeral `127.0.0.1` socket; the address book is shared
//! up front (a deployed unstructured overlay would learn addresses from
//! its bootstrap/neighbor exchange).

use crate::transport::Transport;
use bytes::Bytes;
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::UdpSocket;
use tokio::sync::mpsc;

/// Maximum datagram we send (safe for loopback; vectors for n ≲ 4000 fit).
pub const MAX_DATAGRAM: usize = 65_000;

/// A UDP endpoint bound for one node.
pub struct UdpEndpoint {
    socket: Arc<UdpSocket>,
    peers: Arc<Vec<SocketAddr>>,
}

impl UdpEndpoint {
    /// Bind `n` loopback endpoints and spawn their receive loops. Returns
    /// per-node `(transport handle, datagram receiver)` pairs.
    pub async fn bind_cluster(n: usize) -> Vec<(UdpEndpoint, mpsc::Receiver<Bytes>)> {
        let mut sockets = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let socket = UdpSocket::bind("127.0.0.1:0").await.expect("bind loopback");
            addrs.push(socket.local_addr().expect("local addr"));
            sockets.push(Arc::new(socket));
        }
        let peers = Arc::new(addrs);
        let mut out = Vec::with_capacity(n);
        for socket in sockets {
            let (tx, rx) = mpsc::channel::<Bytes>(1024);
            // Receive loop: datagrams to bytes. Ends when the endpoint (and
            // with it the socket's other Arc clone) is dropped and recv
            // errors, or when the receiver side closes.
            let recv_socket = Arc::clone(&socket);
            tokio::spawn(async move {
                let mut buf = vec![0u8; MAX_DATAGRAM];
                while let Ok((len, _)) = recv_socket.recv_from(&mut buf).await {
                    if tx.send(Bytes::copy_from_slice(&buf[..len])).await.is_err() {
                        break;
                    }
                }
            });
            out.push((UdpEndpoint { socket, peers: Arc::clone(&peers) }, rx));
        }
        out
    }

    /// This endpoint's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.socket.local_addr().expect("local addr")
    }
}

impl Transport for UdpEndpoint {
    async fn send(&self, to: u32, data: Bytes) {
        debug_assert!(data.len() <= MAX_DATAGRAM, "datagram too large: {}", data.len());
        // Best-effort: send errors (e.g. buffer full) are silent drops,
        // like real UDP.
        let _ = self.socket.send_to(&data, self.peers[to as usize]).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn datagrams_route_between_endpoints() {
        let mut cluster = UdpEndpoint::bind_cluster(3).await;
        let (ep2, mut rx2) = cluster.remove(2);
        let (ep0, _rx0) = cluster.remove(0);
        assert_ne!(ep0.local_addr(), ep2.local_addr());
        ep0.send(2, Bytes::from_static(b"hello")).await;
        let got = tokio::time::timeout(std::time::Duration::from_secs(2), rx2.recv())
            .await
            .expect("timely delivery")
            .expect("channel open");
        assert_eq!(got, Bytes::from_static(b"hello"));
    }

    #[tokio::test]
    async fn large_payload_fits() {
        let mut cluster = UdpEndpoint::bind_cluster(2).await;
        let (_ep1, mut rx1) = cluster.remove(1);
        let (ep0, _rx0) = cluster.remove(0);
        let payload = Bytes::from(vec![7u8; 32_000]);
        ep0.send(1, payload.clone()).await;
        let got = tokio::time::timeout(std::time::Duration::from_secs(2), rx1.recv())
            .await
            .expect("timely delivery")
            .expect("channel open");
        assert_eq!(got, payload);
    }
}
