//! Ablation: Bloom-filter rank storage — bytes vs rank error.

use gossiptrust_experiments::ablations::bloom_storage;
use gossiptrust_experiments::{Scale, TextTable};

fn main() {
    let scale = Scale::from_env();
    println!("Ablation — Bloom rank storage, n = {} ({scale:?} scale)\n", scale.n());
    let rows = bloom_storage(scale);
    let mut t = TextTable::new(vec!["fp rate", "bloom bytes", "exact bytes", "mean rank error"]);
    for r in &rows {
        t.row(vec![
            format!("{:.4}", r.fp_rate),
            r.bloom_bytes.to_string(),
            r.exact_bytes.to_string(),
            format!("{:.4}", r.mean_rank_error),
        ]);
    }
    print!("{}", t.render());
}
