//! The service's observability bundle: one shared registry + tracer and
//! pre-fetched handles for every metric the stack records.
//!
//! One [`ServiceObs`] is created per service and shared (as an `Arc`) by
//! the epoch manager, the query/ingest handle, the TCP front-end, the
//! chaos soak and the load generator — everyone records into the same
//! registry, so one scrape shows the whole stack.
//!
//! ## Metric naming scheme
//!
//! Everything is prefixed `gt_`. Histograms carry their unit as a suffix
//! (`_ns`); monotonic counters end in `_total` (Prometheus convention).
//! The counters that already live in [`ServiceStats`] (epoch outcomes,
//! shed/timeout/connection accounting, gossip message volume) are not
//! duplicated into the registry — [`ServiceObs::export`] appends them to
//! the exposition at scrape time from a [`StatsReport`], so the atomic
//! counter block stays the single source of truth.

use crate::chaos::ChaosReport;
use crate::stats::StatsReport;
use gossiptrust_gossip::engine::EngineObs;
use gossiptrust_obs::{Counter, Histogram, Registry, Tracer};
use std::fmt::Write as _;
use std::sync::Arc;

/// Shared metrics + tracing handles for one running service.
#[derive(Debug)]
pub struct ServiceObs {
    /// The registry all histogram/counter handles below belong to.
    pub registry: Registry,
    /// Span ring buffer (capacity = `GT_OBS_EVENTS`): one span per epoch
    /// with fold → aggregate → publish children.
    pub tracer: Arc<Tracer>,
    /// `get_score`/`top_k`/`rank_of` latency, nanoseconds.
    pub query_ns: Arc<Histogram>,
    /// `record`/`record_batch` latency (including WAL append), nanoseconds.
    pub ingest_ns: Arc<Histogram>,
    /// Whole-request latency at the TCP front-end (parse → respond),
    /// nanoseconds.
    pub request_ns: Arc<Histogram>,
    /// Epoch fold phase (feedback log → CSR matrix), nanoseconds.
    pub epoch_fold_ns: Arc<Histogram>,
    /// Epoch aggregate phase (gossip power iteration), nanoseconds.
    pub epoch_aggregate_ns: Arc<Histogram>,
    /// Epoch publish phase (snapshot build + swap), nanoseconds.
    pub epoch_publish_ns: Arc<Histogram>,
    /// Whole-epoch wall time, nanoseconds.
    pub epoch_total_ns: Arc<Histogram>,
    /// WAL append + flush (the push-to-OS durability point), nanoseconds.
    /// With the group-commit writer this is the submit→ack latency one
    /// ingest observes, queueing included.
    pub wal_fsync_ns: Arc<Histogram>,
    /// Records coalesced into each WAL group commit (the writer thread's
    /// batching efficiency: 1 = no coalescing, `GT_WAL_GROUP_MAX` = full
    /// groups).
    pub wal_group_records: Arc<Histogram>,
    /// One coalesced `write_all` + `flush` on the WAL writer thread,
    /// nanoseconds — the syscall cost each group amortizes.
    pub wal_commit_ns: Arc<Histogram>,
    /// Backoff retries clients (the load generator) spent on shed
    /// requests.
    pub ingest_retries: Arc<Counter>,
    /// The gossip engine's step-timing/bytes hooks, backed by this
    /// registry (`gt_gossip_step_ns`, `gt_gossip_bytes_streamed_total`).
    pub engine: EngineObs,
}

impl ServiceObs {
    /// A fresh bundle whose trace ring holds `trace_events` events
    /// (`GT_OBS_EVENTS`, default 4096).
    pub fn new(trace_events: usize) -> Self {
        let registry = Registry::new();
        let engine = EngineObs {
            step_ns: registry.histogram("gt_gossip_step_ns"),
            bytes_streamed: registry.counter("gt_gossip_bytes_streamed_total"),
        };
        ServiceObs {
            tracer: Arc::new(Tracer::new(trace_events)),
            query_ns: registry.histogram("gt_query_latency_ns"),
            ingest_ns: registry.histogram("gt_ingest_latency_ns"),
            request_ns: registry.histogram("gt_request_latency_ns"),
            epoch_fold_ns: registry.histogram("gt_epoch_fold_ns"),
            epoch_aggregate_ns: registry.histogram("gt_epoch_aggregate_ns"),
            epoch_publish_ns: registry.histogram("gt_epoch_publish_ns"),
            epoch_total_ns: registry.histogram("gt_epoch_total_ns"),
            wal_fsync_ns: registry.histogram("gt_wal_fsync_ns"),
            wal_group_records: registry.histogram("gt_wal_group_records"),
            wal_commit_ns: registry.histogram("gt_wal_commit_ns"),
            ingest_retries: registry.counter("gt_ingest_retries_total"),
            engine,
            registry,
        }
    }

    /// Render the full Prometheus exposition: every registry metric, then
    /// the [`ServiceStats`] counters, then the chaos counters (zeros when
    /// the service runs without an injector, so the metric *names* are
    /// stable whether or not chaos is armed).
    ///
    /// [`ServiceStats`]: crate::stats::ServiceStats
    pub fn export(&self, stats: &StatsReport, chaos: Option<&ChaosReport>) -> String {
        let mut out = self.registry.render();
        let mut counter = |name: &str, v: u64| {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        counter("gt_epochs_attempted_total", stats.epochs_attempted);
        counter("gt_epochs_published_total", stats.epochs_published);
        counter("gt_epochs_degraded_total", stats.epochs_degraded);
        counter("gt_epochs_panicked_total", stats.epochs_panicked);
        counter("gt_epochs_overrun_total", stats.epochs_overrun);
        counter("gt_queries_served_total", stats.queries_served);
        counter("gt_requests_shed_total", stats.requests_shed);
        counter("gt_conns_rejected_total", stats.conns_rejected);
        counter("gt_conns_timed_out_total", stats.conns_timed_out);
        counter("gt_wal_replayed_records_total", stats.wal_replayed_records);
        counter("gt_wal_appended_records_total", stats.wal_appended_records);
        counter("gt_gossip_steps_total", stats.gossip.steps);
        counter("gt_gossip_messages_sent_total", stats.gossip.messages_sent);
        counter("gt_gossip_messages_dropped_total", stats.gossip.messages_dropped);
        counter("gt_gossip_triplets_sent_total", stats.gossip.triplets_sent);
        let zeros = ChaosReport::default();
        let c = chaos.unwrap_or(&zeros);
        counter("gt_chaos_frames_dropped_total", c.frames_dropped);
        counter("gt_chaos_frames_delayed_total", c.frames_delayed);
        counter("gt_chaos_frames_duplicated_total", c.frames_duplicated);
        counter("gt_chaos_frames_truncated_total", c.frames_truncated);
        counter("gt_chaos_client_stalls_total", c.client_stalls);
        counter("gt_chaos_client_oversize_total", c.client_oversize);
        counter("gt_chaos_epochs_panicked_total", c.epochs_panicked);
        counter("gt_chaos_epochs_overrun_total", c.epochs_overrun);
        counter("gt_trace_events_dropped_total", self.tracer.dropped());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_always_carries_the_required_names() {
        let obs = ServiceObs::new(64);
        obs.query_ns.record(1_000);
        obs.engine.step_ns.record(5_000);
        let text = obs.export(&StatsReport::default(), None);
        for name in [
            "gt_query_latency_ns_bucket",
            "gt_ingest_latency_ns",
            "gt_request_latency_ns",
            "gt_epoch_fold_ns",
            "gt_epoch_aggregate_ns",
            "gt_epoch_publish_ns",
            "gt_epoch_total_ns",
            "gt_wal_fsync_ns",
            "gt_wal_group_records",
            "gt_wal_commit_ns",
            "gt_gossip_step_ns_bucket",
            "gt_gossip_bytes_streamed_total",
            "gt_ingest_retries_total",
            "gt_requests_shed_total",
            "gt_chaos_epochs_panicked_total",
            "gt_epochs_published_total",
        ] {
            assert!(text.contains(name), "exposition must name {name}:\n{text}");
        }
        // No name may be declared twice — chaos zeros and registry metrics
        // must not collide.
        let mut types: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE ")).collect();
        let total = types.len();
        types.sort_unstable();
        types.dedup();
        assert_eq!(types.len(), total, "duplicate # TYPE declarations:\n{text}");
    }

    #[test]
    fn chaos_counters_flow_through() {
        let obs = ServiceObs::new(64);
        let report = ChaosReport { frames_dropped: 3, ..ChaosReport::default() };
        let text = obs.export(&StatsReport::default(), Some(&report));
        assert!(text.contains("gt_chaos_frames_dropped_total 3"));
    }
}
