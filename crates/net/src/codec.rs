//! Wire format for gossip pushes and feedback batches.
//!
//! A push carries the halved `(x, w)` vector a node shares in one gossip
//! step, tagged with the aggregation cycle so stragglers from a finished
//! cycle cannot pollute the next one. Layout (little-endian):
//!
//! ```text
//! sender: u32 | cycle: u32 | n: u32 | xs: n × f64 | ws: n × f64
//! ```
//!
//! The encoded push is the *payload* of a `gossiptrust-crypto`
//! [`SignedEnvelope`](gossiptrust_crypto::SignedEnvelope); the envelope's
//! sender field and tag authenticate it.
//!
//! A [`FeedbackBatch`] is the bulk-ingest message of the reputation
//! service's TCP front-end: one rater's ratings for the next epoch, in the
//! same hand-rolled little-endian style:
//!
//! ```text
//! rater: u32 | epoch_hint: u32 | k: u32 | k × (target: u32 | score: f64)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// One gossip push.
#[derive(Clone, Debug, PartialEq)]
pub struct Push {
    /// Sending node.
    pub sender: u32,
    /// Aggregation cycle this push belongs to.
    pub cycle: u32,
    /// Halved weighted scores, indexed by component.
    pub xs: Vec<f64>,
    /// Halved consensus factors, indexed by component.
    pub ws: Vec<f64>,
}

impl Push {
    /// Serialize to bytes.
    pub fn encode(&self) -> Bytes {
        assert_eq!(self.xs.len(), self.ws.len(), "xs/ws length mismatch");
        let n = self.xs.len();
        let mut buf = BytesMut::with_capacity(12 + 16 * n);
        buf.put_u32_le(self.sender);
        buf.put_u32_le(self.cycle);
        buf.put_u32_le(n as u32);
        for &x in &self.xs {
            buf.put_f64_le(x);
        }
        for &w in &self.ws {
            buf.put_f64_le(w);
        }
        buf.freeze()
    }

    /// Deserialize; `None` on malformed input.
    pub fn decode(mut data: &[u8]) -> Option<Push> {
        if data.len() < 12 {
            return None;
        }
        let sender = data.get_u32_le();
        let cycle = data.get_u32_le();
        let n = data.get_u32_le() as usize;
        if data.len() != 16 * n {
            return None;
        }
        let mut xs = Vec::with_capacity(n);
        for _ in 0..n {
            xs.push(data.get_f64_le());
        }
        let mut ws = Vec::with_capacity(n);
        for _ in 0..n {
            ws.push(data.get_f64_le());
        }
        Some(Push { sender, cycle, xs, ws })
    }
}

/// Upper bound on ratings per [`FeedbackBatch`]: a decoded length field
/// beyond this is rejected before any allocation, so a hostile frame
/// cannot make the decoder reserve gigabytes.
pub const MAX_BATCH_TARGETS: usize = 1 << 16;

/// One rater's bulk feedback for the next epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct FeedbackBatch {
    /// The rating peer (the matrix row).
    pub rater: u32,
    /// Client's view of the current epoch, for observability only — the
    /// log folds whatever has arrived when the epoch boundary hits.
    pub epoch_hint: u32,
    /// `(target, score)` pairs.
    pub ratings: Vec<(u32, f64)>,
}

impl FeedbackBatch {
    /// Serialize to bytes.
    ///
    /// # Panics
    ///
    /// Panics when the batch exceeds [`MAX_BATCH_TARGETS`] — such a batch
    /// could never be decoded, so encoding it is a caller bug.
    pub fn encode(&self) -> Bytes {
        let k = self.ratings.len();
        assert!(k <= MAX_BATCH_TARGETS, "feedback batch too large: {k}");
        let mut buf = BytesMut::with_capacity(12 + 12 * k);
        buf.put_u32_le(self.rater);
        buf.put_u32_le(self.epoch_hint);
        buf.put_u32_le(k as u32);
        for &(target, score) in &self.ratings {
            buf.put_u32_le(target);
            buf.put_f64_le(score);
        }
        buf.freeze()
    }

    /// Deserialize; `None` on truncated, oversized, or trailing-garbage
    /// input.
    pub fn decode(mut data: &[u8]) -> Option<FeedbackBatch> {
        if data.len() < 12 {
            return None;
        }
        let rater = data.get_u32_le();
        let epoch_hint = data.get_u32_le();
        let k = data.get_u32_le() as usize;
        if k > MAX_BATCH_TARGETS || data.len() != 12 * k {
            return None;
        }
        let mut ratings = Vec::with_capacity(k);
        for _ in 0..k {
            let target = data.get_u32_le();
            let score = data.get_f64_le();
            ratings.push((target, score));
        }
        Some(FeedbackBatch { rater, epoch_hint, ratings })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = Push { sender: 7, cycle: 3, xs: vec![0.1, 0.2, 0.0], ws: vec![0.5, 0.0, 0.25] };
        let decoded = Push::decode(&p.encode()).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn empty_vector_roundtrip() {
        let p = Push { sender: 0, cycle: 0, xs: vec![], ws: vec![] };
        assert_eq!(Push::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(Push::decode(&[]).is_none());
        assert!(Push::decode(&[1, 2, 3]).is_none());
        let p = Push { sender: 1, cycle: 1, xs: vec![1.0], ws: vec![1.0] };
        let mut raw = p.encode().to_vec();
        raw.pop();
        assert!(Push::decode(&raw).is_none());
        raw.extend_from_slice(&[0; 20]);
        assert!(Push::decode(&raw).is_none());
    }

    #[test]
    fn preserves_special_floats() {
        let p =
            Push { sender: 2, cycle: 9, xs: vec![f64::MIN_POSITIVE, 1e300], ws: vec![0.0, -0.0] };
        let d = Push::decode(&p.encode()).unwrap();
        assert_eq!(d.xs, p.xs);
        assert_eq!(d.ws[0].to_bits(), p.ws[0].to_bits());
        assert_eq!(d.ws[1].to_bits(), p.ws[1].to_bits());
    }

    #[test]
    fn feedback_batch_roundtrip() {
        let b =
            FeedbackBatch { rater: 9, epoch_hint: 4, ratings: vec![(1, 2.5), (3, 0.0), (7, 1e-9)] };
        assert_eq!(FeedbackBatch::decode(&b.encode()).unwrap(), b);
        let empty = FeedbackBatch { rater: 0, epoch_hint: 0, ratings: vec![] };
        assert_eq!(FeedbackBatch::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn feedback_batch_rejects_truncated_and_oversized() {
        let b = FeedbackBatch { rater: 1, epoch_hint: 0, ratings: vec![(2, 1.0)] };
        let mut raw = b.encode().to_vec();
        raw.pop();
        assert!(FeedbackBatch::decode(&raw).is_none());
        raw.push(0);
        raw.extend_from_slice(&[0; 8]);
        assert!(FeedbackBatch::decode(&raw).is_none());
        // A length field claiming more ratings than MAX_BATCH_TARGETS is
        // rejected before any allocation happens.
        let mut huge = Vec::new();
        huge.extend_from_slice(&1u32.to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes());
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(FeedbackBatch::decode(&huge).is_none());
    }
}
