//! # gossiptrust-obs
//!
//! Dependency-free observability for the GossipTrust workspace:
//!
//! * [`metrics`] — a lock-free metrics registry: monotonic [`Counter`]s,
//!   [`Gauge`]s and log-bucketed latency [`Histogram`]s with
//!   p50/p90/p99/max readout, rendered as Prometheus-compatible text
//!   exposition. "Lock-free" in the honest sense: registration and
//!   rendering take the registry lock, but every hot-path update lands on
//!   a pre-fetched `Arc`'d atomic — recording a sample is a handful of
//!   relaxed atomic ops and never blocks a scrape.
//! * [`time`] — [`Stopwatch`] and [`Deadline`], the workspace's **only**
//!   sanctioned clock surface. The `gt-lint` `time-source` rule forbids
//!   `Instant::now` / `SystemTime::now` everywhere outside this crate, so
//!   deterministic kernels can be audited for clock reads lexically:
//!   timing flows through obs handles and can never feed back into
//!   replayable computation.
//! * [`trace`] — a lightweight span layer: a [`Tracer`] hands out
//!   parent/child [`Span`]s whose start/end events land in a bounded ring
//!   buffer, cheap enough to leave on. Span discipline is enforced: a
//!   child span outliving its parent is a structural bug and panics
//!   ("torn span") rather than silently producing unparseable traces.
//!
//! Everything here is deterministic-by-construction from the kernels'
//! point of view: clocks are *read* but their values only ever flow into
//! counters, histograms and trace events — never back into gossip state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod time;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use time::{Deadline, Stopwatch};
pub use trace::{EventKind, Span, TraceEvent, Tracer};
