//! # GossipTrust
//!
//! A full reproduction of **"Gossip-based Reputation Aggregation for
//! Unstructured Peer-to-Peer Networks"** (Runfang Zhou & Kai Hwang,
//! IEEE IPDPS 2007) as a production-quality Rust workspace.
//!
//! GossipTrust computes global reputation scores for every peer of an
//! unstructured P2P network by evaluating the power iteration
//! `V(t+1) = Sᵀ·V(t)` over the normalized local-trust matrix — with each
//! matrix–vector product carried out by a *push-sum gossip protocol*
//! instead of a DHT, so the scheme needs no overlay structure at all.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `gossiptrust-core` | trust matrices, reputation vectors, power iteration, power nodes, convergence |
//! | [`gossip`] | `gossiptrust-gossip` | push-sum engine (Algorithms 1–2), aggregation cycles |
//! | [`simnet`] | `gossiptrust-simnet` | discrete-event simulator: overlays, churn, lossy links |
//! | [`workloads`] | `gossiptrust-workloads` | power-law feedback, threat models, file/query workloads |
//! | [`filesharing`] | `gossiptrust-filesharing` | the Fig. 5 P2P file-sharing application |
//! | [`baselines`] | `gossiptrust-baselines` | Chord DHT, EigenTrust, NoTrust, centralized oracle |
//! | [`storage`] | `gossiptrust-storage` | Bloom-filter reputation-rank storage |
//! | [`crypto`] | `gossiptrust-crypto` | SHA-256/HMAC + identity-based signing simulation |
//! | [`net`] | `gossiptrust-net` | tokio async gossip runtime (channels + UDP) |
//! | [`serve`] | `gossiptrust-serve` | epoch-driven reputation service: feedback ingest, versioned snapshots, TCP query front-end |
//! | [`obs`] | `gossiptrust-obs` | dependency-free metrics registry, Prometheus exposition, span tracing, the sanctioned clock surface |
//!
//! # Quickstart
//!
//! ```
//! use gossiptrust::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // 1. Accumulate feedback into a trust matrix.
//! let mut builder = TrustMatrixBuilder::new(4);
//! builder.record(NodeId(1), NodeId(0), 5.0); // peer 1 trusts peer 0
//! builder.record(NodeId(2), NodeId(0), 5.0);
//! builder.record(NodeId(3), NodeId(0), 4.0);
//! builder.record(NodeId(0), NodeId(2), 2.0);
//! let matrix = builder.build();
//!
//! // 2. Aggregate global scores by gossip (uniform prior keeps this tiny
//! //    example directly comparable to the exact computation).
//! let params = Params::for_network(4);
//! let mut rng = StdRng::seed_from_u64(42);
//! let report = GossipTrustAggregator::new(params)
//!     .with_prior_policy(PriorPolicy::Fixed(Prior::uniform(4)))
//!     .aggregate(&matrix, &mut rng);
//!
//! // 3. Peer 0 — trusted by everyone — ranks first.
//! assert_eq!(report.vector.ranking()[0], NodeId(0));
//! ```
//!
//! See `examples/` for runnable scenarios and the
//! `gossiptrust-experiments` crate for the harness that regenerates every
//! table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gossiptrust_baselines as baselines;
pub use gossiptrust_core as core;
pub use gossiptrust_crypto as crypto;
pub use gossiptrust_filesharing as filesharing;
pub use gossiptrust_gossip as gossip;
pub use gossiptrust_net as net;
pub use gossiptrust_obs as obs;
pub use gossiptrust_serve as serve;
pub use gossiptrust_simnet as simnet;
pub use gossiptrust_storage as storage;
pub use gossiptrust_workloads as workloads;

/// One-stop imports for typical use.
pub mod prelude {
    pub use gossiptrust_core::prelude::*;
    pub use gossiptrust_gossip::cycle::{AggregationReport, GossipTrustAggregator, PriorPolicy};
    pub use gossiptrust_gossip::{PushSumNetwork, UniformChooser};
    pub use gossiptrust_workloads::population::{PeerKind, Population, ThreatConfig};
    pub use gossiptrust_workloads::scenario::{Scenario, ScenarioConfig};
}
