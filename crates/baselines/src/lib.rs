//! # gossiptrust-baselines
//!
//! The comparison systems the paper positions GossipTrust against:
//!
//! * [`dht`] — a from-scratch Chord-like distributed hash table: the
//!   structured-overlay substrate that EigenTrust and PowerTrust assume
//!   (consistent hashing, finger tables, `O(log n)` greedy lookup). Built
//!   here because the whole point of GossipTrust is that unstructured
//!   networks *don't have one*.
//! * [`eigentrust`] — EigenTrust (Kamvar et al., WWW'03) simulated over the
//!   DHT: per-peer *score managers* host each peer's global score, the
//!   power iteration runs manager-side, and every remote fetch is routed
//!   through the DHT so the message/hop overhead is measured faithfully.
//! * [`powertrust`] — PowerTrust (the authors' own DHT-based predecessor):
//!   bootstrap aggregation, power-node selection and the look-ahead random
//!   walk, with the same routed message accounting.
//! * [`notrust`] — the trivial no-reputation system (uniform scores,
//!   random source selection) used as the Fig. 5 baseline.
//! * [`centralized`] — the exact centralized oracle (re-exported from
//!   `gossiptrust-core`) under its baseline name.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centralized;
pub mod dht;
pub mod eigentrust;
pub mod notrust;
pub mod powertrust;

pub use centralized::CentralizedOracle;
pub use dht::{Chord, LookupOutcome};
pub use eigentrust::{EigenTrust, EigenTrustReport};
pub use notrust::NoTrust;
pub use powertrust::{PowerTrust, PowerTrustReport};
