//! Ablation: power-node budget q vs robustness at γ = 0.2.

use gossiptrust_experiments::ablations::power_node_count;
use gossiptrust_experiments::{Scale, TextTable};

fn main() {
    let scale = Scale::from_env();
    println!("Ablation — power-node count q (γ = 0.2 independent, α = 0.15, {scale:?} scale)\n");
    let rows = power_node_count(scale);
    let mut t = TextTable::new(vec!["q", "rms error", "std"]);
    for r in &rows {
        t.row(vec![
            r.q.to_string(),
            format!("{:.4}", r.rms_error),
            format!("{:.4}", r.std_error),
        ]);
    }
    print!("{}", t.render());
}
