//! The sparse, row-stochastic normalized trust matrix `S = (s_ij)`.

use crate::error::CoreError;
use crate::id::NodeId;
use crate::local::LocalTrust;
use serde::{Deserialize, Serialize};

/// Builder that accumulates raw feedback `r_ij` and produces a normalized
/// [`TrustMatrix`].
///
/// Feedback recorded multiple times for the same `(i, j)` pair accumulates,
/// matching how a reputation system folds repeated transactions into one raw
/// score.
#[derive(Clone, Debug)]
pub struct TrustMatrixBuilder {
    n: usize,
    rows: Vec<LocalTrust>,
}

impl TrustMatrixBuilder {
    /// A builder for an `n`-node network with no feedback yet.
    pub fn new(n: usize) -> Self {
        TrustMatrixBuilder { n, rows: vec![LocalTrust::new(); n] }
    }

    /// Network size this builder was created for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Record feedback `amount` from `from` about `to`.
    ///
    /// Self-ratings are dropped: the paper's random-walk interpretation
    /// requires a peer not to vouch for itself (cf. EigenTrust, which also
    /// zeroes the diagonal).
    ///
    /// # Panics
    /// Panics if either id is out of range.
    pub fn record(&mut self, from: NodeId, to: NodeId, amount: f64) {
        assert!(from.index() < self.n, "from {from} out of range (n={})", self.n);
        assert!(to.index() < self.n, "to {to} out of range (n={})", self.n);
        if from == to {
            return;
        }
        self.rows[from.index()].add_feedback(to, amount);
    }

    /// Install a whole per-node [`LocalTrust`] row (used by workload
    /// generators and threat models that synthesize feedback wholesale).
    ///
    /// Any self-rating present in `local` is discarded.
    pub fn set_row(&mut self, from: NodeId, mut local: LocalTrust) {
        assert!(from.index() < self.n, "from {from} out of range (n={})", self.n);
        local.forget(from);
        self.rows[from.index()] = local;
    }

    /// Read access to a row being built.
    pub fn row(&self, from: NodeId) -> &LocalTrust {
        &self.rows[from.index()]
    }

    /// Mutable access to a row being built.
    pub fn row_mut(&mut self, from: NodeId) -> &mut LocalTrust {
        &mut self.rows[from.index()]
    }

    /// Normalize every row (Eq. 1) and freeze into a [`TrustMatrix`].
    pub fn build(&self) -> TrustMatrix {
        let mut row_ptr = Vec::with_capacity(self.n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0usize);
        for row in &self.rows {
            for (id, s) in row.normalized() {
                cols.push(id.0);
                vals.push(s);
            }
            row_ptr.push(cols.len());
        }
        let matrix = TrustMatrix { n: self.n, row_ptr, cols, vals };
        #[cfg(feature = "invariants")]
        crate::invariants::check_row_stochastic(&matrix, "TrustMatrixBuilder::build");
        matrix
    }
}

/// The normalized trust matrix `S = (s_ij)` in compressed sparse row form.
///
/// Every stored row sums to 1. Rows of peers that issued *no* feedback are
/// stored empty and treated as **uniform** (`s_ij = 1/n` for all `j`) by all
/// matrix operations — the standard completion that keeps `S` stochastic and
/// the induced Markov chain well-defined (EigenTrust does the same).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrustMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl TrustMatrix {
    /// Network size `n` (the matrix is `n × n`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The stored entries of row `i` as parallel `(columns, values)` slices.
    ///
    /// An empty row means "no feedback issued" and is interpreted as uniform
    /// by the matrix products.
    pub fn row(&self, i: NodeId) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.row_ptr[i.index()], self.row_ptr[i.index() + 1]);
        (&self.cols[lo..hi], &self.vals[lo..hi])
    }

    /// True if row `i` stored no feedback (and is therefore implicit-uniform).
    pub fn row_is_dangling(&self, i: NodeId) -> bool {
        self.row_ptr[i.index()] == self.row_ptr[i.index() + 1]
    }

    /// Entry `s_ij`, resolving implicit-uniform rows to `1/n`.
    pub fn entry(&self, i: NodeId, j: NodeId) -> f64 {
        if self.row_is_dangling(i) {
            return 1.0 / self.n as f64;
        }
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j.0) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// `out = Sᵀ · v`, the matrix–vector product of Eq. 2 / Eq. 7:
    /// `out[j] = Σ_i s_ij · v[i]`.
    ///
    /// Implicit-uniform rows spread their `v[i]` mass evenly over all `n`
    /// components. Runs in `O(nnz + n)`.
    ///
    /// # Errors
    /// Returns [`CoreError::DimensionMismatch`] if `v` or `out` have length
    /// different from `n`.
    pub fn transpose_mul(&self, v: &[f64], out: &mut [f64]) -> Result<(), CoreError> {
        if v.len() != self.n {
            return Err(CoreError::DimensionMismatch { expected: self.n, actual: v.len() });
        }
        if out.len() != self.n {
            return Err(CoreError::DimensionMismatch { expected: self.n, actual: out.len() });
        }
        out.fill(0.0);
        let mut dangling_mass = 0.0;
        #[allow(clippy::needless_range_loop)] // index drives multiple arrays
        for i in 0..self.n {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            if lo == hi {
                dangling_mass += v[i];
                continue;
            }
            let vi = v[i];
            if vi == 0.0 {
                continue;
            }
            for k in lo..hi {
                out[self.cols[k] as usize] += self.vals[k] * vi;
            }
        }
        if dangling_mass != 0.0 {
            let share = dangling_mass / self.n as f64;
            for o in out.iter_mut() {
                *o += share;
            }
        }
        Ok(())
    }

    /// Sum of stored entries of row `i` (1.0 for non-dangling rows, 0.0 for
    /// dangling ones, up to float error).
    pub fn row_sum(&self, i: NodeId) -> f64 {
        let (lo, hi) = (self.row_ptr[i.index()], self.row_ptr[i.index() + 1]);
        self.vals[lo..hi].iter().sum()
    }

    /// Verify the stochastic invariant: every non-dangling row sums to 1
    /// within `tol`, and every entry lies in `[0, 1]`.
    pub fn is_row_stochastic(&self, tol: f64) -> bool {
        if self.vals.iter().any(|&v| !(0.0..=1.0 + tol).contains(&v)) {
            return false;
        }
        (0..self.n).all(|i| {
            let id = NodeId::from_index(i);
            self.row_is_dangling(id) || (self.row_sum(id) - 1.0).abs() <= tol
        })
    }

    /// Materialize as a dense row-major `n × n` matrix (tests and tiny
    /// examples only; resolves implicit-uniform rows).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut dense = vec![vec![0.0; self.n]; self.n];
        #[allow(clippy::needless_range_loop)] // index drives multiple arrays
        for i in 0..self.n {
            let id = NodeId::from_index(i);
            if self.row_is_dangling(id) {
                dense[i].fill(1.0 / self.n as f64);
            } else {
                let (cols, vals) = self.row(id);
                for (&c, &v) in cols.iter().zip(vals) {
                    dense[i][c as usize] = v;
                }
            }
        }
        dense
    }

    /// Build directly from per-node raw-score rows.
    pub fn from_rows(rows: &[LocalTrust]) -> TrustMatrix {
        let mut b = TrustMatrixBuilder::new(rows.len());
        for (i, row) in rows.iter().enumerate() {
            b.set_row(NodeId::from_index(i), row.clone());
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_matrix() -> TrustMatrix {
        // 0 → {1: 4, 2: 1}; 1 → {0: 2}; 2 → dangling
        let mut b = TrustMatrixBuilder::new(3);
        b.record(NodeId(0), NodeId(1), 4.0);
        b.record(NodeId(0), NodeId(2), 1.0);
        b.record(NodeId(1), NodeId(0), 2.0);
        b.build()
    }

    #[test]
    fn rows_normalize_per_eq1() {
        let m = small_matrix();
        assert!((m.entry(NodeId(0), NodeId(1)) - 0.8).abs() < 1e-12);
        assert!((m.entry(NodeId(0), NodeId(2)) - 0.2).abs() < 1e-12);
        assert_eq!(m.entry(NodeId(1), NodeId(0)), 1.0);
    }

    #[test]
    fn dangling_row_is_uniform() {
        let m = small_matrix();
        assert!(m.row_is_dangling(NodeId(2)));
        for j in 0..3 {
            assert!((m.entry(NodeId(2), NodeId(j)) - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn self_ratings_are_dropped() {
        let mut b = TrustMatrixBuilder::new(2);
        b.record(NodeId(0), NodeId(0), 10.0);
        b.record(NodeId(0), NodeId(1), 1.0);
        let m = b.build();
        assert_eq!(m.entry(NodeId(0), NodeId(0)), 0.0);
        assert_eq!(m.entry(NodeId(0), NodeId(1)), 1.0);
    }

    #[test]
    fn stochastic_invariant_holds() {
        assert!(small_matrix().is_row_stochastic(1e-12));
    }

    #[test]
    fn transpose_mul_matches_dense() {
        let m = small_matrix();
        let v = [0.5, 0.3, 0.2];
        let mut out = vec![0.0; 3];
        m.transpose_mul(&v, &mut out).unwrap();
        let dense = m.to_dense();
        for j in 0..3 {
            let expect: f64 = (0..3).map(|i| dense[i][j] * v[i]).sum();
            assert!((out[j] - expect).abs() < 1e-12, "j={j}: {} vs {}", out[j], expect);
        }
        // Sᵀ preserves total mass because S is row-stochastic.
        let total: f64 = out.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_mul_checks_dimensions() {
        let m = small_matrix();
        let mut out = vec![0.0; 3];
        assert!(matches!(
            m.transpose_mul(&[0.1, 0.9], &mut out),
            Err(CoreError::DimensionMismatch { expected: 3, actual: 2 })
        ));
        let mut short = vec![0.0; 2];
        assert!(m.transpose_mul(&[0.1, 0.2, 0.7], &mut short).is_err());
    }

    #[test]
    fn paper_fig2_column_for_node_2() {
        // Fig. 2 of the paper: s_12 = 0.2, s_22 = 0, s_32 = 0.6 (1-indexed),
        // V(t) = (1/2, 1/3, 1/6); the updated v_2(t+1) must be 0.2.
        // We encode only the entries relevant to column 2 plus filler to keep
        // rows stochastic.
        let mut b = TrustMatrixBuilder::new(3);
        // Node 0 (paper N1): s to N2 (index 1) = 0.2, rest to N3 (index 2).
        b.record(NodeId(0), NodeId(1), 0.2);
        b.record(NodeId(0), NodeId(2), 0.8);
        // Node 1 (paper N2): no trust in N2 itself (diagonal), all to N1.
        b.record(NodeId(1), NodeId(0), 1.0);
        // Node 2 (paper N3): s to N2 = 0.6, rest to N1.
        b.record(NodeId(2), NodeId(1), 0.6);
        b.record(NodeId(2), NodeId(0), 0.4);
        let m = b.build();
        let v = [0.5, 1.0 / 3.0, 1.0 / 6.0];
        let mut out = vec![0.0; 3];
        m.transpose_mul(&v, &mut out).unwrap();
        // v_2(t+1) = 1/2·0.2 + 1/3·0 + 1/6·0.6 = 0.2
        assert!((out[1] - 0.2).abs() < 1e-12, "got {}", out[1]);
    }

    #[test]
    fn from_rows_roundtrip() {
        let mut r0 = LocalTrust::new();
        r0.add_feedback(NodeId(1), 3.0);
        let rows = vec![r0, LocalTrust::new()];
        let m = TrustMatrix::from_rows(&rows);
        assert_eq!(m.n(), 2);
        assert_eq!(m.entry(NodeId(0), NodeId(1)), 1.0);
        assert!(m.row_is_dangling(NodeId(1)));
    }

    #[test]
    fn nnz_counts_stored_entries() {
        assert_eq!(small_matrix().nnz(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_out_of_range_panics() {
        let mut b = TrustMatrixBuilder::new(2);
        b.record(NodeId(0), NodeId(5), 1.0);
    }

    #[test]
    #[should_panic(expected = "not row-stochastic")]
    fn non_stochastic_matrix_trips_the_invariant_checker() {
        // Bypass the normalizing builder: a raw CSR matrix whose one row
        // sums to 1.5 must be rejected by the checker the `invariants`
        // feature installs behind every published matrix.
        let bad =
            TrustMatrix { n: 2, row_ptr: vec![0, 2, 2], cols: vec![0, 1], vals: vec![0.75, 0.75] };
        crate::invariants::check_row_stochastic(&bad, "test");
    }
}
