//! Bloom filter and rank-storage costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gossiptrust_core::vector::ReputationVector;
use gossiptrust_storage::{BloomFilter, RankStorage, RankStorageConfig};
use std::hint::black_box;

fn bench_bloom_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom");
    group.throughput(Throughput::Elements(1));
    group.bench_function("insert", |b| {
        let mut f = BloomFilter::with_rate(10_000, 0.01);
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(1);
            f.insert(black_box(key));
        });
    });
    group.bench_function("contains_hit", |b| {
        let mut f = BloomFilter::with_rate(10_000, 0.01);
        for k in 0..10_000u64 {
            f.insert(k);
        }
        let mut key = 0u64;
        b.iter(|| {
            key = (key + 1) % 10_000;
            black_box(f.contains(black_box(key)))
        });
    });
    group.bench_function("contains_miss", |b| {
        let mut f = BloomFilter::with_rate(10_000, 0.01);
        for k in 0..10_000u64 {
            f.insert(k);
        }
        let mut key = 1_000_000u64;
        b.iter(|| {
            key += 1;
            black_box(f.contains(black_box(key)))
        });
    });
    group.finish();
}

fn bench_rank_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_storage_build");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(1.2)).collect();
            let v = ReputationVector::from_weights(weights).unwrap();
            b.iter(|| black_box(RankStorage::build(&v, RankStorageConfig::default())));
        });
    }
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group!(name = benches; config = short(); targets = bench_bloom_ops, bench_rank_storage);
criterion_main!(benches);
