//! Async fixture (clean): yields to the runtime instead of blocking, and
//! drops the guard in a scope before awaiting.
#![forbid(unsafe_code)]

use std::sync::Mutex;

/// Sleeps via the runtime timer.
pub async fn pump(ms: u64) {
    tokio::time::sleep(std::time::Duration::from_millis(ms)).await;
}

/// Takes the lock in a scope, then awaits with the guard dropped.
pub async fn drain(m: &Mutex<Vec<u32>>) {
    let batch = {
        let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *g)
    };
    let _ = batch.len();
    tokio::task::yield_now().await;
}
