//! Workspace-level rule families: taint reachability, panic-path, and
//! async-discipline. These run on the call graph ([`crate::graph`]) built
//! from the item parser, complementing the per-file token rules in
//! [`crate::rules`].
//!
//! All three families are configured from the `[analysis]` section of
//! `lint.toml` (see [`crate::config::AnalysisConfig`]); when the section
//! is absent they are no-ops, so scratch workspaces and fixtures opt in
//! explicitly.

use crate::config::AnalysisConfig;
use crate::graph::{Graph, Reach};
use crate::lexer::{Token, TokenKind};
use crate::parser::ParsedFile;
use crate::rules::Violation;
use std::collections::HashSet;

/// Kinds of nondeterminism a taint source introduces, each its own rule so
/// waivers stay narrow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SourceKind {
    Clock,
    Entropy,
    Env,
    Hash,
}

impl SourceKind {
    fn rule(self) -> &'static str {
        match self {
            SourceKind::Clock => "taint-clock",
            SourceKind::Entropy => "taint-entropy",
            SourceKind::Env => "taint-env",
            SourceKind::Hash => "taint-hash",
        }
    }
}

/// A taint source found directly in a function body.
#[derive(Clone, Debug)]
struct Source {
    kind: SourceKind,
    what: String,
    line: u32,
}

/// Scan one body token range for direct nondeterminism sources.
fn find_source(tokens: &[Token], body: (usize, usize)) -> Option<Source> {
    let range = &tokens[body.0..=body.1.min(tokens.len().saturating_sub(1))];
    for (i, t) in range.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let next2 = |a: &str, b: &str| {
            range.get(i + 1).is_some_and(|n| n.is_punct(a))
                && range.get(i + 2).is_some_and(|n| n.is_ident(b))
        };
        let src = match t.text.as_str() {
            "Instant" | "SystemTime" if next2("::", "now") => Some(Source {
                kind: SourceKind::Clock,
                what: format!("{}::now", t.text),
                line: t.line,
            }),
            "thread_rng" | "from_entropy" | "from_os_rng" => {
                Some(Source { kind: SourceKind::Entropy, what: t.text.clone(), line: t.line })
            }
            "rand" if next2("::", "rng") => Some(Source {
                kind: SourceKind::Entropy,
                what: "rand::rng".to_string(),
                line: t.line,
            }),
            "env" if next2("::", "var") || next2("::", "var_os") => {
                Some(Source { kind: SourceKind::Env, what: "env::var".to_string(), line: t.line })
            }
            "HashMap" | "HashSet" => {
                Some(Source { kind: SourceKind::Hash, what: t.text.clone(), line: t.line })
            }
            _ => None,
        };
        if src.is_some() {
            return src;
        }
    }
    None
}

/// Render a call chain as `a → b → c`, eliding the middle when long.
fn chain_label(graph: &Graph, chain: &[usize]) -> String {
    let names: Vec<String> = chain.iter().map(|&n| graph.nodes[n].label()).collect();
    if names.len() <= 5 {
        names.join(" → ")
    } else {
        format!(
            "{} → {} → … → {} → {}",
            names[0],
            names[1],
            names[names.len() - 2],
            names[names.len() - 1]
        )
    }
}

/// Taint reachability: no configured sink may transitively reach a
/// function that reads a clock, ambient entropy, the environment, or
/// constructs a `HashMap`/`HashSet`. The violation is attributed to the
/// *caller* of the source-carrying function (or to the sink itself when it
/// is the source), so a waiver pins the exact place nondeterminism enters
/// the deterministic world.
pub fn taint(
    files: &[ParsedFile],
    tokens: &[Vec<Token>],
    graph: &Graph,
    cfg: &AnalysisConfig,
    out: &mut Vec<Violation>,
) {
    let _ = files;
    if cfg.taint_sinks.is_empty() {
        return;
    }
    // Direct sources per node, computed once.
    let sources: Vec<Option<Source>> = graph
        .nodes
        .iter()
        .map(|n| find_source(&tokens[n.file], n.body))
        .collect();
    let mut seen: HashSet<(&'static str, String, usize)> = HashSet::new();
    for spec in &cfg.taint_sinks {
        for sink in graph.match_spec(spec) {
            let reach = graph.reach(&[sink]);
            for (node, src) in sources.iter().enumerate() {
                let (Some(src), true) = (src, reach.visited[node]) else {
                    continue;
                };
                let chain = reach.chain(node);
                // Attribute to the caller of the source fn; the sink
                // itself when the chain has no interior.
                let attributed = if chain.len() >= 2 {
                    chain[chain.len() - 2]
                } else {
                    node
                };
                let a = &graph.nodes[attributed];
                if !seen.insert((src.kind.rule(), a.rel.clone(), node)) {
                    continue;
                }
                let s = &graph.nodes[node];
                out.push(Violation {
                    rule: src.kind.rule(),
                    path: a.rel.clone(),
                    line: graph.edges[attributed]
                        .iter()
                        .find(|e| e.to == *chain.last().unwrap_or(&node))
                        .map_or(a.line, |e| e.line),
                    message: format!(
                        "deterministic sink `{spec}` reaches `{}` ({} at {}:{}) via {}",
                        s.label(),
                        src.what,
                        s.rel,
                        src.line,
                        chain_label(graph, &chain),
                    ),
                });
            }
        }
    }
}

/// Panic-capable sites inside one body.
fn panic_sites(tokens: &[Token], body: (usize, usize)) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let hi = body.1.min(tokens.len().saturating_sub(1));
    for i in body.0..=hi {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "unwrap" | "expect" => {
                    let dotted = i > 0 && tokens[i - 1].is_punct(".");
                    let called = tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
                    if dotted && called {
                        out.push((t.line, format!(".{}()", t.text)));
                    }
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if tokens.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
                {
                    out.push((t.line, format!("{}!", t.text)));
                }
                _ => {}
            }
        } else if t.is_punct("[") && i > 0 {
            let p = &tokens[i - 1];
            let indexable = (p.kind == TokenKind::Ident
                && !matches!(
                    p.text.as_str(),
                    "let" | "mut" | "ref" | "in" | "return" | "box" | "as" | "else" | "if"
                ))
                || p.is_punct(")")
                || p.is_punct("]");
            // `x[..]` is the full-range reslice — it cannot panic, so it
            // is not an index site.
            let full_range = tokens.get(i + 1).is_some_and(|n| n.is_punct(".."))
                && tokens.get(i + 2).is_some_and(|n| n.is_punct("]"));
            if indexable && !full_range {
                out.push((t.line, "slice indexing `[…]`".to_string()));
            }
        }
    }
    out
}

/// Panic-path: functions reachable from the configured roots (server
/// accept loop, epoch manager, WAL replay) and living under the configured
/// scan paths must not contain panic-capable sites. Feature-gated
/// functions are exempt — the invariants layer exists to panic.
pub fn panic_path(
    tokens: &[Vec<Token>],
    graph: &Graph,
    cfg: &AnalysisConfig,
    out: &mut Vec<Violation>,
) {
    if cfg.panic_roots.is_empty() || cfg.panic_scan_paths.is_empty() {
        return;
    }
    let mut roots: Vec<usize> = Vec::new();
    for spec in &cfg.panic_roots {
        roots.extend(graph.match_spec(spec));
    }
    let reach: Reach = graph.reach(&roots);
    for (node, n) in graph.nodes.iter().enumerate() {
        if !reach.visited[node]
            || n.cfg_gated
            || !cfg.panic_scan_paths.iter().any(|p| n.rel.starts_with(p.as_str()))
        {
            continue;
        }
        let chain = reach.chain(node);
        for (line, what) in panic_sites(&tokens[n.file], n.body) {
            out.push(Violation {
                rule: "panic-path",
                path: n.rel.clone(),
                line,
                message: format!(
                    "{what} in `{}`, reachable from `{}` via {} — return a typed error or shed \
                     the request instead",
                    n.label(),
                    graph.nodes[chain[0]].label(),
                    chain_label(graph, &chain),
                ),
            });
        }
    }
}

/// Async-discipline: inside `async fn`s under the configured paths, flag
/// blocking `thread::sleep`, blocking `std::fs` I/O, and a sync
/// `Mutex` guard (`.lock()` not immediately `.await`ed) alive across a
/// later `.await` in the same enclosing block.
pub fn async_discipline(
    tokens: &[Vec<Token>],
    graph: &Graph,
    cfg: &AnalysisConfig,
    out: &mut Vec<Violation>,
) {
    if cfg.async_paths.is_empty() {
        return;
    }
    for n in &graph.nodes {
        if !n.is_async || !cfg.async_paths.iter().any(|p| n.rel.starts_with(p.as_str())) {
            continue;
        }
        let toks = &tokens[n.file];
        let hi = n.body.1.min(toks.len().saturating_sub(1));
        // Enclosing-block close index per token, from a single brace pass.
        let mut close_of = vec![hi; hi + 1 - n.body.0];
        {
            let mut stack: Vec<usize> = Vec::new();
            // First pass: map each open brace to its close.
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            for (i, tok) in toks.iter().enumerate().take(hi + 1).skip(n.body.0) {
                if tok.is_punct("{") {
                    stack.push(i);
                } else if tok.is_punct("}") {
                    if let Some(open) = stack.pop() {
                        pairs.push((open, i));
                    }
                }
            }
            // Second pass: innermost enclosing close for every token.
            let mut open_close: std::collections::HashMap<usize, usize> =
                pairs.into_iter().collect();
            let mut current: Vec<usize> = Vec::new();
            for i in n.body.0..=hi {
                if toks[i].is_punct("{") {
                    if let Some(&c) = open_close.get(&i) {
                        current.push(c);
                    }
                } else if toks[i].is_punct("}") && current.last() == Some(&i) {
                    current.pop();
                }
                close_of[i - n.body.0] = current.last().copied().unwrap_or(hi);
            }
            open_close.clear();
        }
        for i in n.body.0..=hi {
            let t = &toks[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let next_is = |k: usize, p: &str| toks.get(i + k).is_some_and(|n| n.is_punct(p));
            let next_ident = |k: usize, id: &str| toks.get(i + k).is_some_and(|n| n.is_ident(id));
            // thread::sleep — blocking the executor thread.
            if t.text == "thread" && next_is(1, "::") && next_ident(2, "sleep") {
                out.push(Violation {
                    rule: "async-discipline",
                    path: n.rel.clone(),
                    line: t.line,
                    message: format!(
                        "`thread::sleep` in async fn `{}` blocks the executor — use \
                         `tokio::time::sleep`",
                        n.label()
                    ),
                });
            }
            // std::fs — blocking file I/O on the executor.
            if t.text == "std" && next_is(1, "::") && next_ident(2, "fs") {
                out.push(Violation {
                    rule: "async-discipline",
                    path: n.rel.clone(),
                    line: t.line,
                    message: format!(
                        "blocking `std::fs` I/O in async fn `{}` — use `tokio::fs` or \
                         `spawn_blocking`",
                        n.label()
                    ),
                });
            }
            // .lock() guard held across a later .await.
            if t.text == "lock" && i > 0 && toks[i - 1].is_punct(".") && next_is(1, "(") {
                // Find the close paren of the lock call.
                let mut depth = 0i32;
                let mut k = i + 1;
                while k <= hi {
                    if toks[k].is_punct("(") {
                        depth += 1;
                    } else if toks[k].is_punct(")") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                // `.lock().await` is an async mutex: fine.
                if toks.get(k + 1).is_some_and(|n| n.is_punct("."))
                    && toks.get(k + 2).is_some_and(|n| n.is_ident("await"))
                {
                    continue;
                }
                let block_close = close_of[i - n.body.0];
                let held_across = (k..=block_close.min(hi))
                    .any(|j| toks[j].is_ident("await") && j > 0 && toks[j - 1].is_punct("."));
                if held_across {
                    out.push(Violation {
                        rule: "async-discipline",
                        path: n.rel.clone(),
                        line: t.line,
                        message: format!(
                            "sync mutex guard from `.lock()` in async fn `{}` may be held \
                             across an `.await` in the same block — scope the guard or use \
                             `tokio::sync::Mutex`",
                            n.label()
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::lexer::tokenize;
    use crate::parser::parse_file;
    use std::path::Path;

    fn analyze(files: &[(&str, &str)], cfg: &AnalysisConfig) -> Vec<Violation> {
        let tokens: Vec<Vec<Token>> = files.iter().map(|(_, s)| tokenize(s)).collect();
        let parsed: Vec<ParsedFile> = files
            .iter()
            .zip(&tokens)
            .map(|((rel, _), t)| parse_file(rel, t))
            .collect();
        let graph = Graph::build(Path::new("/nonexistent"), &parsed);
        let mut out = Vec::new();
        taint(&parsed, &tokens, &graph, cfg, &mut out);
        panic_path(&tokens, &graph, cfg, &mut out);
        async_discipline(&tokens, &graph, cfg, &mut out);
        out
    }

    fn cfg() -> AnalysisConfig {
        AnalysisConfig {
            taint_sinks: vec!["step_slab".into()],
            panic_roots: vec!["serve".into()],
            panic_scan_paths: vec!["crates/a/src".into()],
            async_paths: vec!["crates/a/src".into()],
        }
    }

    #[test]
    fn taint_flags_transitive_clock_reads() {
        let v = analyze(
            &[(
                "crates/a/src/lib.rs",
                "pub fn step_slab() { helper(); }\n\
                 fn helper() { tick(); }\n\
                 fn tick() { let _ = Instant::now(); }",
            )],
            &cfg(),
        );
        let t: Vec<&Violation> = v.iter().filter(|v| v.rule == "taint-clock").collect();
        assert_eq!(t.len(), 1);
        assert!(t[0].message.contains("step_slab"), "{}", t[0].message);
        assert!(t[0].message.contains("tick"), "{}", t[0].message);
    }

    #[test]
    fn taint_silent_when_no_source_reachable() {
        let v = analyze(
            &[(
                "crates/a/src/lib.rs",
                "pub fn step_slab() { helper(); } fn helper() {}\n\
                 fn unrelated() { let _ = Instant::now(); }",
            )],
            &cfg(),
        );
        assert!(v.iter().all(|v| !v.rule.starts_with("taint")), "{v:?}");
    }

    #[test]
    fn panic_path_flags_reachable_sites_only() {
        let v = analyze(
            &[(
                "crates/a/src/lib.rs",
                "pub fn serve() { handle(); }\n\
                 fn handle() { x().unwrap(); }\n\
                 fn offline() { y().unwrap(); }",
            )],
            &cfg(),
        );
        let p: Vec<&Violation> = v.iter().filter(|v| v.rule == "panic-path").collect();
        assert_eq!(p.len(), 1, "{p:?}");
        assert!(p[0].message.contains("handle"));
    }

    #[test]
    fn panic_path_catches_indexing_and_macros_but_not_attrs() {
        let v = analyze(
            &[(
                "crates/a/src/lib.rs",
                "pub fn serve() { let v = vec![1]; let _ = v[0]; panic!(\"x\"); }",
            )],
            &cfg(),
        );
        let p: Vec<&str> = v
            .iter()
            .filter(|v| v.rule == "panic-path")
            .map(|v| v.message.split(" in ").next().unwrap_or(""))
            .collect();
        assert_eq!(p.len(), 2, "{v:?}"); // v[0] and panic! — not vec![…]
    }

    #[test]
    fn panic_path_allows_full_range_reslice() {
        let v = analyze(
            &[(
                "crates/a/src/lib.rs",
                "pub fn serve(a: [u8; 4], b: &[u8]) -> bool { &a[..] == b }",
            )],
            &cfg(),
        );
        assert!(v.iter().all(|v| v.rule != "panic-path"), "{v:?}");
    }

    #[test]
    fn panic_path_skips_feature_gated_fns() {
        let v = analyze(
            &[(
                "crates/a/src/lib.rs",
                "pub fn serve() { check(); }\n\
                 #[cfg(feature = \"invariants\")] fn check() { x().expect(\"invariant\"); }",
            )],
            &cfg(),
        );
        assert!(v.iter().all(|v| v.rule != "panic-path"), "{v:?}");
    }

    #[test]
    fn async_discipline_flags_sleep_and_guard_across_await() {
        let v = analyze(
            &[(
                "crates/a/src/lib.rs",
                "pub async fn a() { thread::sleep(d); }\n\
                 pub async fn b(m: &Mutex<u32>) { let g = m.lock().unwrap(); io().await; }\n\
                 pub async fn c(m: &TokioMutex<u32>) { let g = m.lock().await; }\n\
                 pub async fn d(m: &Mutex<u32>) { { let g = m.lock().unwrap(); } io().await; }",
            )],
            &cfg(),
        );
        let a: Vec<&Violation> = v.iter().filter(|v| v.rule == "async-discipline").collect();
        // a: sleep; b: guard across await. c (async mutex) and d (scoped
        // guard) are clean.
        assert_eq!(a.len(), 2, "{a:?}");
        assert!(a.iter().any(|v| v.message.contains("thread::sleep")));
        assert!(a.iter().any(|v| v.message.contains("guard")));
    }

    #[test]
    fn analysis_is_noop_without_config() {
        let v = analyze(
            &[("crates/a/src/lib.rs", "pub async fn a() { thread::sleep(d); x().unwrap(); }")],
            &AnalysisConfig::default(),
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
