//! P2P file sharing with reputation-based source selection (the Fig. 5
//! scenario at demo scale): a Gnutella-like network with 20% malicious
//! peers serving corrupted files, comparing GossipTrust vs NoTrust.
//!
//! Run with: `cargo run --release --example file_sharing`

use gossiptrust::filesharing::{
    FileSharingSession, ReputationBackend, SelectionPolicy, SessionConfig,
};
use gossiptrust::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(name: &str, selection: SelectionPolicy, backend: ReputationBackend) {
    let n = 200;
    let queries = 4000;
    let mut rng = StdRng::seed_from_u64(11);
    let population = Population::generate(n, &ThreatConfig::independent(0.20), &mut rng);
    let malicious = population.malicious_peers().len();

    let config =
        SessionConfig { selection, backend, ..SessionConfig::gossiptrust(Params::for_network(n)) }
            .scaled_down(2_000, 500); // 2000 files, reputation refresh each 500 queries

    let mut session = FileSharingSession::new(population, config, &mut rng);
    session.run_queries(queries, &mut rng);
    let report = session.finish(&mut rng);

    println!("--- {name} ---");
    println!("peers: {n} ({malicious} malicious), queries: {}", report.queries);
    println!("authentic downloads: {}", report.successes);
    println!("inauthentic downloads: {}", report.inauthentic);
    println!("queries with no reachable holder: {}", report.no_holder);
    println!("flood messages: {}", report.flood_messages);
    println!("reputation refreshes: {}", report.reputation_updates);
    print!("success rate per window:");
    for w in &report.windows {
        print!(" {:.0}%", w.success_rate() * 100.0);
    }
    println!();
    println!(
        "overall {:.1}%, steady state {:.1}%\n",
        report.success_rate() * 100.0,
        report.steady_state_success_rate(3) * 100.0
    );
}

fn main() {
    println!("P2P file sharing under a 20% independent-malicious population\n");
    run(
        "GossipTrust (highest-reputation selection, gossip aggregation)",
        SelectionPolicy::HighestReputation,
        ReputationBackend::Gossip,
    );
    run(
        "NoTrust (random selection, no reputation system)",
        SelectionPolicy::Random,
        ReputationBackend::None,
    );
    println!("GossipTrust should climb across windows as scores converge,");
    println!("while NoTrust stays pinned near the honest-population average.");
}
