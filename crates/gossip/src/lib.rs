//! # gossiptrust-gossip
//!
//! The push-sum gossip protocol engine at the heart of GossipTrust
//! (Algorithms 1 and 2 of Zhou & Hwang, IPDPS 2007).
//!
//! Three layers:
//!
//! * [`pushsum`] — **Algorithm 1**: the scalar push-sum protocol that
//!   aggregates a *single* peer's global score. Every node holds a gossip
//!   pair `(x, w)`; each step it keeps half and pushes half to a random
//!   node; the ratio `x/w` converges to the weighted sum `Σ_i s_ij·v_i` on
//!   every node simultaneously.
//! * [`engine`] — **Algorithm 2 (inner loop)**: the vectorized engine that
//!   runs `n` push-sum instances concurrently, one per peer score, with
//!   per-node convergence detection, message-loss / node-failure injection
//!   and full instrumentation.
//! * [`cycle`] — **Algorithm 2 (outer loop)**: the aggregation-cycle driver
//!   that seeds each cycle from the previous global vector, applies the
//!   greedy-factor power-node mixing, and iterates cycles until the global
//!   reputation vector converges within `δ`.
//!
//! The engine is *synchronous-round* and fully deterministic given a seed:
//! one [`engine::VectorGossipEngine::step`] models the paper's "gossip step"
//! in which every node sends once and then merges everything it received.
//! Its state lives in flat slab-partitioned arenas computed by a persistent
//! worker pool; the parallel step is bit-identical to the sequential one
//! for any thread count (see the [`engine`] module docs for the
//! determinism contract and the `GT_THREADS` knob). An asynchronous,
//! message-passing implementation of the same protocol lives in the
//! `gossiptrust-net` crate.
//!
//! ```
//! use gossiptrust_core::prelude::*;
//! use gossiptrust_gossip::cycle::{GossipTrustAggregator, PriorPolicy};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Tiny 4-node network with a clear authority structure.
//! let mut b = TrustMatrixBuilder::new(4);
//! for i in 1..4u32 {
//!     b.record(NodeId(i), NodeId(0), 5.0);
//! }
//! b.record(NodeId(0), NodeId(1), 1.0);
//! let matrix = b.build();
//!
//! let params = Params::for_network(4);
//! let mut rng = StdRng::seed_from_u64(7);
//! let report = GossipTrustAggregator::new(params.clone())
//!     .with_prior_policy(PriorPolicy::Fixed(Prior::uniform(4)))
//!     .aggregate(&matrix, &mut rng);
//!
//! // The gossiped result agrees with exact centralized power iteration.
//! let exact = PowerIteration::new(params).solve(&matrix, &Prior::uniform(4));
//! let err = exact.vector.rms_relative_error(&report.vector).unwrap();
//! assert!(err < 0.05, "rms error {err}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chooser;
pub mod cycle;
pub mod engine;
pub mod pushsum;
pub mod stats;

pub use chooser::{ScriptedChooser, TargetChooser, UniformChooser};
pub use cycle::{AggregationReport, CycleStats, GossipTrustAggregator, PriorPolicy};
pub use engine::{EngineConfig, EngineObs, StepOutcome, VectorGossipEngine};
pub use pushsum::{PushSumNetwork, PushSumOutcome};
pub use stats::GossipStats;
