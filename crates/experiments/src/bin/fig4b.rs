//! Reproduce Fig. 4(b): RMS aggregation error under collusive malicious
//! peers vs collusion group size, with and without power nodes.

use gossiptrust_experiments::figures::fig4b;
use gossiptrust_experiments::{gossip_threads, Scale, TextTable};

fn main() {
    let scale = Scale::from_env();
    println!(
        "Fig. 4(b) — RMS error (Eq. 8) under collusion, n = {} ({scale:?} scale)\n",
        scale.n()
    );
    println!("gossip threads: {} (override with GT_THREADS)\n", gossip_threads());
    let rows = fig4b(scale);
    let mut t = TextTable::new(vec!["alpha", "gamma", "group size", "rms error", "std"]);
    for r in &rows {
        t.row(vec![
            format!("{:.2}", r.alpha),
            format!("{:.0}%", r.gamma * 100.0),
            r.group_size.to_string(),
            format!("{:.4}", r.rms_error),
            format!("{:.4}", r.std_error),
        ]);
    }
    print!("{}", t.render());
    println!("\nexpected shape: error grows with group size and γ; the power-node");
    println!("prior (α = 0.15) cuts the error (paper: ~30% less at size > 6, 5% peers).");
}
