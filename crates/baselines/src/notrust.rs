//! The NoTrust baseline: no reputation at all.
//!
//! "We also consider the case of a NoTrust system, which randomly selects a
//! node to download the desired file without considering node reputation"
//! (§6.4). As a reputation *system* it degenerates to the uniform vector
//! that never updates; the random selection policy lives in
//! `gossiptrust-filesharing`.

use gossiptrust_core::id::NodeId;
use gossiptrust_core::vector::ReputationVector;
use rand::Rng;

/// The no-reputation system.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoTrust;

impl NoTrust {
    /// Its "global reputation vector": always uniform.
    pub fn vector(&self, n: usize) -> ReputationVector {
        ReputationVector::uniform(n)
    }

    /// Its source selection: uniform among holders.
    pub fn select<R: Rng + ?Sized>(&self, holders: &[NodeId], rng: &mut R) -> NodeId {
        assert!(!holders.is_empty(), "selection needs at least one holder");
        holders[rng.random_range(0..holders.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vector_is_uniform() {
        let v = NoTrust.vector(5);
        for i in 0..5 {
            assert_eq!(v.score(NodeId(i)), 0.2);
        }
    }

    #[test]
    fn selection_is_uniform_over_holders() {
        let holders = [NodeId(2), NodeId(4), NodeId(9)];
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..30_000 {
            *counts.entry(NoTrust.select(&holders, &mut rng)).or_insert(0usize) += 1;
        }
        for id in holders {
            let p = counts[&id] as f64 / 30_000.0;
            assert!((p - 1.0 / 3.0).abs() < 0.02, "{id}: {p}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one holder")]
    fn empty_holders_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = NoTrust.select(&[], &mut rng);
    }
}
