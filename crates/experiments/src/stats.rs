//! Mean/stddev aggregation over seeds.

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty sample");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (0 for a single observation).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// `mean ± stddev` of a sample, formatted for tables.
pub fn mean_pm(xs: &[f64]) -> String {
    format!("{:.4} ± {:.4}", mean(xs), stddev(xs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is ~2.138.
        assert!((stddev(&xs) - 2.1381).abs() < 1e-3);
    }

    #[test]
    fn single_sample_has_zero_stddev() {
        assert_eq!(stddev(&[3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_mean_panics() {
        mean(&[]);
    }
}
