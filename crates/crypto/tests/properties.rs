//! Property-based tests for the crypto layer.

use gossiptrust_crypto::{hmac_sha256, sha256, Pkg, Sha256, SignedEnvelope};
use proptest::prelude::*;

proptest! {
    /// Incremental hashing equals one-shot hashing for any split points.
    #[test]
    fn incremental_sha256_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        cuts in proptest::collection::vec(0usize..4096, 0..8),
    ) {
        let mut points: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        points.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for &p in &points {
            h.update(&data[prev..p]);
            prev = p;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Digests are deterministic and sensitive to any single-bit flip.
    #[test]
    fn sha256_bit_flip_changes_digest(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        byte in 0usize..512,
        bit in 0u8..8,
    ) {
        let byte = byte % data.len();
        let mut flipped = data.clone();
        flipped[byte] ^= 1 << bit;
        prop_assert_eq!(sha256(&data), sha256(&data));
        prop_assert_ne!(sha256(&data), sha256(&flipped));
    }

    /// HMAC verification accepts the genuine tag and rejects any tag for a
    /// different key or message.
    #[test]
    fn hmac_binds_key_and_message(
        key_a in proptest::collection::vec(any::<u8>(), 1..80),
        key_b in proptest::collection::vec(any::<u8>(), 1..80),
        msg_a in proptest::collection::vec(any::<u8>(), 0..256),
        msg_b in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let tag = hmac_sha256(&key_a, &msg_a);
        prop_assert_eq!(hmac_sha256(&key_a, &msg_a), tag);
        if key_a != key_b {
            prop_assert_ne!(hmac_sha256(&key_b, &msg_a), tag);
        }
        if msg_a != msg_b {
            prop_assert_ne!(hmac_sha256(&key_a, &msg_b), tag);
        }
    }

    /// Envelopes round-trip for arbitrary payloads, and every single-byte
    /// corruption of the encoding is either unparseable or fails to verify.
    #[test]
    fn envelope_roundtrip_and_tamper_detection(
        seed in any::<u64>(),
        identity in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        corrupt_at in 0usize..600,
        corrupt_bit in 0u8..8,
    ) {
        let pkg = Pkg::from_seed(seed);
        let key = pkg.issue(identity);
        let verifier = pkg.verifier();
        let envelope = key.seal(&payload);
        let encoded = envelope.encode();
        let decoded = SignedEnvelope::decode(&encoded).expect("genuine envelope decodes");
        prop_assert!(verifier.open(&decoded).is_some());

        let mut corrupted = encoded.to_vec();
        let at = corrupt_at % corrupted.len();
        corrupted[at] ^= 1 << corrupt_bit;
        match SignedEnvelope::decode(&corrupted) {
            None => {} // malformed: rejected at parse time
            Some(env) => {
                // Parsed but must fail authentication.
                prop_assert!(
                    verifier.open(&env).is_none(),
                    "corruption at byte {} accepted", at
                );
            }
        }
    }
}
