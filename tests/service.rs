//! Integration test for the epoch-driven reputation service
//! (`gossiptrust-serve`): a seeded 200-node workload, several epochs with
//! concurrent queries, a bit-for-bit replay check against a direct
//! `gossip::cycle` aggregation, and graceful degradation under an
//! injected non-converging epoch.

use gossiptrust::core::id::NodeId;
use gossiptrust::core::params::Params;
use gossiptrust::gossip::cycle::GossipTrustAggregator;
use gossiptrust::gossip::engine::EngineConfig;
use gossiptrust::gossip::UniformChooser;
use gossiptrust::serve::service::{ReputationService, ServiceConfig};
use gossiptrust::workloads::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const N: usize = 200;

/// Every peer rates ~10 Zipf-popular targets — a power-law feedback graph
/// like the paper's workloads, deterministic under `seed`.
fn ingest_workload(service: &ReputationService, seed: u64) {
    let handle = service.handle();
    let zipf = Zipf::new(N, 0.8);
    let mut rng = StdRng::seed_from_u64(seed);
    for rater in 0..N {
        for _ in 0..10 {
            let target = zipf.sample(&mut rng) - 1;
            if target != rater {
                handle
                    .record(
                        NodeId::from_index(rater),
                        NodeId::from_index(target),
                        1.0 + rng.random::<f64>() * 4.0,
                    )
                    .expect("workload ids are in range");
            }
        }
    }
}

#[test]
fn service_epochs_with_concurrent_queries_and_failure_injection() {
    let params = Params::for_network(N).with_threads(2);
    let config = ServiceConfig {
        params: params.clone(),
        base_seed: 123,
        // Epoch 3 is deliberately crippled so it cannot converge.
        fail_epochs: vec![3],
        ..ServiceConfig::new(N)
    };
    let service = ReputationService::start(config);
    ingest_workload(&service, 1);

    // --- Concurrent query load across the whole run -----------------------
    let stop = Arc::new(AtomicBool::new(false));
    let total_queries = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let handle = service.handle();
            let stop = Arc::clone(&stop);
            let total = Arc::clone(&total_queries);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + w);
                let mut last_version = 0u64;
                let mut count = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let peer = NodeId::from_index(rng.random_range(0..N));
                    // (a) every query succeeds against some published
                    // snapshot — never blocked, never torn.
                    let score = handle.get_score(peer).expect("query must always succeed");
                    assert!(score.score.is_finite(), "published scores are finite");
                    assert!(
                        score.version >= last_version,
                        "snapshot versions never go backwards ({} after {})",
                        score.version,
                        last_version
                    );
                    last_version = score.version;

                    let rank = handle.rank_of(peer).expect("rank query must succeed");
                    assert!((rank.exact_rank as usize) < N);
                    assert!(rank.bloom_level < rank.levels);

                    let top = handle.top_k(5);
                    assert_eq!(top.peers.len(), 5);
                    // The view is internally consistent: it was computed
                    // from exactly one snapshot, whatever its version.
                    for window in top.peers.windows(2) {
                        assert!(window[0].1 >= window[1].1, "top_k must be sorted descending");
                    }
                    count += 3;
                }
                total.fetch_add(count, Ordering::Relaxed);
                last_version
            })
        })
        .collect();

    let handle = service.handle();

    // --- Epoch 1 and 2: healthy ------------------------------------------
    let e1 = handle.run_epoch_now().expect("epoch loop alive");
    assert!(e1.published, "epoch 1 must converge and publish");
    assert_eq!(e1.live_version, 1);
    assert!(e1.gossip.steps > 0, "per-epoch GossipStats::diff captures activity");

    ingest_workload(&service, 2);
    let e2 = handle.run_epoch_now().expect("epoch loop alive");
    assert!(e2.published, "epoch 2 must converge and publish");
    assert_eq!(e2.live_version, 2);

    // --- Epoch 3: injected non-convergence → graceful degradation ---------
    let before_snapshot = handle.snapshot();
    let degraded_before = handle.stats_report().epochs_degraded;
    let e3 = handle.run_epoch_now().expect("epoch loop alive");
    assert!(!e3.published, "crippled epoch must not publish");
    assert!(!e3.converged);
    let after_snapshot = handle.snapshot();
    // (c) the previous snapshot keeps serving...
    assert_eq!(after_snapshot.version, before_snapshot.version);
    assert_eq!(after_snapshot.epoch, before_snapshot.epoch);
    // ...and the degradation counter increments.
    assert_eq!(handle.stats_report().epochs_degraded, degraded_before + 1);

    // --- Epoch 4: recovery ------------------------------------------------
    ingest_workload(&service, 3);
    let e4 = handle.run_epoch_now().expect("epoch loop alive");
    assert!(e4.published, "service recovers after a degraded epoch");
    assert_eq!(e4.live_version, 3);
    assert_eq!(handle.snapshot().epoch, 4, "epoch numbering includes the failed epoch");

    // --- Stop the query load ---------------------------------------------
    stop.store(true, Ordering::Relaxed);
    let mut max_seen_version = 0;
    for worker in workers {
        max_seen_version = max_seen_version.max(worker.join().expect("query worker panicked"));
    }
    let issued = total_queries.load(Ordering::Relaxed);
    assert!(issued > 0, "workers must have issued queries");
    assert!(
        handle.stats_report().queries_served >= issued,
        "service counters account for every worker query"
    );
    assert!(max_seen_version <= 3, "workers never see an unpublished version");

    // --- (b) bit-for-bit replay against a direct gossip::cycle run --------
    let snapshot = handle.snapshot();
    let matrix = snapshot
        .matrix
        .as_ref()
        .expect("published snapshots record their matrix");
    let replay = GossipTrustAggregator::new(params.clone())
        .with_engine_config(EngineConfig::from_params(&params, N))
        .aggregate_with(
            matrix,
            &snapshot.start,
            &UniformChooser,
            &mut StdRng::seed_from_u64(snapshot.seed),
        );
    assert_eq!(
        replay.vector.values(),
        snapshot.vector.values(),
        "published scores must equal a direct gossip::cycle run bit-for-bit"
    );

    // Final accounting: 3 published epochs, 1 degraded.
    let report = handle.stats_report();
    assert_eq!(report.epochs_attempted, 4);
    assert_eq!(report.epochs_published, 3);
    assert_eq!(report.epochs_degraded, 1);

    service.shutdown();
}
