//! A minimized model of the engine's **buffer-swap** step protocol (see
//! `WorkerPool` / `finish_step` in `engine.rs`): the current state lives in
//! persistent `Arc` arenas; each round the caller hands every worker its
//! cost-balanced share of owned write tasks (several per worker — the
//! engine over-decomposes slabs) plus `Arc` clones of the read state;
//! workers fill their write buffers from the arenas, release the `Arc`,
//! and send each task back over one shared result channel; the caller
//! computes its own share, reclaims the read state with `Arc::try_unwrap`
//! / `Arc::get_mut`, and publishes by `mem::swap`ping every freshly
//! written buffer with its read arena.
//!
//! The model checks the four properties the engine's safety rests on,
//! under scheduling jitter, a round-varying slab→worker assignment and
//! many rounds:
//!
//! 1. **ownership conservation** — every task comes back exactly once per
//!    round (never lost, never duplicated), for any assignment;
//! 2. **release-before-publish** — `Arc::try_unwrap` on the shared read
//!    handle and `Arc::get_mut` on every read arena succeed every round,
//!    i.e. every worker dropped its references *before* reporting back;
//! 3. **round isolation** — each task is advanced exactly once per round
//!    (a stale or double delivery would show up in the generation count);
//! 4. **swap publication** — after the swap the arenas hold exactly the
//!    values written this round (no torn or skipped slab).
//!
//! This is the loom-style model for the protocol minus the exhaustive
//! scheduler (loom is not a dependency of this workspace); the nightly
//! ThreadSanitizer CI job runs this same test with a data-race detector
//! underneath.

#![forbid(unsafe_code)]

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

/// Stand-in for `StepRead`: the round tag plus `Arc` handles onto the
/// persistent read arenas (shared, immutable during a round).
struct Read {
    round: u64,
    arenas: Vec<Arc<Vec<u64>>>,
}

/// Stand-in for `SlabTask`: the double-buffered write side of one slab,
/// owned by exactly one party at a time.
struct Task {
    slab: usize,
    generation: u64,
    buf: Vec<u64>,
}

struct Job {
    read: Arc<Read>,
    task: Task,
}

const WORKERS: usize = 3;
const SLABS: usize = 8; // over-decomposed: ~2 slabs per executor
const ROUNDS: u64 = 400;
const PAYLOAD: usize = 64;

/// The model kernel both the caller and the workers run: next state =
/// current arena value + round (so arena contents after round `R` must be
/// `1 + 2 + … + R`, which pins the swap publication).
fn fill(read: &Read, task: &mut Task) {
    task.generation += 1;
    assert_eq!(
        task.generation, read.round,
        "task {} advanced out of lockstep with the round",
        task.slab
    );
    let src = &read.arenas[task.slab];
    for (d, &s) in task.buf.iter_mut().zip(src.iter()) {
        *d = s.wrapping_add(read.round);
    }
}

#[test]
fn buffer_swap_rounds_conserve_tasks_and_release_reads() {
    let (result_tx, result_rx) = mpsc::channel::<Task>();
    let mut job_txs = Vec::with_capacity(WORKERS);
    let mut handles = Vec::with_capacity(WORKERS);
    for w in 0..WORKERS {
        let (tx, rx) = mpsc::channel::<Job>();
        let result_tx = result_tx.clone();
        handles.push(thread::spawn(move || {
            // Deterministic per-worker jitter (LCG — no ambient entropy)
            // to vary the interleaving between rounds.
            let mut lcg: u64 = 0x9E37_79B9_7F4A_7C15 ^ (w as u64 + 1);
            while let Ok(Job { read, mut task }) = rx.recv() {
                fill(&read, &mut task);
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if lcg % 3 == 0 {
                    thread::yield_now();
                }
                // The protocol's load-bearing line: release the shared
                // read state BEFORE reporting back, so the caller's
                // `Arc::try_unwrap` / `Arc::get_mut` can reclaim it.
                drop(read);
                if result_tx.send(task).is_err() {
                    break;
                }
            }
        }));
        job_txs.push(tx);
    }

    // Persistent read arenas + one write task per slab, exactly the
    // engine's layout.
    let mut arenas: Vec<Arc<Vec<u64>>> = (0..SLABS).map(|_| Arc::new(vec![0; PAYLOAD])).collect();
    let mut tasks: Vec<Option<Task>> = (0..SLABS)
        .map(|slab| Some(Task { slab, generation: 0, buf: vec![0; PAYLOAD] }))
        .collect();

    for round in 1..=ROUNDS {
        let read = Arc::new(Read { round, arenas: arenas.clone() });
        // Round-varying assignment over caller + workers, like the
        // engine's per-step sender-weighted binning: bin 0 is the caller.
        let bin_of = |slab: usize| (slab + round as usize) % (WORKERS + 1);
        let mut outstanding = 0;
        for k in 0..SLABS {
            let b = bin_of(k);
            if b == 0 {
                continue;
            }
            let task = tasks[k].take().expect("task checked out twice");
            job_txs[b - 1]
                .send(Job { read: Arc::clone(&read), task })
                .expect("worker exited");
            outstanding += 1;
        }
        for k in 0..SLABS {
            if bin_of(k) == 0 {
                let mut own = tasks[k].take().expect("task 0 checked out twice");
                fill(&read, &mut own);
                tasks[k] = Some(own);
            }
        }
        for _ in 0..outstanding {
            let task = result_rx.recv().expect("worker panicked");
            let k = task.slab;
            assert!(tasks[k].is_none(), "task {k} returned twice in one round");
            tasks[k] = Some(task);
        }
        // Property 2a: every worker released the shared handle before its
        // result arrived, so the caller's reference is the only one left.
        let read = Arc::try_unwrap(read)
            .unwrap_or_else(|_| panic!("round {round}: a worker reported before releasing"));
        assert_eq!(read.round, round);
        drop(read); // releases the per-round arena clones
                    // Property 2b + 4: reclaim each arena and publish by buffer swap —
                    // the freshly written buffer becomes the readable state, the old
                    // state becomes the slab's write buffer for the next round.
        for (k, arena) in arenas.iter_mut().enumerate() {
            let task = tasks[k].as_mut().expect("task missing at publish");
            let cur = Arc::get_mut(arena)
                .unwrap_or_else(|| panic!("round {round}: arena {k} still shared at publish"));
            std::mem::swap(cur, &mut task.buf);
        }
    }

    // Properties 1, 3 and 4, cumulatively: every task advanced exactly
    // once per round, and every published arena slot absorbed every
    // round's increment.
    let expected_sum: u64 = (1..=ROUNDS).sum();
    for task in tasks.iter().map(|t| t.as_ref().expect("task missing at shutdown")) {
        assert_eq!(task.generation, ROUNDS, "task {}", task.slab);
    }
    for (k, arena) in arenas.iter().enumerate() {
        assert!(arena.iter().all(|&v| v == expected_sum), "arena {k}");
    }

    // Shutdown exactly like `WorkerPool::drop`: closing the job channels
    // ends the worker loops; joining must not deadlock.
    drop(job_txs);
    for h in handles {
        h.join().expect("worker panicked during shutdown");
    }
}

/// Shutdown with jobs still in flight must not deadlock or lose a task:
/// the drain pattern the engine relies on when the pool is dropped
/// mid-stream. (Several queued jobs per channel is the steady state now —
/// a worker owns its whole cost-balanced share of the slabs at once.)
#[test]
fn shutdown_with_inflight_jobs_is_clean() {
    let (result_tx, result_rx) = mpsc::channel::<Task>();
    let (tx, rx) = mpsc::channel::<Job>();
    let handle = thread::spawn(move || {
        while let Ok(Job { read, mut task }) = rx.recv() {
            task.generation += read.round;
            drop(read);
            if result_tx.send(task).is_err() {
                break;
            }
        }
    });
    for round in 1..=32u64 {
        let read = Arc::new(Read { round, arenas: Vec::new() });
        tx.send(Job { read, task: Task { slab: 0, generation: 0, buf: vec![] } })
            .expect("worker exited early");
    }
    // Close the job channel with results unread, then drain: all 32 tasks
    // must still come back before the channel disconnects.
    drop(tx);
    let mut seen = 0;
    while let Ok(task) = result_rx.recv() {
        assert!(task.generation > 0);
        seen += 1;
    }
    assert_eq!(seen, 32);
    handle.join().expect("worker panicked");
}
