//! Reproduce Table 1 / Fig. 2: the 3-node worked example of gossiping
//! peer N2's global score to the consensus value 0.2.

use gossiptrust_experiments::figures::table1;
use gossiptrust_experiments::TextTable;

fn main() {
    let (rows, consensus) = table1();
    println!("Table 1 — gossiped scores of the Fig. 2 worked example");
    println!("(step 1 follows the paper's scripted targets; the printed paper");
    println!(" table has typos — we reproduce the self-consistent §4.2 text)\n");
    let mut t = TextTable::new(vec!["step", "node", "x(k)", "w(k)", "beta=x/w"]);
    for r in &rows {
        t.row(vec![
            r.step.to_string(),
            r.node.clone(),
            format!("{:.4}", r.x),
            format!("{:.4}", r.w),
            r.beta.map_or("inf".to_string(), |b| format!("{b:.4}")),
        ]);
    }
    print!("{}", t.render());
    println!("\nconsensus after continued gossip: v2(t+1) = {consensus:.6} (paper: 0.2)");
}
