//! Peer churn: exponential session/offline durations.
//!
//! "Peer joins and leaves an open P2P network dynamically. The system
//! should be adaptive and robust to peer dynamics." (§3). The standard
//! model is alternating renewal: a peer stays online for an
//! exponentially-distributed session, goes offline for an exponential
//! off-time, and repeats.

use crate::event::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Alternating-renewal churn model with exponential phases.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnModel {
    /// Mean online session length in µs.
    pub mean_session: SimTime,
    /// Mean offline period in µs.
    pub mean_offline: SimTime,
}

impl ChurnModel {
    /// Model with the given mean durations (µs), both positive.
    pub fn new(mean_session: SimTime, mean_offline: SimTime) -> Self {
        assert!(mean_session > 0 && mean_offline > 0, "means must be positive");
        ChurnModel { mean_session, mean_offline }
    }

    /// Long-run fraction of time a peer is online.
    pub fn availability(&self) -> f64 {
        self.mean_session as f64 / (self.mean_session + self.mean_offline) as f64
    }

    fn sample_exp<R: Rng + ?Sized>(mean: SimTime, rng: &mut R) -> SimTime {
        // Inverse CDF; clamp u away from 0 to avoid ln(0).
        let u: f64 = rng.random::<f64>().max(1e-12);
        let t = -(u.ln()) * mean as f64;
        t.round().max(1.0) as SimTime
    }

    /// Sample one online-session duration.
    pub fn sample_session<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        Self::sample_exp(self.mean_session, rng)
    }

    /// Sample one offline-period duration.
    pub fn sample_offline<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        Self::sample_exp(self.mean_offline, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn availability_formula() {
        let c = ChurnModel::new(3_000_000, 1_000_000);
        assert!((c.availability() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn session_samples_have_the_right_mean() {
        let c = ChurnModel::new(1_000_000, 500_000);
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 50_000;
        let total: u64 = (0..trials).map(|_| c.sample_session(&mut rng)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 1_000_000.0).abs() / 1_000_000.0 < 0.03, "mean {mean}");
    }

    #[test]
    fn samples_are_positive() {
        let c = ChurnModel::new(10, 10);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            assert!(c.sample_session(&mut rng) >= 1);
            assert!(c.sample_offline(&mut rng) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mean_rejected() {
        let _ = ChurnModel::new(0, 10);
    }
}
