//! # gossiptrust-crypto
//!
//! Message authentication for GossipTrust. The paper's conclusion names
//! "secure communication with identity-based cryptography" as one of the
//! system's three innovations (§7): every gossip message is signed under
//! the sender's *identity*, so reputation data cannot be tampered with or
//! spoofed in transit without any per-pair key exchange.
//!
//! Everything here is built from scratch (no crypto crates are available
//! offline):
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256, validated against the NIST vectors.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104), validated against RFC 4231.
//! * [`ibc`] — an **identity-based signing simulation**: a Private Key
//!   Generator (PKG) derives each node's signing key from a master secret
//!   and the node identity, exactly like an IBC PKG does. Verification is
//!   performed through a [`ibc::Verifier`] capability that stands in for
//!   the public pairing parameters of a real IBE/IBS scheme. The
//!   *semantics* the protocol relies on — only the key holder can produce
//!   a valid tag, any bit flip is detected, keys are bound to identities —
//!   are preserved; the pairing math is not reproduced (documented in
//!   DESIGN.md's substitution table).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hmac;
pub mod ibc;
pub mod sha256;

pub use hmac::hmac_sha256;
pub use ibc::{IdentityKey, Pkg, SignedEnvelope, Verifier};
#[doc(inline)]
pub use sha256::sha256;
pub use sha256::Sha256;
