//! Epoch-convergence trajectory of the reputation service: how quickly do
//! warm-started epochs converge as feedback keeps accumulating?
//!
//! Each epoch folds the grown feedback log and re-aggregates, warm-started
//! from the previous published vector — the serving-layer analogue of the
//! differential-gossip observation that an aggregation seeded with
//! yesterday's answer needs far fewer cycles than one started from
//! uniform. This run prints cycles, gossip steps, epoch wall time, and the
//! L1 drift between consecutive published vectors. Set `GT_QUICK=1` for a
//! reduced-scale run.

use gossiptrust_core::id::NodeId;
use gossiptrust_experiments::{gossip_threads, Scale, TextTable};
use gossiptrust_serve::service::{ReputationService, ServiceConfig};
use gossiptrust_workloads::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scale = Scale::from_env();
    let n = match scale {
        Scale::Paper => 1000,
        Scale::Quick => 120,
    };
    let epochs = match scale {
        Scale::Paper => 8,
        Scale::Quick => 4,
    };
    println!("Service epochs — warm-started convergence trajectory ({scale:?} scale, n = {n})\n");
    println!("gossip threads: {} (override with GT_THREADS)\n", gossip_threads());

    let service = ReputationService::start(ServiceConfig::new(n).with_seed(9));
    let handle = service.handle();
    let zipf = Zipf::new(n, 0.8);
    let mut rng = StdRng::seed_from_u64(17);
    let mut previous = handle.snapshot().vector.clone();

    let mut t = TextTable::new(vec![
        "epoch",
        "events",
        "cycles",
        "gossip steps",
        "wall (ms)",
        "L1 drift",
    ]);
    for _ in 0..epochs {
        // Between epochs, every peer issues a few more Zipf-skewed ratings.
        for rater in 0..n {
            for _ in 0..3 {
                let target = zipf.sample(&mut rng) - 1;
                if target != rater {
                    handle
                        .record(
                            NodeId::from_index(rater),
                            NodeId::from_index(target),
                            1.0 + rng.random::<f64>(),
                        )
                        .expect("in range");
                }
            }
        }
        let outcome = handle.run_epoch_now().expect("epoch loop alive");
        let snapshot = handle.snapshot();
        let drift = snapshot
            .vector
            .l1_distance(&previous)
            .expect("published vectors share n");
        previous = snapshot.vector.clone();
        t.row(vec![
            outcome.epoch.to_string(),
            handle.events_ingested().to_string(),
            outcome.cycles.to_string(),
            outcome.gossip.steps.to_string(),
            format!("{:.1}", outcome.wall_ms),
            format!("{:.2e}", drift),
        ]);
    }
    print!("{}", t.render());
    println!("\nexpected shape: drift shrinks epoch over epoch as the matrix");
    println!("stabilizes, and warm-started cycles stay below the cold-start count.");
    service.shutdown();
}
