//! Gossip-target selection strategies.
//!
//! Algorithm 1/2 say "choose a random node q". In an unstructured overlay
//! the paper allows `q` to be "a neighbor node or any other node"; the
//! default [`UniformChooser`] samples uniformly from the whole id space
//! excluding the sender (Kempe-style uniform gossip). [`ScriptedChooser`]
//! replays a fixed target schedule — used to reproduce the worked example of
//! Fig. 2 / Table 1 exactly.

use rand::Rng;

/// Picks, for a sending node, the gossip target of the current step.
pub trait TargetChooser {
    /// Target for `sender` at gossip step `step` in an `n`-node network.
    ///
    /// Must return a valid id in `0..n`. Returning `sender` itself is
    /// allowed (the send then degenerates to a no-op merge-back), but the
    /// stock choosers avoid it.
    fn choose<R: Rng + ?Sized>(&self, sender: usize, step: usize, n: usize, rng: &mut R) -> usize;
}

/// Uniform gossip: target drawn uniformly from all nodes except the sender.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformChooser;

impl TargetChooser for UniformChooser {
    fn choose<R: Rng + ?Sized>(&self, sender: usize, _step: usize, n: usize, rng: &mut R) -> usize {
        debug_assert!(n >= 2, "uniform chooser needs at least two nodes");
        // Sample from n-1 candidates and skip over the sender.
        let raw = rng.random_range(0..n - 1);
        if raw >= sender {
            raw + 1
        } else {
            raw
        }
    }
}

/// Replays a fixed schedule: `targets[step][sender]`.
///
/// Steps beyond the schedule fall back to uniform sampling so a scripted
/// prefix can be followed by random convergence.
#[derive(Clone, Debug)]
pub struct ScriptedChooser {
    targets: Vec<Vec<usize>>,
}

impl ScriptedChooser {
    /// Create from a per-step, per-sender target table.
    pub fn new(targets: Vec<Vec<usize>>) -> Self {
        ScriptedChooser { targets }
    }

    /// Number of scripted steps.
    pub fn scripted_steps(&self) -> usize {
        self.targets.len()
    }
}

impl TargetChooser for ScriptedChooser {
    fn choose<R: Rng + ?Sized>(&self, sender: usize, step: usize, n: usize, rng: &mut R) -> usize {
        match self.targets.get(step) {
            Some(row) => {
                let t = row[sender];
                assert!(t < n, "scripted target {t} out of range (n={n})");
                t
            }
            None => UniformChooser.choose(sender, step, n, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_never_picks_sender() {
        let mut rng = StdRng::seed_from_u64(1);
        for sender in 0..5 {
            for _ in 0..200 {
                let t = UniformChooser.choose(sender, 0, 5, &mut rng);
                assert!(t < 5);
                assert_ne!(t, sender);
            }
        }
    }

    #[test]
    fn uniform_covers_all_other_nodes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[UniformChooser.choose(3, 0, 6, &mut rng)] = true;
        }
        for (i, &s) in seen.iter().enumerate() {
            assert_eq!(s, i != 3, "node {i}");
        }
    }

    #[test]
    fn uniform_is_roughly_unbiased() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 4;
        let trials = 30_000;
        let mut counts = [0usize; 4];
        for _ in 0..trials {
            counts[UniformChooser.choose(0, 0, n, &mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        for &c in &counts[1..] {
            let p = c as f64 / trials as f64;
            assert!((p - 1.0 / 3.0).abs() < 0.02, "p={p}");
        }
    }

    #[test]
    fn scripted_replays_then_falls_back() {
        let chooser = ScriptedChooser::new(vec![vec![2, 0, 0]]);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(chooser.choose(0, 0, 3, &mut rng), 2);
        assert_eq!(chooser.choose(1, 0, 3, &mut rng), 0);
        assert_eq!(chooser.choose(2, 0, 3, &mut rng), 0);
        // Step 1 is unscripted → any valid non-self target.
        let t = chooser.choose(0, 1, 3, &mut rng);
        assert!(t == 1 || t == 2);
        assert_eq!(chooser.scripted_steps(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scripted_rejects_bad_target() {
        let chooser = ScriptedChooser::new(vec![vec![9, 0, 0]]);
        let mut rng = StdRng::seed_from_u64(5);
        let _ = chooser.choose(0, 0, 3, &mut rng);
    }
}
