//! A small, self-contained Rust lexer.
//!
//! gt-lint works on token streams, not text: comments and string literals
//! are classified (so `"env::var"` inside a doc string never trips the
//! env-var rule), float literals are distinguished from integers and from
//! range/field syntax (`1..2`, `x.0`), and multi-character operators are
//! munched maximally so `==` is one token the rules can anchor on.
//!
//! The lexer is intentionally lossless about *lines* (every token carries
//! its 1-based line) and lossy about everything the rules do not need
//! (whitespace, comment text, exact string contents).

/// What kind of token this is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `mod`, `r#match`).
    Ident,
    /// Integer literal (`3`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2.`, `1e-3`, `3f64`).
    Float,
    /// String, raw-string, byte-string or C-string literal.
    Str,
    /// Character literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation / operator, maximal munch (`==`, `::`, `..=`, `{`).
    Punct,
}

/// One token: kind, text, and the 1-based source line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// The token's text (for `Str` the raw contents are replaced by `""`).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token {
    /// True if this is punctuation with exactly this text.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }

    /// True if this is an identifier with exactly this text.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == id
    }
}

/// Multi-character operators, longest first (maximal munch).
const PUNCTS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "::", "->", "=>", "..", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Tokenize `source`, skipping whitespace and comments.
///
/// The lexer is forgiving: on malformed input (unterminated string, stray
/// byte) it emits what it can and moves on — gt-lint runs on code that
/// rustc already accepts, so recovery paths are never load-bearing.
pub fn tokenize(source: &str) -> Vec<Token> {
    let b = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        // Newlines & whitespace.
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < b.len() {
            if b[i + 1] == b'/' {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if b[i + 1] == b'*' {
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                continue;
            }
        }
        // Raw / byte / C strings: r"", r#""#, b"", br"", c"", etc.
        if let Some((len, newlines)) = scan_string_prefix(&b[i..]) {
            tokens.push(Token { kind: TokenKind::Str, text: String::new(), line });
            line += newlines;
            i += len;
            continue;
        }
        // Raw identifiers r#foo (after raw strings so r#"..." wins).
        if c == b'r'
            && i + 1 < b.len()
            && b[i + 1] == b'#'
            && i + 2 < b.len()
            && is_ident_start(b[i + 2])
        {
            let start = i + 2;
            let mut j = start;
            while j < b.len() && is_ident_continue(b[j]) {
                j += 1;
            }
            tokens.push(Token { kind: TokenKind::Ident, text: source[start..j].to_string(), line });
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if let Some((len, is_char)) = scan_quote(&b[i..]) {
                if is_char {
                    tokens.push(Token { kind: TokenKind::Char, text: String::new(), line });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: source[i..i + len].to_string(),
                        line,
                    });
                }
                i += len;
                continue;
            }
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            tokens.push(Token { kind: TokenKind::Ident, text: source[start..i].to_string(), line });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let (len, is_float) = scan_number(&b[i..]);
            tokens.push(Token {
                kind: if is_float {
                    TokenKind::Float
                } else {
                    TokenKind::Int
                },
                text: source[i..i + len].to_string(),
                line,
            });
            i += len;
            continue;
        }
        // Punctuation, maximal munch.
        let rest = &source[i..];
        if let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) {
            tokens.push(Token { kind: TokenKind::Punct, text: (*p).to_string(), line });
            i += p.len();
            continue;
        }
        tokens.push(Token { kind: TokenKind::Punct, text: (c as char).to_string(), line });
        i += 1;
    }
    tokens
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// If `b` starts a (possibly raw/byte/C) string literal, return its total
/// byte length and the number of newlines it spans.
fn scan_string_prefix(b: &[u8]) -> Option<(usize, u32)> {
    // Optional prefix letters before the quote / raw marker.
    let mut j = 0usize;
    if j < b.len() && (b[j] == b'b' || b[j] == b'c') {
        j += 1;
    }
    let raw = j < b.len() && b[j] == b'r';
    if raw {
        j += 1;
        let mut hashes = 0usize;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j >= b.len() || b[j] != b'"' {
            return None;
        }
        j += 1;
        let mut newlines = 0u32;
        while j < b.len() {
            if b[j] == b'\n' {
                newlines += 1;
            }
            if b[j] == b'"' {
                let mut k = 0usize;
                while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == b'#' {
                    k += 1;
                }
                if k == hashes {
                    return Some((j + 1 + hashes, newlines));
                }
            }
            j += 1;
        }
        return Some((b.len(), newlines));
    }
    if j >= b.len() || b[j] != b'"' {
        return None;
    }
    j += 1;
    let mut newlines = 0u32;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return Some((j + 1, newlines)),
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    Some((b.len(), newlines))
}

/// Disambiguate a char literal from a lifetime. `b` starts with `'`.
/// Returns `(length, is_char)`.
fn scan_quote(b: &[u8]) -> Option<(usize, bool)> {
    if b.len() < 2 {
        return None;
    }
    // Escaped char: '\x'
    if b[1] == b'\\' {
        let mut j = 2usize;
        while j < b.len() && b[j] != b'\'' {
            if b[j] == b'\\' {
                j += 1;
            }
            j += 1;
        }
        return Some((j + 1, true));
    }
    // 'c' — a single non-quote char followed by a closing quote.
    if b[1] != b'\'' {
        // Punctuation char literal like '=' or ' ' (not an ident char).
        if !is_ident_continue(b[1]) {
            if b.len() >= 3 && b[2] == b'\'' {
                return Some((3, true));
            }
            return None;
        }
        // Ident-ish run: either a char ('a', possibly multi-byte 'é') when a
        // closing quote follows, else a lifetime ('a, 'static).
        let mut j = 1usize;
        while j < b.len() && is_ident_continue(b[j]) {
            j += 1;
        }
        if j < b.len() && b[j] == b'\'' {
            return Some((j + 1, true));
        }
        return Some((j, false));
    }
    None
}

/// Scan a numeric literal; `b[0]` is a digit. Returns `(length, is_float)`.
fn scan_number(b: &[u8]) -> (usize, bool) {
    let mut j = 0usize;
    // Radix prefixes are always integers.
    if b[0] == b'0' && b.len() > 1 && matches!(b[1], b'x' | b'o' | b'b') {
        j = 2;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return (j, false);
    }
    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
        j += 1;
    }
    let mut is_float = false;
    // Fractional part — but not `..` (range) and not `.ident` (method/field).
    if j < b.len() && b[j] == b'.' {
        let next = b.get(j + 1).copied();
        let next_is_range = next == Some(b'.');
        let next_is_ident = next.is_some_and(is_ident_start);
        if !next_is_range && !next_is_ident {
            is_float = true;
            j += 1;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        }
    }
    // Exponent.
    if j < b.len() && (b[j] == b'e' || b[j] == b'E') {
        let mut k = j + 1;
        if k < b.len() && (b[k] == b'+' || b[k] == b'-') {
            k += 1;
        }
        if k < b.len() && b[k].is_ascii_digit() {
            is_float = true;
            j = k;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        }
    }
    // Suffix (u32, f64, ...). A float suffix forces float-ness.
    if j < b.len() && is_ident_start(b[j]) {
        let start = j;
        while j < b.len() && is_ident_continue(b[j]) {
            j += 1;
        }
        let suffix = &b[start..j];
        if suffix == b"f32" || suffix == b"f64" {
            is_float = true;
        }
    }
    (j, is_float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn floats_vs_ints_vs_ranges() {
        let t = kinds("1.0 2. 1e-3 3f64 7 0xFF 1..2 4_000 2.5e10");
        assert_eq!(t[0].0, TokenKind::Float);
        assert_eq!(t[1].0, TokenKind::Float);
        assert_eq!(t[2].0, TokenKind::Float);
        assert_eq!(t[3].0, TokenKind::Float);
        assert_eq!(t[4].0, TokenKind::Int);
        assert_eq!(t[5].0, TokenKind::Int);
        // 1..2 lexes as Int, Punct(..), Int
        assert_eq!(t[6], (TokenKind::Int, "1".into()));
        assert_eq!(t[7], (TokenKind::Punct, "..".into()));
        assert_eq!(t[8], (TokenKind::Int, "2".into()));
        assert_eq!(t[9].0, TokenKind::Int);
        assert_eq!(t[10].0, TokenKind::Float);
    }

    #[test]
    fn method_on_int_literal_is_not_float() {
        let t = kinds("1.max(2)");
        assert_eq!(t[0], (TokenKind::Int, "1".into()));
        assert_eq!(t[1], (TokenKind::Punct, ".".into()));
        assert_eq!(t[2], (TokenKind::Ident, "max".into()));
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let t = kinds("a // x == 1.0\nb /* y != 2.0 */ c \"z == 3.0\" d");
        let idents: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(idents, ["a", "b", "c", "d"]);
        assert!(t.iter().all(|(k, _)| *k != TokenKind::Float));
    }

    #[test]
    fn raw_strings_and_nested_comments() {
        let t = kinds("r#\"a == 1.0 \"#, x /* outer /* inner */ still */ y");
        assert_eq!(t[0].0, TokenKind::Str);
        let idents: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(idents, ["x", "y"]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let t = kinds("'a 'static 'x' '\\n' '=' ");
        assert_eq!(t[0].0, TokenKind::Lifetime);
        assert_eq!(t[1].0, TokenKind::Lifetime);
        assert_eq!(t[2].0, TokenKind::Char);
        assert_eq!(t[3].0, TokenKind::Char);
        assert_eq!(t[4].0, TokenKind::Char);
    }

    #[test]
    fn maximal_munch_operators() {
        let t = kinds("a == b != c ..= d :: e");
        assert!(t[1].1 == "==");
        assert!(t[3].1 == "!=");
        assert!(t[5].1 == "..=");
        assert!(t[7].1 == "::");
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = tokenize("a\nb\n\nc \"multi\nline\" d");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
        assert_eq!(toks[3].line, 4); // the string starts on line 4
        assert_eq!(toks[4].line, 5); // d comes after the embedded newline
    }

    #[test]
    fn raw_identifiers() {
        let t = kinds("r#match r#type");
        assert_eq!(t[0], (TokenKind::Ident, "match".into()));
        assert_eq!(t[1], (TokenKind::Ident, "type".into()));
    }
}
