//! Counting Bloom filter — membership with deletion.
//!
//! Plain Bloom filters cannot forget: once a peer's id is folded into a
//! rank bucket it stays there until the whole bucket is rebuilt. Under
//! churn (peers leaving for good) and rank *demotions* (a peer sliding to
//! a worse bucket after an aggregation round), rebuild-the-world is
//! wasteful. The classic fix is a counting filter: 4-bit counters instead
//! of bits, increment on insert, decrement on remove.
//!
//! Counters saturate at 15 and saturated counters are never decremented
//! (the standard safety rule: decrementing a saturated counter could
//! produce false negatives).

/// Splitmix64 (same probe construction as the plain filter).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

const COUNTER_MAX: u8 = 15;

/// A counting Bloom filter with 4-bit counters (stored one per byte for
/// simplicity of access; the storage ablation accounts for the nibble
/// packing a production build would use).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountingBloomFilter {
    counters: Vec<u8>,
    k: u32,
}

impl CountingBloomFilter {
    /// Filter with `m` counters and `k` probes.
    pub fn new(m: usize, k: u32) -> Self {
        assert!(m > 0, "need at least one counter");
        assert!(k > 0, "need at least one probe");
        CountingBloomFilter { counters: vec![0; m], k }
    }

    /// Filter sized like [`crate::BloomFilter::with_rate`].
    pub fn with_rate(n: usize, p: f64) -> Self {
        assert!(n > 0, "need at least one expected item");
        assert!(p > 0.0 && p < 1.0, "p must be in (0,1)");
        let ln2 = std::f64::consts::LN_2;
        let m = (-(n as f64) * p.ln() / (ln2 * ln2)).ceil().max(64.0) as usize;
        let k = ((m as f64 / n as f64) * ln2).round().max(1.0) as u32;
        CountingBloomFilter::new(m, k)
    }

    /// Number of counters.
    pub fn counters(&self) -> usize {
        self.counters.len()
    }

    /// Effective storage in bytes assuming 4-bit packing.
    pub fn packed_byte_size(&self) -> usize {
        self.counters.len().div_ceil(2)
    }

    fn positions(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let h = mix(key ^ 0xBB67AE8584CAA73B);
        let h1 = h as u32 as u64;
        let h2 = (h >> 32) | 1;
        let m = self.counters.len() as u64;
        (0..self.k as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    /// Insert `key` (counters saturate at 15).
    pub fn insert(&mut self, key: u64) {
        let positions: Vec<usize> = self.positions(key).collect();
        for pos in positions {
            let c = &mut self.counters[pos];
            if *c < COUNTER_MAX {
                *c += 1;
            }
        }
    }

    /// Remove `key`. Only safe for keys actually inserted (removing a
    /// never-inserted key can create false negatives for others — same
    /// contract as every counting filter). Saturated counters stay put.
    pub fn remove(&mut self, key: u64) {
        let positions: Vec<usize> = self.positions(key).collect();
        for pos in positions {
            let c = &mut self.counters[pos];
            if *c > 0 && *c < COUNTER_MAX {
                *c -= 1;
            }
        }
    }

    /// Membership probe (`false` definite, `true` maybe).
    pub fn contains(&self, key: u64) -> bool {
        self.positions(key).all(|pos| self.counters[pos] > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_contains() {
        let mut f = CountingBloomFilter::with_rate(100, 0.01);
        for k in 0..100u64 {
            f.insert(k);
        }
        for k in 0..100u64 {
            assert!(f.contains(k));
        }
    }

    #[test]
    fn remove_forgets_the_key() {
        let mut f = CountingBloomFilter::with_rate(100, 0.01);
        f.insert(7);
        f.insert(8);
        assert!(f.contains(7));
        f.remove(7);
        assert!(!f.contains(7), "removed key must be forgotten");
        assert!(f.contains(8), "other keys survive removal");
    }

    #[test]
    fn interleaved_insert_remove_cycles() {
        let mut f = CountingBloomFilter::with_rate(500, 0.01);
        for round in 0..10u64 {
            for k in 0..200u64 {
                f.insert(round * 1_000 + k);
            }
            for k in 0..200u64 {
                f.remove(round * 1_000 + k);
            }
        }
        // After removing everything, the filter is (essentially) empty.
        let residual = (0..10_000u64).filter(|&k| f.contains(k)).count();
        assert!(residual < 20, "residual membership {residual}");
    }

    #[test]
    fn double_insert_needs_double_remove() {
        let mut f = CountingBloomFilter::new(256, 4);
        f.insert(42);
        f.insert(42);
        f.remove(42);
        assert!(f.contains(42), "one copy still present");
        f.remove(42);
        assert!(!f.contains(42));
    }

    #[test]
    fn saturation_is_sticky() {
        let mut f = CountingBloomFilter::new(64, 2);
        for _ in 0..100 {
            f.insert(1);
        }
        for _ in 0..100 {
            f.remove(1);
        }
        // Counters saturated at 15 and were never decremented: key stays.
        assert!(f.contains(1), "saturated counters must not decrement");
    }

    #[test]
    fn packed_size_is_half_a_byte_per_counter() {
        let f = CountingBloomFilter::new(1001, 4);
        assert_eq!(f.packed_byte_size(), 501);
    }
}
