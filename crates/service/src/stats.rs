//! Service-level counters: epochs, degradations, queries, gossip totals.
//!
//! The gossip totals are built on [`GossipStats::diff`]: the epoch loop
//! captures the persistent engine's monotonic counters before each epoch,
//! diffs them after, and absorbs exactly that epoch's activity here — so
//! the service totals stay correct even though the engine is reused and
//! its own counters never reset.

use gossiptrust_gossip::stats::GossipStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, lock-free service counter block.
///
/// All counters are monotonic; readers may observe a set of counters that
/// straddles an in-flight epoch (e.g. `epochs_attempted` already bumped,
/// `epochs_published` not yet), which is fine for monitoring — only the
/// `SnapshotCell` carries consistency guarantees.
#[derive(Debug, Default)]
pub struct ServiceStats {
    epochs_attempted: AtomicU64,
    epochs_published: AtomicU64,
    /// Epochs that failed or did not converge and therefore left the
    /// previous snapshot serving — the graceful-degradation counter.
    epochs_degraded: AtomicU64,
    queries_served: AtomicU64,
    gossip_steps: AtomicU64,
    gossip_messages_sent: AtomicU64,
    gossip_messages_dropped: AtomicU64,
    gossip_triplets_sent: AtomicU64,
    gossip_bytes_streamed: AtomicU64,
    /// Wall time of the most recent epoch, in microseconds.
    last_epoch_wall_us: AtomicU64,
}

/// A plain, copyable view of [`ServiceStats`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StatsReport {
    /// Epochs the loop started.
    pub epochs_attempted: u64,
    /// Epochs that published a new snapshot.
    pub epochs_published: u64,
    /// Epochs that degraded (failed/non-converged; previous snapshot kept).
    pub epochs_degraded: u64,
    /// Queries answered across all front-ends.
    pub queries_served: u64,
    /// Total gossip activity across all epochs (sum of per-epoch diffs).
    pub gossip: GossipStats,
    /// Wall time of the most recent epoch in milliseconds.
    pub last_epoch_wall_ms: f64,
}

impl ServiceStats {
    /// Fresh, all-zero counter block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Note that an epoch is starting.
    pub fn note_epoch_started(&self) {
        self.epochs_attempted.fetch_add(1, Ordering::Relaxed);
    }

    /// Note a finished epoch: `published` says whether a new snapshot went
    /// live; `delta` is that epoch's gossip activity (an engine counter
    /// diff), which is absorbed into the service totals either way — a
    /// degraded epoch still burned the messages.
    pub fn note_epoch_finished(&self, published: bool, delta: &GossipStats, wall_ms: f64) {
        if published {
            self.epochs_published.fetch_add(1, Ordering::Relaxed);
        } else {
            self.epochs_degraded.fetch_add(1, Ordering::Relaxed);
        }
        self.gossip_steps.fetch_add(delta.steps, Ordering::Relaxed);
        self.gossip_messages_sent
            .fetch_add(delta.messages_sent, Ordering::Relaxed);
        self.gossip_messages_dropped
            .fetch_add(delta.messages_dropped, Ordering::Relaxed);
        self.gossip_triplets_sent
            .fetch_add(delta.triplets_sent, Ordering::Relaxed);
        self.gossip_bytes_streamed
            .fetch_add(delta.bytes_streamed, Ordering::Relaxed);
        self.last_epoch_wall_us
            .store((wall_ms * 1_000.0) as u64, Ordering::Relaxed);
    }

    /// Note one answered query.
    pub fn note_query(&self) {
        self.queries_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Degraded-epoch count (the graceful-degradation counter).
    pub fn epochs_degraded(&self) -> u64 {
        self.epochs_degraded.load(Ordering::Relaxed)
    }

    /// Published-epoch count.
    pub fn epochs_published(&self) -> u64 {
        self.epochs_published.load(Ordering::Relaxed)
    }

    /// Queries answered so far.
    pub fn queries_served(&self) -> u64 {
        self.queries_served.load(Ordering::Relaxed)
    }

    /// Copy the counters into a plain report.
    pub fn report(&self) -> StatsReport {
        StatsReport {
            epochs_attempted: self.epochs_attempted.load(Ordering::Relaxed),
            epochs_published: self.epochs_published.load(Ordering::Relaxed),
            epochs_degraded: self.epochs_degraded.load(Ordering::Relaxed),
            queries_served: self.queries_served.load(Ordering::Relaxed),
            gossip: GossipStats {
                steps: self.gossip_steps.load(Ordering::Relaxed),
                messages_sent: self.gossip_messages_sent.load(Ordering::Relaxed),
                messages_dropped: self.gossip_messages_dropped.load(Ordering::Relaxed),
                triplets_sent: self.gossip_triplets_sent.load(Ordering::Relaxed),
                bytes_streamed: self.gossip_bytes_streamed.load(Ordering::Relaxed),
            },
            last_epoch_wall_ms: self.last_epoch_wall_us.load(Ordering::Relaxed) as f64 / 1_000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_accounting_splits_published_and_degraded() {
        let stats = ServiceStats::new();
        let delta = GossipStats {
            steps: 10,
            messages_sent: 20,
            messages_dropped: 1,
            triplets_sent: 200,
            bytes_streamed: 4_000,
        };
        stats.note_epoch_started();
        stats.note_epoch_finished(true, &delta, 1.5);
        stats.note_epoch_started();
        stats.note_epoch_finished(false, &delta, 2.5);
        let r = stats.report();
        assert_eq!(r.epochs_attempted, 2);
        assert_eq!(r.epochs_published, 1);
        assert_eq!(r.epochs_degraded, 1);
        // Both epochs' gossip activity is absorbed, published or not.
        assert_eq!(r.gossip.steps, 20);
        assert_eq!(r.gossip.messages_sent, 40);
        // The kernel-traffic estimate rides along (and the per-step mean
        // readout with it: 8000 bytes over 20 steps).
        assert_eq!(r.gossip.bytes_streamed, 8_000);
        assert!((r.gossip.bytes_streamed_per_step() - 400.0).abs() < 1e-12);
        assert!((r.last_epoch_wall_ms - 2.5).abs() < 1e-3);
    }

    #[test]
    fn query_counter_accumulates() {
        let stats = ServiceStats::new();
        for _ in 0..7 {
            stats.note_query();
        }
        assert_eq!(stats.queries_served(), 7);
        assert_eq!(stats.report().queries_served, 7);
    }
}
