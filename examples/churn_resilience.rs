//! Peer dynamics: one gossip aggregation cycle in the discrete-event
//! simulator while peers continuously leave and rejoin, at several
//! availability levels.
//!
//! Run with: `cargo run --release --example churn_resilience`

use gossiptrust::prelude::*;
use gossiptrust::simnet::{AsyncGossipSim, ChurnModel, LinkModel, Overlay, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 150;
    let cfg = ScenarioConfig::small(n, ThreatConfig::benign());
    let scenario = Scenario::generate(&cfg, &mut StdRng::seed_from_u64(3));
    let v0 = ReputationVector::uniform(n);
    let prior = Prior::uniform(n);

    // Exact value of this cycle, for the error column.
    let mut exact = vec![0.0; n];
    scenario.honest.transpose_mul(v0.values(), &mut exact).unwrap();
    prior.mix_into(&mut exact, 0.15);

    println!("one gossip cycle over a {n}-peer overlay under churn\n");
    println!("availability  leaves  joins  virtual time  mean rel error");
    println!("----------------------------------------------------------");
    let settings: [(Option<ChurnModel>, &str); 4] = [
        (None, "100%"),
        (Some(ChurnModel::new(95_000_000, 5_000_000)), " 95%"),
        (Some(ChurnModel::new(35_000_000, 5_000_000)), " 87%"),
        (Some(ChurnModel::new(15_000_000, 5_000_000)), " 75%"),
    ];
    for (churn, label) in settings {
        let mut rng = StdRng::seed_from_u64(9);
        let overlay = Overlay::random_k_out(n, 4, &mut rng);
        let config = SimConfig {
            link: LinkModel::fixed(30_000),
            epsilon: 1e-3,
            churn,
            max_time: 120_000_000,
            ..Default::default()
        };
        let mut sim = AsyncGossipSim::new(overlay, config);
        let report = sim.run_cycle(&scenario.honest, &v0, &prior, 0.15, &mut rng);
        let err = exact
            .iter()
            .zip(&report.estimate)
            .map(|(&e, &g)| (e - g).abs() / e.max(1e-12))
            .sum::<f64>()
            / n as f64;
        println!(
            "{label}          {:<6}  {:<5}  {:>7.1} s     {err:.2e}",
            report.metrics.leaves,
            report.metrics.joins,
            report.virtual_time as f64 / 1e6,
        );
    }
    println!("\nmass frozen on offline peers skews the consensus slightly;");
    println!("the estimate degrades gracefully rather than collapsing.");
}
