//! Download-source selection policies.

use gossiptrust_core::id::NodeId;
use gossiptrust_core::vector::ReputationVector;
use rand::Rng;

/// How a requester picks a download source among discovered holders.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// GossipTrust: "the one with the highest global score is selected to
    /// download the file". Ties (e.g. the uniform initial vector) are
    /// broken uniformly at random so the cold-start behaves like NoTrust
    /// rather than biasing toward low node ids.
    HighestReputation,
    /// NoTrust: "randomly selects a node to download the desired file
    /// without considering node reputation".
    Random,
}

impl SelectionPolicy {
    /// Select a source among `holders` (must be non-empty), never the
    /// requester itself if any alternative exists.
    pub fn select<R: Rng + ?Sized>(
        &self,
        holders: &[NodeId],
        requester: NodeId,
        reputation: &ReputationVector,
        rng: &mut R,
    ) -> NodeId {
        assert!(!holders.is_empty(), "selection needs at least one holder");
        let candidates: Vec<NodeId> = {
            let others: Vec<NodeId> = holders.iter().copied().filter(|&h| h != requester).collect();
            if others.is_empty() {
                holders.to_vec()
            } else {
                others
            }
        };
        match self {
            SelectionPolicy::Random => candidates[rng.random_range(0..candidates.len())],
            SelectionPolicy::HighestReputation => {
                let best = candidates
                    .iter()
                    .map(|&h| reputation.score(h))
                    .fold(f64::NEG_INFINITY, f64::max);
                let top: Vec<NodeId> = candidates
                    .iter()
                    .copied()
                    .filter(|&h| reputation.score(h) >= best)
                    .collect();
                top[rng.random_range(0..top.len())]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rep(scores: Vec<f64>) -> ReputationVector {
        ReputationVector::from_weights(scores).unwrap()
    }

    #[test]
    fn highest_reputation_picks_the_top_holder() {
        let v = rep(vec![0.1, 0.5, 0.2, 0.2]);
        let mut rng = StdRng::seed_from_u64(1);
        let holders = [NodeId(0), NodeId(1), NodeId(2)];
        for _ in 0..20 {
            let pick = SelectionPolicy::HighestReputation.select(&holders, NodeId(3), &v, &mut rng);
            assert_eq!(pick, NodeId(1));
        }
    }

    #[test]
    fn ties_are_broken_randomly() {
        let v = rep(vec![0.25; 4]);
        let mut rng = StdRng::seed_from_u64(2);
        let holders = [NodeId(0), NodeId(1), NodeId(2)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(SelectionPolicy::HighestReputation.select(
                &holders,
                NodeId(3),
                &v,
                &mut rng,
            ));
        }
        assert_eq!(seen.len(), 3, "cold-start ties must spread selections");
    }

    #[test]
    fn random_policy_covers_all_holders() {
        let v = rep(vec![0.9, 0.05, 0.05]);
        let mut rng = StdRng::seed_from_u64(3);
        let holders = [NodeId(0), NodeId(1), NodeId(2)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            seen.insert(SelectionPolicy::Random.select(&holders, NodeId(1), &v, &mut rng));
        }
        // Requester N1 is excluded because alternatives exist.
        assert!(seen.contains(&NodeId(0)) && seen.contains(&NodeId(2)));
        assert!(!seen.contains(&NodeId(1)));
    }

    #[test]
    fn requester_allowed_when_sole_holder() {
        let v = rep(vec![0.5, 0.5]);
        let mut rng = StdRng::seed_from_u64(4);
        let pick = SelectionPolicy::Random.select(&[NodeId(0)], NodeId(0), &v, &mut rng);
        assert_eq!(pick, NodeId(0));
    }

    #[test]
    #[should_panic(expected = "at least one holder")]
    fn empty_holders_panics() {
        let v = rep(vec![1.0]);
        let mut rng = StdRng::seed_from_u64(5);
        let _ = SelectionPolicy::Random.select(&[], NodeId(0), &v, &mut rng);
    }
}
