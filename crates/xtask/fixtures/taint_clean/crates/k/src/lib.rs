//! Taint fixture (clean): the clock read is not reachable from the sink.
#![forbid(unsafe_code)]

/// Deterministic sink: pure arithmetic only.
pub fn step_slab() -> u64 {
    helper()
}

fn helper() -> u64 {
    41 + 1
}

/// Off the sink's call graph entirely.
pub fn diagnostics_only() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
