//! System parameters mirroring Table 2 of the paper.

use serde::{Deserialize, Serialize};

/// Strictly parse a positive-integer environment knob.
///
/// Returns `None` when `name` is unset or set to the empty string (shells
/// spell "unset" as `VAR=`), `Some(v)` for a positive integer, and
/// **panics** with a clear message on anything else. Knobs like
/// `GT_THREADS`, `GT_SEEDS` and `GT_EPOCH_MS` route through here: a typo'd
/// value silently falling back to a default is how a pinned 32-thread run
/// quietly becomes a serial one — better to die loudly at startup.
pub fn strict_positive_env(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse::<u64>() {
        Ok(v) if v >= 1 => Some(v),
        Ok(_) => panic!("{name} must be a positive integer (>= 1), got {raw:?}"),
        Err(_) => panic!("{name} must be a positive integer, got {raw:?}"),
    }
}

/// Strictly parse a non-negative-integer environment knob (zero allowed).
///
/// Same contract as [`strict_positive_env`] except that `0` is a valid
/// value — seeds and counters legitimately include zero. Returns `None`
/// when `name` is unset or empty and **panics** on anything that is not a
/// `u64`.
pub fn strict_u64_env(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse::<u64>() {
        Ok(v) => Some(v),
        Err(_) => panic!("{name} must be a non-negative integer, got {raw:?}"),
    }
}

/// Strictly parse a boolean environment knob.
///
/// Returns `None` when `name` is unset or empty, `Some(true)` for
/// `1`/`true`/`yes`, `Some(false)` for `0`/`false`/`no` (all
/// case-insensitive), and **panics** on anything else. Same contract as
/// [`strict_positive_env`]: a typo'd knob must die loudly at startup, not
/// silently fall back to a default.
pub fn strict_bool_env(name: &str) -> Option<bool> {
    let raw = std::env::var(name).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    if ["1", "true", "yes"].iter().any(|t| trimmed.eq_ignore_ascii_case(t)) {
        return Some(true);
    }
    if ["0", "false", "no"].iter().any(|t| trimmed.eq_ignore_ascii_case(t)) {
        return Some(false);
    }
    panic!("{name} must be a boolean (1/true/yes or 0/false/no), got {raw:?}");
}

/// `GT_QUICK`: reduced-scale mode for CI and smoke runs (default: off).
///
/// # Panics
/// Panics when `GT_QUICK` is set to a non-boolean value
/// (see [`strict_bool_env`]).
pub fn quick_mode() -> bool {
    strict_bool_env("GT_QUICK").unwrap_or(false)
}

/// `GT_BENCH_QUICK`: reduced measurement budgets for the benchmark
/// binaries (default: off).
///
/// # Panics
/// Panics when `GT_BENCH_QUICK` is set to a non-boolean value
/// (see [`strict_bool_env`]).
pub fn bench_quick() -> bool {
    strict_bool_env("GT_BENCH_QUICK").unwrap_or(false)
}

/// `GT_TILE`: destination-column tile width (in `f64` elements) of the
/// gossip engine's step kernel (default: 1024, i.e. 8 KiB per streamed
/// array — three hot tiles fit comfortably in an L1d/L2 cache). Results
/// are bit-identical for every width; only wall time changes. Exposed as
/// a knob so cache-odd machines can be tuned without a rebuild.
///
/// # Panics
/// Panics when `GT_TILE` is set to something other than a positive
/// integer (see [`strict_positive_env`]).
pub fn tile_width() -> usize {
    strict_positive_env("GT_TILE").map(|v| v as usize).unwrap_or(1024)
}

/// `GT_N`: network-size override for experiments and service binaries.
///
/// # Panics
/// Panics when `GT_N` is set to something other than a positive integer
/// (see [`strict_positive_env`]).
pub fn network_size_override() -> Option<usize> {
    strict_positive_env("GT_N").map(|v| v as usize)
}

/// Strictly parse a socket-address environment knob.
///
/// Returns `None` when `name` is unset or empty, the trimmed address when
/// it parses as a [`std::net::SocketAddr`], and **panics** on anything
/// else — a malformed address must abort startup, not surface later as a
/// confusing bind error.
pub fn strict_addr_env(name: &str) -> Option<String> {
    let raw = std::env::var(name).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    if trimmed.parse::<std::net::SocketAddr>().is_err() {
        panic!("{name} must be a socket address like 127.0.0.1:7401, got {raw:?}");
    }
    Some(trimmed.to_string())
}

/// `GT_SERVICE_ADDR`: the service's TCP listen address
/// (default `127.0.0.1:7401`).
///
/// # Panics
/// Panics when `GT_SERVICE_ADDR` is set to something that does not parse
/// as a socket address (see [`strict_addr_env`]).
pub fn service_addr() -> String {
    strict_addr_env("GT_SERVICE_ADDR").unwrap_or_else(|| "127.0.0.1:7401".to_string())
}

/// `GT_METRICS_ADDR`: TCP listen address of the Prometheus scrape
/// endpoint (default: unset = scrape listener off). When set, `serve`
/// binds a second listener here that answers any HTTP request with the
/// current metrics exposition — separate from the service port so a
/// scraper never competes with request traffic for connection slots.
///
/// # Panics
/// Panics when `GT_METRICS_ADDR` is set to something that does not parse
/// as a socket address (see [`strict_addr_env`]).
pub fn metrics_addr() -> Option<String> {
    strict_addr_env("GT_METRICS_ADDR")
}

/// `GT_OBS_EVENTS`: capacity of the trace ring buffer, in events
/// (default 4096). When full, the oldest events are evicted (and
/// counted), so a scrape always sees the most recent spans.
///
/// # Panics
/// Panics when `GT_OBS_EVENTS` is set to something other than a positive
/// integer (see [`strict_positive_env`]).
pub fn obs_events() -> usize {
    strict_positive_env("GT_OBS_EVENTS")
        .map(|v| v as usize)
        .unwrap_or(4096)
}

/// `GT_CONN_LIMIT`: maximum concurrent TCP connections the service
/// front-end accepts (default 1024). Connections past the limit are shed
/// with a retriable error line instead of queueing unboundedly.
///
/// # Panics
/// Panics when `GT_CONN_LIMIT` is set to something other than a positive
/// integer (see [`strict_positive_env`]).
pub fn conn_limit() -> usize {
    strict_positive_env("GT_CONN_LIMIT")
        .map(|v| v as usize)
        .unwrap_or(1024)
}

/// `GT_READ_TIMEOUT_MS`: per-request-line read/idle deadline of the TCP
/// front-end, in milliseconds (default 30 000). A connection that does not
/// complete a request line within the deadline (slow-loris) is closed and
/// counted in `conns_timed_out`.
///
/// # Panics
/// Panics when `GT_READ_TIMEOUT_MS` is set to something other than a
/// positive integer (see [`strict_positive_env`]).
pub fn read_timeout_ms() -> u64 {
    strict_positive_env("GT_READ_TIMEOUT_MS").unwrap_or(30_000)
}

/// `GT_EPOCH_DEADLINE_MS`: wall-clock budget of one epoch
/// (fold + aggregate + snapshot build), in milliseconds (default 30 000).
/// An epoch that overruns the budget is abandoned — its result is
/// discarded, the previous snapshot keeps serving and `epochs_overrun`
/// increments.
///
/// # Panics
/// Panics when `GT_EPOCH_DEADLINE_MS` is set to something other than a
/// positive integer (see [`strict_positive_env`]).
pub fn epoch_deadline_ms() -> u64 {
    strict_positive_env("GT_EPOCH_DEADLINE_MS").unwrap_or(30_000)
}

/// `GT_INGEST_QUEUE`: maximum unfolded feedback events the service buffers
/// before load-shedding ingest with a retriable `overloaded` error
/// (default 65 536). The bound is what keeps a write burst from growing
/// memory without limit between epochs.
///
/// # Panics
/// Panics when `GT_INGEST_QUEUE` is set to something other than a positive
/// integer (see [`strict_positive_env`]).
pub fn ingest_queue() -> usize {
    strict_positive_env("GT_INGEST_QUEUE")
        .map(|v| v as usize)
        .unwrap_or(65_536)
}

/// `GT_WAL_DIR`: directory of the feedback write-ahead log (default:
/// unset = WAL off). When set, every acknowledged feedback event is
/// appended to a CRC-framed log before it is applied, and a restarting
/// service replays the log so a crashed node rejoins with its local-trust
/// rows intact.
pub fn wal_dir() -> Option<std::path::PathBuf> {
    match std::env::var("GT_WAL_DIR") {
        Ok(raw) if !raw.trim().is_empty() => Some(std::path::PathBuf::from(raw.trim())),
        _ => None,
    }
}

/// `GT_WAL_GROUP_MAX`: maximum feedback records the WAL writer thread
/// coalesces into one group commit (default 512). A larger group amortizes
/// the `write_all` + `flush` syscall pair over more acknowledgments at the
/// cost of holding early submitters' acks until the group commits.
///
/// # Panics
/// Panics when `GT_WAL_GROUP_MAX` is set to something other than a
/// positive integer (see [`strict_positive_env`]).
pub fn wal_group_max() -> usize {
    strict_positive_env("GT_WAL_GROUP_MAX")
        .map(|v| v as usize)
        .unwrap_or(512)
}

/// `GT_WAL_GROUP_US`: deadline, in microseconds, on how long the WAL
/// writer keeps draining its queue into one group before committing
/// (default 200). The deadline only bites under saturation — a group also
/// commits the moment the queue empties or `GT_WAL_GROUP_MAX` is reached —
/// and bounds how long the earliest submitter in a group waits for its ack.
///
/// # Panics
/// Panics when `GT_WAL_GROUP_US` is set to something other than a
/// positive integer (see [`strict_positive_env`]).
pub fn wal_group_us() -> u64 {
    strict_positive_env("GT_WAL_GROUP_US").unwrap_or(200)
}

/// `GT_CHAOS_SEED`: arm the deterministic fault-injection layer with this
/// RNG seed (default: unset = chaos off). All chaos randomness flows from
/// this one seed — no ambient entropy — so a fault schedule can be
/// replayed exactly.
///
/// # Panics
/// Panics when `GT_CHAOS_SEED` is set to something other than a
/// non-negative integer (see [`strict_u64_env`]).
pub fn chaos_seed() -> Option<u64> {
    strict_u64_env("GT_CHAOS_SEED")
}

/// GossipTrust system parameters.
///
/// The default values reproduce Table 2 of the paper ("Parameters and Default
/// Values used"):
///
/// | symbol   | meaning                              | default |
/// |----------|--------------------------------------|---------|
/// | `n`      | number of peers                      | 1000    |
/// | `α`      | greedy factor                        | 0.15    |
/// | `d_max`  | max. peer feedback amount            | 200     |
/// | `d_avg`  | average peer feedback amount         | 20      |
/// | `γ`      | percentage of malicious peers        | 0.20    |
/// | `q`      | max. number of power nodes (1% of n) | 10      |
/// | `δ`      | global aggregation threshold         | 10⁻³    |
/// | `ε`      | gossip error threshold               | 10⁻⁴    |
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Number of peers `n` in the P2P network.
    pub n: usize,
    /// Greedy factor `α`: eagerness of a peer to work with power nodes.
    /// `α = 0` disables power-node mixing entirely.
    pub alpha: f64,
    /// Maximum feedback out-degree `d_max` of any peer.
    pub d_max: usize,
    /// Average feedback out-degree `d_avg` across peers.
    pub d_avg: usize,
    /// Fraction `γ` of malicious peers in the network (0.0..=1.0).
    pub malicious_fraction: f64,
    /// Maximum number of power nodes `q` (the paper uses up to 1% of `n`).
    pub max_power_nodes: usize,
    /// Global aggregation (outer-loop) convergence threshold `δ`.
    pub delta: f64,
    /// Gossip (inner-loop) convergence threshold `ε`.
    pub epsilon: f64,
    /// Hard cap on aggregation cycles. The paper proves `d ≤ ⌈log_b δ⌉`; the
    /// cap only guards against pathological (non-ergodic) inputs.
    pub max_cycles: usize,
    /// Hard cap on gossip steps within one cycle (`g = O(log₂ n)` expected).
    pub max_gossip_steps: usize,
    /// Number of consecutive below-`ε` steps the inner loop requires before
    /// declaring convergence. The paper checks a single step; a small
    /// patience makes the detector robust to transient plateaus while the
    /// consensus factor `w` is still spreading.
    pub gossip_patience: usize,
    /// Worker threads for the gossip engine's parallel step. `0` (the
    /// default) means *auto*: honor the `GT_THREADS` environment variable
    /// if set, else use the machine's available parallelism. See
    /// [`Params::resolved_threads`]. Results are independent of this
    /// setting — the engine's parallel path is bit-identical to its
    /// sequential path.
    #[serde(default)]
    pub threads: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 1000,
            alpha: 0.15,
            d_max: 200,
            d_avg: 20,
            malicious_fraction: 0.20,
            max_power_nodes: 10,
            delta: 1e-3,
            epsilon: 1e-4,
            max_cycles: 200,
            max_gossip_steps: 10_000,
            gossip_patience: 2,
            threads: 0,
        }
    }
}

impl Params {
    /// Parameters for a network of `n` peers, everything else at Table 2
    /// defaults (with `q` scaled to 1% of `n`, minimum 1).
    pub fn for_network(n: usize) -> Self {
        Params { n, max_power_nodes: (n / 100).max(1), ..Params::default() }
    }

    /// Builder-style setter for the greedy factor `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Builder-style setter for the gossip threshold `ε`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Builder-style setter for the aggregation threshold `δ`.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Builder-style setter for the malicious fraction `γ`.
    pub fn with_malicious_fraction(mut self, gamma: f64) -> Self {
        self.malicious_fraction = gamma;
        self
    }

    /// Builder-style setter for the gossip worker thread count
    /// (`0` = auto, see [`Params::resolved_threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Resolve the effective gossip worker thread count: an explicit
    /// [`Params::threads`] wins; otherwise the `GT_THREADS` environment
    /// variable; otherwise the machine's available parallelism.
    ///
    /// # Panics
    ///
    /// Panics when `GT_THREADS` is set to something other than a positive
    /// integer (see [`strict_positive_env`]) — a malformed knob must not
    /// silently degrade to the fallback.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Some(t) = strict_positive_env("GT_THREADS") {
            return t as usize;
        }
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    }

    /// Validate parameter domains; returns a human-readable violation if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 {
            return Err("n must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(format!("alpha must be in [0,1], got {}", self.alpha));
        }
        if !(0.0..=1.0).contains(&self.malicious_fraction) {
            return Err(format!(
                "malicious_fraction must be in [0,1], got {}",
                self.malicious_fraction
            ));
        }
        if self.d_avg > self.d_max {
            return Err(format!("d_avg ({}) must not exceed d_max ({})", self.d_avg, self.d_max));
        }
        if self.delta <= 0.0 || self.epsilon <= 0.0 {
            return Err("delta and epsilon must be positive".into());
        }
        if self.gossip_patience == 0 {
            return Err("gossip_patience must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Asserts that `Params::default()` mirrors Table 2 of the paper exactly.
    #[test]
    fn defaults_mirror_table_2() {
        let p = Params::default();
        assert_eq!(p.n, 1000);
        assert_eq!(p.alpha, 0.15);
        assert_eq!(p.d_max, 200);
        assert_eq!(p.d_avg, 20);
        assert_eq!(p.malicious_fraction, 0.20);
        assert_eq!(p.max_power_nodes, 10); // 1% of 1000
        assert_eq!(p.delta, 1e-3);
        assert_eq!(p.epsilon, 1e-4);
    }

    #[test]
    fn for_network_scales_power_nodes() {
        assert_eq!(Params::for_network(500).max_power_nodes, 5);
        assert_eq!(Params::for_network(50).max_power_nodes, 1);
        assert_eq!(Params::for_network(10_000).max_power_nodes, 100);
    }

    #[test]
    fn default_params_validate() {
        assert!(Params::default().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_domains() {
        assert!(Params { n: 0, ..Params::default() }.validate().is_err());
        assert!(Params::default().with_alpha(1.5).validate().is_err());
        assert!(Params::default().with_alpha(-0.1).validate().is_err());
        assert!(Params::default().with_malicious_fraction(2.0).validate().is_err());
        assert!(Params { d_avg: 300, ..Params::default() }.validate().is_err());
        assert!(Params::default().with_delta(0.0).validate().is_err());
        assert!(Params::default().with_epsilon(-1.0).validate().is_err());
        assert!(Params { gossip_patience: 0, ..Params::default() }.validate().is_err());
    }

    #[test]
    fn explicit_threads_win_resolution() {
        // An explicit setting bypasses env/machine lookup entirely.
        assert_eq!(Params::default().with_threads(3).resolved_threads(), 3);
        // Auto mode resolves to *something* usable.
        assert!(Params::default().resolved_threads() >= 1);
    }

    #[test]
    fn threads_default_is_auto() {
        // 0 = auto; `#[serde(default)]` keeps configs written before the
        // knob existed deserializable.
        assert_eq!(Params::default().threads, 0);
        assert_eq!(Params::for_network(500).threads, 0);
    }

    #[test]
    fn strict_env_accepts_positive_integers() {
        // Unique var names per case: the environment is process-global and
        // tests run concurrently, so each test owns its own variable.
        std::env::set_var("GT_TEST_STRICT_OK", "12");
        assert_eq!(strict_positive_env("GT_TEST_STRICT_OK"), Some(12));
        std::env::set_var("GT_TEST_STRICT_WS", "  3 ");
        assert_eq!(strict_positive_env("GT_TEST_STRICT_WS"), Some(3));
    }

    #[test]
    fn strict_env_treats_unset_and_empty_as_none() {
        assert_eq!(strict_positive_env("GT_TEST_STRICT_UNSET"), None);
        std::env::set_var("GT_TEST_STRICT_EMPTY", "");
        assert_eq!(strict_positive_env("GT_TEST_STRICT_EMPTY"), None);
    }

    #[test]
    #[should_panic(expected = "GT_TEST_STRICT_WORD must be a positive integer")]
    fn strict_env_panics_on_malformed_value() {
        std::env::set_var("GT_TEST_STRICT_WORD", "four");
        strict_positive_env("GT_TEST_STRICT_WORD");
    }

    #[test]
    #[should_panic(expected = "GT_TEST_STRICT_ZERO must be a positive integer")]
    fn strict_env_panics_on_zero() {
        std::env::set_var("GT_TEST_STRICT_ZERO", "0");
        strict_positive_env("GT_TEST_STRICT_ZERO");
    }

    #[test]
    #[should_panic(expected = "GT_TEST_STRICT_NEG must be a positive integer")]
    fn strict_env_panics_on_negative() {
        std::env::set_var("GT_TEST_STRICT_NEG", "-2");
        strict_positive_env("GT_TEST_STRICT_NEG");
    }

    #[test]
    fn strict_bool_env_parses_both_spellings() {
        std::env::set_var("GT_TEST_BOOL_ONE", "1");
        assert_eq!(strict_bool_env("GT_TEST_BOOL_ONE"), Some(true));
        std::env::set_var("GT_TEST_BOOL_TRUE", " True ");
        assert_eq!(strict_bool_env("GT_TEST_BOOL_TRUE"), Some(true));
        std::env::set_var("GT_TEST_BOOL_ZERO", "0");
        assert_eq!(strict_bool_env("GT_TEST_BOOL_ZERO"), Some(false));
        std::env::set_var("GT_TEST_BOOL_NO", "no");
        assert_eq!(strict_bool_env("GT_TEST_BOOL_NO"), Some(false));
        assert_eq!(strict_bool_env("GT_TEST_BOOL_UNSET"), None);
        std::env::set_var("GT_TEST_BOOL_EMPTY", "");
        assert_eq!(strict_bool_env("GT_TEST_BOOL_EMPTY"), None);
    }

    #[test]
    #[should_panic(expected = "GT_TEST_BOOL_BAD must be a boolean")]
    fn strict_bool_env_panics_on_garbage() {
        std::env::set_var("GT_TEST_BOOL_BAD", "quick");
        strict_bool_env("GT_TEST_BOOL_BAD");
    }

    #[test]
    fn service_addr_defaults_without_env() {
        // The GT_SERVICE_ADDR-set cases cannot be exercised here without
        // racing other tests on the process-global environment; the strict
        // parse path shares its shape with strict_bool_env above.
        if std::env::var("GT_SERVICE_ADDR").is_err() {
            assert_eq!(service_addr(), "127.0.0.1:7401");
        }
    }

    #[test]
    fn strict_u64_env_accepts_zero() {
        std::env::set_var("GT_TEST_U64_ZERO", "0");
        assert_eq!(strict_u64_env("GT_TEST_U64_ZERO"), Some(0));
        std::env::set_var("GT_TEST_U64_BIG", "18446744073709551615");
        assert_eq!(strict_u64_env("GT_TEST_U64_BIG"), Some(u64::MAX));
        assert_eq!(strict_u64_env("GT_TEST_U64_UNSET"), None);
        std::env::set_var("GT_TEST_U64_EMPTY", " ");
        assert_eq!(strict_u64_env("GT_TEST_U64_EMPTY"), None);
    }

    #[test]
    #[should_panic(expected = "GT_TEST_U64_BAD must be a non-negative integer")]
    fn strict_u64_env_panics_on_garbage() {
        std::env::set_var("GT_TEST_U64_BAD", "-7");
        strict_u64_env("GT_TEST_U64_BAD");
    }

    #[test]
    fn robustness_knobs_have_documented_defaults() {
        // These knobs are unset in the test environment (tier-1 does not
        // export them), so the documented defaults must come back.
        if std::env::var("GT_CONN_LIMIT").is_err() {
            assert_eq!(conn_limit(), 1024);
        }
        if std::env::var("GT_READ_TIMEOUT_MS").is_err() {
            assert_eq!(read_timeout_ms(), 30_000);
        }
        if std::env::var("GT_EPOCH_DEADLINE_MS").is_err() {
            assert_eq!(epoch_deadline_ms(), 30_000);
        }
        if std::env::var("GT_INGEST_QUEUE").is_err() {
            assert_eq!(ingest_queue(), 65_536);
        }
        if std::env::var("GT_WAL_DIR").is_err() {
            assert_eq!(wal_dir(), None);
        }
        if std::env::var("GT_WAL_GROUP_MAX").is_err() {
            assert_eq!(wal_group_max(), 512);
        }
        if std::env::var("GT_WAL_GROUP_US").is_err() {
            assert_eq!(wal_group_us(), 200);
        }
        if std::env::var("GT_CHAOS_SEED").is_err() {
            assert_eq!(chaos_seed(), None);
        }
        if std::env::var("GT_METRICS_ADDR").is_err() {
            assert_eq!(metrics_addr(), None);
        }
        if std::env::var("GT_OBS_EVENTS").is_err() {
            assert_eq!(obs_events(), 4096);
        }
    }

    #[test]
    fn strict_addr_env_accepts_socket_addrs() {
        std::env::set_var("GT_TEST_ADDR_OK", " 0.0.0.0:9100 ");
        assert_eq!(strict_addr_env("GT_TEST_ADDR_OK").as_deref(), Some("0.0.0.0:9100"));
        assert_eq!(strict_addr_env("GT_TEST_ADDR_UNSET"), None);
        std::env::set_var("GT_TEST_ADDR_EMPTY", "");
        assert_eq!(strict_addr_env("GT_TEST_ADDR_EMPTY"), None);
    }

    #[test]
    #[should_panic(expected = "GT_TEST_ADDR_BAD must be a socket address")]
    fn strict_addr_env_panics_on_malformed_address() {
        std::env::set_var("GT_TEST_ADDR_BAD", "localhost"); // no port, no IP
        strict_addr_env("GT_TEST_ADDR_BAD");
    }

    #[test]
    fn builder_setters_compose() {
        let p = Params::for_network(200)
            .with_alpha(0.3)
            .with_epsilon(1e-5)
            .with_delta(1e-4)
            .with_malicious_fraction(0.1);
        assert_eq!(p.n, 200);
        assert_eq!(p.alpha, 0.3);
        assert_eq!(p.epsilon, 1e-5);
        assert_eq!(p.delta, 1e-4);
        assert_eq!(p.malicious_fraction, 0.1);
    }
}
