//! Convenience re-exports: `use gossiptrust_core::prelude::*;`.

pub use crate::convergence::{RatioTracker, VectorConvergence};
pub use crate::error::CoreError;
pub use crate::id::NodeId;
pub use crate::local::LocalTrust;
pub use crate::matrix::{TrustMatrix, TrustMatrixBuilder};
pub use crate::params::Params;
pub use crate::power_iter::{cycle_bound, PowerIteration, SolveOutcome};
pub use crate::power_nodes::{PowerNodeSelector, Prior};
pub use crate::vector::ReputationVector;
