//! Vector gossip: one engine step and a full small aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gossiptrust_core::prelude::*;
use gossiptrust_gossip::cycle::{GossipTrustAggregator, PriorPolicy};
use gossiptrust_gossip::engine::{EngineConfig, VectorGossipEngine};
use gossiptrust_gossip::UniformChooser;
use gossiptrust_workloads::population::ThreatConfig;
use gossiptrust_workloads::scenario::{Scenario, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn matrix_for(n: usize) -> TrustMatrix {
    let cfg = if n >= 500 {
        ScenarioConfig::new(n, ThreatConfig::benign())
    } else {
        ScenarioConfig::small(n, ThreatConfig::benign())
    };
    Scenario::generate(&cfg, &mut StdRng::seed_from_u64(5)).honest
}

fn bench_engine_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector_gossip_step");
    group.sample_size(20);
    for &n in &[100usize, 500, 1_000] {
        let m = matrix_for(n);
        // n² triplets move per step.
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let params = Params::for_network(n);
            let mut engine = VectorGossipEngine::new(n, EngineConfig::from_params(&params, n));
            engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
            let mut rng = StdRng::seed_from_u64(6);
            b.iter(|| {
                black_box(engine.step(&UniformChooser, &mut rng));
            });
        });
    }
    group.finish();
}

fn bench_full_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_aggregation");
    group.sample_size(10);
    for &n in &[100usize, 250] {
        let m = matrix_for(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let agg = GossipTrustAggregator::new(Params::for_network(n))
                .with_prior_policy(PriorPolicy::Fixed(Prior::uniform(n)));
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| black_box(agg.aggregate(&m, &mut rng)));
        });
    }
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group!(name = benches; config = short(); targets = bench_engine_step, bench_full_aggregation);
criterion_main!(benches);
