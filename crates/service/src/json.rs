//! Minimal hand-rolled JSON for the line protocol and bench output.
//!
//! The workspace deliberately avoids a JSON dependency (the bench binaries
//! already hand-roll their output); the service's wire protocol needs only
//! flat objects of scalars, so this module provides exactly that: a small
//! escaping writer ([`JsonObj`]) and a strict parser for one-line flat
//! objects ([`parse_flat`]). Nested objects and arrays are rejected on the
//! read path by design — no request in the protocol needs them, and
//! rejecting them keeps the parser small enough to audit at a glance.

use std::fmt::Write as _;

/// A scalar JSON value as produced by [`parse_flat`].
#[derive(Clone, Debug, PartialEq)]
pub enum JsonScalar {
    /// A JSON string (unescaped).
    Str(String),
    /// A JSON number.
    Num(f64),
    /// `true` or `false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// A parsed flat JSON object: key/value pairs in input order.
pub type FlatObject = Vec<(String, JsonScalar)>;

/// Look up a string field.
pub fn get_str<'a>(obj: &'a FlatObject, key: &str) -> Option<&'a str> {
    obj.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
        JsonScalar::Str(s) => Some(s.as_str()),
        _ => None,
    })
}

/// Look up a numeric field.
pub fn get_num(obj: &FlatObject, key: &str) -> Option<f64> {
    obj.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
        JsonScalar::Num(x) => Some(*x),
        _ => None,
    })
}

/// Look up a numeric field and require it to be a `u32` integer index.
pub fn get_index(obj: &FlatObject, key: &str) -> Option<u32> {
    let x = get_num(obj, key)?;
    if x.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&x) {
        Some(x as u32)
    } else {
        None
    }
}

/// Parse one flat JSON object (`{"k": scalar, ...}`).
///
/// Accepts strings (with the standard escapes), numbers, booleans and
/// `null` as values; rejects nested objects/arrays, duplicate-free-ness is
/// not enforced (later keys simply also appear in the result; lookups take
/// the first).
pub fn parse_flat(input: &str) -> Result<FlatObject, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect_byte(b'{')?;
    let mut out = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect_byte(b':')?;
            p.skip_ws();
            let value = p.parse_scalar()?;
            out.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing bytes after object".into());
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16 + (d as char).to_digit(16).ok_or("bad \\u escape")?;
                        }
                        // Surrogates are rejected rather than paired: no
                        // protocol field carries astral-plane text.
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x20 => return Err("raw control byte in string".into()),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-for-byte;
                    // the input &str guarantees validity.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let seq = self.bytes.get(start..end).ok_or("truncated multibyte")?;
                    out.push_str(
                        std::str::from_utf8(seq).map_err(|_| "invalid utf-8".to_string())?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<JsonScalar, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonScalar::Str(self.parse_string()?)),
            Some(b't') => self.literal("true", JsonScalar::Bool(true)),
            Some(b'f') => self.literal("false", JsonScalar::Bool(false)),
            Some(b'n') => self.literal("null", JsonScalar::Null),
            Some(b'{') | Some(b'[') => Err("nested values are not supported".into()),
            Some(_) => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8".to_string())?;
                text.parse::<f64>()
                    .map(JsonScalar::Num)
                    .map_err(|_| format!("bad number {text:?}"))
            }
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: JsonScalar) -> Result<JsonScalar, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected literal {word}"))
        }
    }
}

/// Incremental writer for one flat JSON object.
///
/// The body holds the rendered object including the opening brace, so
/// [`JsonObj::finish`] only appends the closing brace and hands the buffer
/// back — no copy. [`JsonObj::reuse`] starts an object inside a recycled
/// allocation, which is what the TCP front-end does per connection: one
/// response buffer travels writer → socket → writer for the whole session
/// instead of a fresh `String` per request turn.
#[derive(Debug)]
pub struct JsonObj {
    body: String,
}

impl Default for JsonObj {
    fn default() -> Self {
        Self::reuse(String::new())
    }
}

impl JsonObj {
    /// Start an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start an empty object inside `buf`'s allocation (contents cleared).
    pub fn reuse(mut buf: String) -> Self {
        buf.clear();
        buf.push('{');
        JsonObj { body: buf }
    }

    fn key(&mut self, key: &str) {
        if self.body.len() > 1 {
            self.body.push(',');
        }
        self.body.push('"');
        escape_into(&mut self.body, key);
        self.body.push_str("\":");
    }

    /// Add a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.body.push('"');
        escape_into(&mut self.body, value);
        self.body.push('"');
        self
    }

    /// Add a numeric field. Non-finite values are emitted as `null`
    /// (JSON has no NaN/Inf).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.body, "{value}");
        } else {
            self.body.push_str("null");
        }
        self
    }

    /// Add an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.body, "{value}");
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.body.push_str(if value { "true" } else { "false" });
        self
    }

    /// Add a pre-rendered JSON fragment (e.g. an array built by the caller).
    pub fn raw(mut self, key: &str, fragment: &str) -> Self {
        self.key(key);
        self.body.push_str(fragment);
        self
    }

    /// Add a JSON fragment written by `render` directly into the object's
    /// buffer — the zero-copy variant of [`JsonObj::raw`] for fragments
    /// (like the `top_k` peers array) that would otherwise need their own
    /// scratch `String` per request.
    ///
    /// `render` must write valid JSON; nothing re-validates the fragment.
    pub fn raw_with(mut self, key: &str, render: impl FnOnce(&mut String)) -> Self {
        self.key(key);
        render(&mut self.body);
        self
    }

    /// Render the object, returning the (possibly recycled) buffer.
    pub fn finish(mut self) -> String {
        self.body.push('}');
        self.body
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_and_parser_roundtrip() {
        let line = JsonObj::new()
            .str("op", "score")
            .int("peer", 3)
            .num("score", 0.125)
            .bool("ok", true)
            .finish();
        let obj = parse_flat(&line).expect("own output parses");
        assert_eq!(get_str(&obj, "op"), Some("score"));
        assert_eq!(get_index(&obj, "peer"), Some(3));
        assert_eq!(get_num(&obj, "score"), Some(0.125));
        assert_eq!(
            obj.iter().find(|(k, _)| k == "ok").map(|(_, v)| v.clone()),
            Some(JsonScalar::Bool(true))
        );
    }

    #[test]
    fn escapes_roundtrip() {
        let line = JsonObj::new().str("msg", "a\"b\\c\nd\te\u{1}").finish();
        let obj = parse_flat(&line).expect("escaped output parses");
        assert_eq!(get_str(&obj, "msg"), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn unicode_text_roundtrips() {
        let line = JsonObj::new().str("msg", "héllo — 世界").finish();
        let obj = parse_flat(&line).expect("utf-8 parses");
        assert_eq!(get_str(&obj, "msg"), Some("héllo — 世界"));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse_flat("").is_err());
        assert!(parse_flat("{").is_err());
        assert!(parse_flat("{\"a\":1},").is_err());
        assert!(parse_flat("{\"a\":{}}").is_err(), "nested objects rejected");
        assert!(parse_flat("{\"a\":[1]}").is_err(), "arrays rejected");
        assert!(parse_flat("{\"a\":bogus}").is_err());
        assert!(parse_flat("{\"a\" 1}").is_err());
    }

    #[test]
    fn empty_object_parses() {
        assert_eq!(parse_flat("{}").expect("empty object"), Vec::new());
        assert_eq!(parse_flat(" { } ").expect("ws tolerated"), Vec::new());
    }

    #[test]
    fn get_index_rejects_fractions_and_range() {
        let obj = parse_flat("{\"a\": 1.5, \"b\": -1, \"c\": 7}").expect("parses");
        assert_eq!(get_index(&obj, "a"), None);
        assert_eq!(get_index(&obj, "b"), None);
        assert_eq!(get_index(&obj, "c"), Some(7));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let line = JsonObj::new().num("x", f64::NAN).finish();
        assert_eq!(line, "{\"x\":null}");
    }

    #[test]
    fn reuse_recycles_the_allocation_and_renders_identically() {
        let fresh = JsonObj::new().str("op", "ping").int("k", 3).finish();
        let mut buf = String::with_capacity(256);
        buf.push_str("stale contents from the previous turn");
        let ptr = buf.as_ptr();
        let recycled = JsonObj::reuse(buf).str("op", "ping").int("k", 3).finish();
        assert_eq!(recycled, fresh);
        assert_eq!(recycled.as_ptr(), ptr, "the allocation must be reused");
        assert_eq!(JsonObj::reuse(recycled).finish(), "{}");
    }

    #[test]
    fn raw_with_writes_into_the_object_buffer() {
        use std::fmt::Write as _;
        let line = JsonObj::new()
            .bool("ok", true)
            .raw_with("peers", |out| {
                out.push('[');
                for (i, p) in [1, 2, 3].iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "[{p},0.5]");
                }
                out.push(']');
            })
            .finish();
        assert_eq!(line, "{\"ok\":true,\"peers\":[[1,0.5],[2,0.5],[3,0.5]]}");
    }
}
