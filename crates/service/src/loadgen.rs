//! Load generator: replay a Zipf query mix against a [`ServiceHandle`].
//!
//! Query popularity in P2P systems is Zipf-like (the repo's workload crate
//! models Gnutella's two-segment variant); the load generator replays that
//! skew: which peer a query asks about is drawn from a Zipf over the
//! *current snapshot's ranking*, so popular (highly reputable) peers are
//! queried most — exactly the hot-read pattern the lock-free snapshot path
//! is built for. The mix interleaves `get_score` / `rank_of` / `top_k`
//! queries with feedback writes, runs epochs in the background, and
//! reports queries/sec plus p50/p99 latency into `BENCH_service.json`.

use crate::log::FeedbackLog;
use crate::service::ServiceHandle;
use crate::stats::StatsReport;
use crate::wal::Wal;
use gossiptrust_core::id::NodeId;
use gossiptrust_obs::{Deadline, HistogramSnapshot, Stopwatch};
use gossiptrust_workloads::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

/// Load-run configuration.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Total queries to issue.
    pub queries: usize,
    /// Zipf exponent of the peer-popularity skew.
    pub zipf_exponent: f64,
    /// Fraction of operations that are feedback writes (0.0..1.0).
    pub write_fraction: f64,
    /// `k` used for `top_k` queries.
    pub top_k: usize,
    /// Run one epoch every this many operations (0 = never).
    pub epoch_every: usize,
    /// RNG seed for the query mix.
    pub seed: u64,
    /// First retry backoff for shed writes (microseconds; decorrelated
    /// jitter grows from here).
    pub retry_base_us: u64,
    /// Backoff ceiling (microseconds).
    pub retry_cap_us: u64,
    /// Total per-request deadline budget across all retries
    /// (microseconds); exhausted budget gives the write up.
    pub request_budget_us: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            queries: 50_000,
            zipf_exponent: 0.9,
            write_fraction: 0.1,
            top_k: 10,
            epoch_every: 10_000,
            seed: 1,
            retry_base_us: 50,
            retry_cap_us: 5_000,
            request_budget_us: 20_000,
        }
    }
}

/// Next decorrelated-jitter backoff: uniform in `base..=prev * 3`, capped.
/// Decorrelated jitter (vs plain exponential) spreads retry instants so a
/// shed burst does not come back as a synchronized thundering herd.
fn next_backoff_us(rng: &mut StdRng, base: u64, cap: u64, prev: u64) -> u64 {
    let hi = prev.saturating_mul(3).clamp(base, cap);
    rng.random_range(base..=hi.max(base))
}

/// Results of one load run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Queries actually issued (reads only; writes are extra).
    pub queries: usize,
    /// Feedback writes interleaved.
    pub writes: usize,
    /// Epochs triggered during the run.
    pub epochs: usize,
    /// Read throughput over the whole run.
    pub queries_per_sec: f64,
    /// Median read latency (microseconds).
    pub p50_us: f64,
    /// 99th-percentile read latency (microseconds).
    pub p99_us: f64,
    /// Mean epoch wall time as reported by the epoch loop (milliseconds);
    /// 0 when no epoch ran.
    pub epoch_wall_ms: f64,
    /// Writes retried after a retriable shed (`ServeError::Overloaded`).
    pub retries: usize,
    /// Writes abandoned after the per-request deadline budget ran out.
    pub gave_up: usize,
    /// Service counters at the end of the run.
    pub stats: StatsReport,
    /// Bucketed query-latency snapshot (ns) from the service's obs
    /// registry — the same histogram the `metrics` verb exposes, so the
    /// bench file and a live scrape agree on what was measured.
    pub query_hist: HistogramSnapshot,
    /// Bucketed ingest-latency snapshot (ns) from the obs registry.
    pub ingest_hist: HistogramSnapshot,
}

/// Drive `config.queries` operations against `handle`, measuring latency.
///
/// Latency is measured per read query with an obs [`Stopwatch`]; the
/// percentile extraction sorts the raw samples (no histogram bucketing
/// error), while the service's own registry histograms are snapshotted
/// into the report for the bucketed view.
pub fn run(handle: &ServiceHandle, config: &LoadConfig) -> LoadReport {
    let n = handle.n();
    let obs = handle.obs();
    let zipf = Zipf::new(n, config.zipf_exponent);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut latencies_us: Vec<f64> = Vec::with_capacity(config.queries);
    let mut writes = 0usize;
    let mut retries = 0usize;
    let mut gave_up = 0usize;
    let mut epochs = 0usize;
    let mut epoch_wall_ms_total = 0.0;
    let started = Stopwatch::start();
    let mut issued = 0usize;
    let mut ops = 0usize;

    while issued < config.queries {
        ops += 1;
        if config.epoch_every > 0 && ops.is_multiple_of(config.epoch_every) {
            if let Ok(outcome) = handle.run_epoch_now() {
                epochs += 1;
                epoch_wall_ms_total += outcome.wall_ms;
            }
        }
        // Map the sampled Zipf *rank* onto the currently published ranking:
        // rank 1 = today's most reputable peer.
        let rank = zipf.sample(&mut rng) - 1;
        let peer = handle.snapshot().ranking[rank];
        if rng.random::<f64>() < config.write_fraction {
            let target = NodeId::from_index(rng.random_range(0..n));
            // Retriable sheds are retried with decorrelated-jitter backoff
            // until the per-request budget runs out; anything else is
            // final on the first answer.
            let deadline = Deadline::after(Duration::from_micros(config.request_budget_us));
            let mut backoff_us = config.retry_base_us;
            loop {
                match handle.record(peer, target, 1.0) {
                    Err(e) if e.retriable() => {
                        if deadline.expires_within(Duration::from_micros(backoff_us)) {
                            gave_up += 1;
                            break;
                        }
                        std::thread::sleep(Duration::from_micros(backoff_us));
                        backoff_us = next_backoff_us(
                            &mut rng,
                            config.retry_base_us,
                            config.retry_cap_us,
                            backoff_us,
                        );
                        retries += 1;
                        obs.ingest_retries.inc();
                    }
                    _ => break,
                }
            }
            writes += 1;
            continue;
        }
        let t0 = Stopwatch::start();
        match issued % 3 {
            0 => {
                let _ = handle.get_score(peer);
            }
            1 => {
                let _ = handle.rank_of(peer);
            }
            _ => {
                let _ = handle.top_k(config.top_k);
            }
        }
        latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
        issued += 1;
    }

    let elapsed = started.elapsed().as_secs_f64();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let percentile = |p: f64| -> f64 {
        if latencies_us.is_empty() {
            return 0.0;
        }
        let idx = ((latencies_us.len() as f64 - 1.0) * p).round() as usize;
        latencies_us[idx]
    };

    LoadReport {
        queries: issued,
        writes,
        epochs,
        queries_per_sec: if elapsed > 0.0 {
            issued as f64 / elapsed
        } else {
            0.0
        },
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
        epoch_wall_ms: if epochs > 0 {
            epoch_wall_ms_total / epochs as f64
        } else {
            0.0
        },
        retries,
        gave_up,
        stats: handle.stats_report(),
        query_hist: obs.query_ns.snapshot(),
        ingest_hist: obs.ingest_ns.snapshot(),
    }
}

/// Pipelined durable-ingest run: `connections` concurrent writers each
/// submit `batches_per_conn` feedback batches of `batch_size` ratings.
#[derive(Clone, Debug)]
pub struct IngestConfig {
    /// Concurrent writer threads (stand-ins for ingest connections).
    pub connections: usize,
    /// Batches each writer submits.
    pub batches_per_conn: usize,
    /// Ratings per batch.
    pub batch_size: usize,
    /// RNG seed for the rating targets/scores.
    pub seed: u64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig { connections: 8, batches_per_conn: 400, batch_size: 16, seed: 1 }
    }
}

/// Results of one durable-ingest run (pipelined service path or the
/// serial mutexed-WAL baseline).
#[derive(Clone, Debug)]
pub struct IngestReport {
    /// Ratings durably ingested.
    pub events: u64,
    /// Batches submitted.
    pub batches: u64,
    /// Durable-ingest throughput (ratings/sec over the whole run).
    pub events_per_sec: f64,
    /// Median per-batch ack latency (microseconds).
    pub p50_us: f64,
    /// 99th-percentile per-batch ack latency (microseconds).
    pub p99_us: f64,
    /// Batches retried after a retriable shed.
    pub retries: u64,
}

/// One writer's deterministic batch: rater striped over the population by
/// `(conn, batch)` so concurrent writers never share a rater (batches from
/// one rater must stay ordered, which one thread per rater guarantees).
fn fill_ingest_batch(
    rng: &mut StdRng,
    n: usize,
    conn: usize,
    batch: usize,
    connections: usize,
    batch_size: usize,
    ratings: &mut Vec<(NodeId, f64)>,
) -> NodeId {
    let rater = NodeId::from_index((conn + batch * connections) % n);
    ratings.clear();
    for _ in 0..batch_size {
        let target = NodeId::from_index(rng.random_range(0..n));
        ratings.push((target, 1.0 + rng.random::<f64>()));
    }
    rater
}

fn ingest_report(
    latencies_us: &mut [f64],
    events: u64,
    batches: u64,
    elapsed_s: f64,
    retries: u64,
) -> IngestReport {
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let percentile = |p: f64| -> f64 {
        if latencies_us.is_empty() {
            return 0.0;
        }
        let idx = ((latencies_us.len() as f64 - 1.0) * p).round() as usize;
        latencies_us[idx]
    };
    IngestReport {
        events,
        batches,
        events_per_sec: if elapsed_s > 0.0 {
            events as f64 / elapsed_s
        } else {
            0.0
        },
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
        retries,
    }
}

/// Drive the pipelined multi-connection ingest workload against a (WAL-
/// armed) service handle: every batch rides `ServiceHandle::record_batch`,
/// so concurrent writers feed the group-commit WAL writer exactly the way
/// concurrent TCP connections do. Per-batch latency is the submit→ack
/// wall time one connection observes; throughput counts all writers.
pub fn run_pipelined_ingest(handle: &ServiceHandle, config: &IngestConfig) -> IngestReport {
    let n = handle.n();
    let started = Stopwatch::start();
    let per_conn: Vec<(Vec<f64>, u64)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..config.connections)
            .map(|conn| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(
                        config.seed ^ (conn as u64).wrapping_mul(0x9E37_79B9),
                    );
                    let mut ratings = Vec::with_capacity(config.batch_size);
                    let mut lat = Vec::with_capacity(config.batches_per_conn);
                    let mut retries = 0u64;
                    for batch in 0..config.batches_per_conn {
                        let rater = fill_ingest_batch(
                            &mut rng,
                            n,
                            conn,
                            batch,
                            config.connections,
                            config.batch_size,
                            &mut ratings,
                        );
                        let t0 = Stopwatch::start();
                        loop {
                            match handle.record_batch(rater, &ratings) {
                                Err(e) if e.retriable() => {
                                    retries += 1;
                                    std::thread::sleep(Duration::from_micros(50));
                                }
                                _ => break,
                            }
                        }
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                    }
                    (lat, retries)
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("ingest writer"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let batches = (config.connections * config.batches_per_conn) as u64;
    let events = batches * config.batch_size as u64;
    let retries = per_conn.iter().map(|(_, r)| r).sum();
    let mut latencies: Vec<f64> = per_conn.into_iter().flat_map(|(lat, _)| lat).collect();
    ingest_report(&mut latencies, events, batches, elapsed, retries)
}

/// The same workload through the pre-group-commit serving path: one
/// `Mutex<Wal>` shared by all writers, one `write_all` + `flush` per
/// batch under the lock, then the in-memory log append — a faithful
/// emulation of what `ServiceHandle::record_batch` did before the writer
/// thread existed. This is the `baseline_delta` denominator when no
/// committed `BENCH_service.json` is available to diff against.
pub fn run_serial_wal_baseline(n: usize, wal_dir: &Path, config: &IngestConfig) -> IngestReport {
    let (wal, _) = Wal::open(wal_dir, n).expect("open baseline WAL");
    let wal = Mutex::new(wal);
    let log = FeedbackLog::new(n, 16.min(n.max(1)));
    let started = Stopwatch::start();
    let per_conn: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..config.connections)
            .map(|conn| {
                let wal = &wal;
                let log = &log;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(
                        config.seed ^ (conn as u64).wrapping_mul(0x9E37_79B9),
                    );
                    let mut ratings = Vec::with_capacity(config.batch_size);
                    let mut lat = Vec::with_capacity(config.batches_per_conn);
                    for batch in 0..config.batches_per_conn {
                        let rater = fill_ingest_batch(
                            &mut rng,
                            n,
                            conn,
                            batch,
                            config.connections,
                            config.batch_size,
                            &mut ratings,
                        );
                        let t0 = Stopwatch::start();
                        wal.lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .append_batch(rater, &ratings)
                            .expect("baseline WAL append");
                        log.record_batch(rater, &ratings);
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                    }
                    lat
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("baseline writer"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let batches = (config.connections * config.batches_per_conn) as u64;
    let events = batches * config.batch_size as u64;
    let mut latencies: Vec<f64> = per_conn.into_iter().flatten().collect();
    ingest_report(&mut latencies, events, batches, elapsed, 0)
}

/// Append the pipelined-ingest section (and its serial-baseline
/// `baseline_delta`) to the bench document as flat keys. `speedup` > 1
/// means the group-commit pipeline out-ingests the mutexed baseline;
/// `p99_delta_pct` < 0 means the pipelined p99 is better.
pub fn ingest_fields(
    obj: crate::json::JsonObj,
    config: &IngestConfig,
    pipelined: &IngestReport,
    serial: &IngestReport,
) -> crate::json::JsonObj {
    let speedup = if serial.events_per_sec > 0.0 {
        pipelined.events_per_sec / serial.events_per_sec
    } else {
        0.0
    };
    let p99_delta_pct = if serial.p99_us > 0.0 {
        (pipelined.p99_us - serial.p99_us) / serial.p99_us * 100.0
    } else {
        0.0
    };
    obj.int("ingest_connections", config.connections as u64)
        .int("ingest_batch_size", config.batch_size as u64)
        .int("ingest_batches", pipelined.batches)
        .int("ingest_events", pipelined.events)
        .int("ingest_retries", pipelined.retries)
        .num("ingest_events_per_sec", pipelined.events_per_sec)
        .num("ingest_p50_us", pipelined.p50_us)
        .num("ingest_p99_us", pipelined.p99_us)
        .num("serial_ingest_events_per_sec", serial.events_per_sec)
        .num("serial_ingest_p50_us", serial.p50_us)
        .num("serial_ingest_p99_us", serial.p99_us)
        .num("baseline_delta_ingest_speedup", speedup)
        .num("baseline_delta_ingest_p99_pct", p99_delta_pct)
}

/// Append one histogram snapshot as flat `hist_<name>_{p50,p90,p99,max}_us`
/// keys (the snapshot records nanoseconds; the bench file speaks µs like
/// the sampled percentiles). Flat keys keep the document parseable by
/// [`crate::json::parse_flat`], which `baseline_delta` relies on.
fn hist_fields(
    obj: crate::json::JsonObj,
    name: &str,
    h: &HistogramSnapshot,
) -> crate::json::JsonObj {
    obj.num(&format!("hist_{name}_p50_us"), h.p50 as f64 / 1e3)
        .num(&format!("hist_{name}_p90_us"), h.p90 as f64 / 1e3)
        .num(&format!("hist_{name}_p99_us"), h.p99 as f64 / 1e3)
        .num(&format!("hist_{name}_max_us"), h.max as f64 / 1e3)
        .int(&format!("hist_{name}_count"), h.count)
}

/// Render a [`LoadReport`] as the `BENCH_service.json` document.
///
/// `cores` is recorded the same way `BENCH_engine.json` does, so the two
/// benchmark files stay comparable machine-to-machine.
pub fn report_json(report: &LoadReport, n: usize, cores: usize, quick: bool) -> String {
    report_fields(crate::json::JsonObj::new(), report, n, cores, quick).finish()
}

/// The [`report_json`] keys appended to an object under construction —
/// the composable form the loadgen binary uses to follow the query
/// section with the pipelined-ingest and `baseline_delta` sections in
/// one flat document.
pub fn report_fields(
    obj: crate::json::JsonObj,
    report: &LoadReport,
    n: usize,
    cores: usize,
    quick: bool,
) -> crate::json::JsonObj {
    let obj = obj
        .str("bench", "service_queries")
        .bool("quick", quick)
        .int("cores", cores as u64)
        .int("n", n as u64)
        .int("queries", report.queries as u64)
        .int("writes", report.writes as u64)
        .int("epochs", report.epochs as u64)
        .num("queries_per_sec", report.queries_per_sec)
        .num("p50_us", report.p50_us)
        .num("p99_us", report.p99_us)
        .num("epoch_wall_ms", report.epoch_wall_ms)
        .int("retries", report.retries as u64)
        .int("gave_up", report.gave_up as u64)
        .int("epochs_published", report.stats.epochs_published)
        .int("epochs_degraded", report.stats.epochs_degraded)
        .int("epochs_panicked", report.stats.epochs_panicked)
        .int("epochs_overrun", report.stats.epochs_overrun)
        .int("queries_served", report.stats.queries_served)
        .int("requests_shed", report.stats.requests_shed)
        .int("conns_rejected", report.stats.conns_rejected)
        .int("conns_timed_out", report.stats.conns_timed_out)
        .int("wal_replayed_records", report.stats.wal_replayed_records);
    let obj = hist_fields(obj, "query", &report.query_hist);
    hist_fields(obj, "ingest", &report.ingest_hist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::service::{ReputationService, ServiceConfig};

    #[test]
    fn load_run_reports_sane_numbers() {
        let service = ReputationService::start(ServiceConfig::new(30));
        let h = service.handle();
        for i in 0..30 {
            h.record(NodeId::from_index(i), NodeId::from_index((i + 1) % 30), 1.0)
                .expect("in range");
        }
        let config = LoadConfig {
            queries: 300,
            epoch_every: 100,
            write_fraction: 0.2,
            ..LoadConfig::default()
        };
        let report = run(&h, &config);
        assert_eq!(report.queries, 300);
        assert!(report.epochs >= 1, "epoch_every must trigger epochs");
        assert!(report.queries_per_sec > 0.0);
        assert!(report.p99_us >= report.p50_us);
        assert!(report.stats.queries_served >= 300);
        // The JSON document parses with our own parser and carries cores.
        let doc = report_json(&report, 30, 4, true);
        let obj = json::parse_flat(&doc).expect("bench json parses");
        assert_eq!(json::get_num(&obj, "cores"), Some(4.0));
        assert_eq!(json::get_str(&obj, "bench"), Some("service_queries"));
        assert_eq!(json::get_index(&obj, "retries"), Some(report.retries as u32));
        assert_eq!(json::get_index(&obj, "requests_shed"), Some(0));
        // The bucketed registry view rides along as flat keys.
        assert_eq!(json::get_index(&obj, "hist_query_count"), Some(300));
        let p50 = json::get_num(&obj, "hist_query_p50_us").expect("hist p50");
        let p99 = json::get_num(&obj, "hist_query_p99_us").expect("hist p99");
        let max = json::get_num(&obj, "hist_query_max_us").expect("hist max");
        assert!(p50 <= p99 && p99 <= max, "percentiles are ordered: {p50} {p99} {max}");
        assert!(json::get_index(&obj, "hist_ingest_count").expect("ingest count") > 0);
        service.shutdown();
    }

    #[test]
    fn pipelined_ingest_is_durable_and_beats_nothing_silently() {
        let serial = std::process::id();
        let root = std::env::temp_dir().join(format!("gt-loadgen-test-{serial}"));
        let _ = std::fs::remove_dir_all(&root);
        let config = IngestConfig { connections: 3, batches_per_conn: 20, batch_size: 4, seed: 9 };
        let total = (config.connections * config.batches_per_conn * config.batch_size) as u64;

        let service = ReputationService::start(
            ServiceConfig::new(12)
                .with_wal_dir(root.join("piped"))
                .with_ingest_queue(10_000),
        );
        let h = service.handle();
        let piped = run_pipelined_ingest(&h, &config);
        assert_eq!(piped.events, total);
        assert!(piped.events_per_sec > 0.0);
        assert!(piped.p99_us >= piped.p50_us);
        assert_eq!(h.events_ingested(), total, "every batch must be applied");
        service.shutdown();
        // Every acked rating is durable: a replaying reopen sees them all.
        let (_, replay) = crate::wal::Wal::open(&root.join("piped"), 12).expect("reopen");
        assert_eq!(replay.events.len() as u64, total);
        assert_eq!(replay.truncated_bytes, 0);

        let baseline = run_serial_wal_baseline(12, &root.join("serial"), &config);
        assert_eq!(baseline.events, total);
        assert!(baseline.events_per_sec > 0.0);

        // The flat bench keys parse and carry the baseline_delta section.
        let doc = ingest_fields(json::JsonObj::new(), &config, &piped, &baseline).finish();
        let obj = json::parse_flat(&doc).expect("ingest json parses");
        assert_eq!(json::get_index(&obj, "ingest_events"), Some(total as u32));
        assert!(json::get_num(&obj, "baseline_delta_ingest_speedup").expect("speedup") > 0.0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn shed_writes_are_retried_with_backoff_then_given_up() {
        // A 2-event queue that is never folded (epoch_every = 0): the
        // backlog fills after two writes and every later write sheds,
        // retries under its budget, and finally gives up.
        let service = ReputationService::start(ServiceConfig::new(12).with_ingest_queue(2));
        let h = service.handle();
        let config = LoadConfig {
            queries: 40,
            epoch_every: 0,
            write_fraction: 0.5,
            request_budget_us: 2_000,
            ..LoadConfig::default()
        };
        let report = run(&h, &config);
        assert!(report.writes > 2, "the mix must attempt more writes than the queue holds");
        assert!(report.retries > 0, "shed writes must be retried");
        assert!(report.gave_up > 0, "an undrained queue must exhaust retry budgets");
        assert!(report.stats.requests_shed > 0, "the admission gate counts every shed");
        assert_eq!(h.events_ingested(), 2, "only the admitted writes landed");
        service.shutdown();
    }
}
