//! Algorithm 1 — scalar push-sum gossip for a single peer score.
//!
//! Every node `i` holds a gossip pair `(x_i, w_i)`. To aggregate the global
//! score of peer `j` at cycle `t`, the pairs are seeded as
//! `x_i(0) = s_ij · v_i(t-1)` and `w_i(0) = 1` iff `i = j` (so exactly one
//! unit of consensus weight exists network-wide). Each gossip step every
//! node keeps half of its pair and pushes the other half to a random node;
//! received halves are summed. Both `Σ_i x_i` and `Σ_i w_i` are conserved,
//! so the ratio `x_i/w_i` on every node converges to
//! `Σ_i x_i(0) / Σ_i w_i(0) = Σ_i s_ij·v_i(t-1) = v_j(t)` — the weighted sum
//! of Eq. 7 — simultaneously on all nodes.

use crate::chooser::TargetChooser;
use crate::stats::GossipStats;
use gossiptrust_core::convergence::RatioTracker;
use gossiptrust_core::id::NodeId;
use gossiptrust_core::matrix::TrustMatrix;
use gossiptrust_core::vector::ReputationVector;
use rand::Rng;

/// A synchronous-round network of `n` nodes running one push-sum instance.
#[derive(Clone, Debug)]
pub struct PushSumNetwork {
    xs: Vec<f64>,
    ws: Vec<f64>,
    trackers: Vec<RatioTracker>,
    stats: GossipStats,
    step_idx: usize,
}

/// Result of driving a [`PushSumNetwork`] to convergence.
#[derive(Clone, Debug, PartialEq)]
pub struct PushSumOutcome {
    /// Gossip steps executed (the paper's `g`).
    pub steps: usize,
    /// Whether every node's local detector fired within the step budget.
    pub converged: bool,
    /// Final per-node estimates `x_i/w_i` (`None` where `w_i = 0`).
    pub ratios: Vec<Option<f64>>,
    /// Instrumentation counters.
    pub stats: GossipStats,
}

impl PushSumNetwork {
    /// Seed per Algorithm 1 to aggregate the global score of peer `j`:
    /// `x_i = s_ij · v_i`, `w_i = [i == j]`.
    pub fn for_score(
        matrix: &TrustMatrix,
        v_prev: &ReputationVector,
        j: NodeId,
        epsilon: f64,
        patience: usize,
    ) -> Self {
        assert_eq!(matrix.n(), v_prev.n(), "matrix and vector must agree on n");
        let n = matrix.n();
        let xs: Vec<f64> = (0..n)
            .map(|i| {
                let id = NodeId::from_index(i);
                matrix.entry(id, j) * v_prev.score(id)
            })
            .collect();
        let mut ws = vec![0.0; n];
        ws[j.index()] = 1.0;
        Self::from_pairs(xs, ws, epsilon, patience)
    }

    /// Seed from arbitrary pairs (general-purpose aggregate computation:
    /// with all `w_i = 1` the consensus value is the *average* of the `x_i`;
    /// with a single `w = 1` it is their *sum*).
    pub fn from_pairs(xs: Vec<f64>, ws: Vec<f64>, epsilon: f64, patience: usize) -> Self {
        assert_eq!(xs.len(), ws.len(), "xs and ws must have equal length");
        assert!(xs.len() >= 2, "push-sum needs at least two nodes");
        assert!(ws.iter().sum::<f64>() > 0.0, "total consensus weight must be positive");
        let n = xs.len();
        PushSumNetwork {
            xs,
            ws,
            trackers: vec![RatioTracker::new(epsilon, patience); n],
            stats: GossipStats::default(),
            step_idx: 0,
        }
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.xs.len()
    }

    /// Current gossip pair of node `i`.
    pub fn pair(&self, i: NodeId) -> (f64, f64) {
        (self.xs[i.index()], self.ws[i.index()])
    }

    /// Current per-node ratio estimates (`None` where `w = 0`).
    pub fn ratios(&self) -> Vec<Option<f64>> {
        self.xs
            .iter()
            .zip(&self.ws)
            .map(|(&x, &w)| if w > 0.0 { Some(x / w) } else { None })
            .collect()
    }

    /// Total `(Σx, Σw)` — conserved by every lossless step.
    pub fn total_mass(&self) -> (f64, f64) {
        (self.xs.iter().sum(), self.ws.iter().sum())
    }

    /// Instrumentation counters so far.
    pub fn stats(&self) -> GossipStats {
        self.stats
    }

    /// Execute one synchronous gossip step: every node keeps half of its
    /// pair and pushes the other half to `chooser`'s target. Returns `true`
    /// when every node's convergence detector has fired.
    pub fn step<C: TargetChooser, R: Rng + ?Sized>(&mut self, chooser: &C, rng: &mut R) -> bool {
        let n = self.n();
        // Phase 1: halve in place (the retained self-half).
        for v in self.xs.iter_mut() {
            *v *= 0.5;
        }
        for v in self.ws.iter_mut() {
            *v *= 0.5;
        }
        // Phase 2: snapshot the halves being pushed, then deliver. The
        // snapshot keeps the round synchronous: deliveries must not leak
        // into messages sent in the same step.
        let sent_x = self.xs.clone();
        let sent_w = self.ws.clone();
        for i in 0..n {
            let t = chooser.choose(i, self.step_idx, n, rng);
            self.xs[t] += sent_x[i];
            self.ws[t] += sent_w[i];
            self.stats.messages_sent += 1;
            self.stats.triplets_sent += 1;
        }
        self.step_idx += 1;
        self.stats.steps += 1;
        let mut all = true;
        for i in 0..n {
            let done = self.trackers[i].observe(self.xs[i], self.ws[i]);
            all &= done;
        }
        all
    }

    /// Drive to convergence: at least `min_steps`, at most `max_steps`.
    pub fn run<C: TargetChooser, R: Rng + ?Sized>(
        &mut self,
        min_steps: usize,
        max_steps: usize,
        chooser: &C,
        rng: &mut R,
    ) -> PushSumOutcome {
        let mut converged = false;
        let mut steps = 0;
        while steps < max_steps {
            let all = self.step(chooser, rng);
            steps += 1;
            if all && steps >= min_steps {
                converged = true;
                break;
            }
        }
        PushSumOutcome { steps, converged, ratios: self.ratios(), stats: self.stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chooser::{ScriptedChooser, UniformChooser};
    use gossiptrust_core::matrix::TrustMatrixBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The exact setup of Fig. 2 / Table 1: 3 nodes,
    /// `V(t) = (1/2, 1/3, 1/6)`, column scores for peer N2:
    /// `s_12 = 0.2, s_22 = 0, s_32 = 0.6`, expected consensus 0.2.
    fn paper_example() -> PushSumNetwork {
        let xs = vec![0.5 * 0.2, (1.0 / 3.0) * 0.0, (1.0 / 6.0) * 0.6];
        let ws = vec![0.0, 1.0, 0.0];
        PushSumNetwork::from_pairs(xs, ws, 1e-9, 1)
    }

    #[test]
    fn paper_step_one_matches_text() {
        // Text of §4.2: N1 → N3, N2 → N1, N3 → N1 in step 1. Afterwards
        // N1 holds (0.1, 0.5) with ratio 0.2, N2 holds (0, 0.5) with ratio
        // 0, and N3 holds (0.1, 0) whose ratio is undefined (the paper's ∞).
        let mut net = paper_example();
        let chooser = ScriptedChooser::new(vec![vec![2, 0, 0]]);
        let mut rng = StdRng::seed_from_u64(0);
        net.step(&chooser, &mut rng);
        let (x1, w1) = net.pair(NodeId(0));
        assert!((x1 - 0.1).abs() < 1e-12 && (w1 - 0.5).abs() < 1e-12);
        let r = net.ratios();
        assert!((r[0].unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(r[1], Some(0.0));
        assert_eq!(r[2], None, "w=0 is the paper's ∞ case");
    }

    #[test]
    fn paper_example_converges_to_point_two() {
        let mut net = paper_example();
        let mut rng = StdRng::seed_from_u64(42);
        let out = net.run(2, 500, &UniformChooser, &mut rng);
        assert!(out.converged);
        for r in out.ratios {
            let v = r.expect("all weights positive at convergence");
            assert!((v - 0.2).abs() < 1e-6, "ratio {v}");
        }
    }

    #[test]
    fn mass_is_conserved() {
        let mut net = paper_example();
        let (x0, w0) = net.total_mass();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            net.step(&UniformChooser, &mut rng);
        }
        let (x1, w1) = net.total_mass();
        assert!((x0 - x1).abs() < 1e-12);
        assert!((w0 - w1).abs() < 1e-12);
    }

    #[test]
    fn for_score_seeds_per_algorithm_1() {
        let mut b = TrustMatrixBuilder::new(3);
        b.record(NodeId(0), NodeId(1), 0.2);
        b.record(NodeId(0), NodeId(2), 0.8);
        b.record(NodeId(1), NodeId(0), 1.0);
        b.record(NodeId(2), NodeId(1), 0.6);
        b.record(NodeId(2), NodeId(0), 0.4);
        let m = b.build();
        let v = ReputationVector::from_weights(vec![0.5, 1.0 / 3.0, 1.0 / 6.0]).unwrap();
        let net = PushSumNetwork::for_score(&m, &v, NodeId(1), 1e-6, 1);
        let (x0, _) = net.pair(NodeId(0));
        assert!((x0 - 0.1).abs() < 1e-12);
        let (x1, w1) = net.pair(NodeId(1));
        assert_eq!(x1, 0.0);
        assert_eq!(w1, 1.0);
        let (x2, _) = net.pair(NodeId(2));
        assert!((x2 - 0.1).abs() < 1e-12);
        // Consensus target is Σ xᵢ = v_j(t+1) = 0.2.
        let (total_x, total_w) = net.total_mass();
        assert!((total_x - 0.2).abs() < 1e-12);
        assert_eq!(total_w, 1.0);
    }

    #[test]
    fn average_mode_computes_average() {
        // All w = 1 → the consensus value is the average of inputs.
        let xs = vec![1.0, 2.0, 3.0, 6.0];
        let ws = vec![1.0; 4];
        let mut net = PushSumNetwork::from_pairs(xs, ws, 1e-10, 2);
        let mut rng = StdRng::seed_from_u64(9);
        let out = net.run(2, 1000, &UniformChooser, &mut rng);
        assert!(out.converged);
        for r in out.ratios {
            assert!((r.unwrap() - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sum_mode_computes_sum() {
        // Single w = 1 → consensus is the sum.
        let xs = vec![1.0, 2.0, 3.0];
        let ws = vec![1.0, 0.0, 0.0];
        let mut net = PushSumNetwork::from_pairs(xs, ws, 1e-10, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let out = net.run(2, 1000, &UniformChooser, &mut rng);
        assert!(out.converged);
        for r in out.ratios {
            assert!((r.unwrap() - 6.0).abs() < 1e-6);
        }
    }

    #[test]
    fn steps_grow_with_tighter_epsilon() {
        let run_with = |eps: f64| {
            let xs: Vec<f64> = (0..64).map(|i| i as f64).collect();
            let ws = vec![1.0; 64];
            let mut net = PushSumNetwork::from_pairs(xs, ws, eps, 2);
            let mut rng = StdRng::seed_from_u64(3);
            net.run(6, 20_000, &UniformChooser, &mut rng).steps
        };
        let loose = run_with(1e-2);
        let tight = run_with(1e-8);
        assert!(tight > loose, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn stats_count_messages() {
        let mut net = paper_example();
        let mut rng = StdRng::seed_from_u64(2);
        net.step(&UniformChooser, &mut rng);
        net.step(&UniformChooser, &mut rng);
        let s = net.stats();
        assert_eq!(s.steps, 2);
        assert_eq!(s.messages_sent, 6); // 3 nodes × 2 steps
        assert_eq!(s.triplets_sent, 6);
    }

    #[test]
    #[should_panic(expected = "total consensus weight")]
    fn zero_weight_network_is_rejected() {
        let _ = PushSumNetwork::from_pairs(vec![1.0, 2.0], vec![0.0, 0.0], 1e-3, 1);
    }
}
