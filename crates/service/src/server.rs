//! Line-delimited JSON TCP front-end (tokio).
//!
//! One request per line, one response per line, in the flat-JSON dialect
//! of [`crate::json`]. Operations:
//!
//! | request                                                      | response fields                                   |
//! |--------------------------------------------------------------|---------------------------------------------------|
//! | `{"op":"ping"}`                                              | `n`, `version`                                    |
//! | `{"op":"score","peer":P}`                                    | `peer`, `score`, `version`, `epoch`               |
//! | `{"op":"rank","peer":P}`                                     | `peer`, `exact_rank`, `bloom_level`, `levels`, `version` |
//! | `{"op":"top_k","k":K}`                                       | `version`, `peers` (array of `[id, score]`)       |
//! | `{"op":"stats"}`                                             | the [`crate::stats::StatsReport`] counters        |
//! | `{"op":"feedback","rater":R,"target":T,"score":S}`           | `events`                                          |
//! | `{"op":"batch","data":"<hex>"}`                              | `accepted`, `events`                              |
//! | `{"op":"epoch"}`                                             | `epoch`, `published`, `live_version`, `cycles`, `wall_ms` |
//! | `{"op":"metrics"}`                                           | `metrics` (Prometheus text exposition, escaped)   |
//!
//! Every response carries `"ok": true`; failures are
//! `{"ok":false,"error":"..."}` and keep the connection open — one bad
//! request must not tear down a client's session. Bulk ingest rides the
//! binary [`FeedbackBatch`] codec frame from `gossiptrust-net`, hex-encoded
//! into the `data` field, so the TCP front-end and any future binary
//! transport share one wire format.
//!
//! ## Hardening
//!
//! The front-end assumes hostile or broken clients ([`ServerConfig`]):
//! a concurrent-connection cap sheds further accepts with one retriable
//! error line; a per-line read deadline reaps slow-loris connections that
//! drip-feed or stall mid-line; the request-line byte cap refuses
//! newline-free floods. Shed and reaped connections are counted in
//! [`crate::stats::ServiceStats`]. A [`crate::chaos::ChaosInjector`] can be
//! armed on the response path (chaos drills only) to drop, delay,
//! duplicate, or truncate response frames deterministically.

use crate::chaos::{ChaosInjector, FrameFault};
use crate::json::{self, JsonObj};
use crate::service::{ServeError, ServiceHandle};
use gossiptrust_core::id::NodeId;
use gossiptrust_net::codec::FeedbackBatch;
use gossiptrust_obs::Stopwatch;
use std::fmt::Write as _;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::io::{AsyncBufRead, AsyncBufReadExt, AsyncWriteExt, BufReader};
use tokio::net::{TcpListener, TcpStream};

/// Longest accepted request line (bytes). A `FeedbackBatch` at the codec's
/// size cap hex-encodes to ~1.5 MiB, so 4 MiB leaves comfortable headroom
/// while still bounding a hostile newline-free stream.
const MAX_LINE_BYTES: usize = 4 << 20;

/// Front-end hardening knobs (see the README env table; the `serve` bin
/// wires `GT_CONN_LIMIT` / `GT_READ_TIMEOUT_MS` in).
#[derive(Clone)]
pub struct ServerConfig {
    /// Concurrent-connection cap; further accepts are answered with one
    /// retriable error line and closed.
    pub max_conns: usize,
    /// Per-line read deadline. A connection that cannot produce a full
    /// request line within this budget (a slow-loris drip-feed, a stalled
    /// peer) is reaped — partial lines cannot pin a task forever.
    pub read_timeout: Duration,
    /// Longest accepted request line in bytes.
    pub max_line_bytes: usize,
    /// Response-path fault injection (dropped / delayed / duplicated /
    /// truncated frames); `None` = deliver everything faithfully.
    pub chaos: Option<Arc<ChaosInjector>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_conns: 1024,
            read_timeout: Duration::from_millis(30_000),
            max_line_bytes: MAX_LINE_BYTES,
            chaos: None,
        }
    }
}

/// Decrements the live-connection gauge when a connection task ends,
/// however it ends (clean EOF, error, reaped, panicked).
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Bind `addr` and serve the query/ingest protocol forever (default
/// hardening knobs).
pub async fn serve(handle: ServiceHandle, addr: &str) -> io::Result<()> {
    serve_with(handle, addr, ServerConfig::default()).await
}

/// Bind `addr` and serve with explicit hardening knobs.
pub async fn serve_with(handle: ServiceHandle, addr: &str, config: ServerConfig) -> io::Result<()> {
    let listener = TcpListener::bind(addr).await?;
    serve_on_with(handle, listener, config).await
}

/// Serve on an already-bound listener (lets tests bind port 0 first).
pub async fn serve_on(handle: ServiceHandle, listener: TcpListener) -> io::Result<()> {
    serve_on_with(handle, listener, ServerConfig::default()).await
}

/// Serve on an already-bound listener with explicit hardening knobs.
pub async fn serve_on_with(
    handle: ServiceHandle,
    listener: TcpListener,
    config: ServerConfig,
) -> io::Result<()> {
    let active = Arc::new(AtomicUsize::new(0));
    loop {
        let (mut stream, _peer) = listener.accept().await?;
        // Accept gate: over the cap, answer with one retriable error line
        // and close — an explicit, immediate shed beats an unbounded task
        // pile-up that starves the connections already being served.
        if active.load(Ordering::Relaxed) >= config.max_conns {
            handle.service_stats().note_conn_rejected();
            tokio::spawn(async move {
                let _ = stream
                    .write_all(
                        format!("{}\n", retriable_error_line("connection limit reached"))
                            .as_bytes(),
                    )
                    .await;
            });
            continue;
        }
        active.fetch_add(1, Ordering::Relaxed);
        let guard = ConnGuard(Arc::clone(&active));
        let handle = handle.clone();
        let config = config.clone();
        tokio::spawn(async move {
            // A dropped or misbehaving client only affects its own task.
            let _ = handle_connection(handle, stream, config).await;
            drop(guard);
        });
    }
}

/// Serve the Prometheus scrape endpoint on an already-bound listener
/// (the `serve` bin wires `GT_METRICS_ADDR` in; unset = no listener).
///
/// Deliberately minimal HTTP: every request — whatever the path — is
/// answered with `200 OK`, `text/plain; version=0.0.4` and the full
/// [`ServiceHandle::metrics_text`] exposition, then the connection is
/// closed. A scrape endpoint has exactly one resource, so routing and
/// content negotiation would be dead weight; anything that speaks
/// HTTP/1.x (curl, a Prometheus scraper) gets the text.
pub async fn serve_metrics_on(handle: ServiceHandle, listener: TcpListener) -> io::Result<()> {
    loop {
        let (stream, _peer) = listener.accept().await?;
        let handle = handle.clone();
        tokio::spawn(async move {
            let _ = scrape_connection(handle, stream).await;
        });
    }
}

/// Read one HTTP request head (contents ignored), answer with the
/// exposition, close. Headers are drained up to the blank separator so
/// well-behaved clients never see a reset mid-request; a client that
/// stalls mid-head is reaped by the read deadline.
async fn scrape_connection(handle: ServiceHandle, stream: TcpStream) -> io::Result<()> {
    let (read_half, mut write_half) = stream.into_split();
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        line.clear();
        let n = tokio::time::timeout(Duration::from_millis(5_000), reader.read_line(&mut line))
            .await
            .map_err(|_| io::Error::new(io::ErrorKind::TimedOut, "scrape header stalled"))??;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let body = handle.metrics_text();
    let mut head = String::new();
    let _ = write!(
        head,
        "HTTP/1.1 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    write_half.write_all(head.as_bytes()).await?;
    write_half.write_all(body.as_bytes()).await?;
    write_half.shutdown().await
}

/// Per-connection scratch reused across request turns. The read buffer,
/// the response `String` (threaded through [`JsonObj::reuse`]), the batch
/// hex-decode bytes and the ratings vector all keep their allocations for
/// the life of the connection — steady-state request turns allocate only
/// what the operation itself returns (parsed object, codec frame).
#[derive(Default)]
struct ConnBuffers {
    /// Response line under construction; recycled via `JsonObj::reuse`.
    out: String,
    /// Hex-decoded `batch` payload bytes.
    batch_bytes: Vec<u8>,
    /// `(target, score)` pairs handed to `ServiceHandle::record_batch`.
    ratings: Vec<(NodeId, f64)>,
}

async fn handle_connection(
    handle: ServiceHandle,
    stream: TcpStream,
    config: ServerConfig,
) -> io::Result<()> {
    let (read_half, mut write_half) = stream.into_split();
    let mut reader = BufReader::new(read_half);
    let mut line = Vec::new();
    let mut bufs = ConnBuffers::default();
    let request_ns = Arc::clone(&handle.obs().request_ns);
    loop {
        let read = tokio::time::timeout(
            config.read_timeout,
            read_capped_line(&mut reader, &mut line, config.max_line_bytes),
        )
        .await;
        match read {
            Err(_elapsed) => {
                // Slow-loris reaping: the client held the line open without
                // completing a request within the deadline.
                handle.service_stats().note_conn_timed_out();
                let farewell = format!("{}\n", error_line("read timeout, closing"));
                let _ = write_half.write_all(farewell.as_bytes()).await;
                return Ok(());
            }
            Ok(Err(e)) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversize line: tell the client why before closing (the
                // line framing is already unrecoverable mid-line).
                let farewell = format!("{}\n", error_line("request line too long, closing"));
                let _ = write_half.write_all(farewell.as_bytes()).await;
                return Ok(());
            }
            Ok(Err(e)) => return Err(e),
            Ok(Ok(false)) => return Ok(()),
            Ok(Ok(true)) => {}
        }
        let sw = Stopwatch::start();
        // Borrow the request straight out of the read buffer — no per-turn
        // copy of a line that can be megabytes of batch hex.
        let mut response = match std::str::from_utf8(&line) {
            Ok(request) => respond(&handle, request, &mut bufs).await,
            Err(_) => error_into(std::mem::take(&mut bufs.out), "request is not valid UTF-8"),
        };
        request_ns.record(sw.elapsed_ns());
        response.push('\n');
        let deliver =
            write_response(&mut write_half, response.as_bytes(), config.chaos.as_deref()).await?;
        // Hand the response allocation back for the next turn.
        bufs.out = response;
        if !deliver {
            return Ok(());
        }
    }
}

/// Write one response frame, applying an injected fault when a chaos
/// injector is armed. Returns `false` when the connection must close
/// (a truncated frame leaves the client's line framing unrecoverable).
async fn write_response<W: AsyncWriteExt + Unpin>(
    writer: &mut W,
    frame: &[u8],
    chaos: Option<&ChaosInjector>,
) -> io::Result<bool> {
    let fault = chaos.map_or(FrameFault::Deliver, |c| c.frame_fault());
    match fault {
        FrameFault::Deliver => writer.write_all(frame).await?,
        // The client sees silence and must retry on its own deadline.
        FrameFault::Drop => {}
        FrameFault::Delay(pause) => {
            tokio::time::sleep(pause).await;
            writer.write_all(frame).await?;
        }
        // At-least-once delivery stress: the client sees the reply twice.
        FrameFault::Duplicate => {
            writer.write_all(frame).await?;
            writer.write_all(frame).await?;
        }
        FrameFault::Truncate => {
            let half = frame.get(..frame.len() / 2).unwrap_or_default();
            writer.write_all(half).await?;
            return Ok(false);
        }
    }
    Ok(true)
}

/// Read one `\n`-terminated line into `buf` (newline excluded). Returns
/// `false` on clean EOF, errors out when a line exceeds `cap` — unlike
/// `read_line`, a hostile newline-free stream cannot buffer unboundedly.
async fn read_capped_line<R: AsyncBufRead + Unpin>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    cap: usize,
) -> io::Result<bool> {
    buf.clear();
    loop {
        let chunk = reader.fill_buf().await?;
        if chunk.is_empty() {
            return Ok(!buf.is_empty());
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(chunk.get(..pos).unwrap_or_default());
            reader.consume(pos + 1);
            return Ok(true);
        }
        let len = chunk.len();
        buf.extend_from_slice(chunk);
        reader.consume(len);
        if buf.len() > cap {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "request line too long"));
        }
    }
}

fn error_line(message: &str) -> String {
    error_into(String::new(), message)
}

/// [`error_line`] into a recycled buffer.
fn error_into(buf: String, message: &str) -> String {
    JsonObj::reuse(buf).bool("ok", false).str("error", message).finish()
}

/// An error line carrying `"retriable": true` — the client should back
/// off and try again (overload / connection-limit sheds, not bad input).
fn retriable_error_line(message: &str) -> String {
    JsonObj::new()
        .bool("ok", false)
        .bool("retriable", true)
        .str("error", message)
        .finish()
}

fn serve_error(buf: String, err: &ServeError) -> String {
    if err.retriable() {
        JsonObj::reuse(buf)
            .bool("ok", false)
            .bool("retriable", true)
            .str("error", &err.to_string())
            .finish()
    } else {
        error_into(buf, &err.to_string())
    }
}

/// Answer one request line into the connection's recycled buffers. Pure
/// with respect to the connection: all service state lives behind the
/// handle; `bufs` only carries allocations between turns.
async fn respond(handle: &ServiceHandle, request: &str, bufs: &mut ConnBuffers) -> String {
    let out = std::mem::take(&mut bufs.out);
    let trimmed = request.trim();
    if trimmed.is_empty() {
        return error_into(out, "empty request");
    }
    let obj = match json::parse_flat(trimmed) {
        Ok(obj) => obj,
        Err(e) => return error_into(out, &format!("malformed request: {e}")),
    };
    let Some(op) = json::get_str(&obj, "op") else {
        return error_into(out, "missing \"op\" field");
    };
    match op {
        // The epoch runs on the epoch thread; only the wait would block,
        // so it is pushed off the async worker.
        "epoch" => {
            let handle = handle.clone();
            match tokio::task::spawn_blocking(move || handle.run_epoch_now()).await {
                Ok(Ok(outcome)) => JsonObj::reuse(out)
                    .bool("ok", true)
                    .int("epoch", outcome.epoch)
                    .bool("published", outcome.published)
                    .int("live_version", outcome.live_version)
                    .int("cycles", outcome.cycles as u64)
                    .num("wall_ms", outcome.wall_ms)
                    .finish(),
                Ok(Err(e)) => serve_error(out, &e),
                Err(_) => error_into(out, "epoch task failed"),
            }
        }
        _ => respond_sync(handle, op, &obj, out, bufs),
    }
}

fn respond_sync(
    handle: &ServiceHandle,
    op: &str,
    obj: &json::FlatObject,
    out: String,
    bufs: &mut ConnBuffers,
) -> String {
    match op {
        "ping" => {
            let snap = handle.snapshot();
            JsonObj::reuse(out)
                .bool("ok", true)
                .int("n", handle.n() as u64)
                .int("version", snap.version)
                .finish()
        }
        "score" => {
            let Some(peer) = json::get_index(obj, "peer") else {
                return error_into(out, "score needs an integer \"peer\"");
            };
            match handle.get_score(NodeId(peer)) {
                Ok(view) => JsonObj::reuse(out)
                    .bool("ok", true)
                    .int("peer", view.peer.0 as u64)
                    .num("score", view.score)
                    .int("version", view.version)
                    .int("epoch", view.epoch)
                    .finish(),
                Err(e) => serve_error(out, &e),
            }
        }
        "rank" => {
            let Some(peer) = json::get_index(obj, "peer") else {
                return error_into(out, "rank needs an integer \"peer\"");
            };
            match handle.rank_of(NodeId(peer)) {
                Ok(view) => JsonObj::reuse(out)
                    .bool("ok", true)
                    .int("peer", view.peer.0 as u64)
                    .int("exact_rank", view.exact_rank as u64)
                    .int("bloom_level", view.bloom_level as u64)
                    .int("levels", view.levels as u64)
                    .int("version", view.version)
                    .finish(),
                Err(e) => serve_error(out, &e),
            }
        }
        "top_k" => {
            let Some(k) = json::get_index(obj, "k") else {
                return error_into(out, "top_k needs an integer \"k\"");
            };
            let view = handle.top_k(k as usize);
            // The peers array renders straight into the response buffer —
            // no per-request scratch `String`.
            JsonObj::reuse(out)
                .bool("ok", true)
                .int("version", view.version)
                .raw_with("peers", |dst| {
                    dst.push('[');
                    for (i, (id, score)) in view.peers.iter().enumerate() {
                        if i > 0 {
                            dst.push(',');
                        }
                        let _ = write!(dst, "[{},{}]", id.0, score);
                    }
                    dst.push(']');
                })
                .finish()
        }
        // The full Prometheus exposition, escaped into one JSON string —
        // same text the GT_METRICS_ADDR scrape listener serves.
        "metrics" => JsonObj::reuse(out)
            .bool("ok", true)
            .str("metrics", &handle.metrics_text())
            .finish(),
        "stats" => {
            let report = handle.stats_report();
            JsonObj::reuse(out)
                .bool("ok", true)
                .int("epochs_attempted", report.epochs_attempted)
                .int("epochs_published", report.epochs_published)
                .int("epochs_degraded", report.epochs_degraded)
                .int("epochs_panicked", report.epochs_panicked)
                .int("epochs_overrun", report.epochs_overrun)
                .int("queries_served", report.queries_served)
                .int("requests_shed", report.requests_shed)
                .int("conns_rejected", report.conns_rejected)
                .int("conns_timed_out", report.conns_timed_out)
                .int("wal_replayed_records", report.wal_replayed_records)
                .int("wal_appended_records", report.wal_appended_records)
                .int("events_ingested", handle.events_ingested())
                .int("gossip_steps", report.gossip.steps)
                .int("gossip_messages_sent", report.gossip.messages_sent)
                .int("gossip_messages_dropped", report.gossip.messages_dropped)
                .int("gossip_triplets_sent", report.gossip.triplets_sent)
                .num("last_epoch_wall_ms", report.last_epoch_wall_ms)
                .finish()
        }
        "feedback" => {
            let (Some(rater), Some(target), Some(score)) = (
                json::get_index(obj, "rater"),
                json::get_index(obj, "target"),
                json::get_num(obj, "score"),
            ) else {
                return error_into(
                    out,
                    "feedback needs integer \"rater\"/\"target\" and numeric \"score\"",
                );
            };
            match handle.record(NodeId(rater), NodeId(target), score) {
                Ok(()) => JsonObj::reuse(out)
                    .bool("ok", true)
                    .int("events", handle.events_ingested())
                    .finish(),
                Err(e) => serve_error(out, &e),
            }
        }
        "batch" => {
            let Some(hex) = json::get_str(obj, "data") else {
                return error_into(out, "batch needs a hex \"data\" field");
            };
            if !hex_decode_into(hex, &mut bufs.batch_bytes) {
                return error_into(out, "batch data is not valid hex");
            }
            let Some(batch) = FeedbackBatch::decode(&bufs.batch_bytes) else {
                return error_into(out, "batch data is not a valid FeedbackBatch frame");
            };
            bufs.ratings.clear();
            bufs.ratings
                .extend(batch.ratings.iter().map(|&(t, s)| (NodeId(t), s)));
            match handle.record_batch(NodeId(batch.rater), &bufs.ratings) {
                Ok(()) => JsonObj::reuse(out)
                    .bool("ok", true)
                    .int("accepted", bufs.ratings.len() as u64)
                    .int("events", handle.events_ingested())
                    .finish(),
                Err(e) => serve_error(out, &e),
            }
        }
        other => error_into(out, &format!("unknown op {other:?}")),
    }
}

/// Hex-encode bytes (lowercase), for framing `FeedbackBatch` into JSON.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Decode lowercase/uppercase hex; `None` on odd length or non-hex bytes.
pub fn hex_decode(hex: &str) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    if hex_decode_into(hex, &mut out) {
        Some(out)
    } else {
        None
    }
}

/// [`hex_decode`] into a recycled buffer (cleared first); `false` on odd
/// length or non-hex bytes.
pub fn hex_decode_into(hex: &str, out: &mut Vec<u8>) -> bool {
    out.clear();
    if !hex.len().is_multiple_of(2) {
        return false;
    }
    let digits = hex.as_bytes();
    out.reserve(digits.len() / 2);
    for pair in digits.chunks_exact(2) {
        let &[hi, lo] = pair else { return false };
        let (Some(hi), Some(lo)) = ((hi as char).to_digit(16), (lo as char).to_digit(16)) else {
            return false;
        };
        out.push((hi * 16 + lo) as u8);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ReputationService, ServiceConfig};
    use tokio::io::AsyncReadExt;

    fn start_ring(n: usize) -> ReputationService {
        let service = ReputationService::start(ServiceConfig::new(n));
        let h = service.handle();
        for i in 0..n {
            h.record(NodeId::from_index(i), NodeId::from_index((i + 1) % n), 2.0)
                .expect("in range");
        }
        service
    }

    async fn request(stream: &mut TcpStream, line: &str) -> json::FlatObject {
        stream.write_all(line.as_bytes()).await.expect("write");
        stream.write_all(b"\n").await.expect("write newline");
        let mut response = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            stream.read_exact(&mut byte).await.expect("read");
            if byte[0] == b'\n' {
                break;
            }
            response.push(byte[0]);
        }
        json::parse_flat(std::str::from_utf8(&response).expect("utf-8")).expect("valid response")
    }

    fn is_ok(obj: &json::FlatObject) -> bool {
        obj.iter()
            .any(|(k, v)| k == "ok" && *v == json::JsonScalar::Bool(true))
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn tcp_protocol_end_to_end() {
        let service = start_ring(12);
        let listener = TcpListener::bind("127.0.0.1:0").await.expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = tokio::spawn(serve_on(service.handle(), listener));

        let mut stream = TcpStream::connect(addr).await.expect("connect");
        let pong = request(&mut stream, "{\"op\":\"ping\"}").await;
        assert!(is_ok(&pong));
        assert_eq!(json::get_index(&pong, "n"), Some(12));

        let epoch = request(&mut stream, "{\"op\":\"epoch\"}").await;
        assert!(is_ok(&epoch));
        assert_eq!(json::get_index(&epoch, "live_version"), Some(1));

        let score = request(&mut stream, "{\"op\":\"score\",\"peer\":3}").await;
        assert!(is_ok(&score));
        assert_eq!(json::get_index(&score, "version"), Some(1));
        assert!(json::get_num(&score, "score").expect("score field") > 0.0);

        let rank = request(&mut stream, "{\"op\":\"rank\",\"peer\":3}").await;
        assert!(is_ok(&rank));
        assert!(json::get_index(&rank, "exact_rank").expect("rank field") < 12);

        let top = request(&mut stream, "{\"op\":\"top_k\",\"k\":3}").await;
        assert!(is_ok(&top));

        // A bad request errors but keeps the connection usable.
        let bad = request(&mut stream, "{\"op\":\"score\",\"peer\":99}").await;
        assert!(!is_ok(&bad));
        assert!(json::get_str(&bad, "error")
            .expect("error field")
            .contains("unknown peer"));
        let still_alive = request(&mut stream, "{\"op\":\"ping\"}").await;
        assert!(is_ok(&still_alive));

        server.abort();
        service.shutdown();
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn feedback_and_batch_ingest_over_tcp() {
        let service = start_ring(8);
        let listener = TcpListener::bind("127.0.0.1:0").await.expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = tokio::spawn(serve_on(service.handle(), listener));

        let mut stream = TcpStream::connect(addr).await.expect("connect");
        let before = service.handle().events_ingested();
        let single =
            request(&mut stream, "{\"op\":\"feedback\",\"rater\":1,\"target\":2,\"score\":1.5}")
                .await;
        assert!(is_ok(&single));

        let frame = FeedbackBatch { rater: 3, epoch_hint: 0, ratings: vec![(4, 1.0), (5, 2.0)] };
        let line = JsonObj::new()
            .str("op", "batch")
            .str("data", &hex_encode(&frame.encode()))
            .finish();
        let batch = request(&mut stream, &line).await;
        assert!(is_ok(&batch));
        assert_eq!(json::get_index(&batch, "accepted"), Some(2));
        assert_eq!(service.handle().events_ingested(), before + 3);

        let garbage = request(&mut stream, "{\"op\":\"batch\",\"data\":\"zz\"}").await;
        assert!(!is_ok(&garbage));
        let malformed = request(&mut stream, "not json at all").await;
        assert!(!is_ok(&malformed));

        server.abort();
        service.shutdown();
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn slow_loris_connections_are_reaped_by_the_read_deadline() {
        let service = start_ring(8);
        let listener = TcpListener::bind("127.0.0.1:0").await.expect("bind");
        let addr = listener.local_addr().expect("addr");
        let config =
            ServerConfig { read_timeout: Duration::from_millis(50), ..ServerConfig::default() };
        let server = tokio::spawn(serve_on_with(service.handle(), listener, config));

        let mut stream = TcpStream::connect(addr).await.expect("connect");
        // A partial request line, then silence: the classic slow loris.
        stream.write_all(b"{\"op\":\"pi").await.expect("write");
        let mut closing = Vec::new();
        tokio::time::timeout(Duration::from_secs(5), stream.read_to_end(&mut closing))
            .await
            .expect("server must reap the stalled connection")
            .expect("read");
        assert!(
            String::from_utf8_lossy(&closing).contains("read timeout"),
            "the reap is announced before the close"
        );
        assert_eq!(service.handle().stats_report().conns_timed_out, 1);

        // A fresh, honest connection still gets served.
        let mut stream = TcpStream::connect(addr).await.expect("connect");
        assert!(is_ok(&request(&mut stream, "{\"op\":\"ping\"}").await));

        server.abort();
        service.shutdown();
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn oversize_lines_are_refused_with_an_error_line() {
        let service = start_ring(8);
        let listener = TcpListener::bind("127.0.0.1:0").await.expect("bind");
        let addr = listener.local_addr().expect("addr");
        let config = ServerConfig { max_line_bytes: 64, ..ServerConfig::default() };
        let server = tokio::spawn(serve_on_with(service.handle(), listener, config));

        let mut stream = TcpStream::connect(addr).await.expect("connect");
        stream.write_all(&[b'x'; 256]).await.expect("write");
        let mut closing = Vec::new();
        tokio::time::timeout(Duration::from_secs(5), stream.read_to_end(&mut closing))
            .await
            .expect("server must refuse the oversize line")
            .expect("read");
        assert!(String::from_utf8_lossy(&closing).contains("request line too long"));

        server.abort();
        service.shutdown();
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn connection_limit_sheds_with_a_retriable_error() {
        let service = start_ring(8);
        let listener = TcpListener::bind("127.0.0.1:0").await.expect("bind");
        let addr = listener.local_addr().expect("addr");
        let config = ServerConfig { max_conns: 1, ..ServerConfig::default() };
        let server = tokio::spawn(serve_on_with(service.handle(), listener, config));

        let mut first = TcpStream::connect(addr).await.expect("connect");
        assert!(is_ok(&request(&mut first, "{\"op\":\"ping\"}").await));

        // The second concurrent connection is shed at accept: the server
        // volunteers one rejection line and closes (the client writes
        // nothing, so the close is a clean EOF, not a reset).
        let mut second = TcpStream::connect(addr).await.expect("connect");
        let mut rejection = Vec::new();
        tokio::time::timeout(Duration::from_secs(5), second.read_to_end(&mut rejection))
            .await
            .expect("rejection must arrive promptly")
            .expect("read");
        let shed = json::parse_flat(String::from_utf8_lossy(&rejection).trim())
            .expect("rejection is one valid JSON line");
        assert!(!is_ok(&shed));
        assert!(json::get_str(&shed, "error")
            .expect("error field")
            .contains("connection limit"));
        assert!(
            shed.iter()
                .any(|(k, v)| k == "retriable" && *v == json::JsonScalar::Bool(true)),
            "the shed must be advertised as retriable"
        );
        assert_eq!(service.handle().stats_report().conns_rejected, 1);

        // Closing the first connection frees the slot (the guard decrements
        // on task exit, so poll briefly). Rejected retries are tolerated,
        // not fatal — exactly how a backing-off client would behave.
        drop(first);
        let mut served = false;
        for _ in 0..100 {
            let mut retry = TcpStream::connect(addr).await.expect("connect");
            if retry.write_all(b"{\"op\":\"ping\"}\n").await.is_err() {
                tokio::time::sleep(Duration::from_millis(10)).await;
                continue;
            }
            let mut reply = Vec::new();
            let read = tokio::time::timeout(Duration::from_secs(5), async {
                let mut byte = [0u8; 1];
                loop {
                    match retry.read_exact(&mut byte).await {
                        Ok(_) if byte[0] == b'\n' => return true,
                        Ok(_) => reply.push(byte[0]),
                        Err(_) => return false,
                    }
                }
            })
            .await;
            if read == Ok(true) && String::from_utf8_lossy(&reply).contains("\"ok\":true") {
                served = true;
                break;
            }
            tokio::time::sleep(Duration::from_millis(10)).await;
        }
        assert!(served, "a freed slot must admit a retrying client");

        server.abort();
        service.shutdown();
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn metrics_verb_returns_the_exposition() {
        let service = start_ring(8);
        let listener = TcpListener::bind("127.0.0.1:0").await.expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = tokio::spawn(serve_on(service.handle(), listener));

        let mut stream = TcpStream::connect(addr).await.expect("connect");
        assert!(is_ok(&request(&mut stream, "{\"op\":\"epoch\"}").await));
        assert!(is_ok(&request(&mut stream, "{\"op\":\"score\",\"peer\":3}").await));
        let reply = request(&mut stream, "{\"op\":\"metrics\"}").await;
        assert!(is_ok(&reply));
        let text = json::get_str(&reply, "metrics").expect("metrics field");
        for name in [
            "gt_request_latency_ns",
            "gt_query_latency_ns",
            "gt_ingest_latency_ns",
            "gt_epoch_fold_ns",
            "gt_epochs_published_total",
            "gt_requests_shed_total",
        ] {
            assert!(text.contains(name), "exposition is missing {name}:\n{text}");
        }
        // The epoch and query above must already show up in the histograms.
        assert!(text.contains("gt_query_latency_ns_count 1"), "query was timed:\n{text}");
        assert!(text.contains("gt_epochs_published_total 1"), "epoch was counted:\n{text}");

        server.abort();
        service.shutdown();
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn scrape_listener_speaks_enough_http() {
        let service = start_ring(8);
        let listener = TcpListener::bind("127.0.0.1:0").await.expect("bind");
        let addr = listener.local_addr().expect("addr");
        let scraper = tokio::spawn(serve_metrics_on(service.handle(), listener));
        service.handle().run_epoch_now().expect("epoch runs");

        let mut stream = TcpStream::connect(addr).await.expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n")
            .await
            .expect("write request");
        let mut raw = Vec::new();
        tokio::time::timeout(Duration::from_secs(5), stream.read_to_end(&mut raw))
            .await
            .expect("scrape must answer promptly")
            .expect("read");
        let response = String::from_utf8(raw).expect("utf-8");
        let (head, body) = response.split_once("\r\n\r\n").expect("header separator");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "status line: {head}");
        assert!(head.contains("text/plain; version=0.0.4"), "content type: {head}");
        let advertised: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("content length")
            .parse()
            .expect("numeric length");
        assert_eq!(advertised, body.len(), "Content-Length matches the body");
        assert!(body.contains("gt_epoch_fold_ns"), "exposition body:\n{body}");
        assert!(body.contains("gt_wal_fsync_ns"), "exposition body:\n{body}");

        scraper.abort();
        service.shutdown();
    }

    #[test]
    fn hex_roundtrip() {
        let bytes = [0u8, 1, 0xab, 0xff, 0x10];
        assert_eq!(hex_decode(&hex_encode(&bytes)).expect("valid"), bytes);
        assert!(hex_decode("abc").is_none(), "odd length rejected");
        assert!(hex_decode("zz").is_none(), "non-hex rejected");
    }
}
