//! Property-based tests for the Bloom-filter storage layer.

use gossiptrust_core::vector::ReputationVector;
use gossiptrust_storage::{BloomFilter, CountingBloomFilter, RankStorage, RankStorageConfig};
use proptest::prelude::*;

proptest! {
    /// Bloom filters never produce false negatives.
    #[test]
    fn bloom_no_false_negatives(
        keys in proptest::collection::hash_set(any::<u64>(), 1..500),
        fp in 0.001f64..0.2,
    ) {
        let mut f = BloomFilter::with_rate(keys.len(), fp);
        for &k in &keys {
            f.insert(k);
        }
        for &k in &keys {
            prop_assert!(f.contains(k), "false negative for {}", k);
        }
    }

    /// Counting filters: removal of inserted keys never breaks membership
    /// of the keys that remain.
    #[test]
    fn counting_removal_preserves_others(
        keep in proptest::collection::hash_set(any::<u64>(), 1..200),
        drop in proptest::collection::hash_set(any::<u64>(), 1..200),
    ) {
        let drop: Vec<u64> = drop.difference(&keep).copied().collect();
        let mut f = CountingBloomFilter::with_rate(keep.len() + drop.len() + 8, 0.01);
        for &k in &keep {
            f.insert(k);
        }
        for &k in &drop {
            f.insert(k);
        }
        for &k in &drop {
            f.remove(k);
        }
        for &k in &keep {
            prop_assert!(f.contains(k), "removal broke remaining key {}", k);
        }
    }

    /// Rank storage: level assignments are promotion-only (a false positive
    /// can only improve a peer's apparent rank) and every queried level is
    /// in range.
    #[test]
    fn rank_storage_promotion_only(
        weights in proptest::collection::vec(0.01f64..10.0, 8..120),
        levels in 2usize..8,
        fp in 0.001f64..0.1,
    ) {
        let n = weights.len();
        let levels = levels.min(n);
        let v = ReputationVector::from_weights(weights).unwrap();
        let storage = RankStorage::build(&v, RankStorageConfig { levels, fp_rate: fp });
        let per_bucket = n.div_ceil(levels);
        for (true_rank, &id) in v.ranking().iter().enumerate() {
            let true_level = true_rank / per_bucket;
            let stored = storage.rank_level(id);
            prop_assert!(stored < levels);
            prop_assert!(stored <= true_level, "{}: stored {} > true {}", id, stored, true_level);
        }
    }
}
