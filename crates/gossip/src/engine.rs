//! Algorithm 2 (inner loop) — the vectorized gossip engine.
//!
//! Runs `n` push-sum instances concurrently: node `i`'s state is the pair of
//! length-`n` arrays `x_i[·]`, `w_i[·]` — the paper's reputation vector of
//! triplets `⟨x_j, j, w_j⟩` in struct-of-arrays form. One [`VectorGossipEngine::step`]
//! models a gossip step: every alive node keeps half of its vector and
//! pushes the other half to a random node; all pushes of a step are merged
//! synchronously.
//!
//! The engine supports fault injection (message loss, dead nodes) used by
//! the robustness experiments, and full instrumentation.
//!
//! ## Convergence detection
//!
//! Node `i` considers itself converged when
//!
//! 1. every component's consensus factor `w_j > 0` (otherwise the estimate
//!    is the paper's `∞` case),
//! 2. the maximum *relative* change of its estimates since the previous
//!    step is ≤ ε, for `patience` consecutive steps, and
//! 3. at least `min_steps` (default `⌈log₂ n⌉`) steps have elapsed, since
//!    push-sum needs that long for weights to spread at all.
//!
//! The relative (rather than absolute) change matches §3's accuracy goal —
//! "the estimated score `v` within `[(1−ε)v, (1+ε)v]`" — and keeps the
//! detector scale-free as `n` grows (global scores shrink like `1/n`).

use crate::chooser::TargetChooser;
use crate::stats::GossipStats;
use gossiptrust_core::id::NodeId;
use gossiptrust_core::matrix::TrustMatrix;
use gossiptrust_core::params::Params;
use gossiptrust_core::power_nodes::Prior;
use gossiptrust_core::vector::ReputationVector;
use rand::Rng;

/// Tuning knobs of the vector gossip engine.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineConfig {
    /// Gossip error threshold `ε`.
    pub epsilon: f64,
    /// Consecutive below-`ε` steps required (≥ 1).
    pub patience: usize,
    /// Minimum steps before convergence may be declared.
    pub min_steps: usize,
    /// Hard step budget for one aggregation cycle.
    pub max_steps: usize,
    /// Probability that a pushed message is lost in transit.
    pub loss_rate: f64,
    /// How many leading steps of each cycle gossip disturbers forge in
    /// (see [`VectorGossipEngine::set_corruption`]). Push-sum has no
    /// damping, so an attacker forging *every* step inflates without
    /// bound and the cycle never converges; a bounded window leaves a
    /// fixed phantom bias the consensus settles on.
    pub corruption_steps: usize,
}

impl EngineConfig {
    /// Derive from [`Params`] for an `n`-node network
    /// (`min_steps = ⌈log₂ n⌉`).
    pub fn from_params(params: &Params, n: usize) -> Self {
        EngineConfig {
            epsilon: params.epsilon,
            patience: params.gossip_patience,
            min_steps: (n.max(2) as f64).log2().ceil() as usize,
            max_steps: params.max_gossip_steps,
            loss_rate: 0.0,
            corruption_steps: 3,
        }
    }

    /// Builder-style setter for the message loss rate.
    pub fn with_loss_rate(mut self, loss_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss_rate), "loss rate must be in [0,1]");
        self.loss_rate = loss_rate;
        self
    }
}

/// Outcome of a single gossip step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepOutcome {
    /// True when every alive node's detector has fired (and `min_steps`
    /// elapsed).
    pub all_converged: bool,
    /// Maximum relative estimate change observed across alive nodes in this
    /// step (`f64::INFINITY` while any estimate is still undefined).
    pub max_change: f64,
}

/// The synchronous-round vector gossip engine.
#[derive(Clone, Debug)]
pub struct VectorGossipEngine {
    n: usize,
    config: EngineConfig,
    // Current state, per node: x[i], w[i] are length-n arrays.
    xs: Vec<Vec<f64>>,
    ws: Vec<Vec<f64>>,
    // Double buffers for the synchronous merge.
    next_xs: Vec<Vec<f64>>,
    next_ws: Vec<Vec<f64>>,
    // Convergence tracking.
    prev_beta: Vec<Vec<f64>>, // NaN = undefined
    streaks: Vec<usize>,
    alive: Vec<bool>,
    // Gossip disturbance: per-node list of components whose pushed x the
    // node inflates, and the inflation factor (None = honest sender).
    corruption: Vec<Option<(Vec<u32>, f64)>>,
    stats: GossipStats,
    step_idx: usize,
}

impl VectorGossipEngine {
    /// Engine with all state zeroed; call [`seed`](Self::seed) before
    /// stepping.
    pub fn new(n: usize, config: EngineConfig) -> Self {
        assert!(n >= 2, "gossip needs at least two nodes");
        assert!(config.patience >= 1, "patience must be >= 1");
        VectorGossipEngine {
            n,
            config,
            xs: vec![vec![0.0; n]; n],
            ws: vec![vec![0.0; n]; n],
            next_xs: vec![vec![0.0; n]; n],
            next_ws: vec![vec![0.0; n]; n],
            prev_beta: vec![vec![f64::NAN; n]; n],
            streaks: vec![0; n],
            alive: vec![true; n],
            corruption: vec![None; n],
            stats: GossipStats::default(),
            step_idx: 0,
        }
    }

    /// Make `node` a *gossip disturber*: every pair it pushes has the `x`
    /// values of `targets` multiplied by `factor` (> 1 injects phantom
    /// reputation mass for those components — the "disturbance by
    /// malicious peers" the paper's robustness experiments measure; the
    /// node's own retained half stays honest, so the corruption is pure
    /// message forgery). `factor = 1` or an empty target list restores
    /// honesty.
    pub fn set_corruption(&mut self, node: NodeId, targets: Vec<u32>, factor: f64) {
        assert!(factor >= 0.0, "factor must be non-negative");
        assert!(
            targets.iter().all(|&t| (t as usize) < self.n),
            "corruption target out of range"
        );
        if targets.is_empty() || factor == 1.0 {
            self.corruption[node.index()] = None;
        } else {
            self.corruption[node.index()] = Some((targets, factor));
        }
    }

    /// Seed a new aggregation cycle per Algorithm 2, lines 5–11, with the
    /// greedy-factor mixing folded into the weighted scores:
    ///
    /// ```text
    /// x_i[j] ← v_i(t−1) · [ (1−α)·s_ij + α·p_j ]
    /// w_i[j] ← 1  iff  j == i
    /// ```
    ///
    /// Summed over `i` this yields `(1−α)(Sᵀ·V)_j + α·p_j` because
    /// `Σ_i v_i = 1`, i.e. exactly one centralized iteration of Eq. 2.
    pub fn seed(&mut self, matrix: &TrustMatrix, v_prev: &ReputationVector, prior: &Prior, alpha: f64) {
        assert_eq!(matrix.n(), self.n, "matrix size mismatch");
        assert_eq!(v_prev.n(), self.n, "vector size mismatch");
        assert_eq!(prior.n(), self.n, "prior size mismatch");
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        let p = prior.to_dense();
        for i in 0..self.n {
            let id = NodeId::from_index(i);
            let vi = v_prev.score(id);
            let xi = &mut self.xs[i];
            // α-jump share, spread per the prior.
            for (x, &pj) in xi.iter_mut().zip(&p) {
                *x = vi * alpha * pj;
            }
            // (1−α) share along the trust row.
            if matrix.row_is_dangling(id) {
                let share = vi * (1.0 - alpha) / self.n as f64;
                for x in xi.iter_mut() {
                    *x += share;
                }
            } else {
                let (cols, vals) = matrix.row(id);
                for (&c, &s) in cols.iter().zip(vals) {
                    xi[c as usize] += vi * (1.0 - alpha) * s;
                }
            }
            let wi = &mut self.ws[i];
            wi.fill(0.0);
            wi[i] = 1.0;
            self.prev_beta[i].fill(f64::NAN);
            self.streaks[i] = 0;
        }
        self.step_idx = 0;
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> GossipStats {
        self.stats
    }

    /// Mark a node dead: it stops sending and receiving; pushes addressed to
    /// it are lost. Its state is frozen (the mass it holds leaves the
    /// computation — exactly what a crash does to push-sum).
    pub fn kill(&mut self, node: NodeId) {
        self.alive[node.index()] = false;
    }

    /// Revive a node (it re-enters gossip with its frozen state).
    pub fn revive(&mut self, node: NodeId) {
        self.alive[node.index()] = true;
    }

    /// Whether `node` is alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Total `(Σx[j], Σw[j])` over all nodes for component `j` — conserved
    /// while no messages are lost and no nodes die.
    pub fn component_mass(&self, j: NodeId) -> (f64, f64) {
        let mut x = 0.0;
        let mut w = 0.0;
        for i in 0..self.n {
            x += self.xs[i][j.index()];
            w += self.ws[i][j.index()];
        }
        (x, w)
    }

    /// Node `i`'s current estimate of the full score vector:
    /// `β_j = x_j/w_j`, with 0 where `w_j = 0` (no information yet).
    pub fn extract(&self, i: NodeId) -> Vec<f64> {
        self.xs[i.index()]
            .iter()
            .zip(&self.ws[i.index()])
            .map(|(&x, &w)| if w > 0.0 { x / w } else { 0.0 })
            .collect()
    }

    /// The mean of all alive nodes' estimates — the lowest-variance readout
    /// of the consensus, used by the cycle driver.
    pub fn mean_estimate(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.n];
        let mut count = 0usize;
        for i in 0..self.n {
            if !self.alive[i] {
                continue;
            }
            count += 1;
            for (a, (&x, &w)) in acc.iter_mut().zip(self.xs[i].iter().zip(&self.ws[i])) {
                if w > 0.0 {
                    *a += x / w;
                }
            }
        }
        assert!(count > 0, "no alive nodes");
        for a in acc.iter_mut() {
            *a /= count as f64;
        }
        acc
    }

    /// Maximum over components of (max−min) spread of estimates across
    /// alive nodes — a global consensus-quality oracle used in tests.
    pub fn consensus_spread(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for j in 0..self.n {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for i in 0..self.n {
                if !self.alive[i] {
                    continue;
                }
                let w = self.ws[i][j];
                let b = if w > 0.0 { self.xs[i][j] / w } else { return f64::INFINITY };
                lo = lo.min(b);
                hi = hi.max(b);
            }
            worst = worst.max(hi - lo);
        }
        worst
    }

    /// Execute one synchronous gossip step.
    pub fn step<C: TargetChooser, R: Rng + ?Sized>(&mut self, chooser: &C, rng: &mut R) -> StepOutcome {
        let n = self.n;
        // Phase 1: retained halves into the double buffer.
        for i in 0..n {
            if self.alive[i] {
                for (nx, &x) in self.next_xs[i].iter_mut().zip(&self.xs[i]) {
                    *nx = 0.5 * x;
                }
                for (nw, &w) in self.next_ws[i].iter_mut().zip(&self.ws[i]) {
                    *nw = 0.5 * w;
                }
            } else {
                // Frozen state carries over unchanged.
                self.next_xs[i].copy_from_slice(&self.xs[i]);
                self.next_ws[i].copy_from_slice(&self.ws[i]);
            }
        }
        // Phase 2: pushes, reading the immutable pre-step state.
        for i in 0..n {
            if !self.alive[i] {
                continue;
            }
            let t = chooser.choose(i, self.step_idx, n, rng);
            self.stats.messages_sent += 1;
            self.stats.triplets_sent += n as u64;
            let lost = !self.alive[t]
                || (self.config.loss_rate > 0.0 && rng.random::<f64>() < self.config.loss_rate);
            if lost {
                self.stats.messages_dropped += 1;
                continue;
            }
            // Deliver the sender's pushed half (= half of its pre-step state).
            let (src_x, src_w) = (&self.xs[i], &self.ws[i]);
            let dst_x = &mut self.next_xs[t];
            let dst_w = &mut self.next_ws[t];
            for (d, &s) in dst_x.iter_mut().zip(src_x) {
                *d += 0.5 * s;
            }
            for (d, &s) in dst_w.iter_mut().zip(src_w) {
                *d += 0.5 * s;
            }
            // Gossip disturbance: the forged extra mass on top of the
            // honest half (the receiver cannot tell — only signatures on
            // *values* could, and push-sum values are sender-claimed).
            // Forging is confined to the first `corruption_steps` of the
            // cycle (see `EngineConfig::corruption_steps`).
            if self.step_idx < self.config.corruption_steps {
                if let Some((targets, factor)) = &self.corruption[i] {
                    for &j in targets {
                        dst_x[j as usize] += 0.5 * src_x[j as usize] * (factor - 1.0);
                    }
                }
            }
        }
        std::mem::swap(&mut self.xs, &mut self.next_xs);
        std::mem::swap(&mut self.ws, &mut self.next_ws);
        self.step_idx += 1;
        self.stats.steps += 1;

        // Phase 3: convergence bookkeeping.
        let mut max_change: f64 = 0.0;
        let mut all = true;
        for i in 0..n {
            if !self.alive[i] {
                continue;
            }
            let mut node_change: f64 = 0.0;
            let mut defined = true;
            for j in 0..n {
                let w = self.ws[i][j];
                if w > 0.0 {
                    let beta = self.xs[i][j] / w;
                    let prev = self.prev_beta[i][j];
                    if prev.is_nan() {
                        node_change = f64::INFINITY;
                    } else {
                        let denom = beta.abs().max(f64::MIN_POSITIVE);
                        node_change = node_change.max((beta - prev).abs() / denom);
                    }
                    self.prev_beta[i][j] = beta;
                } else {
                    defined = false;
                    self.prev_beta[i][j] = f64::NAN;
                }
            }
            if defined && node_change <= self.config.epsilon {
                self.streaks[i] += 1;
            } else {
                self.streaks[i] = 0;
            }
            max_change = max_change.max(node_change);
            if !defined {
                max_change = f64::INFINITY;
            }
            all &= self.streaks[i] >= self.config.patience;
        }
        let all_converged = all && self.step_idx >= self.config.min_steps;
        StepOutcome { all_converged, max_change }
    }

    /// Run until all alive nodes converge or the step budget is exhausted.
    /// Returns the number of steps taken in this call and whether
    /// convergence was reached.
    pub fn run<C: TargetChooser, R: Rng + ?Sized>(&mut self, chooser: &C, rng: &mut R) -> (usize, bool) {
        let mut steps = 0;
        while steps < self.config.max_steps {
            let out = self.step(chooser, rng);
            steps += 1;
            if out.all_converged {
                return (steps, true);
            }
        }
        (steps, false)
    }

    /// A data-parallel [`step`](Self::step) over `threads` crossbeam scoped
    /// threads, producing **bit-identical** results to the sequential step
    /// for the same RNG state.
    ///
    /// Determinism is preserved by splitting the step into phases whose
    /// parallel units never share writes:
    ///
    /// 1. targets and loss decisions are drawn *sequentially* (exactly the
    ///    RNG consumption order of the sequential step);
    /// 2. each node's retained half is written in parallel (per-node);
    /// 3. deliveries are grouped **by receiver** and applied in parallel
    ///    over receivers, each receiver folding its senders in ascending
    ///    order (floating-point addition order is therefore fixed);
    /// 4. convergence bookkeeping runs in parallel per node.
    pub fn par_step<C: TargetChooser, R: Rng + ?Sized>(
        &mut self,
        chooser: &C,
        rng: &mut R,
        threads: usize,
    ) -> StepOutcome {
        let n = self.n;
        let threads = threads.clamp(1, n);
        assert!(
            self.corruption.iter().all(Option::is_none),
            "par_step does not model gossip disturbance; use step()"
        );
        // Phase 0: sequential RNG draws, mirroring `step`'s order.
        // sends[i] = Some(target) if node i's push survives.
        let mut sends: Vec<Option<usize>> = vec![None; n];
        #[allow(clippy::needless_range_loop)] // index drives multiple arrays
        for i in 0..n {
            if !self.alive[i] {
                continue;
            }
            let t = chooser.choose(i, self.step_idx, n, rng);
            self.stats.messages_sent += 1;
            self.stats.triplets_sent += n as u64;
            let lost = !self.alive[t]
                || (self.config.loss_rate > 0.0 && rng.random::<f64>() < self.config.loss_rate);
            if lost {
                self.stats.messages_dropped += 1;
            } else {
                sends[i] = Some(t);
            }
        }
        // Receiver-grouped sender lists (ascending sender order per group).
        let mut senders_of: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, send) in sends.iter().enumerate() {
            if let Some(t) = send {
                senders_of[*t].push(i as u32);
            }
        }

        // Phase 1 + 2: halves and deliveries, parallel over receivers.
        {
            let xs = &self.xs;
            let ws = &self.ws;
            let alive = &self.alive;
            let chunk = n.div_ceil(threads);
            // Pair up each receiver's output row with its sender list.
            let mut work: Vec<(usize, &mut Vec<f64>, &mut Vec<f64>)> = self
                .next_xs
                .iter_mut()
                .zip(self.next_ws.iter_mut())
                .enumerate()
                .map(|(i, (nx, nw))| (i, nx, nw))
                .collect();
            crossbeam::thread::scope(|scope| {
                for batch in work.chunks_mut(chunk) {
                    let senders_of = &senders_of;
                    scope.spawn(move |_| {
                        for item in batch.iter_mut() {
                            let (i, nx, nw) = (item.0, &mut *item.1, &mut *item.2);
                            if alive[i] {
                                for (d, &s) in nx.iter_mut().zip(&xs[i]) {
                                    *d = 0.5 * s;
                                }
                                for (d, &s) in nw.iter_mut().zip(&ws[i]) {
                                    *d = 0.5 * s;
                                }
                            } else {
                                nx.copy_from_slice(&xs[i]);
                                nw.copy_from_slice(&ws[i]);
                            }
                            for &s in &senders_of[i] {
                                let s = s as usize;
                                for (d, &v) in nx.iter_mut().zip(&xs[s]) {
                                    *d += 0.5 * v;
                                }
                                for (d, &v) in nw.iter_mut().zip(&ws[s]) {
                                    *d += 0.5 * v;
                                }
                            }
                        }
                    });
                }
            })
            .expect("gossip worker panicked");
        }
        std::mem::swap(&mut self.xs, &mut self.next_xs);
        std::mem::swap(&mut self.ws, &mut self.next_ws);
        self.step_idx += 1;
        self.stats.steps += 1;

        // Phase 3: convergence bookkeeping, parallel per node.
        let epsilon = self.config.epsilon;
        let results: Vec<(bool, f64)> = {
            let xs = &self.xs;
            let ws = &self.ws;
            let alive = &self.alive;
            let chunk = n.div_ceil(threads);
            let mut out: Vec<(bool, f64)> = vec![(true, 0.0); n];
            crossbeam::thread::scope(|scope| {
                let mut rest_beta: &mut [Vec<f64>] = &mut self.prev_beta;
                let mut rest_out: &mut [(bool, f64)] = &mut out;
                let mut base = 0usize;
                while !rest_beta.is_empty() {
                    let take = chunk.min(rest_beta.len());
                    let (beta_chunk, beta_tail) = rest_beta.split_at_mut(take);
                    let (out_chunk, out_tail) = rest_out.split_at_mut(take);
                    rest_beta = beta_tail;
                    rest_out = out_tail;
                    let start = base;
                    base += take;
                    scope.spawn(move |_| {
                        for (off, (prev, slot)) in
                            beta_chunk.iter_mut().zip(out_chunk.iter_mut()).enumerate()
                        {
                            let i = start + off;
                            if !alive[i] {
                                *slot = (true, 0.0);
                                continue;
                            }
                            let mut change: f64 = 0.0;
                            let mut defined = true;
                            for j in 0..n {
                                let w = ws[i][j];
                                if w > 0.0 {
                                    let beta = xs[i][j] / w;
                                    let p = prev[j];
                                    if p.is_nan() {
                                        change = f64::INFINITY;
                                    } else {
                                        let denom = beta.abs().max(f64::MIN_POSITIVE);
                                        change = change.max((beta - p).abs() / denom);
                                    }
                                    prev[j] = beta;
                                } else {
                                    defined = false;
                                    prev[j] = f64::NAN;
                                }
                            }
                            *slot = (defined, change);
                        }
                    });
                }
            })
            .expect("gossip worker panicked");
            out
        };
        let mut max_change: f64 = 0.0;
        let mut all = true;
        #[allow(clippy::needless_range_loop)] // index drives multiple arrays
        for i in 0..n {
            if !self.alive[i] {
                continue;
            }
            let (defined, change) = results[i];
            if defined && change <= epsilon {
                self.streaks[i] += 1;
            } else {
                self.streaks[i] = 0;
            }
            max_change = max_change.max(change);
            if !defined {
                max_change = f64::INFINITY;
            }
            all &= self.streaks[i] >= self.config.patience;
        }
        let all_converged = all && self.step_idx >= self.config.min_steps;
        StepOutcome { all_converged, max_change }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chooser::UniformChooser;
    use gossiptrust_core::matrix::TrustMatrixBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star(n: usize) -> TrustMatrix {
        let mut b = TrustMatrixBuilder::new(n);
        for i in 1..n {
            b.record(NodeId::from_index(i), NodeId(0), 1.0);
        }
        b.record(NodeId(0), NodeId(1), 1.0);
        b.build()
    }

    fn config(n: usize) -> EngineConfig {
        EngineConfig::from_params(&Params::for_network(n), n)
    }

    /// One lossless gossip cycle must reproduce the exact matrix–vector
    /// product on every node.
    #[test]
    fn converges_to_exact_matvec() {
        let n = 24;
        let m = star(n);
        let v0 = ReputationVector::uniform(n);
        let prior = Prior::uniform(n);
        let alpha = 0.15;
        let mut engine = VectorGossipEngine::new(n, config(n));
        engine.seed(&m, &v0, &prior, alpha);
        let mut rng = StdRng::seed_from_u64(11);
        let (_, converged) = engine.run(&UniformChooser, &mut rng);
        assert!(converged);
        // Exact target.
        let mut exact = vec![0.0; n];
        m.transpose_mul(v0.values(), &mut exact).unwrap();
        prior.mix_into(&mut exact, alpha);
        for i in 0..n {
            let est = engine.extract(NodeId::from_index(i));
            for j in 0..n {
                let rel = (est[j] - exact[j]).abs() / exact[j].max(1e-12);
                assert!(rel < 1e-3, "node {i} comp {j}: {} vs {}", est[j], exact[j]);
            }
        }
    }

    #[test]
    fn seeding_sums_to_one_centralized_iteration() {
        let n = 10;
        let m = star(n);
        let v0 = ReputationVector::uniform(n);
        let prior = Prior::over_nodes(n, &[NodeId(0), NodeId(1)]);
        let alpha = 0.3;
        let mut engine = VectorGossipEngine::new(n, config(n));
        engine.seed(&m, &v0, &prior, alpha);
        let mut exact = vec![0.0; n];
        m.transpose_mul(v0.values(), &mut exact).unwrap();
        prior.mix_into(&mut exact, alpha);
        #[allow(clippy::needless_range_loop)] // index drives multiple arrays
        for j in 0..n {
            let (x, w) = engine.component_mass(NodeId::from_index(j));
            assert!((x - exact[j]).abs() < 1e-12, "component {j}");
            assert!((w - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mass_conserved_without_loss() {
        let n = 12;
        let m = star(n);
        let mut engine = VectorGossipEngine::new(n, config(n));
        engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.0);
        let before: Vec<(f64, f64)> = (0..n).map(|j| engine.component_mass(NodeId::from_index(j))).collect();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            engine.step(&UniformChooser, &mut rng);
        }
        for (j, &(x0, w0)) in before.iter().enumerate() {
            let (x1, w1) = engine.component_mass(NodeId::from_index(j));
            assert!((x0 - x1).abs() < 1e-12, "x mass of comp {j}");
            assert!((w0 - w1).abs() < 1e-12, "w mass of comp {j}");
        }
    }

    #[test]
    fn loss_drops_messages_but_still_converges_roughly() {
        let n = 24;
        let m = star(n);
        let cfg = config(n).with_loss_rate(0.10);
        let mut engine = VectorGossipEngine::new(n, cfg);
        engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        let mut rng = StdRng::seed_from_u64(17);
        let (_, converged) = engine.run(&UniformChooser, &mut rng);
        assert!(converged, "lossy gossip should still converge");
        assert!(engine.stats().messages_dropped > 0);
        // The ratios still approximate the exact product on average:
        // push-sum loses x and w *together*, so ratios stay roughly (not
        // exactly) unbiased; individual components can drift when the drops
        // hit a component's consensus weight early, so we check the mean.
        let mut exact = vec![0.0; n];
        m.transpose_mul(&vec![1.0 / n as f64; n], &mut exact).unwrap();
        Prior::uniform(n).mix_into(&mut exact, 0.15);
        let est = engine.mean_estimate();
        let mean_rel: f64 = (0..n)
            .map(|j| (est[j] - exact[j]).abs() / exact[j])
            .sum::<f64>()
            / n as f64;
        assert!(mean_rel < 0.35, "mean rel err {mean_rel}");
    }

    #[test]
    fn dead_node_freezes_and_others_converge() {
        let n = 16;
        let m = star(n);
        let mut engine = VectorGossipEngine::new(n, config(n));
        engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        // Let node 5's consensus weight spread before the crash; if a node
        // dies before its w seed ever leaves it, its own score component
        // becomes unaggregatable in this cycle (all of w_5 is frozen).
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..6 {
            engine.step(&UniformChooser, &mut rng);
        }
        engine.kill(NodeId(5));
        assert!(!engine.is_alive(NodeId(5)));
        let frozen = engine.extract(NodeId(5));
        let (_, converged) = engine.run(&UniformChooser, &mut rng);
        assert!(converged);
        assert_eq!(engine.extract(NodeId(5)), frozen, "dead node state must not change");
    }

    #[test]
    fn consensus_spread_shrinks() {
        let n = 16;
        let m = star(n);
        let mut engine = VectorGossipEngine::new(n, config(n));
        engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..4 {
            engine.step(&UniformChooser, &mut rng);
        }
        let early = engine.consensus_spread();
        for _ in 0..60 {
            engine.step(&UniformChooser, &mut rng);
        }
        let late = engine.consensus_spread();
        assert!(late < early || early == f64::INFINITY, "spread {early} -> {late}");
        assert!(late < 1e-3);
    }

    #[test]
    fn min_steps_is_respected() {
        let n = 8;
        let m = star(n);
        let mut cfg = config(n);
        cfg.min_steps = 20;
        let mut engine = VectorGossipEngine::new(n, cfg);
        engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        let mut rng = StdRng::seed_from_u64(31);
        let (steps, converged) = engine.run(&UniformChooser, &mut rng);
        assert!(converged);
        assert!(steps >= 20, "converged after only {steps} steps");
    }

    #[test]
    fn reseeding_resets_detectors() {
        let n = 8;
        let m = star(n);
        let mut engine = VectorGossipEngine::new(n, config(n));
        let v0 = ReputationVector::uniform(n);
        engine.seed(&m, &v0, &Prior::uniform(n), 0.15);
        let mut rng = StdRng::seed_from_u64(37);
        let (_, c1) = engine.run(&UniformChooser, &mut rng);
        assert!(c1);
        // New cycle must run again (not instantly report converged).
        engine.seed(&m, &v0, &Prior::uniform(n), 0.15);
        let out = engine.step(&UniformChooser, &mut rng);
        assert!(!out.all_converged);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_single_node() {
        let _ = VectorGossipEngine::new(1, config(2));
    }

    #[test]
    fn corrupt_sender_inflates_its_component() {
        let n = 16;
        let m = star(n);
        let run = |corrupt: bool| {
            let mut engine = VectorGossipEngine::new(n, config(n));
            engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
            if corrupt {
                engine.set_corruption(NodeId(5), vec![5], 4.0);
            }
            let mut rng = StdRng::seed_from_u64(9);
            engine.run(&UniformChooser, &mut rng);
            let est = engine.mean_estimate();
            ReputationVector::from_weights(est.iter().map(|&x| x.max(0.0)).collect()).unwrap()
        };
        let honest = run(false);
        let corrupted = run(true);
        assert!(
            corrupted.score(NodeId(5)) > honest.score(NodeId(5)) * 1.2,
            "forged mass should inflate node 5: {} vs {}",
            corrupted.score(NodeId(5)),
            honest.score(NodeId(5))
        );
    }

    #[test]
    fn corruption_can_be_cleared() {
        let n = 8;
        let mut engine = VectorGossipEngine::new(n, config(n));
        engine.set_corruption(NodeId(1), vec![1], 3.0);
        engine.set_corruption(NodeId(1), vec![], 3.0); // cleared
        engine.set_corruption(NodeId(2), vec![2], 1.0); // factor 1 = honest
        let m = star(n);
        engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        // With all corruption cleared, mass is conserved.
        let before: Vec<(f64, f64)> =
            (0..n).map(|j| engine.component_mass(NodeId::from_index(j))).collect();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            engine.step(&UniformChooser, &mut rng);
        }
        for (j, &(x0, _)) in before.iter().enumerate() {
            let (x1, _) = engine.component_mass(NodeId::from_index(j));
            assert!((x0 - x1).abs() < 1e-12, "comp {j}");
        }
    }

    #[test]
    #[should_panic(expected = "does not model gossip disturbance")]
    fn par_step_rejects_corruption() {
        let n = 8;
        let m = star(n);
        let mut engine = VectorGossipEngine::new(n, config(n));
        engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        engine.set_corruption(NodeId(1), vec![1], 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        engine.par_step(&UniformChooser, &mut rng, 2);
    }

    /// The crossbeam-parallel step must be bit-identical to the sequential
    /// step for the same RNG stream — including under loss injection and
    /// dead nodes.
    #[test]
    fn par_step_is_bit_identical_to_step() {
        let n = 32;
        let m = star(n);
        for loss in [0.0, 0.15] {
            let cfg = config(n).with_loss_rate(loss);
            let mut seq = VectorGossipEngine::new(n, cfg.clone());
            seq.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
            seq.kill(NodeId(9));
            let mut par = seq.clone();
            let mut rng_a = StdRng::seed_from_u64(77);
            let mut rng_b = StdRng::seed_from_u64(77);
            for threads in [1usize, 2, 3, 8] {
                let a = seq.step(&UniformChooser, &mut rng_a);
                let b = par.par_step(&UniformChooser, &mut rng_b, threads);
                assert_eq!(a, b, "outcome diverged (threads={threads}, loss={loss})");
                for i in 0..n {
                    let id = NodeId::from_index(i);
                    assert_eq!(seq.extract(id), par.extract(id), "node {i} state diverged");
                }
                assert_eq!(seq.stats(), par.stats());
            }
        }
    }

    #[test]
    fn par_step_converges_like_step() {
        let n = 24;
        let m = star(n);
        let mut engine = VectorGossipEngine::new(n, config(n));
        engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        let mut rng = StdRng::seed_from_u64(5);
        let mut converged = false;
        for _ in 0..engine.config().max_steps {
            if engine.par_step(&UniformChooser, &mut rng, 4).all_converged {
                converged = true;
                break;
            }
        }
        assert!(converged);
        let mut exact = vec![0.0; n];
        m.transpose_mul(&vec![1.0 / n as f64; n], &mut exact).unwrap();
        Prior::uniform(n).mix_into(&mut exact, 0.15);
        let est = engine.mean_estimate();
        for j in 0..n {
            let rel = (est[j] - exact[j]).abs() / exact[j];
            assert!(rel < 1e-3, "comp {j}: {rel}");
        }
    }
}
