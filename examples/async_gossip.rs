//! Asynchronous gossip over real message passing: spawns one tokio task
//! per peer, first over in-process channels (with 5% injected loss), then
//! over real UDP loopback sockets, with every push signed under the
//! sender's identity key.
//!
//! Run with: `cargo run --release --example async_gossip`

use gossiptrust::net::cluster::{Cluster, NetConfig};
use gossiptrust::prelude::*;
use std::time::Duration;

fn demo_matrix(n: usize) -> TrustMatrix {
    let mut b = TrustMatrixBuilder::new(n);
    for i in 1..n as u32 {
        b.record(NodeId(i), NodeId(0), 4.0);
        b.record(NodeId(i), NodeId(i % (n as u32 - 1) + 1), 1.0);
        b.record(NodeId(0), NodeId(i), 1.0);
    }
    b.build()
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let n = 24;
    let matrix = demo_matrix(n);
    let params = Params::for_network(n);

    println!("async gossip cluster: {n} tokio node tasks, signed pushes\n");

    let config = NetConfig { tick: Duration::from_millis(2), ..NetConfig::fast_local() }
        .with_seed(1)
        .with_loss_rate(0.05);
    let report = Cluster::in_memory(config).run(&matrix, &params).await;
    println!("[in-memory channels, 5% loss]");
    println!("  cycles: {}, converged: {}", report.cycles, report.converged);
    println!("  pushes sent: {}", report.pushes_sent);
    println!(
        "  auth failures: {}, stale pushes: {}",
        report.auth_failures, report.stale_pushes
    );
    println!(
        "  top peer: {}, power nodes: {:?}",
        report.vector.ranking()[0],
        report.power_nodes
    );

    let report = Cluster::udp(NetConfig::fast_local().with_seed(2))
        .run(&matrix, &params)
        .await;
    println!("\n[UDP loopback sockets]");
    println!("  cycles: {}, converged: {}", report.cycles, report.converged);
    println!("  pushes sent: {}", report.pushes_sent);
    println!("  top peer: {}", report.vector.ranking()[0]);

    // Cross-check against the exact oracle.
    let oracle = PowerIteration::new(params).solve(&matrix, &Prior::uniform(n));
    println!(
        "\noracle agrees on the top peer: {}",
        oracle.vector.ranking()[0] == report.vector.ranking()[0]
    );
}
