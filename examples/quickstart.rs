//! Quickstart: build a trust network from feedback, aggregate global
//! reputation scores with gossip, and compare against the exact
//! centralized computation.
//!
//! Run with: `cargo run --release --example quickstart`

use gossiptrust::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- 1. A small community with one well-behaved hub ------------------
    // Peers 1..8 have each had good experiences with peer 0 (say, clean
    // file downloads) and mixed experiences with their neighbors.
    let n = 8;
    let mut builder = TrustMatrixBuilder::new(n);
    for i in 1..n as u32 {
        builder.record(NodeId(i), NodeId(0), 5.0);
        builder.record(NodeId(i), NodeId(i % (n as u32 - 1) + 1), 1.0);
    }
    builder.record(NodeId(0), NodeId(3), 2.0);
    let matrix = builder.build();
    println!("trust matrix: {} peers, {} feedback entries", matrix.n(), matrix.nnz());

    // --- 2. Gossip-based aggregation (what GossipTrust actually runs) ----
    // A fixed uniform prior makes the gossip result directly comparable to
    // the oracle below; production use would keep the default adaptive
    // power-node policy (see the collusion_attack example).
    let params = Params::for_network(n);
    let mut rng = StdRng::seed_from_u64(7);
    let report = GossipTrustAggregator::new(params.clone())
        .with_prior_policy(PriorPolicy::Fixed(Prior::uniform(n)))
        .aggregate(&matrix, &mut rng);
    println!(
        "gossip aggregation: {} cycles, {} gossip steps, converged = {}",
        report.cycles,
        report.total_gossip_steps(),
        report.converged
    );

    // --- 3. The exact centralized oracle for comparison ------------------
    let oracle = PowerIteration::new(params).solve(&matrix, &Prior::uniform(n));
    println!("oracle: {} cycles, converged = {}", oracle.cycles, oracle.converged);

    println!("\npeer  gossiped  exact");
    for id in NodeId::all(n) {
        println!(
            "{:<4}  {:.4}    {:.4}",
            id.to_string(),
            report.vector.score(id),
            oracle.vector.score(id)
        );
    }
    let err = oracle.vector.rms_relative_error(&report.vector).unwrap();
    println!("\nRMS relative error vs oracle: {err:.2e}");
    println!("most reputable peer: {}", report.vector.ranking()[0]);
    println!("power nodes for the next round: {:?}", report.power_nodes);
}
