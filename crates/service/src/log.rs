//! Sharded, append-only feedback log.
//!
//! Writers call [`FeedbackLog::record`] concurrently; each rating lands in
//! the shard owning its rater and accumulates into that rater's
//! [`LocalTrust`] row. At an epoch boundary the [`crate::epoch`] loop calls
//! [`FeedbackLog::fold`], which assembles the rows into the next epoch's
//! CSR [`TrustMatrix`] without pausing ingest: each shard lock is held only
//! long enough to clone its rows, so writers on other shards never stall
//! and writers on the same shard stall only for the clone.
//!
//! Shards are striped by rater id (`shard = rater % shards`, local slot
//! `rater / shards`), so a hot sequential id range still spreads across
//! every shard. The log is append-only in the trust-semantics sense:
//! ratings only ever accumulate (negative feedback clamps at zero inside
//! [`LocalTrust::add_feedback`]); nothing is ever compacted or dropped.

use gossiptrust_core::id::NodeId;
use gossiptrust_core::local::LocalTrust;
use gossiptrust_core::matrix::TrustMatrix;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A single transaction rating: `rater` scored `target` with `score`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FeedbackEvent {
    /// The peer issuing the rating (the matrix row).
    pub rater: NodeId,
    /// The peer being rated (the matrix column).
    pub target: NodeId,
    /// Raw feedback amount added to `r_ij` (negative clamps at zero).
    pub score: f64,
}

/// One lock's worth of raters: the strided slice of `LocalTrust` rows whose
/// rater index is congruent to this shard's index modulo the shard count.
struct Shard {
    rows: Vec<LocalTrust>,
}

/// Smallest network size for which [`FeedbackLog::fold_parallel`] stripes
/// the clone sweep over scoped workers. Below this the sweep itself is
/// cheaper than the per-fold thread spawns it would be spread over.
const FOLD_STRIPE_MIN_N: usize = 256;

/// Sharded, append-only accumulation of local-trust rows for `n` peers.
pub struct FeedbackLog {
    n: usize,
    shards: Vec<Mutex<Shard>>,
    /// Total events ever recorded (monotonic, for `ServiceStats`).
    events: AtomicU64,
    /// Events that had been recorded when the most recent [`FeedbackLog::fold`]
    /// started — the drained watermark of the ingest queue. `events -
    /// folded_events` is the unfolded backlog the admission gate bounds.
    folded_events: AtomicU64,
}

impl FeedbackLog {
    /// Create a log for `n` peers striped over `shards` locks.
    ///
    /// `shards` is clamped to `1..=n.max(1)` — more shards than peers would
    /// leave empty locks around for no benefit.
    pub fn new(n: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, n.max(1));
        let shard_rows = |s: usize| {
            // Peers s, s + shards, s + 2*shards, ... — ceil((n - s) / shards).
            if s < n {
                (n - s).div_ceil(shards)
            } else {
                0
            }
        };
        let shards = (0..shards)
            .map(|s| Mutex::new(Shard { rows: vec![LocalTrust::new(); shard_rows(s)] }))
            .collect();
        Self { n, shards, events: AtomicU64::new(0), folded_events: AtomicU64::new(0) }
    }

    /// Number of peers the log covers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of ingest shards (lock granularity).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total events recorded since creation.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Events recorded since the most recent fold started — the unfolded
    /// backlog the [`crate::service`] admission gate bounds. Conservative
    /// under concurrency: events racing a fold may count as pending even
    /// though the fold picked them up, which errs toward shedding early
    /// rather than buffering past the bound.
    pub fn pending_events(&self) -> u64 {
        self.events
            .load(Ordering::Relaxed)
            .saturating_sub(self.folded_events.load(Ordering::Relaxed))
    }

    /// Record one rating. Locks only the rater's shard.
    ///
    /// # Panics
    ///
    /// Panics when `rater` or `target` is out of range for this log — an
    /// out-of-range id is a caller bug, not a runtime condition (the TCP
    /// front-end validates ids before calling in).
    pub fn record(&self, event: FeedbackEvent) {
        let (rater, target) = (event.rater.index(), event.target.index());
        assert!(rater < self.n, "rater {rater} out of range for n = {}", self.n);
        assert!(target < self.n, "target {target} out of range for n = {}", self.n);
        let shards = self.shards.len();
        let mut shard = self.shards[rater % shards].lock().unwrap_or_else(|e| e.into_inner());
        shard.rows[rater / shards].add_feedback(event.target, event.score);
        drop(shard);
        self.events.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a batch of ratings from one rater, taking its shard lock once.
    pub fn record_batch(&self, rater: NodeId, ratings: &[(NodeId, f64)]) {
        let r = rater.index();
        assert!(r < self.n, "rater {r} out of range for n = {}", self.n);
        for &(target, _) in ratings {
            assert!(
                target.index() < self.n,
                "target {} out of range for n = {}",
                target.index(),
                self.n
            );
        }
        let shards = self.shards.len();
        let mut shard = self.shards[r % shards].lock().unwrap_or_else(|e| e.into_inner());
        for &(target, score) in ratings {
            shard.rows[r / shards].add_feedback(target, score);
        }
        drop(shard);
        self.events.fetch_add(ratings.len() as u64, Ordering::Relaxed);
    }

    /// Assemble the current rows into a normalized CSR trust matrix.
    ///
    /// Each shard lock is held only for the clone of its rows; the (row
    /// normalization + CSR build) runs on the clone, outside any lock.
    /// Peers that have issued no feedback become dangling rows, which
    /// [`TrustMatrix::from_rows`] completes to uniform (the standard
    /// stochastic-matrix completion).
    pub fn fold(&self) -> TrustMatrix {
        // Capture the watermark before cloning any shard: events recorded
        // while the clone sweep runs may or may not make this fold, so
        // they conservatively stay "pending" until the next one.
        let watermark = self.events.load(Ordering::Relaxed);
        let rows = self.raw_rows();
        self.folded_events.fetch_max(watermark, Ordering::Relaxed);
        TrustMatrix::from_rows(&rows)
    }

    /// [`FeedbackLog::fold`] with the shard clone sweep spread over
    /// `threads` scoped workers.
    ///
    /// What the parallelism buys is that a large log's clone sweep (the
    /// only part that holds ingest locks) finishes in `shards / threads`
    /// lock windows instead of `shards`. Below [`FOLD_STRIPE_MIN_N`] rows
    /// the whole sweep costs less than spawning and scheduling the scoped
    /// workers (a tight-deadline epoch on a small service would pay pure
    /// overhead), so small logs always take the sequential sweep. The
    /// gossip crate's `WorkerPool` is not reused here on purpose: its task
    /// protocol is specialized to slab tiles of the aggregation kernel,
    /// and threading a second protocol through it would couple the ingest
    /// path to the engine's internals.
    ///
    /// The result is bit-identical to [`FeedbackLog::fold`]: workers only
    /// clone shards (no float work), and every row lands in the same slot
    /// the sequential sweep would put it in. `threads <= 1` falls back to
    /// the sequential sweep.
    pub fn fold_parallel(&self, threads: usize) -> TrustMatrix {
        let watermark = self.events.load(Ordering::Relaxed);
        let rows = if threads > 1 && self.shards.len() > 1 && self.n >= FOLD_STRIPE_MIN_N {
            self.raw_rows_striped(threads)
        } else {
            self.raw_rows()
        };
        self.folded_events.fetch_max(watermark, Ordering::Relaxed);
        TrustMatrix::from_rows(&rows)
    }

    /// The parallel clone sweep behind [`FeedbackLog::fold_parallel`]:
    /// worker `w` clones shards `w, w + workers, ...`; the main thread
    /// scatters each cloned shard into its strided row slots as results
    /// arrive, overlapping scatter with the remaining clones.
    fn raw_rows_striped(&self, threads: usize) -> Vec<LocalTrust> {
        let shards = self.shards.len();
        let workers = threads.min(shards).max(1);
        let mut rows = vec![LocalTrust::new(); self.n];
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || {
                    for s in (w..shards).step_by(workers) {
                        let guard = self.shards[s].lock().unwrap_or_else(|e| e.into_inner());
                        let cloned = guard.rows.clone();
                        drop(guard);
                        if tx.send((s, cloned)).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(tx);
            while let Ok((s, cloned)) = rx.recv() {
                for (slot, row) in cloned.into_iter().enumerate() {
                    rows[s + slot * shards] = row;
                }
            }
        });
        rows
    }

    /// Clone out the raw (unnormalized) local-trust rows, shard lock by
    /// shard lock. This is the audit surface the chaos soak uses to prove
    /// no acknowledged feedback was lost: every acknowledged `(rater,
    /// target, amount)` must be covered by the accumulated raw rows.
    pub fn raw_rows(&self) -> Vec<LocalTrust> {
        let shards = self.shards.len();
        let mut rows = vec![LocalTrust::new(); self.n];
        for (s, shard) in self.shards.iter().enumerate() {
            let guard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (slot, row) in guard.rows.iter().enumerate() {
                rows[s + slot * shards] = row.clone();
            }
        }
        rows
    }

    /// Seed the log from pre-existing rows (e.g. a generated workload), so
    /// the first epoch starts from a realistic matrix instead of uniform.
    ///
    /// # Panics
    ///
    /// Panics when `rows.len() != n`.
    pub fn seed_rows(&self, rows: &[LocalTrust]) {
        assert_eq!(rows.len(), self.n, "seed_rows length must equal n");
        let shards = self.shards.len();
        let mut recorded = 0u64;
        for s in 0..shards {
            let mut guard = self.shards[s].lock().unwrap_or_else(|e| e.into_inner());
            for slot in 0..guard.rows.len() {
                let row = &rows[s + slot * shards];
                for (target, amount) in row.iter_raw() {
                    guard.rows[slot].add_feedback(target, amount);
                    recorded += 1;
                }
            }
        }
        self.events.fetch_add(recorded, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_fold_roundtrip() {
        let log = FeedbackLog::new(8, 3);
        log.record(FeedbackEvent { rater: NodeId(0), target: NodeId(1), score: 2.0 });
        log.record(FeedbackEvent { rater: NodeId(0), target: NodeId(2), score: 2.0 });
        log.record(FeedbackEvent { rater: NodeId(7), target: NodeId(0), score: 1.0 });
        assert_eq!(log.events(), 3);
        let m = log.fold();
        assert_eq!(m.n(), 8);
        assert_eq!(m.entry(NodeId(0), NodeId(1)), 0.5);
        assert_eq!(m.entry(NodeId(0), NodeId(2)), 0.5);
        assert_eq!(m.entry(NodeId(7), NodeId(0)), 1.0);
        assert!(m.is_row_stochastic(1e-9));
    }

    #[test]
    fn striping_covers_every_rater_exactly_once() {
        for shards in 1..=5 {
            let log = FeedbackLog::new(5, shards);
            for i in 0..5 {
                log.record(FeedbackEvent {
                    rater: NodeId::from_index(i),
                    target: NodeId::from_index((i + 1) % 5),
                    score: 1.0,
                });
            }
            let m = log.fold();
            for i in 0..5 {
                assert_eq!(
                    m.entry(NodeId::from_index(i), NodeId::from_index((i + 1) % 5)),
                    1.0,
                    "shards = {shards}, rater = {i}"
                );
            }
        }
    }

    #[test]
    fn fold_is_cumulative_across_epochs() {
        let log = FeedbackLog::new(4, 2);
        log.record(FeedbackEvent { rater: NodeId(1), target: NodeId(2), score: 1.0 });
        let first = log.fold();
        assert_eq!(first.entry(NodeId(1), NodeId(2)), 1.0);
        // New feedback accumulates on top of the old — the log is append-only.
        log.record(FeedbackEvent { rater: NodeId(1), target: NodeId(3), score: 3.0 });
        let second = log.fold();
        assert_eq!(second.entry(NodeId(1), NodeId(2)), 0.25);
        assert_eq!(second.entry(NodeId(1), NodeId(3)), 0.75);
    }

    #[test]
    fn seed_rows_matches_equivalent_records() {
        let mut rows = vec![LocalTrust::new(); 6];
        rows[2].add_feedback(NodeId(4), 5.0);
        rows[5].add_feedback(NodeId(0), 1.0);
        rows[5].add_feedback(NodeId(1), 1.0);
        let seeded = FeedbackLog::new(6, 4);
        seeded.seed_rows(&rows);
        assert_eq!(seeded.events(), 3);

        let recorded = FeedbackLog::new(6, 4);
        recorded.record(FeedbackEvent { rater: NodeId(2), target: NodeId(4), score: 5.0 });
        recorded.record_batch(NodeId(5), &[(NodeId(0), 1.0), (NodeId(1), 1.0)]);
        assert_eq!(seeded.fold().to_dense(), recorded.fold().to_dense());
    }

    #[test]
    fn pending_events_track_the_fold_watermark() {
        let log = FeedbackLog::new(4, 2);
        assert_eq!(log.pending_events(), 0);
        log.record(FeedbackEvent { rater: NodeId(0), target: NodeId(1), score: 1.0 });
        log.record(FeedbackEvent { rater: NodeId(1), target: NodeId(2), score: 1.0 });
        assert_eq!(log.pending_events(), 2);
        log.fold();
        assert_eq!(log.pending_events(), 0, "a fold drains the backlog");
        log.record(FeedbackEvent { rater: NodeId(2), target: NodeId(3), score: 1.0 });
        assert_eq!(log.pending_events(), 1);
    }

    #[test]
    fn raw_rows_expose_accumulated_amounts() {
        let log = FeedbackLog::new(6, 4);
        log.record(FeedbackEvent { rater: NodeId(2), target: NodeId(4), score: 5.0 });
        log.record(FeedbackEvent { rater: NodeId(2), target: NodeId(4), score: 2.5 });
        let rows = log.raw_rows();
        assert!((rows[2].raw(NodeId(4)) - 7.5).abs() < 1e-12);
        assert_eq!(rows[3].out_degree(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rater_panics() {
        let log = FeedbackLog::new(3, 2);
        log.record(FeedbackEvent { rater: NodeId(3), target: NodeId(0), score: 1.0 });
    }

    #[test]
    fn fold_parallel_is_bit_identical_to_fold() {
        // 300 clears FOLD_STRIPE_MIN_N, so the public entry point takes
        // the striped sweep there; the smaller sizes exercise its
        // sequential fallback AND (below) the striped sweep directly, so
        // the gate can never hide a striping bug at odd shard counts.
        for (n, shards) in [(1, 1), (7, 3), (64, 8), (100, 16), (300, 16)] {
            let log = FeedbackLog::new(n, shards);
            for i in 0..n * 3 {
                log.record(FeedbackEvent {
                    rater: NodeId::from_index(i % n),
                    target: NodeId::from_index((i * 7 + 1) % n),
                    score: (i % 5) as f64 + 0.25,
                });
            }
            let sequential = log.fold().to_dense();
            for threads in [1, 2, 3, 8, 32] {
                let parallel = log.fold_parallel(threads).to_dense();
                let same = sequential
                    .iter()
                    .flatten()
                    .zip(parallel.iter().flatten())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "n = {n}, shards = {shards}, threads = {threads}");
                if threads > 1 && shards > 1 {
                    let striped = TrustMatrix::from_rows(&log.raw_rows_striped(threads)).to_dense();
                    let same = sequential
                        .iter()
                        .flatten()
                        .zip(striped.iter().flatten())
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(same, "striped: n = {n}, shards = {shards}, threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn fold_parallel_advances_the_watermark() {
        let log = FeedbackLog::new(8, 4);
        log.record(FeedbackEvent { rater: NodeId(0), target: NodeId(1), score: 1.0 });
        assert_eq!(log.pending_events(), 1);
        log.fold_parallel(4);
        assert_eq!(log.pending_events(), 0, "a parallel fold drains the backlog");
    }

    #[test]
    fn concurrent_ingest_loses_nothing() {
        use std::sync::Arc;
        let log = Arc::new(FeedbackLog::new(16, 4));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        log.record(FeedbackEvent {
                            rater: NodeId::from_index((t * 4 + i) % 16),
                            target: NodeId::from_index((i + 1) % 16),
                            score: 1.0,
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("ingest thread panicked");
        }
        assert_eq!(log.events(), 400);
        let m = log.fold();
        assert!(m.is_row_stochastic(1e-9));
    }
}
