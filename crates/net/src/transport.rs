//! Transport abstraction and the in-process channel transport.

use bytes::Bytes;
use std::future::Future;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tokio::sync::mpsc;

/// A per-node handle for sending datagrams to other nodes.
///
/// Sends are best-effort: a transport may drop messages (loss injection,
/// full queues, UDP) — exactly the failure mode push-sum is designed to
/// tolerate.
pub trait Transport: Send + Sync + 'static {
    /// Send `data` to node `to`. Never blocks indefinitely.
    fn send(&self, to: u32, data: Bytes) -> impl Future<Output = ()> + Send;
}

/// Counters shared by the in-memory network.
#[derive(Debug, Default)]
pub struct NetCounters {
    /// Messages handed to the transport.
    pub sent: AtomicU64,
    /// Messages dropped by injected loss or full queues.
    pub dropped: AtomicU64,
}

/// An in-process network: one bounded mpsc queue per node, with optional
/// i.i.d. loss injection (deterministic per message via a counter hash, so
/// runs are reproducible even under tokio's scheduling nondeterminism).
pub struct InMemoryNetwork {
    senders: Vec<mpsc::Sender<Bytes>>,
    loss_rate: f64,
    loss_seq: AtomicU64,
    loss_seed: u64,
    counters: Arc<NetCounters>,
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl InMemoryNetwork {
    /// Build a network of `n` endpoints with queue capacity `cap`; returns
    /// the shared network plus each node's receiver.
    pub fn new(
        n: usize,
        cap: usize,
        loss_rate: f64,
        loss_seed: u64,
    ) -> (Arc<Self>, Vec<mpsc::Receiver<Bytes>>) {
        assert!((0.0..=1.0).contains(&loss_rate), "loss rate in [0,1]");
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::channel(cap.max(1));
            senders.push(tx);
            receivers.push(rx);
        }
        let net = Arc::new(InMemoryNetwork {
            senders,
            loss_rate,
            loss_seq: AtomicU64::new(0),
            loss_seed,
            counters: Arc::new(NetCounters::default()),
        });
        (net, receivers)
    }

    /// Shared counters.
    pub fn counters(&self) -> Arc<NetCounters> {
        Arc::clone(&self.counters)
    }

    fn should_drop(&self) -> bool {
        if self.loss_rate <= 0.0 {
            return false;
        }
        let seq = self.loss_seq.fetch_add(1, Ordering::Relaxed);
        let u = mix(seq ^ self.loss_seed) as f64 / u64::MAX as f64;
        u < self.loss_rate
    }
}

/// A node-scoped handle onto an [`InMemoryNetwork`].
#[derive(Clone)]
pub struct InMemoryHandle {
    net: Arc<InMemoryNetwork>,
}

impl InMemoryHandle {
    /// Handle for any node (the sender identity travels in the payload).
    pub fn new(net: Arc<InMemoryNetwork>) -> Self {
        InMemoryHandle { net }
    }
}

impl Transport for InMemoryHandle {
    async fn send(&self, to: u32, data: Bytes) {
        self.net.counters.sent.fetch_add(1, Ordering::Relaxed);
        if self.net.should_drop() {
            self.net.counters.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // try_send: a full queue behaves like a drop (backpressure loss),
        // which is the honest model for gossip over a congested link.
        if self.net.senders[to as usize].try_send(data).is_err() {
            self.net.counters.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn messages_arrive_at_the_right_node() {
        let (net, mut rxs) = InMemoryNetwork::new(3, 16, 0.0, 0);
        let h = InMemoryHandle::new(net);
        h.send(1, Bytes::from_static(b"to-1")).await;
        h.send(2, Bytes::from_static(b"to-2")).await;
        assert_eq!(rxs[1].recv().await.unwrap(), Bytes::from_static(b"to-1"));
        assert_eq!(rxs[2].recv().await.unwrap(), Bytes::from_static(b"to-2"));
        assert!(rxs[0].try_recv().is_err());
    }

    #[tokio::test]
    async fn loss_rate_drops_messages() {
        let (net, mut rxs) = InMemoryNetwork::new(2, 10_000, 0.5, 42);
        let h = InMemoryHandle::new(Arc::clone(&net));
        for _ in 0..2_000 {
            h.send(1, Bytes::from_static(b"x")).await;
        }
        let counters = net.counters();
        let dropped = counters.dropped.load(Ordering::Relaxed);
        assert!((800..1200).contains(&dropped), "dropped {dropped}");
        let mut received = 0;
        while rxs[1].try_recv().is_ok() {
            received += 1;
        }
        assert_eq!(received as u64 + dropped, 2_000);
    }

    #[tokio::test]
    async fn full_queue_counts_as_drop() {
        let (net, _rxs) = InMemoryNetwork::new(1, 2, 0.0, 0);
        let h = InMemoryHandle::new(Arc::clone(&net));
        for _ in 0..5 {
            h.send(0, Bytes::from_static(b"x")).await;
        }
        assert_eq!(net.counters().dropped.load(Ordering::Relaxed), 3);
    }
}
