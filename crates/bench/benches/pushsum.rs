//! Scalar push-sum: cost of one synchronous gossip step vs network size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gossiptrust_gossip::{PushSumNetwork, UniformChooser};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_pushsum_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("pushsum_step");
    for &n in &[100usize, 1_000, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let xs: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
            let mut ws = vec![0.0; n];
            ws[0] = 1.0;
            let mut net = PushSumNetwork::from_pairs(xs, ws, 1e-9, 2);
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                black_box(net.step(&UniformChooser, &mut rng));
            });
        });
    }
    group.finish();
}

fn bench_pushsum_converge(c: &mut Criterion) {
    let mut group = c.benchmark_group("pushsum_converge");
    group.sample_size(20);
    for &n in &[100usize, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let xs: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
                let mut ws = vec![0.0; n];
                ws[0] = 1.0;
                let mut net = PushSumNetwork::from_pairs(xs, ws, 1e-6, 2);
                let mut rng = StdRng::seed_from_u64(2);
                let min = (n as f64).log2().ceil() as usize;
                black_box(net.run(min, 10_000, &UniformChooser, &mut rng))
            });
        });
    }
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group!(name = benches; config = short(); targets = bench_pushsum_step, bench_pushsum_converge);
criterion_main!(benches);
