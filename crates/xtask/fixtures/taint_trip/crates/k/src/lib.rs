//! Taint fixture (trip): `step_slab` reaches a clock read two hops down.
#![forbid(unsafe_code)]

/// Deterministic sink.
pub fn step_slab() -> u64 {
    helper()
}

fn helper() -> u64 {
    tick()
}

fn tick() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
