//! Free-standing error metrics and ranking-quality measures.
//!
//! The vector-to-vector metrics used by the paper live on
//! [`crate::ReputationVector`]; this module adds slice-level variants (for
//! raw gossip state that is not yet a normalized vector) and ranking-quality
//! measures used by our ablation experiments.

use crate::id::NodeId;

/// RMS relative error of Eq. 8 over raw slices:
/// `E = sqrt( Σ_i ((v_i − u_i)/v_i)² / n )`, skipping components with
/// `v_i = 0`.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn rms_relative_error(calculated: &[f64], gossiped: &[f64]) -> f64 {
    assert_eq!(calculated.len(), gossiped.len(), "length mismatch");
    assert!(!calculated.is_empty(), "empty input");
    let n = calculated.len() as f64;
    let sum: f64 = calculated
        .iter()
        .zip(gossiped)
        .filter(|(&v, _)| v > 0.0)
        .map(|(&v, &u)| {
            let rel = (v - u) / v;
            rel * rel
        })
        .sum();
    (sum / n).sqrt()
}

/// Mean absolute error `Σ|v_i − u_i| / n` over raw slices.
pub fn mean_abs_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "empty input");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// Maximum relative error over defined components.
pub fn max_relative_error(calculated: &[f64], estimated: &[f64]) -> f64 {
    assert_eq!(calculated.len(), estimated.len(), "length mismatch");
    calculated
        .iter()
        .zip(estimated)
        .filter(|(&v, _)| v > 0.0)
        .map(|(&v, &u)| ((v - u) / v).abs())
        .fold(0.0, f64::max)
}

/// Fraction of the top-`k` sets two rankings share (set overlap, order
/// ignored). 1.0 means the rankings agree exactly on who the top-`k` are —
/// the property that matters for power-node selection and download-source
/// choice.
///
/// # Panics
/// Panics if `k == 0` or `k` exceeds either ranking's length.
pub fn top_k_overlap(a: &[NodeId], b: &[NodeId], k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    assert!(k <= a.len() && k <= b.len(), "k exceeds ranking length");
    let set_a: std::collections::BTreeSet<NodeId> = a[..k].iter().copied().collect();
    let hits = b[..k].iter().filter(|id| set_a.contains(id)).count();
    hits as f64 / k as f64
}

/// Kendall-tau-style pairwise ranking agreement between two score slices:
/// the fraction of node pairs ordered identically by both (ties counted as
/// agreement when tied in both). 1.0 = identical order, 0.0 = exactly
/// reversed. `O(n²)` — intended for evaluation, not hot paths.
pub fn pairwise_order_agreement(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    assert!(n >= 2, "need at least two nodes to compare order");
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += 1;
            let oa = a[i].partial_cmp(&a[j]).expect("finite scores");
            let ob = b[i].partial_cmp(&b[j]).expect("finite scores");
            if oa == ob {
                agree += 1;
            }
        }
    }
    agree as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rms_matches_hand_computation() {
        // Same case as the vector test: v=(0.5,0.5), u=(0.4,0.6) → 0.2.
        assert!((rms_relative_error(&[0.5, 0.5], &[0.4, 0.6]) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rms_skips_zero_truth_components() {
        let e = rms_relative_error(&[0.0, 0.5], &[0.3, 0.5]);
        assert_eq!(e, 0.0);
    }

    #[test]
    fn mean_abs_error_basic() {
        assert!((mean_abs_error(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(mean_abs_error(&[0.5], &[0.5]), 0.0);
    }

    #[test]
    fn max_relative_error_basic() {
        let e = max_relative_error(&[0.5, 0.25], &[0.5, 0.5]);
        assert!((e - 1.0).abs() < 1e-12); // (0.25-0.5)/0.25 = -1
    }

    #[test]
    fn top_k_overlap_full_and_partial() {
        let a = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let b = [NodeId(1), NodeId(0), NodeId(3), NodeId(2)];
        assert_eq!(top_k_overlap(&a, &b, 2), 1.0); // same set {0,1}
        let c = [NodeId(2), NodeId(3), NodeId(0), NodeId(1)];
        assert_eq!(top_k_overlap(&a, &c, 2), 0.0);
        assert_eq!(top_k_overlap(&a, &c, 4), 1.0);
    }

    #[test]
    #[should_panic(expected = "k exceeds")]
    fn top_k_overlap_rejects_big_k() {
        top_k_overlap(&[NodeId(0)], &[NodeId(0)], 2);
    }

    #[test]
    fn pairwise_agreement_identical_and_reversed() {
        assert_eq!(pairwise_order_agreement(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]), 1.0);
        assert_eq!(pairwise_order_agreement(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]), 0.0);
    }

    #[test]
    fn pairwise_agreement_counts_matching_ties() {
        assert_eq!(pairwise_order_agreement(&[1.0, 1.0], &[2.0, 2.0]), 1.0);
        assert_eq!(pairwise_order_agreement(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn metrics_check_lengths() {
        mean_abs_error(&[1.0], &[1.0, 2.0]);
    }
}
