//! Property-based tests for the push-sum protocol and the vector engine.
//!
//! The central property of push-sum — *mass conservation* — implies that
//! whenever the ratios do reach consensus, the consensus value is exactly
//! `Σx(0)/Σw(0)`. These tests drive random instances and check both the
//! conservation law and the limit value.

use gossiptrust_core::prelude::*;
use gossiptrust_gossip::{EngineConfig, PushSumNetwork, UniformChooser, VectorGossipEngine};
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Scalar push-sum converges to Σx/Σw for arbitrary non-negative seeds
    /// with at least one positive weight.
    #[test]
    fn pushsum_converges_to_weighted_sum(
        xs in vec(0.0f64..10.0, 4..32),
        seed in 0u64..1000,
        weight_holder in 0usize..32,
    ) {
        let n = xs.len();
        let mut ws = vec![0.0; n];
        ws[weight_holder % n] = 1.0;
        let expected: f64 = xs.iter().sum();
        let mut net = PushSumNetwork::from_pairs(xs, ws, 1e-10, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let min_steps = (n as f64).log2().ceil() as usize;
        let out = net.run(min_steps, 5_000, &UniformChooser, &mut rng);
        prop_assert!(out.converged, "did not converge");
        for r in out.ratios {
            let v = r.expect("all weights positive at convergence");
            let err = (v - expected).abs() / expected.abs().max(1e-12);
            prop_assert!(err < 1e-4, "ratio {} vs expected {}", v, expected);
        }
    }

    /// Mass conservation holds after any number of lossless steps, for both
    /// x and w, regardless of target choices.
    #[test]
    fn pushsum_mass_conservation(
        xs in vec(0.0f64..5.0, 3..24),
        steps in 1usize..60,
        seed in 0u64..1000,
    ) {
        let n = xs.len();
        let mut ws = vec![0.0; n];
        ws[0] = 1.0;
        let x_total: f64 = xs.iter().sum();
        let mut net = PushSumNetwork::from_pairs(xs, ws, 1e-6, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..steps {
            net.step(&UniformChooser, &mut rng);
        }
        let (x, w) = net.total_mass();
        prop_assert!((x - x_total).abs() < 1e-9);
        prop_assert!((w - 1.0).abs() < 1e-9);
    }

    /// One cycle of the vector engine reproduces the exact centralized
    /// matrix–vector product for random trust matrices, on every node.
    #[test]
    fn vector_engine_matches_exact_matvec(
        n in 4usize..20,
        edges in vec((0u32..20, 0u32..20, 0.1f64..5.0), 5..60),
        seed in 0u64..500,
        alpha in 0.0f64..0.5,
    ) {
        let mut b = TrustMatrixBuilder::new(n);
        for &(i, j, r) in &edges {
            b.record(NodeId(i % n as u32), NodeId(j % n as u32), r);
        }
        let m = b.build();
        let v0 = ReputationVector::uniform(n);
        let prior = Prior::uniform(n);
        let params = Params::for_network(n).with_epsilon(1e-6);
        let mut engine = VectorGossipEngine::new(n, EngineConfig::from_params(&params, n));
        engine.seed(&m, &v0, &prior, alpha);
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, converged) = engine.run(&UniformChooser, &mut rng);
        prop_assert!(converged);
        let mut exact = vec![0.0; n];
        m.transpose_mul(v0.values(), &mut exact).unwrap();
        prior.mix_into(&mut exact, alpha);
        for i in 0..n {
            let est = engine.extract(NodeId::from_index(i));
            for j in 0..n {
                let rel = (est[j] - exact[j]).abs() / exact[j].abs().max(1e-12);
                prop_assert!(rel < 1e-3, "node {} comp {}: {} vs {}", i, j, est[j], exact[j]);
            }
        }
    }

    /// Component mass in the vector engine is conserved step by step when
    /// nothing is lost: Σ_i x_i[j] and Σ_i w_i[j] are invariant.
    #[test]
    fn vector_engine_mass_conservation(
        n in 4usize..16,
        steps in 1usize..30,
        seed in 0u64..500,
    ) {
        let mut b = TrustMatrixBuilder::new(n);
        for i in 0..n {
            b.record(NodeId::from_index(i), NodeId::from_index((i + 1) % n), 1.0);
        }
        let m = b.build();
        let params = Params::for_network(n);
        let mut engine = VectorGossipEngine::new(n, EngineConfig::from_params(&params, n));
        engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        let before: Vec<(f64, f64)> =
            (0..n).map(|j| engine.component_mass(NodeId::from_index(j))).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..steps {
            engine.step(&UniformChooser, &mut rng);
        }
        for (j, &(x0, w0)) in before.iter().enumerate() {
            let (x1, w1) = engine.component_mass(NodeId::from_index(j));
            prop_assert!((x0 - x1).abs() < 1e-10, "x mass comp {}", j);
            prop_assert!((w0 - w1).abs() < 1e-10, "w mass comp {}", j);
        }
    }
}
