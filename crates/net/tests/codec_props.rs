//! Property-based tests for the wire codec: every message round-trips
//! bit-for-bit, and the decoders reject truncated, oversized, and
//! garbage frames instead of panicking or over-allocating. The reputation
//! service's TCP front-end feeds attacker-controlled bytes straight into
//! these decoders, so the error paths are load-bearing.

use gossiptrust_net::codec::{FeedbackBatch, Push, MAX_BATCH_TARGETS};
use proptest::prelude::*;

fn arb_push() -> impl Strategy<Value = Push> {
    (
        any::<u32>(),
        any::<u32>(),
        proptest::collection::vec((any::<f64>(), any::<f64>()), 0..64),
    )
        .prop_map(|(sender, cycle, pairs)| {
            let (xs, ws) = pairs.into_iter().unzip();
            Push { sender, cycle, xs, ws }
        })
}

fn arb_batch() -> impl Strategy<Value = FeedbackBatch> {
    (
        any::<u32>(),
        any::<u32>(),
        proptest::collection::vec((any::<u32>(), any::<f64>()), 0..64),
    )
        .prop_map(|(rater, epoch_hint, ratings)| FeedbackBatch { rater, epoch_hint, ratings })
}

/// Bit-exact f64 comparison (NaN payloads and signed zeros included).
fn same_bits(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    /// Push frames round-trip bit-for-bit, including NaN and ±0.0.
    #[test]
    fn push_roundtrip(push in arb_push()) {
        let decoded = Push::decode(&push.encode()).expect("own encoding decodes");
        prop_assert_eq!(decoded.sender, push.sender);
        prop_assert_eq!(decoded.cycle, push.cycle);
        prop_assert!(same_bits(&decoded.xs, &push.xs));
        prop_assert!(same_bits(&decoded.ws, &push.ws));
    }

    /// Any truncation of a valid Push frame is rejected.
    #[test]
    fn push_rejects_truncation(push in arb_push(), cut in any::<prop::sample::Index>()) {
        let raw = push.encode();
        let keep = cut.index(raw.len().max(1));
        if keep < raw.len() {
            prop_assert!(Push::decode(&raw[..keep]).is_none());
        }
    }

    /// Any extension of a valid Push frame is rejected (the length field
    /// must account for every byte).
    #[test]
    fn push_rejects_trailing_garbage(push in arb_push(), extra in proptest::collection::vec(any::<u8>(), 1..32)) {
        let mut raw = push.encode().to_vec();
        raw.extend_from_slice(&extra);
        prop_assert!(Push::decode(&raw).is_none());
    }

    /// FeedbackBatch frames round-trip bit-for-bit.
    #[test]
    fn batch_roundtrip(batch in arb_batch()) {
        let decoded = FeedbackBatch::decode(&batch.encode()).expect("own encoding decodes");
        prop_assert_eq!(decoded.rater, batch.rater);
        prop_assert_eq!(decoded.epoch_hint, batch.epoch_hint);
        prop_assert_eq!(decoded.ratings.len(), batch.ratings.len());
        for (d, o) in decoded.ratings.iter().zip(&batch.ratings) {
            prop_assert_eq!(d.0, o.0);
            prop_assert_eq!(d.1.to_bits(), o.1.to_bits());
        }
    }

    /// Any truncation of a valid batch frame is rejected.
    #[test]
    fn batch_rejects_truncation(batch in arb_batch(), cut in any::<prop::sample::Index>()) {
        let raw = batch.encode();
        let keep = cut.index(raw.len().max(1));
        if keep < raw.len() {
            prop_assert!(FeedbackBatch::decode(&raw[..keep]).is_none());
        }
    }

    /// A forged length field larger than the actual payload — up to and
    /// beyond MAX_BATCH_TARGETS — is rejected without allocating for the
    /// claimed size.
    #[test]
    fn batch_rejects_oversized_length_claim(
        rater in any::<u32>(),
        claimed in (MAX_BATCH_TARGETS as u32 + 1)..,
    ) {
        let mut raw = Vec::new();
        raw.extend_from_slice(&rater.to_le_bytes());
        raw.extend_from_slice(&0u32.to_le_bytes());
        raw.extend_from_slice(&claimed.to_le_bytes());
        prop_assert!(FeedbackBatch::decode(&raw).is_none());
    }

    /// Arbitrary byte soup never panics either decoder (it may decode, if
    /// the bytes happen to form a valid frame — the property is no-crash,
    /// not no-parse).
    #[test]
    fn decoders_never_panic_on_garbage(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Push::decode(&raw);
        let _ = FeedbackBatch::decode(&raw);
    }
}
