//! `lint.toml` — the checked-in waiver file.
//!
//! Every waiver names one `(rule, file)` pair and a reason, so the diff
//! review of a new waiver *is* the audit trail:
//!
//! ```toml
//! [[allow]]
//! rule = "float-eq"
//! path = "crates/core/src/matrix.rs"
//! reason = "zero-skip fast paths compare exact 0.0 sentinels"
//! ```
//!
//! The parser is a deliberate subset of TOML (`[[allow]]` tables with
//! string keys) so the linter stays dependency-free; unknown keys, unknown
//! rules and waivers for files that no longer exist are hard errors —
//! stale waivers must not linger.

use crate::rules::RULE_NAMES;

/// One `[[allow]]` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Waiver {
    /// Rule identifier (validated against [`RULE_NAMES`]).
    pub rule: String,
    /// Repo-relative `/`-separated file path the waiver applies to.
    pub path: String,
    /// Why the waiver exists (required, shown in `--list-waivers`).
    pub reason: String,
    /// Line in lint.toml (for error messages).
    pub line: u32,
}

/// The parsed waiver file.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    /// All waivers, in file order.
    pub waivers: Vec<Waiver>,
}

impl LintConfig {
    /// True if `(rule, path)` is waived.
    pub fn is_allowed(&self, rule: &str, path: &str) -> bool {
        self.waivers.iter().any(|w| w.rule == rule && w.path == path)
    }
}

/// Parse the waiver file contents.
///
/// # Errors
/// Returns a human-readable message for malformed syntax, unknown keys,
/// unknown rule names, or entries missing `rule`/`path`/`reason`.
pub fn parse(source: &str) -> Result<LintConfig, String> {
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut current: Option<Waiver> = None;
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(w) = current.take() {
                finish(&mut waivers, w)?;
            }
            current = Some(Waiver {
                rule: String::new(),
                path: String::new(),
                reason: String::new(),
                line: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint.toml:{lineno}: expected `key = \"value\"`, got {line:?}"));
        };
        let key = key.trim();
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| {
                format!("lint.toml:{lineno}: value of `{key}` must be a quoted string")
            })?;
        let Some(w) = current.as_mut() else {
            return Err(format!("lint.toml:{lineno}: `{key}` outside an [[allow]] table"));
        };
        match key {
            "rule" => w.rule = value.to_string(),
            "path" => w.path = value.to_string(),
            "reason" => w.reason = value.to_string(),
            other => {
                return Err(format!("lint.toml:{lineno}: unknown key `{other}`"));
            }
        }
    }
    if let Some(w) = current.take() {
        finish(&mut waivers, w)?;
    }
    Ok(LintConfig { waivers })
}

fn finish(waivers: &mut Vec<Waiver>, w: Waiver) -> Result<(), String> {
    if w.rule.is_empty() || w.path.is_empty() || w.reason.is_empty() {
        return Err(format!(
            "lint.toml:{}: an [[allow]] entry needs all of rule, path, reason",
            w.line
        ));
    }
    if !RULE_NAMES.contains(&w.rule.as_str()) {
        return Err(format!(
            "lint.toml:{}: unknown rule {:?} (known: {})",
            w.line,
            w.rule,
            RULE_NAMES.join(", ")
        ));
    }
    if waivers.iter().any(|p| p.rule == w.rule && p.path == w.path) {
        return Err(format!("lint.toml:{}: duplicate waiver for ({}, {})", w.line, w.rule, w.path));
    }
    waivers.push(w);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_comments() {
        let cfg = parse(
            "# header\n\n[[allow]]\nrule = \"float-eq\"\npath = \"crates/a/src/x.rs\"\n\
             reason = \"exact sentinel\"\n\n[[allow]]\nrule = \"env-var\"\n\
             path = \"crates/b/src/y.rs\"\nreason = \"designated accessor\"\n",
        )
        .unwrap();
        assert_eq!(cfg.waivers.len(), 2);
        assert!(cfg.is_allowed("float-eq", "crates/a/src/x.rs"));
        assert!(!cfg.is_allowed("float-eq", "crates/b/src/y.rs"));
    }

    #[test]
    fn rejects_unknown_rules_and_keys() {
        let err =
            parse("[[allow]]\nrule = \"no-such\"\npath = \"a\"\nreason = \"r\"\n").unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
        let err = parse("[[allow]]\nrule = \"float-eq\"\nfile = \"a\"\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn rejects_incomplete_and_duplicate_entries() {
        let err = parse("[[allow]]\nrule = \"float-eq\"\npath = \"a\"\n").unwrap_err();
        assert!(err.contains("needs all of"), "{err}");
        let two = "[[allow]]\nrule = \"float-eq\"\npath = \"a\"\nreason = \"r\"\n";
        let err = parse(&format!("{two}{two}")).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn rejects_keys_outside_tables_and_bad_syntax() {
        assert!(parse("rule = \"float-eq\"\n").unwrap_err().contains("outside"));
        assert!(parse("[[allow]]\nrule float-eq\n").unwrap_err().contains("expected"));
        assert!(parse("[[allow]]\nrule = float-eq\n").unwrap_err().contains("quoted"));
    }

    #[test]
    fn empty_config_allows_nothing() {
        let cfg = parse("# nothing here\n").unwrap();
        assert!(cfg.waivers.is_empty());
        assert!(!cfg.is_allowed("float-eq", "x"));
    }
}
