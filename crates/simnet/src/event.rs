//! Deterministic discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in microseconds. Integral time plus a monotone sequence
/// number gives a total, reproducible event order (no float-comparison
/// hazards).
pub type SimTime = u64;

struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue. Events scheduled at the same instant pop in
/// scheduling order (FIFO), which keeps simulations reproducible.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    now: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Empty queue at time 0.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: 0 }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the past (before the last popped event).
    pub fn schedule_at(&mut self, time: SimTime, payload: T) {
        assert!(time >= self.now, "cannot schedule into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Schedule `payload` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: SimTime, payload: T) {
        self.schedule_at(self.now.saturating_add(delay), payload);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.time >= self.now);
            self.now = e.time;
            (e.time, e.payload)
        })
    }

    /// Peek the next event time without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule_at(5, 1);
        q.schedule_at(5, 2);
        q.schedule_at(5, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.schedule_at(100, ());
        q.pop();
        assert_eq!(q.now(), 100);
        q.schedule_in(50, ());
        assert_eq!(q.peek_time(), Some(150));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(100, ());
        q.pop();
        q.schedule_at(50, ());
    }

    #[test]
    fn len_and_is_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(1, 0);
        q.schedule_at(2, 1);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
