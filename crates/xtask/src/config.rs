//! `lint.toml` — the checked-in waiver and analysis-config file.
//!
//! Every waiver names one `(rule, file)` pair, a reason, and an expiry
//! date, so the diff review of a new waiver *is* the audit trail and debt
//! cannot rot silently:
//!
//! ```toml
//! [[allow]]
//! rule = "float-eq"
//! path = "crates/core/src/matrix.rs"
//! reason = "zero-skip fast paths compare exact 0.0 sentinels"
//! expires = "2027-08-01"
//! ```
//!
//! The `[analysis]` section configures the workspace-level rule families
//! (taint sinks, panic roots and scan scope, async scope); when absent,
//! those rules are no-ops:
//!
//! ```toml
//! [analysis]
//! taint_sinks = ["step_slab", "par_step"]
//! panic_roots = ["serve_on_with", "Wal::open"]
//! panic_scan_paths = ["crates/service/src"]
//! async_paths = ["crates/service/src", "crates/net/src"]
//! ```
//!
//! The parser is a deliberate subset of TOML (`[[allow]]` tables and one
//! `[analysis]` table with string / string-array values) so the linter
//! stays dependency-free; unknown keys, unknown rules, waivers for files
//! that no longer exist, and **expired waivers** are hard errors.

use crate::rules::RULE_NAMES;

/// One `[[allow]]` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Waiver {
    /// Rule identifier (validated against [`RULE_NAMES`]).
    pub rule: String,
    /// Repo-relative `/`-separated file path the waiver applies to.
    pub path: String,
    /// Why the waiver exists (required, shown in `--list-waivers`).
    pub reason: String,
    /// `YYYY-MM-DD` date after which the waiver is a hard error.
    pub expires: String,
    /// Line in lint.toml (for error messages).
    pub line: u32,
}

/// Configuration for the call-graph rule families (`[analysis]`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Deterministic entry points (`name` or `Type::name`) that taint
    /// sources must not reach.
    pub taint_sinks: Vec<String>,
    /// Serving roots for the panic-path rule.
    pub panic_roots: Vec<String>,
    /// Path prefixes whose functions are scanned for panic sites.
    pub panic_scan_paths: Vec<String>,
    /// Path prefixes whose `async fn`s are checked for blocking calls.
    pub async_paths: Vec<String>,
}

/// The parsed waiver file.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    /// All waivers, in file order.
    pub waivers: Vec<Waiver>,
    /// Workspace-analysis configuration.
    pub analysis: AnalysisConfig,
}

impl LintConfig {
    /// True if `(rule, path)` is waived.
    pub fn is_allowed(&self, rule: &str, path: &str) -> bool {
        self.waivers.iter().any(|w| w.rule == rule && w.path == path)
    }
}

/// Validate `YYYY-MM-DD` shape and plausible field ranges.
fn valid_date(s: &str) -> bool {
    let bytes = s.as_bytes();
    if bytes.len() != 10 || bytes.get(4) != Some(&b'-') || bytes.get(7) != Some(&b'-') {
        return false;
    }
    let num = |r: std::ops::Range<usize>| -> Option<u32> { s.get(r)?.parse().ok() };
    let (Some(y), Some(m), Some(d)) = (num(0..4), num(5..7), num(8..10)) else {
        return false;
    };
    (2000..=9999).contains(&y) && (1..=12).contains(&m) && (1..=31).contains(&d)
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock.
///
/// Uses the civil-from-days algorithm (Howard Hinnant) on the Unix epoch
/// offset, so the linter needs no date dependency. The clock read here is
/// the reason `lint.toml` carries a `time-source` waiver for this file.
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Waivers whose `expires` date is strictly before `today`
/// (`YYYY-MM-DD` strings compare correctly lexicographically).
pub fn expired<'a>(waivers: &'a [Waiver], today: &str) -> Vec<&'a Waiver> {
    waivers.iter().filter(|w| w.expires.as_str() < today).collect()
}

/// Parse a `["a", "b"]` TOML string array (single line).
fn parse_array(lineno: u32, key: &str, value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| {
            format!("lint.toml:{lineno}: value of `{key}` must be a [\"…\"] array on one line")
        })?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let s = part
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("lint.toml:{lineno}: `{key}` entries must be quoted strings"))?;
        out.push(s.to_string());
    }
    Ok(out)
}

/// Which table the parser is inside.
enum Section {
    None,
    Allow,
    Analysis,
}

/// Parse the waiver file contents.
///
/// # Errors
/// Returns a human-readable message for malformed syntax, unknown keys,
/// unknown rule names, bad dates, or entries missing
/// `rule`/`path`/`reason`/`expires`.
pub fn parse(source: &str) -> Result<LintConfig, String> {
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut analysis = AnalysisConfig::default();
    let mut current: Option<Waiver> = None;
    let mut section = Section::None;
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(w) = current.take() {
                finish(&mut waivers, w)?;
            }
            current = Some(Waiver {
                rule: String::new(),
                path: String::new(),
                reason: String::new(),
                expires: String::new(),
                line: lineno,
            });
            section = Section::Allow;
            continue;
        }
        if line == "[analysis]" {
            if let Some(w) = current.take() {
                finish(&mut waivers, w)?;
            }
            section = Section::Analysis;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("lint.toml:{lineno}: unknown table {line}"));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint.toml:{lineno}: expected `key = \"value\"`, got {line:?}"));
        };
        let key = key.trim();
        let value = value.trim();
        match section {
            Section::Analysis => {
                let arr = parse_array(lineno, key, value)?;
                match key {
                    "taint_sinks" => analysis.taint_sinks = arr,
                    "panic_roots" => analysis.panic_roots = arr,
                    "panic_scan_paths" => analysis.panic_scan_paths = arr,
                    "async_paths" => analysis.async_paths = arr,
                    other => {
                        return Err(format!(
                            "lint.toml:{lineno}: unknown [analysis] key `{other}`"
                        ));
                    }
                }
            }
            Section::Allow => {
                let value =
                    value
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| {
                            format!("lint.toml:{lineno}: value of `{key}` must be a quoted string")
                        })?;
                let Some(w) = current.as_mut() else {
                    return Err(format!("lint.toml:{lineno}: `{key}` outside an [[allow]] table"));
                };
                match key {
                    "rule" => w.rule = value.to_string(),
                    "path" => w.path = value.to_string(),
                    "reason" => w.reason = value.to_string(),
                    "expires" => {
                        if !valid_date(value) {
                            return Err(format!(
                                "lint.toml:{lineno}: `expires` must be a YYYY-MM-DD date, \
                                 got {value:?}"
                            ));
                        }
                        w.expires = value.to_string();
                    }
                    other => {
                        return Err(format!("lint.toml:{lineno}: unknown key `{other}`"));
                    }
                }
            }
            Section::None => {
                return Err(format!("lint.toml:{lineno}: `{key}` outside an [[allow]] table"));
            }
        }
    }
    if let Some(w) = current.take() {
        finish(&mut waivers, w)?;
    }
    Ok(LintConfig { waivers, analysis })
}

fn finish(waivers: &mut Vec<Waiver>, w: Waiver) -> Result<(), String> {
    if w.rule.is_empty() || w.path.is_empty() || w.reason.is_empty() || w.expires.is_empty() {
        return Err(format!(
            "lint.toml:{}: an [[allow]] entry needs all of rule, path, reason, expires",
            w.line
        ));
    }
    if !RULE_NAMES.contains(&w.rule.as_str()) {
        return Err(format!(
            "lint.toml:{}: unknown rule {:?} (known: {})",
            w.line,
            w.rule,
            RULE_NAMES.join(", ")
        ));
    }
    if waivers.iter().any(|p| p.rule == w.rule && p.path == w.path) {
        return Err(format!("lint.toml:{}: duplicate waiver for ({}, {})", w.line, w.rule, w.path));
    }
    waivers.push(w);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAIL: &str = "expires = \"2099-12-31\"\n";

    #[test]
    fn parses_entries_and_comments() {
        let cfg = parse(&format!(
            "# header\n\n[[allow]]\nrule = \"float-eq\"\npath = \"crates/a/src/x.rs\"\n\
             reason = \"exact sentinel\"\n{TAIL}\n[[allow]]\nrule = \"env-var\"\n\
             path = \"crates/b/src/y.rs\"\nreason = \"designated accessor\"\n{TAIL}",
        ))
        .unwrap();
        assert_eq!(cfg.waivers.len(), 2);
        assert!(cfg.is_allowed("float-eq", "crates/a/src/x.rs"));
        assert!(!cfg.is_allowed("float-eq", "crates/b/src/y.rs"));
        assert_eq!(cfg.waivers[0].expires, "2099-12-31");
    }

    #[test]
    fn parses_the_analysis_section() {
        let cfg = parse(
            "[analysis]\ntaint_sinks = [\"step_slab\", \"par_step\"]\n\
             panic_roots = [\"Wal::open\"]\npanic_scan_paths = [\"crates/service/src\"]\n\
             async_paths = []\n",
        )
        .unwrap();
        assert_eq!(cfg.analysis.taint_sinks, vec!["step_slab", "par_step"]);
        assert_eq!(cfg.analysis.panic_roots, vec!["Wal::open"]);
        assert!(cfg.analysis.async_paths.is_empty());
        let err = parse("[analysis]\nbogus = [\"x\"]\n").unwrap_err();
        assert!(err.contains("unknown [analysis] key"), "{err}");
        let err = parse("[analysis]\ntaint_sinks = \"x\"\n").unwrap_err();
        assert!(err.contains("array"), "{err}");
    }

    #[test]
    fn rejects_unknown_rules_and_keys() {
        let err =
            parse(&format!("[[allow]]\nrule = \"no-such\"\npath = \"a\"\nreason = \"r\"\n{TAIL}"))
                .unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
        let err = parse("[[allow]]\nrule = \"float-eq\"\nfile = \"a\"\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn requires_expires_and_validates_dates() {
        let err =
            parse("[[allow]]\nrule = \"float-eq\"\npath = \"a\"\nreason = \"r\"\n").unwrap_err();
        assert!(err.contains("needs all of"), "{err}");
        let err = parse(
            "[[allow]]\nrule = \"float-eq\"\npath = \"a\"\nreason = \"r\"\n\
             expires = \"soon\"\n",
        )
        .unwrap_err();
        assert!(err.contains("YYYY-MM-DD"), "{err}");
        let err = parse(
            "[[allow]]\nrule = \"float-eq\"\npath = \"a\"\nreason = \"r\"\n\
             expires = \"2027-13-01\"\n",
        )
        .unwrap_err();
        assert!(err.contains("YYYY-MM-DD"), "{err}");
    }

    #[test]
    fn expiry_comparison_is_lexicographic_and_today_is_sane() {
        let w = |date: &str| Waiver {
            rule: "float-eq".into(),
            path: "a".into(),
            reason: "r".into(),
            expires: date.into(),
            line: 1,
        };
        let ws = [w("2020-01-01"), w("2099-12-31")];
        let ex = expired(&ws, "2026-08-08");
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].expires, "2020-01-01");
        let today = today_utc();
        assert!(valid_date(&today), "{today}");
        assert!(today.as_str() > "2026-01-01", "{today}");
    }

    #[test]
    fn rejects_incomplete_and_duplicate_entries() {
        let two = format!("[[allow]]\nrule = \"float-eq\"\npath = \"a\"\nreason = \"r\"\n{TAIL}");
        let err = parse(&format!("{two}{two}")).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn rejects_keys_outside_tables_and_bad_syntax() {
        assert!(parse("rule = \"float-eq\"\n").unwrap_err().contains("outside"));
        assert!(parse("[[allow]]\nrule float-eq\n").unwrap_err().contains("expected"));
        assert!(parse("[[allow]]\nrule = float-eq\n").unwrap_err().contains("quoted"));
        assert!(parse("[bogus]\n").unwrap_err().contains("unknown table"));
    }

    #[test]
    fn empty_config_allows_nothing() {
        let cfg = parse("# nothing here\n").unwrap();
        assert!(cfg.waivers.is_empty());
        assert!(!cfg.is_allowed("float-eq", "x"));
        assert_eq!(cfg.analysis, AnalysisConfig::default());
    }
}
