//! Collusion attack demo (the Fig. 4(b) scenario): groups of malicious
//! peers boost each other with fake feedback; power nodes (greedy factor
//! α = 0.15) dampen the distortion compared to treating all peers equally.
//!
//! Run with: `cargo run --release --example collusion_attack`

use gossiptrust::gossip::cycle::exact_reference;
use gossiptrust::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn distortion(alpha: f64, group_size: usize, seed: u64) -> f64 {
    let n = 300;
    let cfg = ScenarioConfig::small(n, ThreatConfig::collusive(0.10, group_size));
    let scenario = Scenario::generate(&cfg, &mut StdRng::seed_from_u64(seed));

    let mut params = Params::for_network(n).with_alpha(alpha);
    params.max_power_nodes = (n / 100).max(4);
    let policy = if alpha > 0.0 {
        PriorPolicy::PowerNodesEachCycle
    } else {
        PriorPolicy::Fixed(Prior::uniform(n))
    };
    // Ground truth: the same computation over *honest* feedback.
    let truth = exact_reference(&scenario.honest, &params.clone().with_delta(1e-10), &policy);
    // What the system actually sees: feedback polluted by the colluders.
    let agg = GossipTrustAggregator::new(params).with_prior_policy(policy);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let report = agg.aggregate(&scenario.polluted, &mut rng);
    truth.rms_relative_error(&report.vector).unwrap()
}

fn main() {
    println!("Collusion attack (feedback pollution): 10% of 300 peers collude in");
    println!("groups, max-rating their mates and zero-rating everyone else.\n");
    println!("Distortion = RMS relative distance between the scores computed from");
    println!("honest feedback and from the colluders' polluted feedback, at the");
    println!("same settings (mean of 3 seeds). Note the relative metric divides by");
    println!("the colluders' tiny honest-truth scores, so absolute values run large;");
    println!("the power-node damping ratio is the story:\n");
    println!("group size  alpha=0 (no power nodes)  alpha=0.15 (power nodes)");
    println!("---------------------------------------------------------------");
    for group_size in [2usize, 4, 6, 8] {
        let avg =
            |alpha: f64| (0..3).map(|s| distortion(alpha, group_size, 100 + s)).sum::<f64>() / 3.0;
        let without = avg(0.0);
        let with = avg(0.15);
        println!(
            "{group_size:<10}  {without:<24.4}  {with:.4}   ({}%)",
            ((1.0 - with / without) * 100.0).round()
        );
    }
    println!("\nPower nodes anchor the α-jump on reputable peers, cutting the");
    println!("error the colluders can inject (the paper reports ~30% less).");
}
