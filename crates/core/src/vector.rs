//! The global reputation vector `V(t)` and its distance metrics.

use crate::error::CoreError;
use crate::id::NodeId;
use serde::{Deserialize, Serialize};

/// The global reputation vector `V(t) = {v_i(t)}` over an `n`-node network.
///
/// Invariant maintained by all constructors: every component is finite and
/// non-negative and the components sum to 1 (`Σ_i v_i = 1`), the
/// normalization the paper requires of `V(t)` at every cycle.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReputationVector {
    values: Vec<f64>,
}

impl ReputationVector {
    /// The initial vector `V(0)` with equal scores `v_i(0) = 1/n`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "network must have at least one node");
        let v = ReputationVector { values: vec![1.0 / n as f64; n] };
        #[cfg(feature = "invariants")]
        crate::invariants::check_score_vector(v.values(), "ReputationVector::uniform");
        v
    }

    /// Build from raw non-negative weights, normalizing to sum 1.
    ///
    /// # Errors
    /// [`CoreError::InvalidScore`] if any weight is negative or non-finite,
    /// or if all weights are zero.
    pub fn from_weights(weights: Vec<f64>) -> Result<Self, CoreError> {
        if let Some(&bad) = weights.iter().find(|w| !w.is_finite() || **w < 0.0) {
            return Err(CoreError::InvalidScore {
                what: "weight must be finite and >= 0",
                value: bad,
            });
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(CoreError::InvalidScore {
                what: "weights must not all be zero",
                value: total,
            });
        }
        let values = weights.into_iter().map(|w| w / total).collect();
        let v = ReputationVector { values };
        #[cfg(feature = "invariants")]
        crate::invariants::check_score_vector(v.values(), "ReputationVector::from_weights");
        Ok(v)
    }

    /// Network size `n`.
    pub fn n(&self) -> usize {
        self.values.len()
    }

    /// Score `v_i` of node `i`.
    pub fn score(&self, i: NodeId) -> f64 {
        self.values[i.index()]
    }

    /// All scores as a slice, indexed by node.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consume into the underlying score vector.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Node ids sorted by descending score (ties broken by ascending id,
    /// making the ranking deterministic).
    pub fn ranking(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = NodeId::all(self.n()).collect();
        ids.sort_by(|a, b| {
            self.values[b.index()]
                .partial_cmp(&self.values[a.index()])
                .expect("scores are finite")
                .then(a.cmp(b))
        });
        ids
    }

    /// The `k` most reputable nodes (the paper's power-node candidates).
    pub fn top_k(&self, k: usize) -> Vec<NodeId> {
        let mut r = self.ranking();
        r.truncate(k);
        r
    }

    /// L1 distance `Σ_i |v_i − u_i|` to another vector.
    ///
    /// # Errors
    /// [`CoreError::DimensionMismatch`] on size mismatch.
    pub fn l1_distance(&self, other: &ReputationVector) -> Result<f64, CoreError> {
        self.check_dim(other)?;
        Ok(self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .sum())
    }

    /// Average relative error `(1/n)·Σ_i |v_i − u_i| / v_i`, the metric the
    /// paper uses for the outer-loop convergence test against `δ`
    /// (components with `v_i = 0` fall back to absolute difference).
    pub fn avg_relative_error(&self, other: &ReputationVector) -> Result<f64, CoreError> {
        self.check_dim(other)?;
        let n = self.n() as f64;
        let sum: f64 = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(&v, &u)| {
                if v > 0.0 {
                    (v - u).abs() / v
                } else {
                    (v - u).abs()
                }
            })
            .sum();
        Ok(sum / n)
    }

    /// RMS relative aggregation error of Eq. 8:
    /// `E = sqrt( Σ_i ((v_i − u_i)/v_i)² / n )`,
    /// where `self` plays the "calculated" `v` and `other` the "gossiped" `u`.
    /// Components with `v_i = 0` are skipped (they carry no relative error).
    pub fn rms_relative_error(&self, other: &ReputationVector) -> Result<f64, CoreError> {
        self.check_dim(other)?;
        let n = self.n() as f64;
        let sum: f64 = self
            .values
            .iter()
            .zip(&other.values)
            .filter(|(&v, _)| v > 0.0)
            .map(|(&v, &u)| {
                let rel = (v - u) / v;
                rel * rel
            })
            .sum();
        Ok((sum / n).sqrt())
    }

    /// Maximum absolute component difference (`L∞`).
    pub fn max_abs_error(&self, other: &ReputationVector) -> Result<f64, CoreError> {
        self.check_dim(other)?;
        Ok(self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    fn check_dim(&self, other: &ReputationVector) -> Result<(), CoreError> {
        if self.n() != other.n() {
            return Err(CoreError::DimensionMismatch { expected: self.n(), actual: other.n() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sums_to_one() {
        let v = ReputationVector::uniform(8);
        assert!((v.values().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(v.score(NodeId(3)), 0.125);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn uniform_rejects_empty() {
        let _ = ReputationVector::uniform(0);
    }

    #[test]
    fn from_weights_normalizes() {
        let v = ReputationVector::from_weights(vec![1.0, 3.0]).unwrap();
        assert_eq!(v.values(), &[0.25, 0.75]);
    }

    #[test]
    fn from_weights_rejects_invalid() {
        assert!(ReputationVector::from_weights(vec![1.0, -0.5]).is_err());
        assert!(ReputationVector::from_weights(vec![0.0, 0.0]).is_err());
        assert!(ReputationVector::from_weights(vec![f64::NAN, 1.0]).is_err());
        assert!(ReputationVector::from_weights(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn ranking_descends_with_deterministic_ties() {
        let v = ReputationVector::from_weights(vec![0.2, 0.5, 0.2, 0.1]).unwrap();
        assert_eq!(v.ranking(), vec![NodeId(1), NodeId(0), NodeId(2), NodeId(3)]);
        assert_eq!(v.top_k(2), vec![NodeId(1), NodeId(0)]);
    }

    #[test]
    fn l1_distance_and_linf() {
        let a = ReputationVector::from_weights(vec![0.5, 0.5]).unwrap();
        let b = ReputationVector::from_weights(vec![0.8, 0.2]).unwrap();
        assert!((a.l1_distance(&b).unwrap() - 0.6).abs() < 1e-12);
        assert!((a.max_abs_error(&b).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn rms_error_matches_eq8_by_hand() {
        // v = (0.5, 0.5), u = (0.4, 0.6):
        // E = sqrt(((0.1/0.5)² + (−0.1/0.5)²)/2) = sqrt((0.04+0.04)/2) = 0.2
        let v = ReputationVector::from_weights(vec![0.5, 0.5]).unwrap();
        let u = ReputationVector::from_weights(vec![0.4, 0.6]).unwrap();
        assert!((v.rms_relative_error(&u).unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn identical_vectors_have_zero_error() {
        let v = ReputationVector::uniform(5);
        assert_eq!(v.rms_relative_error(&v).unwrap(), 0.0);
        assert_eq!(v.avg_relative_error(&v).unwrap(), 0.0);
        assert_eq!(v.l1_distance(&v).unwrap(), 0.0);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = ReputationVector::uniform(3);
        let b = ReputationVector::uniform(4);
        assert!(a.l1_distance(&b).is_err());
        assert!(a.avg_relative_error(&b).is_err());
        assert!(a.rms_relative_error(&b).is_err());
        assert!(a.max_abs_error(&b).is_err());
    }
}
