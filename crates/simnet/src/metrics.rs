//! Simulation metrics.

use crate::event::SimTime;
use serde::{Deserialize, Serialize};

/// Counters collected by the discrete-event simulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimMetrics {
    /// Messages handed to the link layer.
    pub messages_sent: u64,
    /// Messages delivered to their destination.
    pub messages_delivered: u64,
    /// Messages dropped by the link model.
    pub messages_dropped: u64,
    /// Messages lost because the destination was offline at delivery time.
    pub messages_to_offline: u64,
    /// Gossip ticks executed.
    pub ticks: u64,
    /// Join events processed.
    pub joins: u64,
    /// Leave events processed.
    pub leaves: u64,
    /// Simulated time at the end of the run (µs).
    pub end_time: SimTime,
}

impl SimMetrics {
    /// Delivered / sent ratio (1.0 when nothing was sent).
    pub fn delivery_rate(&self) -> f64 {
        if self.messages_sent == 0 {
            1.0
        } else {
            self.messages_delivered as f64 / self.messages_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_rate_handles_zero() {
        assert_eq!(SimMetrics::default().delivery_rate(), 1.0);
        let m = SimMetrics { messages_sent: 10, messages_delivered: 7, ..Default::default() };
        assert!((m.delivery_rate() - 0.7).abs() < 1e-12);
    }
}
