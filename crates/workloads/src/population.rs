//! Peer populations and threat-model configuration (§6.1, §6.3).
//!
//! A population assigns each peer a *kind* (honest, independent malicious,
//! or a member of a collusion group) and an intrinsic *service authenticity
//! rate* — the probability that a transaction it serves is authentic.
//! Honest peers serve mostly authentic content; malicious peers mostly
//! corrupt content *and* lie in their feedback (how they lie is the
//! feedback generator's job, see [`crate::feedback`]).

use gossiptrust_core::id::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What a peer is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerKind {
    /// Serves authentic content and reports feedback honestly.
    Honest,
    /// Cheats in transactions and inverts its feedback, acting alone
    /// (the paper's "independent setting").
    IndependentMalicious,
    /// Cheats and colludes: rates its group mates maximally and outsiders
    /// minimally (the paper's "collusive setting"). The payload is the
    /// collusion-group index.
    Collusive(u32),
}

impl PeerKind {
    /// True for both malicious kinds.
    pub fn is_malicious(self) -> bool {
        !matches!(self, PeerKind::Honest)
    }
}

/// Threat-model knobs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThreatConfig {
    /// Fraction `γ` of malicious peers.
    pub malicious_fraction: f64,
    /// `Some(g)` partitions the malicious peers into collusion groups of
    /// size `g`; `None` makes them independent.
    pub collusion_group_size: Option<usize>,
    /// Authenticity-rate range for honest peers (sampled uniformly).
    pub honest_authenticity: (f64, f64),
    /// Authenticity-rate range for malicious peers.
    pub malicious_authenticity: (f64, f64),
}

impl Default for ThreatConfig {
    fn default() -> Self {
        ThreatConfig {
            malicious_fraction: 0.20, // Table 2's γ
            collusion_group_size: None,
            honest_authenticity: (0.90, 1.00),
            malicious_authenticity: (0.05, 0.20),
        }
    }
}

impl ThreatConfig {
    /// Config with no malicious peers at all.
    pub fn benign() -> Self {
        ThreatConfig { malicious_fraction: 0.0, ..Default::default() }
    }

    /// Independent malicious peers at fraction `gamma`.
    pub fn independent(gamma: f64) -> Self {
        ThreatConfig { malicious_fraction: gamma, ..Default::default() }
    }

    /// Collusive malicious peers at fraction `gamma`, groups of `size`.
    pub fn collusive(gamma: f64, size: usize) -> Self {
        assert!(size >= 1, "collusion group size must be >= 1");
        ThreatConfig {
            malicious_fraction: gamma,
            collusion_group_size: Some(size),
            ..Default::default()
        }
    }
}

/// A generated peer population.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Population {
    kinds: Vec<PeerKind>,
    authenticity: Vec<f64>,
}

impl Population {
    /// Generate a population of `n` peers under `config`.
    ///
    /// Exactly `⌊γ·n⌋` peers (chosen uniformly at random) are malicious.
    /// Under collusion, the malicious peers are partitioned into groups of
    /// the configured size; a final smaller remainder group is allowed.
    pub fn generate<R: Rng + ?Sized>(n: usize, config: &ThreatConfig, rng: &mut R) -> Self {
        assert!(n > 0, "population needs at least one peer");
        assert!((0.0..=1.0).contains(&config.malicious_fraction), "gamma must be in [0,1]");
        let m = (config.malicious_fraction * n as f64).floor() as usize;
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(rng);
        let malicious: Vec<usize> = ids[..m].to_vec();

        let mut kinds = vec![PeerKind::Honest; n];
        match config.collusion_group_size {
            None => {
                for &i in &malicious {
                    kinds[i] = PeerKind::IndependentMalicious;
                }
            }
            Some(size) => {
                for (gi, chunk) in malicious.chunks(size).enumerate() {
                    for &i in chunk {
                        kinds[i] = PeerKind::Collusive(gi as u32);
                    }
                }
            }
        }

        let (hl, hh) = config.honest_authenticity;
        let (ml, mh) = config.malicious_authenticity;
        assert!((0.0..=1.0).contains(&hl) && hl <= hh && hh <= 1.0, "honest range");
        assert!((0.0..=1.0).contains(&ml) && ml <= mh && mh <= 1.0, "malicious range");
        let authenticity = kinds
            .iter()
            .map(|k| {
                let (lo, hi) = if k.is_malicious() { (ml, mh) } else { (hl, hh) };
                if hi > lo {
                    rng.random_range(lo..hi)
                } else {
                    lo
                }
            })
            .collect();

        Population { kinds, authenticity }
    }

    /// Number of peers.
    pub fn n(&self) -> usize {
        self.kinds.len()
    }

    /// Kind of peer `i`.
    pub fn kind(&self, i: NodeId) -> PeerKind {
        self.kinds[i.index()]
    }

    /// Intrinsic authenticity rate of peer `i`.
    pub fn authenticity(&self, i: NodeId) -> f64 {
        self.authenticity[i.index()]
    }

    /// All malicious peer ids.
    pub fn malicious_peers(&self) -> Vec<NodeId> {
        (0..self.n())
            .filter(|&i| self.kinds[i].is_malicious())
            .map(NodeId::from_index)
            .collect()
    }

    /// All honest peer ids.
    pub fn honest_peers(&self) -> Vec<NodeId> {
        (0..self.n())
            .filter(|&i| !self.kinds[i].is_malicious())
            .map(NodeId::from_index)
            .collect()
    }

    /// Members of collusion group `g`.
    pub fn collusion_group(&self, g: u32) -> Vec<NodeId> {
        (0..self.n())
            .filter(|&i| self.kinds[i] == PeerKind::Collusive(g))
            .map(NodeId::from_index)
            .collect()
    }

    /// Number of collusion groups.
    pub fn collusion_group_count(&self) -> usize {
        self.kinds
            .iter()
            .filter_map(|k| match k {
                PeerKind::Collusive(g) => Some(*g),
                _ => None,
            })
            .max()
            .map(|g| g as usize + 1)
            .unwrap_or(0)
    }

    /// True if peers `a` and `b` collude with each other.
    pub fn same_collusion_group(&self, a: NodeId, b: NodeId) -> bool {
        match (self.kind(a), self.kind(b)) {
            (PeerKind::Collusive(x), PeerKind::Collusive(y)) => x == y,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn benign_population_is_all_honest() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Population::generate(100, &ThreatConfig::benign(), &mut rng);
        assert_eq!(p.malicious_peers().len(), 0);
        assert_eq!(p.honest_peers().len(), 100);
        for i in 0..100 {
            assert!(p.authenticity(NodeId(i)) >= 0.90);
        }
    }

    #[test]
    fn gamma_controls_malicious_count_exactly() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = Population::generate(200, &ThreatConfig::independent(0.25), &mut rng);
        assert_eq!(p.malicious_peers().len(), 50);
        for id in p.malicious_peers() {
            assert_eq!(p.kind(id), PeerKind::IndependentMalicious);
            assert!(p.authenticity(id) <= 0.20);
        }
    }

    #[test]
    fn collusion_groups_partition_the_malicious() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = Population::generate(100, &ThreatConfig::collusive(0.10, 4), &mut rng);
        let malicious = p.malicious_peers();
        assert_eq!(malicious.len(), 10);
        // 10 malicious peers in groups of 4 → groups of size 4, 4, 2.
        assert_eq!(p.collusion_group_count(), 3);
        assert_eq!(p.collusion_group(0).len(), 4);
        assert_eq!(p.collusion_group(1).len(), 4);
        assert_eq!(p.collusion_group(2).len(), 2);
        // Group membership is an equivalence among collusive peers.
        let g0 = p.collusion_group(0);
        assert!(p.same_collusion_group(g0[0], g0[1]));
        let g1 = p.collusion_group(1);
        assert!(!p.same_collusion_group(g0[0], g1[0]));
    }

    #[test]
    fn honest_never_colludes() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = Population::generate(50, &ThreatConfig::collusive(0.2, 5), &mut rng);
        let honest = p.honest_peers();
        assert!(!p.same_collusion_group(honest[0], honest[1]));
        let mal = p.malicious_peers();
        assert!(!p.same_collusion_group(honest[0], mal[0]));
    }

    #[test]
    fn different_seeds_give_different_assignments() {
        let cfg = ThreatConfig::independent(0.3);
        let a = Population::generate(100, &cfg, &mut StdRng::seed_from_u64(1));
        let b = Population::generate(100, &cfg, &mut StdRng::seed_from_u64(2));
        assert_ne!(a.malicious_peers(), b.malicious_peers());
        // Same seed reproduces exactly.
        let a2 = Population::generate(100, &cfg, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, a2);
    }

    #[test]
    fn authenticity_separates_kinds() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = Population::generate(300, &ThreatConfig::independent(0.5), &mut rng);
        let avg =
            |ids: &[NodeId]| ids.iter().map(|&i| p.authenticity(i)).sum::<f64>() / ids.len() as f64;
        let honest_avg = avg(&p.honest_peers());
        let mal_avg = avg(&p.malicious_peers());
        assert!(honest_avg > 0.9);
        assert!(mal_avg < 0.25);
    }

    #[test]
    #[should_panic(expected = "group size must be >= 1")]
    fn zero_group_size_rejected() {
        let _ = ThreatConfig::collusive(0.1, 0);
    }
}
