//! # gossiptrust-serve
//!
//! The epoch-driven reputation **service**: everything else in the
//! workspace runs one aggregation and exits; this crate turns GossipTrust
//! into a long-running daemon that continuously folds transaction feedback
//! into trust matrices, re-aggregates them in the background, and serves
//! reputation queries against immutable, versioned score snapshots.
//!
//! The paper itself frames GossipTrust as a continuously refreshed
//! substrate (the Fig. 5 application re-aggregates every 1000 queries); the
//! differential-gossip line of work (Gupta & Singh, arXiv:1210.4301)
//! motivates treating aggregation as a recurring, resource-bounded
//! background job — which is exactly the shape a serving layer needs.
//!
//! ## Architecture
//!
//! ```text
//!   ingest (many writers)          epoch loop (one thread)        queries (many readers)
//!   ─────────────────────          ───────────────────────        ──────────────────────
//!   FeedbackLog                    EpochManager                   SnapshotCell
//!   sharded, append-only   ──►     folds the log into the   ──►   swaps in an immutable
//!   per-shard mutexes only         next epoch's CSR matrix,       Arc<ScoreSnapshot>;
//!                                  drives gossip::cycle on a      get_score / top_k /
//!                                  persistent engine + pool,      rank_of never block on
//!                                  publishes a new snapshot       an in-flight aggregation
//! ```
//!
//! * [`log`] — the sharded, append-only [`log::FeedbackLog`]: ratings
//!   accumulate into per-rater [`gossiptrust_core::local::LocalTrust`] rows
//!   and fold into a CSR `TrustMatrix` at each epoch boundary.
//! * [`snapshot`] — immutable, versioned [`snapshot::ScoreSnapshot`]s
//!   (scores, exact ranks, Bloom-filter rank buckets from
//!   `gossiptrust-storage`) and the [`snapshot::SnapshotCell`] publication
//!   point readers race through.
//! * [`epoch`] — the background [`epoch::EpochManager`] loop: every
//!   `GT_EPOCH_MS` (or on demand) it re-aggregates with
//!   `GossipTrustAggregator::aggregate_with_engine`, reusing one
//!   [`gossiptrust_gossip::engine::VectorGossipEngine`] and its persistent
//!   worker pool across epochs. A failed or non-converged epoch keeps the
//!   previous snapshot live and increments a degradation counter.
//! * [`service`] — the in-process [`service::ServiceHandle`] front-end,
//!   with a bounded-backlog admission gate (`GT_INGEST_QUEUE`) that sheds
//!   retriably instead of buffering without bound.
//! * [`server`] — a tokio line-delimited-JSON TCP front-end in
//!   `gossiptrust-net` style; bulk ingest reuses the binary
//!   `gossiptrust-net` codec ([`gossiptrust_net::codec::FeedbackBatch`]).
//!   Hardened with a connection-limit accept gate (`GT_CONN_LIMIT`) and a
//!   per-line read deadline (`GT_READ_TIMEOUT_MS`) that reaps slow-loris
//!   clients.
//! * [`stats`] — the [`stats::ServiceStats`] counter block; per-epoch gossip
//!   activity is derived with [`gossiptrust_gossip::stats::GossipStats::diff`]
//!   on the persistent engine's monotonic counters.
//! * [`wal`] — the CRC-framed crash-recovery write-ahead log
//!   (`GT_WAL_DIR`): every acknowledged feedback event is durable before
//!   the ack, and startup replays the longest valid prefix (tolerating a
//!   torn tail from a mid-write crash).
//! * [`chaos`] — the deterministic, seed-driven fault injector
//!   (`GT_CHAOS_SEED`) behind the `chaos_soak` experiment: dropped /
//!   delayed / duplicated / truncated response frames, stalled clients,
//!   epoch panics and overruns — all from one seeded RNG, never ambient
//!   entropy.
//! * [`loadgen`] — a Zipf query-mix load generator (the `loadgen` bin)
//!   writing `BENCH_service.json`; retries shed/overloaded requests with
//!   decorrelated-jitter backoff under a per-request deadline budget.
//! * [`obs`] — the [`obs::ServiceObs`] bundle from `gossiptrust-obs`: one
//!   shared metrics registry + span tracer recording query/ingest/request
//!   latencies, per-phase epoch timing, WAL fsync timing and the gossip
//!   engine's step hooks, scraped via the `metrics` verb or the
//!   `GT_METRICS_ADDR` listener as Prometheus text.
//!
//! ## Concurrency contract
//!
//! Reads (`get_score`, `top_k`, `rank_of`) clone an `Arc` out of the
//! [`snapshot::SnapshotCell`] and then run entirely on the immutable
//! snapshot: no lock is ever held while an aggregation is in flight, so
//! queries can never block on (or observe a torn state of) an epoch. The
//! only mutexes on the write path are the per-shard ingest locks of the
//! [`log::FeedbackLog`]. (The workspace pins its dependency set, so the
//! cell uses `std::sync`'s reader–writer lock for the pointer swap instead
//! of an external atomic-`Arc` crate; the critical section is a single
//! refcount increment — see `SnapshotCell` docs.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod epoch;
pub mod json;
pub mod loadgen;
pub mod log;
pub mod obs;
pub mod server;
pub mod service;
pub mod snapshot;
pub mod stats;
pub mod wal;

pub use chaos::{ChaosConfig, ChaosInjector, ChaosReport};
pub use epoch::EpochOutcome;
pub use log::{FeedbackEvent, FeedbackLog};
pub use obs::ServiceObs;
pub use server::{serve, serve_metrics_on};
pub use service::{
    RankView, ReputationService, ScoreView, ServeError, ServiceConfig, ServiceHandle, TopKView,
};
pub use snapshot::{ScoreSnapshot, SnapshotCell};
pub use stats::{ServiceStats, StatsReport};
pub use wal::{GroupCommitObs, GroupCommitWal, Wal, WalReplay};
