//! Object (copy-level) reputation — the paper's §7 extension.
//!
//! "With the help of object reputation \[18\], a client can validate the
//! authenticity of an object before initiating parallel file download from
//! multiple peers." (§7, citing Walsh & Sirer's Credence.)
//!
//! Peer reputation rates *who serves*; object reputation rates *what was
//! served*. We track votes per `(file, holder)` copy: after a download the
//! requester votes authentic or fake for that specific copy, and future
//! requesters skip copies whose vote history is bad. This complements peer
//! scores with direct evidence — a mostly-honest peer hosting one corrupt
//! copy gets that copy filtered without losing its peer-level standing.
//!
//! Votes are unweighted tallies; like any voting scheme this is gameable
//! by coordinated dishonest voters, which the ablation measures (Credence
//! weights votes by peer correlation to resist exactly that).

use gossiptrust_core::id::NodeId;
use std::collections::HashMap;

/// Acceptance policy for copies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObjectRepConfig {
    /// Minimum smoothed authenticity estimate to accept a copy.
    pub threshold: f64,
    /// Votes required before the filter applies at all (fresh copies are
    /// always acceptable — someone has to try them).
    pub min_votes: u32,
}

impl Default for ObjectRepConfig {
    fn default() -> Self {
        ObjectRepConfig { threshold: 0.4, min_votes: 2 }
    }
}

/// Vote tallies per `(file, holder)` copy.
#[derive(Clone, Debug, Default)]
pub struct ObjectReputation {
    votes: HashMap<(u32, u32), (u32, u32)>, // (file, holder) -> (authentic, total)
}

impl ObjectReputation {
    /// Empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a vote for the copy of `file` held by `holder`.
    pub fn record(&mut self, file: u32, holder: NodeId, authentic: bool) {
        let entry = self.votes.entry((file, holder.0)).or_insert((0, 0));
        if authentic {
            entry.0 += 1;
        }
        entry.1 += 1;
    }

    /// Total votes recorded for a copy.
    pub fn vote_count(&self, file: u32, holder: NodeId) -> u32 {
        self.votes.get(&(file, holder.0)).map_or(0, |&(_, t)| t)
    }

    /// Laplace-smoothed authenticity estimate `(pos + 1)/(total + 2)`;
    /// 0.5 for never-voted copies.
    pub fn estimate(&self, file: u32, holder: NodeId) -> f64 {
        let (pos, total) = self.votes.get(&(file, holder.0)).copied().unwrap_or((0, 0));
        (pos as f64 + 1.0) / (total as f64 + 2.0)
    }

    /// Whether a copy passes the acceptance policy.
    pub fn acceptable(&self, file: u32, holder: NodeId, config: &ObjectRepConfig) -> bool {
        if self.vote_count(file, holder) < config.min_votes {
            return true;
        }
        self.estimate(file, holder) >= config.threshold
    }

    /// Filter `holders` of `file` down to acceptable copies; falls back to
    /// the full set when the filter would reject everything (downloading a
    /// dubious copy beats downloading nothing).
    pub fn filter_holders(
        &self,
        file: u32,
        holders: &[NodeId],
        config: &ObjectRepConfig,
    ) -> Vec<NodeId> {
        let acceptable: Vec<NodeId> = holders
            .iter()
            .copied()
            .filter(|&h| self.acceptable(file, h, config))
            .collect();
        if acceptable.is_empty() {
            holders.to_vec()
        } else {
            acceptable
        }
    }

    /// Number of distinct copies with at least one vote.
    pub fn tracked_copies(&self) -> usize {
        self.votes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_copies_are_acceptable() {
        let rep = ObjectReputation::new();
        let cfg = ObjectRepConfig::default();
        assert!(rep.acceptable(0, NodeId(1), &cfg));
        assert_eq!(rep.estimate(0, NodeId(1)), 0.5);
        assert_eq!(rep.vote_count(0, NodeId(1)), 0);
    }

    #[test]
    fn bad_copies_get_filtered_after_enough_votes() {
        let mut rep = ObjectReputation::new();
        let cfg = ObjectRepConfig::default();
        rep.record(7, NodeId(3), false);
        assert!(rep.acceptable(7, NodeId(3), &cfg), "one vote is below min_votes");
        rep.record(7, NodeId(3), false);
        assert!(
            !rep.acceptable(7, NodeId(3), &cfg),
            "estimate {} should fail",
            rep.estimate(7, NodeId(3))
        );
    }

    #[test]
    fn good_copies_stay_acceptable() {
        let mut rep = ObjectReputation::new();
        let cfg = ObjectRepConfig::default();
        for _ in 0..5 {
            rep.record(1, NodeId(2), true);
        }
        assert!(rep.acceptable(1, NodeId(2), &cfg));
        assert!(rep.estimate(1, NodeId(2)) > 0.8);
    }

    #[test]
    fn votes_are_per_copy_not_per_file_or_peer() {
        let mut rep = ObjectReputation::new();
        rep.record(1, NodeId(2), false);
        rep.record(1, NodeId(2), false);
        let cfg = ObjectRepConfig::default();
        // Same file, different holder: unaffected.
        assert!(rep.acceptable(1, NodeId(3), &cfg));
        // Same holder, different file: unaffected.
        assert!(rep.acceptable(2, NodeId(2), &cfg));
        assert!(!rep.acceptable(1, NodeId(2), &cfg));
        assert_eq!(rep.tracked_copies(), 1);
    }

    #[test]
    fn filter_falls_back_when_everything_is_rejected() {
        let mut rep = ObjectReputation::new();
        let cfg = ObjectRepConfig::default();
        for h in [1u32, 2] {
            rep.record(0, NodeId(h), false);
            rep.record(0, NodeId(h), false);
        }
        let holders = vec![NodeId(1), NodeId(2)];
        let filtered = rep.filter_holders(0, &holders, &cfg);
        assert_eq!(filtered, holders, "must not filter down to nothing");
        // With one good alternative, the bad copies are dropped.
        let holders = vec![NodeId(1), NodeId(2), NodeId(9)];
        let filtered = rep.filter_holders(0, &holders, &cfg);
        assert_eq!(filtered, vec![NodeId(9)]);
    }
}
