//! `cargo xtask` — workspace automation entry point.
//!
//! ```text
//! cargo xtask lint                 # run gt-lint over the whole workspace
//! cargo xtask lint --list-waivers  # print the active lint.toml waivers
//! cargo xtask lint --list-rules    # print the rule set
//! ```
//!
//! Exit status: 0 clean, 1 violations found, 2 usage/configuration error.

#![forbid(unsafe_code)]

use gossiptrust_xtask::rules::RULE_NAMES;
use gossiptrust_xtask::{run_lint, walk};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask subcommand {other:?}; available: lint");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo xtask lint [--list-rules | --list-waivers]");
            ExitCode::from(2)
        }
    }
}

fn lint(flags: &[String]) -> ExitCode {
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("gt-lint: cannot read current directory: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = walk::find_root(&cwd) else {
        eprintln!("gt-lint: no workspace root (Cargo.toml + crates/) above {}", cwd.display());
        return ExitCode::from(2);
    };

    if flags.iter().any(|f| f == "--list-rules") {
        for r in RULE_NAMES {
            println!("{r}");
        }
        return ExitCode::SUCCESS;
    }

    match run_lint(&root) {
        Ok(report) => {
            if flags.iter().any(|f| f == "--list-waivers") {
                let text = std::fs::read_to_string(root.join("lint.toml")).unwrap_or_default();
                match gossiptrust_xtask::config::parse(&text) {
                    Ok(cfg) => {
                        for w in &cfg.waivers {
                            println!("{:<14} {:<44} {}", w.rule, w.path, w.reason);
                        }
                    }
                    Err(e) => {
                        eprintln!("gt-lint: {e}");
                        return ExitCode::from(2);
                    }
                }
                return ExitCode::SUCCESS;
            }
            for w in &report.unused_waivers {
                eprintln!(
                    "gt-lint: warning: unused waiver ({}, {}) — remove it from lint.toml",
                    w.rule, w.path
                );
            }
            if report.is_clean() {
                println!("gt-lint: {} files clean", report.files_scanned);
                ExitCode::SUCCESS
            } else {
                for v in &report.violations {
                    println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
                }
                println!(
                    "gt-lint: {} violation(s) in {} files scanned",
                    report.violations.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("gt-lint: {e}");
            ExitCode::from(2)
        }
    }
}
