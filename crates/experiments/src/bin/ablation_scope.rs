//! Ablation: global vs neighbor-constrained gossip targets (async sim).

use gossiptrust_experiments::ablations::gossip_scope;
use gossiptrust_experiments::{Scale, TextTable};

fn main() {
    let scale = Scale::from_env();
    println!("Ablation — gossip target scope in the async simulator ({scale:?} scale)\n");
    let rows = gossip_scope(scale);
    let mut t = TextTable::new(vec!["scope", "virtual time (ms)", "mean rel error"]);
    for r in &rows {
        t.row(vec![
            r.scope.clone(),
            format!("{:.0}", r.virtual_time_us / 1000.0),
            format!("{:.2e}", r.mean_rel_error),
        ]);
    }
    print!("{}", t.render());
}
