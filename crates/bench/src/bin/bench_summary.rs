//! Distill the engine-step and service-query benchmarks into
//! `BENCH_engine.json` and `BENCH_service.json`.
//!
//! Measures ns/step of the vector gossip engine over the `n × threads`
//! matrix (n ∈ {250, 1000, 4000} × threads ∈ {1, 2, 4}), distills a
//! per-`n` speedup sweep plus a machine-readable `baseline_delta` against
//! the previously committed `BENCH_engine.json`, then drives a Zipf query
//! mix against an in-process reputation service, and writes both records
//! to continue the perf trajectory:
//!
//! ```text
//! cargo run --release -p gossiptrust-bench --bin bench_summary
//! ```
//!
//! Set `GT_BENCH_QUICK=1` for a seconds-long smoke pass at reduced sizes
//! (recorded as such in both JSONs). Both files record the measuring
//! machine's core count — a speedup near 1.0 on a single-core box is the
//! expected honest result, not a regression. `baseline_delta` compares
//! like cells (same `n`, same `threads`) only, so a regression shows up
//! as a positive `ns_delta_pct` wherever the machine matches the one the
//! baseline was recorded on.

use gossiptrust_core::id::NodeId;
use gossiptrust_core::matrix::{TrustMatrix, TrustMatrixBuilder};
use gossiptrust_core::params::Params;
use gossiptrust_core::power_nodes::Prior;
use gossiptrust_core::vector::ReputationVector;
use gossiptrust_gossip::engine::{EngineConfig, VectorGossipEngine};
use gossiptrust_gossip::UniformChooser;
use gossiptrust_obs::Stopwatch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

struct Sample {
    n: usize,
    threads: usize,
    ns_per_step: f64,
    steps_timed: usize,
}

fn ring_matrix(n: usize) -> TrustMatrix {
    let mut b = TrustMatrixBuilder::new(n);
    for i in 0..n {
        b.record(NodeId::from_index(i), NodeId::from_index((i + 1) % n), 3.0);
        b.record(NodeId::from_index(i), NodeId::from_index((i + 7) % n), 1.0);
    }
    b.build()
}

/// Median-of-batches ns/step: warm up (which also spawns the pool), then
/// time batches of steps until the budget is spent and take the median
/// batch — robust to one-off scheduling noise without criterion.
fn measure(n: usize, threads: usize, budget_ms: u64) -> Sample {
    let m = ring_matrix(n);
    let config = EngineConfig::from_params(&Params::for_network(n), n).with_threads(threads);
    let mut engine = VectorGossipEngine::new(n, config);
    engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..3 {
        black_box(engine.par_step(&UniformChooser, &mut rng));
    }
    // Size batches so one batch is ~1/10 of the budget but ≥ 1 step.
    let probe = Stopwatch::start();
    black_box(engine.par_step(&UniformChooser, &mut rng));
    let per_step = probe.elapsed().as_nanos().max(1) as u64;
    let batch = ((budget_ms * 100_000) / per_step).clamp(1, 10_000) as usize;

    let mut batches: Vec<f64> = Vec::new();
    let mut steps_timed = 0;
    let started = Stopwatch::start();
    while started.elapsed().as_millis() < budget_ms as u128 || batches.len() < 3 {
        let t0 = Stopwatch::start();
        for _ in 0..batch {
            black_box(engine.par_step(&UniformChooser, &mut rng));
        }
        batches.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        steps_timed += batch;
    }
    batches.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    Sample { n, threads, ns_per_step: batches[batches.len() / 2], steps_timed }
}

/// Pull the `(n, threads, ns_per_step)` cells out of a previously written
/// `BENCH_engine.json`. Hand-rolled like the writer (no serde_json in this
/// crate): scans for the exact key shapes the writer emits, one result
/// object per line, and skips anything malformed — an unreadable or
/// reformatted baseline yields an empty delta, never a crash.
fn parse_baseline(text: &str) -> Vec<(usize, usize, f64)> {
    fn field(line: &str, key: &str) -> Option<f64> {
        let at = line.find(key)? + key.len();
        let rest = line[at..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }
    text.lines()
        .filter_map(|line| {
            let n = field(line, "\"n\":")? as usize;
            let threads = field(line, "\"threads\":")? as usize;
            let ns = field(line, "\"ns_per_step\":")?;
            (ns > 0.0).then_some((n, threads, ns))
        })
        .collect()
}

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

fn main() {
    let quick = gossiptrust_core::params::bench_quick();
    let (sizes, budget_ms): (&[usize], u64) = if quick {
        (&[60, 120], 200)
    } else {
        (&[250, 1_000, 4_000], 2_000)
    };
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let tile = gossiptrust_core::params::tile_width();
    // Read the committed record *before* overwriting it.
    let baseline = std::fs::read_to_string("BENCH_engine.json")
        .map(|t| parse_baseline(&t))
        .unwrap_or_default();

    let mut samples = Vec::new();
    for &n in sizes {
        for threads in THREAD_SWEEP {
            let s = measure(n, threads, budget_ms);
            println!(
                "n={:5}  threads={}  {:>12.0} ns/step  ({} steps timed)",
                s.n, s.threads, s.ns_per_step, s.steps_timed
            );
            samples.push(s);
        }
    }
    let cell = |n: usize, threads: usize| {
        samples
            .iter()
            .find(|s| s.n == n && s.threads == threads)
            .expect("swept cell exists")
    };

    // Per-n thread-sweep speedups (seq ns / par ns), plus the headline at
    // the largest size.
    let largest = *sizes.last().expect("sizes non-empty");
    let speedup = |n: usize, threads: usize| cell(n, 1).ns_per_step / cell(n, threads).ns_per_step;
    for &n in sizes {
        let per_n: Vec<String> = THREAD_SWEEP[1..]
            .iter()
            .map(|&t| format!("{t} thr {:.2}x", speedup(n, t)))
            .collect();
        println!("n={n:5}  speedups: {}", per_n.join(", "));
    }
    let headline = speedup(largest, 4);
    println!("\nspeedup at n={largest} with 4 threads on {cores} core(s): {headline:.2}x");

    // Like-for-like deltas vs the committed baseline (negative = faster).
    let deltas: Vec<(usize, usize, f64, f64)> = samples
        .iter()
        .filter_map(|s| {
            let (_, _, old) = baseline.iter().find(|&&(n, t, _)| n == s.n && t == s.threads)?;
            Some((s.n, s.threads, *old, (s.ns_per_step - old) / old * 100.0))
        })
        .collect();
    for &(n, threads, _, pct) in &deltas {
        println!("baseline delta n={n:5} threads={threads}: {pct:+.1}%");
    }

    // Hand-rolled JSON: flat numeric records, nothing needing escaping.
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"engine_step\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"tile\": {tile},\n"));
    json.push_str("  \"profile\": {\"lto\": \"thin\", \"codegen_units\": 1},\n");
    json.push_str(&format!("  \"speedup_largest_n_4_threads\": {headline:.4},\n"));
    json.push_str("  \"speedups\": [\n");
    let mut rows = Vec::new();
    for &n in sizes {
        for &t in &THREAD_SWEEP[1..] {
            rows.push(format!(
                "    {{\"n\": {n}, \"threads\": {t}, \"speedup\": {:.4}}}",
                speedup(n, t)
            ));
        }
    }
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"baseline_delta\": [\n");
    let rows: Vec<String> = deltas
        .iter()
        .map(|&(n, threads, old, pct)| {
            format!(
                "    {{\"n\": {n}, \"threads\": {threads}, \"baseline_ns_per_step\": {old:.1}, \
                 \"ns_delta_pct\": {pct:.1}}}"
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str(if rows.is_empty() {
        "  ],\n"
    } else {
        "\n  ],\n"
    });
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"threads\": {}, \"ns_per_step\": {:.1}, \"steps_timed\": {}}}{}\n",
            s.n,
            s.threads,
            s.ns_per_step,
            s.steps_timed,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("wrote BENCH_engine.json");

    service_summary(quick, cores);
}

/// Sibling record: queries/sec and tail latency of the reputation service
/// under a Zipf query mix, with epochs interleaved. Same `cores` field as
/// the engine record so the two stay comparable machine-to-machine. The
/// document also carries the robustness counters (`requests_shed`,
/// `retries`, `gave_up`, `conns_timed_out`, `conns_rejected`,
/// `epochs_panicked`, `epochs_overrun`, `wal_replayed_records`) so a soak
/// or drill run leaves an auditable record of what was shed vs served.
fn service_summary(quick: bool, cores: usize) {
    use gossiptrust_core::id::NodeId as Id;
    use gossiptrust_serve::loadgen::{report_json, run, LoadConfig};
    use gossiptrust_serve::service::{ReputationService, ServiceConfig};
    use rand::Rng;

    let n = if quick { 120 } else { 1_000 };
    let service = ReputationService::start(ServiceConfig::new(n).with_seed(7));
    let handle = service.handle();
    let mut rng = StdRng::seed_from_u64(11);
    for rater in 0..n {
        for _ in 0..8 {
            let target = rng.random_range(0..n);
            if target != rater {
                handle
                    .record(Id::from_index(rater), Id::from_index(target), 1.0)
                    .expect("in range");
            }
        }
    }
    handle.run_epoch_now().expect("epoch loop alive");

    let config = LoadConfig {
        queries: if quick { 5_000 } else { 100_000 },
        epoch_every: if quick { 2_000 } else { 25_000 },
        ..LoadConfig::default()
    };
    let report = run(&handle, &config);
    println!(
        "service n={n}  {:.0} q/s  p50 = {:.1} µs  p99 = {:.1} µs  epoch = {:.1} ms",
        report.queries_per_sec, report.p50_us, report.p99_us, report.epoch_wall_ms
    );
    let mut doc = report_json(&report, n, cores, quick);
    doc.push('\n');
    std::fs::write("BENCH_service.json", &doc).expect("write BENCH_service.json");
    println!("wrote BENCH_service.json");
    service.shutdown();
}
