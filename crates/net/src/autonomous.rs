//! Fully distributed execution: no coordinator barrier.
//!
//! The [`crate::cluster`] driver synchronizes cycles with an explicit
//! coordinator, which is convenient for measurement but is the one
//! centralized crutch in the workspace. This module removes it:
//!
//! * every push piggybacks a **converged bitmap** — one bit per node, set
//!   when that node's local detector has fired for the current cycle;
//!   bitmaps OR-merge on receipt, so "everyone has converged" spreads
//!   epidemically just like the scores themselves;
//! * a node **ends its cycle locally** once its own detector has fired
//!   and its bitmap is full: it extracts its vector estimate, selects
//!   power nodes from its *own* estimate, and seeds the next cycle;
//! * a **straggler** that receives a push from a later cycle jumps
//!   forward: it closes its current cycle immediately and reseeds, so the
//!   swarm never deadlocks on one slow node;
//! * the number of aggregation cycles is **fixed up front** from the
//!   paper's own convergence bound `d ≤ ⌈log_b δ⌉` with `b ≤ 1 − α`
//!   (every node computes the same number from public parameters), which
//!   makes termination collective *by construction* — the classic
//!   distributed-termination pitfall (nodes whose private `δ` tests fire
//!   at different cycles abandoning each other) cannot occur. Each node
//!   still evaluates the `δ` test locally and reports whether it passed.
//!
//! Cycle numbers keep the push streams of different cycles from mixing,
//! exactly as in the barrier mode.

use crate::codec::Push;
use crate::transport::Transport;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gossiptrust_core::id::NodeId;
use gossiptrust_core::matrix::TrustMatrix;
use gossiptrust_core::params::Params;
use gossiptrust_core::power_iter::cycle_bound;
use gossiptrust_core::power_nodes::PowerNodeSelector;
use gossiptrust_core::vector::ReputationVector;
use gossiptrust_crypto::{IdentityKey, Pkg, SignedEnvelope, Verifier};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use tokio::sync::mpsc;
use tokio::time::MissedTickBehavior;

/// A push extended with the sender's converged bitmap.
#[derive(Clone, Debug, PartialEq)]
pub struct AutonomousPush {
    /// The ordinary gossip push.
    pub push: Push,
    /// Bitmap of nodes known (transitively) to have converged this cycle.
    pub converged: Vec<u64>,
}

impl AutonomousPush {
    /// Serialize: `push_len: u32 | push | bitmap_words: u32 | bitmap`.
    pub fn encode(&self) -> Bytes {
        let push = self.push.encode();
        let mut buf = BytesMut::with_capacity(8 + push.len() + 8 * self.converged.len());
        buf.put_u32_le(push.len() as u32);
        buf.put_slice(&push);
        buf.put_u32_le(self.converged.len() as u32);
        for &w in &self.converged {
            buf.put_u64_le(w);
        }
        buf.freeze()
    }

    /// Deserialize; `None` on malformed input.
    pub fn decode(mut data: &[u8]) -> Option<AutonomousPush> {
        if data.len() < 4 {
            return None;
        }
        let push_len = data.get_u32_le() as usize;
        if data.len() < push_len + 4 {
            return None;
        }
        let push = Push::decode(&data[..push_len])?;
        data.advance(push_len);
        let words = data.get_u32_le() as usize;
        if data.len() != 8 * words {
            return None;
        }
        let converged = (0..words).map(|_| data.get_u64_le()).collect();
        Some(AutonomousPush { push, converged })
    }
}

fn bitmap_words(n: usize) -> usize {
    n.div_ceil(64)
}

fn bitmap_full(bitmap: &[u64], n: usize) -> bool {
    let mut count = 0u32;
    for &w in bitmap {
        count += w.count_ones();
    }
    count as usize >= n
}

/// Configuration of an autonomous run.
#[derive(Clone, Debug)]
pub struct AutonomousConfig {
    /// Gossip tick period per node.
    pub tick: Duration,
    /// Gossip threshold `ε` (relative change per tick).
    pub epsilon: f64,
    /// Consecutive calm ticks for the local detector.
    pub patience: usize,
    /// Per-cycle tick budget (forces cycle end on pathological cycles).
    pub max_ticks: usize,
    /// RNG / key seed.
    pub seed: u64,
    /// Wall-clock budget for the whole run.
    pub deadline: Duration,
}

impl AutonomousConfig {
    /// Fast settings for local tests.
    pub fn fast_local() -> Self {
        AutonomousConfig {
            tick: Duration::from_millis(2),
            epsilon: 1e-4,
            patience: 2,
            max_ticks: 5_000,
            seed: 0,
            deadline: Duration::from_secs(120),
        }
    }
}

/// One node's final report.
#[derive(Clone, Debug)]
pub struct NodeReport {
    /// The node.
    pub node: NodeId,
    /// Its converged global reputation vector.
    pub vector: ReputationVector,
    /// Aggregation cycles it ran.
    pub cycles: usize,
    /// Whether its local `δ` test fired (vs. hitting the cycle budget).
    pub converged: bool,
}

/// Result of an autonomous cluster run.
#[derive(Clone, Debug)]
pub struct AutonomousReport {
    /// Per-node reports (one per node that finished before the deadline).
    pub nodes: Vec<NodeReport>,
    /// Mean vector over reporting nodes.
    pub vector: ReputationVector,
    /// Fraction of nodes whose local δ test fired.
    pub converged_fraction: f64,
}

struct NodeState {
    xs: Vec<f64>,
    ws: Vec<f64>,
    prev_beta: Vec<f64>,
    streak: usize,
    ticks: usize,
    cycle: u32,
    bitmap: Vec<u64>,
    self_converged: bool,
    previous_estimate: Option<ReputationVector>,
    prior: Vec<f64>,
    v_own: f64,
    cycles_run: usize,
    delta_passed: bool,
}

/// The fixed cycle count every node derives from public parameters: the
/// paper's bound `d ≤ ⌈log_b δ⌉` with the mixing guarantee `b ≤ 1 − α`
/// (plus slack for gossip noise), clamped to the configured budget.
fn planned_cycles(params: &Params) -> usize {
    let b = (1.0 - params.alpha).clamp(0.5, 0.95);
    let bound = cycle_bound(params.delta, b).unwrap_or(params.max_cycles);
    (bound + 3).min(params.max_cycles).max(2)
}

/// Run the fully distributed protocol over in-memory transports and
/// collect every node's local result.
///
/// (Generic over [`Transport`] so tests can inject loss or tampering; the
/// public entry point wires the in-memory network.)
pub async fn run_autonomous<T: Transport>(
    matrix: &TrustMatrix,
    params: &Params,
    config: AutonomousConfig,
    transports: Vec<T>,
    receivers: Vec<mpsc::Receiver<Bytes>>,
) -> AutonomousReport {
    let n = matrix.n();
    assert!(n >= 2, "need at least two nodes");
    assert_eq!(params.n, n, "params.n must match the matrix");
    assert_eq!(transports.len(), n, "one transport per node");
    let pkg = Pkg::from_seed(config.seed ^ 0xA070);
    let (done_tx, mut done_rx) = mpsc::channel::<NodeReport>(n);

    let mut tasks = Vec::with_capacity(n);
    for (i, (transport, net_rx)) in transports.into_iter().zip(receivers).enumerate() {
        let id = NodeId::from_index(i);
        let (cols, vals) = matrix.row(id);
        let row: Vec<(u32, f64)> = cols.iter().zip(vals).map(|(&c, &v)| (c, v)).collect();
        let key = pkg.issue(i as u32);
        let verifier = pkg.verifier();
        let params = params.clone();
        let config = config.clone();
        let done = done_tx.clone();
        tasks.push(tokio::spawn(async move {
            autonomous_node(
                i as u32, n, row, params, config, key, verifier, transport, net_rx, done,
            )
            .await;
        }));
    }
    drop(done_tx);

    let mut nodes = Vec::with_capacity(n);
    // One overall deadline for the collection loop, not per-recv.
    let _ = tokio::time::timeout(config.deadline, async {
        while nodes.len() < n {
            match done_rx.recv().await {
                Some(report) => nodes.push(report),
                None => break,
            }
        }
    })
    .await;
    for t in tasks {
        t.abort();
    }

    assert!(!nodes.is_empty(), "no node finished before the deadline");
    let mut mean = vec![0.0; n];
    for r in &nodes {
        for (m, &v) in mean.iter_mut().zip(r.vector.values()) {
            *m += v / nodes.len() as f64;
        }
    }
    let converged_fraction =
        nodes.iter().filter(|r| r.converged).count() as f64 / nodes.len() as f64;
    AutonomousReport {
        vector: ReputationVector::from_weights(mean).expect("mean of normalized vectors"),
        nodes,
        converged_fraction,
    }
}

#[allow(clippy::too_many_arguments)]
async fn autonomous_node<T: Transport>(
    id: u32,
    n: usize,
    row: Vec<(u32, f64)>,
    params: Params,
    config: AutonomousConfig,
    key: IdentityKey,
    verifier: Verifier,
    transport: T,
    mut net_rx: mpsc::Receiver<Bytes>,
    done: mpsc::Sender<NodeReport>,
) {
    let mut rng = StdRng::seed_from_u64(config.seed ^ (id as u64).wrapping_mul(0x2545F4914F6CDD1D));
    let selector = PowerNodeSelector::new(params.max_power_nodes);
    let mut state = NodeState {
        xs: vec![0.0; n],
        ws: vec![0.0; n],
        prev_beta: vec![f64::NAN; n],
        streak: 0,
        ticks: 0,
        cycle: 1,
        bitmap: vec![0; bitmap_words(n)],
        self_converged: false,
        previous_estimate: None,
        prior: vec![1.0 / n as f64; n],
        v_own: 1.0 / n as f64,
        cycles_run: 0,
        delta_passed: false,
    };
    seed_cycle(&mut state, id, n, &row, params.alpha);

    let min_ticks = (n.max(2) as f64).log2().ceil() as usize;
    let mut interval = tokio::time::interval(config.tick);
    interval.set_missed_tick_behavior(MissedTickBehavior::Delay);

    loop {
        tokio::select! {
            _ = interval.tick() => {
                // Send one halved push with the piggybacked bitmap.
                for x in state.xs.iter_mut() { *x *= 0.5; }
                for w in state.ws.iter_mut() { *w *= 0.5; }
                let raw = rng.random_range(0..n - 1);
                let target = if raw >= id as usize { raw + 1 } else { raw } as u32;
                let push = AutonomousPush {
                    push: Push {
                        sender: id,
                        cycle: state.cycle,
                        xs: state.xs.clone(),
                        ws: state.ws.clone(),
                    },
                    converged: state.bitmap.clone(),
                };
                let envelope = key.seal(&push.encode());
                transport.send(target, envelope.encode()).await;
                state.ticks += 1;

                // Local detector.
                if !state.self_converged && detector_fires(&mut state, n, config.epsilon, config.patience, min_ticks)
                    || state.ticks >= config.max_ticks
                {
                    state.self_converged = true;
                    state.bitmap[id as usize / 64] |= 1u64 << (id as usize % 64);
                }
                // Cycle end: everyone (as far as we know) is done, or the
                // tick budget forces progress (e.g. finished peers have
                // gone quiet in the very last cycle).
                let force = state.self_converged && state.ticks >= config.max_ticks;
                if (state.self_converged && bitmap_full(&state.bitmap, n)) || force {
                    let finished = end_cycle(&mut state, id, n, &row, &params, &selector);
                    if let Some(report) = finished {
                        let _ = done.send(report).await;
                        return;
                    }
                }
            }
            msg = net_rx.recv() => {
                let Some(data) = msg else { return };
                let Some(envelope) = SignedEnvelope::decode(&data) else { continue };
                let Some(payload) = verifier.open(&envelope) else { continue };
                let Some(incoming) = AutonomousPush::decode(&payload) else { continue };
                if incoming.push.sender != envelope.sender || incoming.push.xs.len() != n {
                    continue;
                }
                if incoming.push.cycle > state.cycle {
                    // Straggler catch-up: close our cycle now and jump.
                    let target_cycle = incoming.push.cycle;
                    while state.cycle < target_cycle {
                        if let Some(report) = end_cycle(&mut state, id, n, &row, &params, &selector) {
                            let _ = done.send(report).await;
                            return;
                        }
                    }
                }
                if incoming.push.cycle == state.cycle {
                    for (d, s) in state.xs.iter_mut().zip(&incoming.push.xs) { *d += s; }
                    for (d, s) in state.ws.iter_mut().zip(&incoming.push.ws) { *d += s; }
                    for (b, w) in state.bitmap.iter_mut().zip(&incoming.converged) { *b |= w; }
                }
                // Older-cycle pushes are stale: dropped.
            }
        }
    }
}

fn seed_cycle(state: &mut NodeState, id: u32, n: usize, row: &[(u32, f64)], alpha: f64) {
    let vi = state.v_own;
    for (x, &pj) in state.xs.iter_mut().zip(&state.prior) {
        *x = vi * alpha * pj;
    }
    if row.is_empty() {
        let share = vi * (1.0 - alpha) / n as f64;
        for x in state.xs.iter_mut() {
            *x += share;
        }
    } else {
        for &(j, s) in row {
            state.xs[j as usize] += vi * (1.0 - alpha) * s;
        }
    }
    state.ws.fill(0.0);
    state.ws[id as usize] = 1.0;
    state.prev_beta.fill(f64::NAN);
    state.streak = 0;
    state.ticks = 0;
    state.bitmap.fill(0);
    state.self_converged = false;
}

fn detector_fires(
    state: &mut NodeState,
    n: usize,
    epsilon: f64,
    patience: usize,
    min_ticks: usize,
) -> bool {
    let mut change: f64 = 0.0;
    let mut defined = true;
    for j in 0..n {
        let w = state.ws[j];
        if w > 0.0 {
            let beta = state.xs[j] / w;
            let prev = state.prev_beta[j];
            if prev.is_nan() {
                change = f64::INFINITY;
            } else {
                change = change.max((beta - prev).abs() / beta.abs().max(f64::MIN_POSITIVE));
            }
            state.prev_beta[j] = beta;
        } else {
            defined = false;
            state.prev_beta[j] = f64::NAN;
        }
    }
    if defined && change <= epsilon {
        state.streak += 1;
    } else {
        state.streak = 0;
    }
    state.streak >= patience && state.ticks >= min_ticks
}

/// Close the current cycle: extract, run the local outer δ test, pick
/// power nodes locally, and either report (done) or seed the next cycle.
fn end_cycle(
    state: &mut NodeState,
    id: u32,
    n: usize,
    row: &[(u32, f64)],
    params: &Params,
    selector: &PowerNodeSelector,
) -> Option<NodeReport> {
    // Sanitize: a ratio can overflow to Inf when a component's consensus
    // weight is subnormal (repeated halving under scheduling starvation),
    // and a forced cycle end can catch a node with no usable estimate at
    // all — fall back to uniform rather than crash the actor.
    let mut estimate: Vec<f64> = state
        .xs
        .iter()
        .zip(&state.ws)
        .map(|(&x, &w)| {
            let beta = if w > 0.0 { x / w } else { 0.0 };
            if beta.is_finite() {
                beta.max(0.0)
            } else {
                0.0
            }
        })
        .collect();
    if estimate.iter().sum::<f64>() <= 0.0 {
        estimate.fill(1.0 / n as f64);
    }
    let vector = ReputationVector::from_weights(estimate).expect("sanitized estimates");
    state.v_own = vector.score(NodeId(id)).max(f64::MIN_POSITIVE);
    state.cycles_run += 1;

    let locally_converged = state
        .previous_estimate
        .as_ref()
        .map(|prev| prev.avg_relative_error(&vector).expect("same n") < params.delta)
        .unwrap_or(false);
    state.delta_passed = state.delta_passed || locally_converged;
    // Deterministic collective termination: every node runs the same
    // pre-computed number of cycles (see `planned_cycles`).
    if state.cycles_run >= planned_cycles(params) {
        return Some(NodeReport {
            node: NodeId(id),
            vector,
            cycles: state.cycles_run,
            converged: state.delta_passed,
        });
    }
    // Fully local power-node selection for the next cycle's prior.
    let power = selector.select(&vector);
    state.prior = gossiptrust_core::power_nodes::Prior::over_nodes(n, &power).to_dense();
    state.previous_estimate = Some(vector);
    state.cycle += 1;
    seed_cycle(state, id, n, row, params.alpha);
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{InMemoryHandle, InMemoryNetwork};
    use gossiptrust_core::matrix::TrustMatrixBuilder;
    use gossiptrust_core::power_iter::PowerIteration;
    use gossiptrust_core::power_nodes::Prior;
    use std::sync::Arc;

    fn authority(n: usize) -> TrustMatrix {
        let mut b = TrustMatrixBuilder::new(n);
        for i in 1..n {
            b.record(NodeId::from_index(i), NodeId(0), 4.0);
            b.record(NodeId::from_index(i), NodeId::from_index((i + 1) % n), 1.0);
            b.record(NodeId(0), NodeId::from_index(i), 1.0);
        }
        b.build()
    }

    #[test]
    fn autonomous_push_roundtrip() {
        let p = AutonomousPush {
            push: Push { sender: 3, cycle: 2, xs: vec![0.1, 0.2], ws: vec![0.5, 0.0] },
            converged: vec![0b1011],
        };
        assert_eq!(AutonomousPush::decode(&p.encode()).unwrap(), p);
        assert!(AutonomousPush::decode(&[1, 2]).is_none());
        let mut truncated = p.encode().to_vec();
        truncated.pop();
        assert!(AutonomousPush::decode(&truncated).is_none());
    }

    #[test]
    fn bitmap_helpers() {
        assert_eq!(bitmap_words(1), 1);
        assert_eq!(bitmap_words(64), 1);
        assert_eq!(bitmap_words(65), 2);
        let mut bm = vec![0u64; 2];
        assert!(!bitmap_full(&bm, 65));
        bm[0] = u64::MAX;
        bm[1] = 1;
        assert!(bitmap_full(&bm, 65));
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn coordinator_free_run_matches_oracle() {
        let n = 12;
        let matrix = authority(n);
        let params = Params::for_network(n);
        let (net, receivers) = InMemoryNetwork::new(n, 2048, 0.0, 0);
        let transports: Vec<InMemoryHandle> =
            (0..n).map(|_| InMemoryHandle::new(Arc::clone(&net))).collect();
        let report = run_autonomous(
            &matrix,
            &params,
            AutonomousConfig { seed: 7, ..AutonomousConfig::fast_local() },
            transports,
            receivers,
        )
        .await;
        assert_eq!(report.nodes.len(), n, "every node must report");
        assert!(report.converged_fraction > 0.5, "fraction {}", report.converged_fraction);
        // Rankings agree with the oracle's top choice.
        assert_eq!(report.vector.ranking()[0], NodeId(0));
        let oracle = PowerIteration::new(params).solve(&matrix, &Prior::uniform(n));
        assert_eq!(oracle.vector.ranking()[0], NodeId(0));
        // Nodes agree among themselves (same consensus).
        for r in &report.nodes {
            assert_eq!(r.vector.ranking()[0], NodeId(0), "node {} disagrees", r.node);
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn survives_message_loss() {
        let n = 10;
        let matrix = authority(n);
        let mut params = Params::for_network(n);
        params.delta = 5e-2; // loss raises the noise floor (Table 3 logic)
        let (net, receivers) = InMemoryNetwork::new(n, 2048, 0.05, 3);
        let transports: Vec<InMemoryHandle> =
            (0..n).map(|_| InMemoryHandle::new(Arc::clone(&net))).collect();
        let report = run_autonomous(
            &matrix,
            &params,
            AutonomousConfig { seed: 9, ..AutonomousConfig::fast_local() },
            transports,
            receivers,
        )
        .await;
        assert!(!report.nodes.is_empty());
        assert_eq!(report.vector.ranking()[0], NodeId(0));
    }
}
