#!/usr/bin/env bash
# Tier-1 gate: build + full test suite per crate, then a quick end-to-end
# smoke of the experiment harness (which exercises the parallel gossip
# path on any multi-core machine — the engine auto-sizes to GT_THREADS or
# the available parallelism) and of the service load generator.
#
#   scripts/tier1.sh                # full gate
#   GT_THREADS=2 scripts/tier1.sh   # pin the gossip thread count
#
# The per-crate test loop runs EVERY crate even after a failure and exits
# nonzero if any crate failed, so one red crate cannot mask another.
set -uo pipefail
cd "$(dirname "$0")/.."

failed=0

step() {
  echo
  echo "=== $* ==="
  if ! "$@"; then
    echo "FAILED: $*" >&2
    failed=1
  fi
}

step cargo build --release --workspace

# Repo-specific static analysis (gt-lint): the per-file rules (float-eq
# hygiene, the single env-knob surface, hash-free kernels,
# forbid(unsafe_code) coverage, no ambient entropy) plus the workspace
# call-graph families (taint reachability into the deterministic kernels,
# panic-path on the serving roots, async executor discipline). Waivers
# live in lint.toml; an expired waiver fails this step.
step cargo xtask lint --no-cache

# The linter's own acceptance gate: every rule family must trip on its
# committed trip-fixture and stay quiet on the matching clean one.
step cargo test -q -p gossiptrust-xtask --test fixtures
step cargo test -q -p gossiptrust-xtask --test lint_rules

# Per-crate test runs: a failure in one crate is reported but does not
# stop the remaining crates from being tested.
for manifest in crates/*/Cargo.toml; do
  name=$(sed -n 's/^name = "\(.*\)"/\1/p' "$manifest" | head -n1)
  step cargo test -q -p "$name"
done

# The facade crate (workspace root package), incl. the integration tests.
step cargo test -q -p gossiptrust

# One shard with the runtime invariant layer on: per-step mass
# conservation, par/seq bit-identity, snapshot-replay determinism.
step cargo test -q -p gossiptrust-core --features invariants
step cargo test -q -p gossiptrust-gossip --features invariants
step cargo test -q -p gossiptrust-serve --features invariants

# WAL shard: the group-commit pipeline's own tests — byte-identity vs
# sequential appends under concurrent submitters, torn-tail-mid-group
# recovery, failed-commit error fan-out, shutdown drain — run as a named
# shard so a WAL regression is visible at a glance, not buried in the
# per-crate loop above.
step cargo test -q -p gossiptrust-serve --lib wal::

# Observability shard: the mid-epoch scrape integration test (metrics
# verb + HTTP listener under live load) and the <2% engine-hook
# overhead proof (obs_overhead exits nonzero over budget).
step cargo test -q -p gossiptrust --test obs_scrape
step env GT_BENCH_QUICK=1 cargo run --release -p gossiptrust-bench --bin obs_overhead

step env GT_QUICK=1 cargo run --release -p gossiptrust-experiments --bin all

# Chaos shard: the deterministic fault-injection soak (quick mode) —
# epoch panics/overruns under the watchdog, overload shedding, torn-tail
# WAL recovery, and the TCP drill (frame faults, slow-loris reaping, the
# connection-limit gate). One fixed seed; a red run replays identically.
step env GT_QUICK=1 cargo run --release -p gossiptrust-experiments --bin chaos_soak

step env GT_BENCH_QUICK=1 cargo run --release -p gossiptrust-serve --bin loadgen

echo
if [ "$failed" -ne 0 ]; then
  echo "tier-1 gate FAILED (one or more steps above)" >&2
  exit 1
fi
echo "tier-1 gate passed"
