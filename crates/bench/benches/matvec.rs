//! Sparse `Sᵀ·v`: the exact per-cycle aggregation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gossiptrust_core::prelude::*;
use gossiptrust_workloads::population::ThreatConfig;
use gossiptrust_workloads::scenario::{Scenario, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn matrix_for(n: usize) -> TrustMatrix {
    let cfg = if n >= 500 {
        ScenarioConfig::new(n, ThreatConfig::benign())
    } else {
        ScenarioConfig::small(n, ThreatConfig::benign())
    };
    Scenario::generate(&cfg, &mut StdRng::seed_from_u64(3)).honest
}

fn bench_transpose_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpose_mul");
    for &n in &[100usize, 1_000, 4_000] {
        let m = matrix_for(n);
        group.throughput(Throughput::Elements(m.nnz() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let v = ReputationVector::uniform(n);
            let mut out = vec![0.0; n];
            b.iter(|| {
                m.transpose_mul(black_box(v.values()), &mut out).unwrap();
                black_box(&out);
            });
        });
    }
    group.finish();
}

fn bench_power_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("power_iteration_solve");
    group.sample_size(20);
    for &n in &[500usize, 1_000] {
        let m = matrix_for(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let solver = PowerIteration::new(Params::for_network(n));
            let prior = Prior::uniform(n);
            b.iter(|| black_box(solver.solve(&m, &prior)));
        });
    }
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group!(name = benches; config = short(); targets = bench_transpose_mul, bench_power_iteration);
criterion_main!(benches);
