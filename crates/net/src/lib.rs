//! # gossiptrust-net
//!
//! An asynchronous GossipTrust runtime on tokio: the same Algorithm-2
//! protocol as the lock-step engine in `gossiptrust-gossip`, but executed
//! by real concurrent node tasks exchanging real messages.
//!
//! * [`codec`] — the wire format for gossip pushes (bincode-free, hand
//!   rolled over `bytes`), carried inside signed envelopes from
//!   `gossiptrust-crypto` so tampered or spoofed pushes are dropped.
//! * [`transport`] — the [`transport::Transport`] abstraction plus the
//!   in-process channel transport (with loss injection) used by tests and
//!   benchmarks.
//! * [`udp`] — a UDP/localhost transport: every node binds its own socket,
//!   pushes are single datagrams.
//! * [`node`] — the per-node actor: a tokio task with a gossip tick, merge
//!   loop, per-cycle seeding and local convergence detection.
//! * [`cluster`] — the experiment driver that spawns `n` node tasks plus a
//!   coordinator implementing the cycle barrier. (A deployed system would
//!   detect global convergence with a gossip round of its own; the
//!   explicit barrier keeps the harness deterministic and measurable —
//!   documented in DESIGN.md.)
//!
//! ```no_run
//! use gossiptrust_core::prelude::*;
//! use gossiptrust_net::cluster::{Cluster, NetConfig};
//!
//! # async fn demo() {
//! let mut b = TrustMatrixBuilder::new(8);
//! for i in 1..8u32 {
//!     b.record(NodeId(i), NodeId(0), 1.0);
//! }
//! b.record(NodeId(0), NodeId(1), 1.0);
//! let matrix = b.build();
//! let report = Cluster::in_memory(NetConfig::fast_local())
//!     .run(&matrix, &Params::for_network(8))
//!     .await;
//! assert!(report.converged);
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autonomous;
pub mod cluster;
pub mod codec;
pub mod node;
pub mod transport;
pub mod udp;

pub use autonomous::{run_autonomous, AutonomousConfig, AutonomousReport};
pub use cluster::{Cluster, ClusterReport, NetConfig};
pub use codec::{FeedbackBatch, Push};
pub use transport::{InMemoryNetwork, Transport};
