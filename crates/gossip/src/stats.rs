//! Instrumentation counters for gossip runs.

use serde::{Deserialize, Serialize};

/// Estimated bytes of memory traffic one gossip step streams, for an
/// `n`-node engine that delivered `delivered` pushes, with a step kernel
/// tiled at `tile` destination columns (see `engine::step_slab`).
///
/// The model counts every array the tiled kernel touches exactly once —
/// which is the point of the tiling (the untiled kernel re-streamed the
/// write row once *per sender*):
///
/// * own row read (`x` + `w`): `2n` f64 per row → `16n²` bytes,
/// * next-state write (`x` + `w`): `16n²` bytes,
/// * convergence memory `β` read + write: `16n²` bytes,
/// * each delivered push reads the sender's `x`/`w` row once: `16n` bytes,
/// * the CSR sender ids (u32) are re-read once per tile sweep:
///   `4 · delivered · ⌈n/tile⌉` bytes.
///
/// It is an *estimate*: dead rows skip the β stream and cache residency
/// makes real DRAM traffic lower, but the figure tracks the right order
/// and, divided by step wall time, shows when the kernel is
/// bandwidth-bound (compare against the machine's stream bandwidth).
pub fn step_bytes_estimate(n: usize, delivered: usize, tile: usize) -> u64 {
    let n = n as u64;
    let delivered = delivered as u64;
    let sweeps = n.div_ceil(tile.max(1) as u64);
    48 * n * n + 16 * n * delivered + 4 * delivered * sweeps
}

/// Counters accumulated by a gossip engine.
///
/// A "message" is one gossip pair/vector pushed across the network (the
/// self-half a node keeps is *not* counted — it never touches a link).
/// `triplets_sent` approximates bandwidth: for the vector protocol each
/// message carries `n` triplets, for the scalar protocol exactly one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GossipStats {
    /// Gossip steps executed.
    pub steps: u64,
    /// Messages pushed onto the network (excluding self-halves).
    pub messages_sent: u64,
    /// Messages lost to injected link failures.
    pub messages_dropped: u64,
    /// Total triplets carried by sent messages (bandwidth proxy).
    pub triplets_sent: u64,
    /// Estimated bytes of memory traffic streamed by the step kernel
    /// (see [`step_bytes_estimate`]) — the observable for the engine's
    /// bandwidth-boundedness, accumulated per step.
    pub bytes_streamed: u64,
}

impl GossipStats {
    /// Merge another counter set into this one (used when summing cycles).
    pub fn absorb(&mut self, other: &GossipStats) {
        self.steps += other.steps;
        self.messages_sent += other.messages_sent;
        self.messages_dropped += other.messages_dropped;
        self.triplets_sent += other.triplets_sent;
        self.bytes_streamed += other.bytes_streamed;
    }

    /// Counter deltas accumulated since `before` was captured (the inverse
    /// of [`absorb`](Self::absorb)): `before.diff(&after)` on a monotonic
    /// engine counter yields exactly the activity of the interval. Panics
    /// (in debug) if `before` is not a prefix of `self` — counters never
    /// decrease.
    pub fn diff(&self, before: &GossipStats) -> GossipStats {
        debug_assert!(
            self.steps >= before.steps
                && self.messages_sent >= before.messages_sent
                && self.messages_dropped >= before.messages_dropped
                && self.triplets_sent >= before.triplets_sent
                && self.bytes_streamed >= before.bytes_streamed,
            "diff against a later snapshot"
        );
        GossipStats {
            steps: self.steps - before.steps,
            messages_sent: self.messages_sent - before.messages_sent,
            messages_dropped: self.messages_dropped - before.messages_dropped,
            triplets_sent: self.triplets_sent - before.triplets_sent,
            bytes_streamed: self.bytes_streamed - before.bytes_streamed,
        }
    }

    /// Mean estimated bytes streamed per executed step (0 before any step)
    /// — the `stats::diff`-friendly readout of [`step_bytes_estimate`].
    pub fn bytes_streamed_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.bytes_streamed as f64 / self.steps as f64
        }
    }

    /// Fraction of sent messages that were dropped (0 when nothing sent).
    pub fn drop_rate(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.messages_dropped as f64 / self.messages_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = GossipStats {
            steps: 1,
            messages_sent: 10,
            messages_dropped: 2,
            triplets_sent: 100,
            bytes_streamed: 1000,
        };
        let b = GossipStats {
            steps: 2,
            messages_sent: 5,
            messages_dropped: 0,
            triplets_sent: 50,
            bytes_streamed: 500,
        };
        a.absorb(&b);
        assert_eq!(
            a,
            GossipStats {
                steps: 3,
                messages_sent: 15,
                messages_dropped: 2,
                triplets_sent: 150,
                bytes_streamed: 1500,
            }
        );
    }

    #[test]
    fn diff_inverts_absorb() {
        let before = GossipStats {
            steps: 1,
            messages_sent: 10,
            messages_dropped: 2,
            triplets_sent: 100,
            bytes_streamed: 1000,
        };
        let delta = GossipStats {
            steps: 2,
            messages_sent: 5,
            messages_dropped: 1,
            triplets_sent: 50,
            bytes_streamed: 700,
        };
        let mut after = before;
        after.absorb(&delta);
        assert_eq!(after.diff(&before), delta);
        // Diffing against itself is the zero delta.
        assert_eq!(after.diff(&after), GossipStats::default());
    }

    #[test]
    fn drop_rate_handles_zero() {
        assert_eq!(GossipStats::default().drop_rate(), 0.0);
        let s = GossipStats { messages_sent: 4, messages_dropped: 1, ..Default::default() };
        assert_eq!(s.drop_rate(), 0.25);
    }

    /// Pin the traffic model: every term of [`step_bytes_estimate`] is
    /// checked against the hand-computed expansion for a small step.
    #[test]
    fn step_bytes_estimate_matches_the_model() {
        // n = 8, 5 delivered pushes, tile 4 → 2 tile sweeps per row.
        let n = 8u64;
        let delivered = 5u64;
        let expected = 48 * n * n            // own read + next write + β rw
            + 16 * n * delivered             // one sender-row read per push
            + 4 * delivered * 2; // CSR ids re-read once per sweep
        assert_eq!(step_bytes_estimate(8, 5, 4), expected);
        // One tile covering the whole row: exactly one CSR sweep.
        assert_eq!(step_bytes_estimate(8, 5, 1024), 48 * 64 + 16 * 8 * 5 + 4 * 5);
        // No deliveries: pure state streaming.
        assert_eq!(step_bytes_estimate(8, 0, 4), 48 * 64);
    }

    #[test]
    fn bytes_streamed_per_step_averages() {
        assert_eq!(GossipStats::default().bytes_streamed_per_step(), 0.0);
        let s = GossipStats { steps: 4, bytes_streamed: 1000, ..Default::default() };
        assert!((s.bytes_streamed_per_step() - 250.0).abs() < 1e-12);
    }
}
