//! Query workload over the file catalog (§6.4).
//!
//! "We rank the queries according to their popularity. We use a power law
//! distribution with φ = 0.63 for queries ranked 1 to 250 and φ = 1.24 for
//! lower-ranking queries. This distribution models the query popularity
//! distribution in Gnutella."
//!
//! File ids double as popularity ranks (see [`crate::files`]), so a sampled
//! query rank `r` maps to file id `r − 1`: the most-queried files are also
//! the most replicated, as in Gnutella.

use crate::powerlaw::TwoSegmentZipf;
use gossiptrust_core::id::NodeId;
use rand::Rng;

/// One query event: `requester` looks for `file`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Query {
    /// The querying peer.
    pub requester: NodeId,
    /// The requested file id.
    pub file: u32,
}

/// Generator of Gnutella-like query streams.
#[derive(Clone, Debug)]
pub struct QueryWorkload {
    popularity: TwoSegmentZipf,
    n: usize,
}

impl QueryWorkload {
    /// Workload over `num_files` files and `n` peers with the paper's
    /// two-segment popularity law.
    pub fn new(n: usize, num_files: usize) -> Self {
        assert!(n >= 1 && num_files >= 1, "need peers and files");
        QueryWorkload { popularity: TwoSegmentZipf::gnutella_queries(num_files), n }
    }

    /// Number of peers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of files.
    pub fn num_files(&self) -> usize {
        self.popularity.n()
    }

    /// Sample the next query: uniform random requester ("a query is
    /// randomly generated at a peer"), file by popularity rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Query {
        let rank = self.popularity.sample(rng);
        Query {
            requester: NodeId::from_index(rng.random_range(0..self.n)),
            file: (rank - 1) as u32,
        }
    }

    /// Sample a batch of `count` queries.
    pub fn sample_batch<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<Query> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// Probability that a query targets file `f`.
    pub fn file_probability(&self, f: u32) -> f64 {
        self.popularity.pmf(f as usize + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn queries_are_in_range() {
        let w = QueryWorkload::new(20, 1_000);
        let mut rng = StdRng::seed_from_u64(1);
        for q in w.sample_batch(5_000, &mut rng) {
            assert!(q.requester.index() < 20);
            assert!((q.file as usize) < 1_000);
        }
    }

    #[test]
    fn popular_files_are_queried_more() {
        let w = QueryWorkload::new(10, 10_000);
        let mut rng = StdRng::seed_from_u64(2);
        let batch = w.sample_batch(50_000, &mut rng);
        let head = batch.iter().filter(|q| q.file < 100).count();
        let tail = batch.iter().filter(|q| q.file >= 9_000).count();
        assert!(head > 5 * tail.max(1), "head {head} vs tail {tail}");
    }

    #[test]
    fn requesters_are_roughly_uniform() {
        let w = QueryWorkload::new(4, 100);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for q in w.sample_batch(40_000, &mut rng) {
            counts[q.requester.index()] += 1;
        }
        for &c in &counts {
            let p = c as f64 / 40_000.0;
            assert!((p - 0.25).abs() < 0.02, "p {p}");
        }
    }

    #[test]
    fn file_probability_matches_empirical() {
        let w = QueryWorkload::new(5, 50);
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 100_000;
        let hits = w
            .sample_batch(trials, &mut rng)
            .iter()
            .filter(|q| q.file == 0)
            .count();
        let emp = hits as f64 / trials as f64;
        let ana = w.file_probability(0);
        assert!((emp - ana).abs() < 0.01, "{emp} vs {ana}");
    }
}
