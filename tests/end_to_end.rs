//! Cross-crate integration tests: the full GossipTrust pipeline from
//! workload generation through gossip aggregation to storage and
//! application-level selection.

use gossiptrust::baselines::{CentralizedOracle, EigenTrust, NoTrust};
use gossiptrust::prelude::*;
use gossiptrust::storage::{RankStorage, RankStorageConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn benign_scenario(n: usize, seed: u64) -> Scenario {
    Scenario::generate(
        &ScenarioConfig::small(n, ThreatConfig::benign()),
        &mut StdRng::seed_from_u64(seed),
    )
}

/// Workload → gossip aggregation → Bloom rank storage, end to end.
#[test]
fn full_pipeline_from_feedback_to_rank_storage() {
    let n = 60;
    let scenario = benign_scenario(n, 1);
    let params = Params::for_network(n);
    let mut rng = StdRng::seed_from_u64(2);
    let report = GossipTrustAggregator::new(params)
        .with_prior_policy(PriorPolicy::Fixed(Prior::uniform(n)))
        .aggregate(&scenario.honest, &mut rng);
    assert!(report.converged);

    // Store the converged ranking in Bloom buckets and read it back.
    let storage =
        RankStorage::build(&report.vector, RankStorageConfig { levels: 6, fp_rate: 0.01 });
    let top = report.vector.ranking()[0];
    assert_eq!(storage.rank_level(top), 0, "top peer must be in the best bucket");
    assert!(storage.byte_size() < storage.exact_table_bytes());
    assert!(storage.mean_rank_error(&report.vector) < 0.5);
}

/// Three independent implementations of the same mathematics — the
/// centralized oracle, gossip aggregation, and EigenTrust over the DHT —
/// agree on the reputation ranking of a benign network.
#[test]
fn three_systems_agree_on_rankings() {
    let n = 50;
    let scenario = benign_scenario(n, 3);
    let params = Params::for_network(n).with_delta(1e-6);

    let oracle = CentralizedOracle::new(params.clone()).compute(&scenario.honest);
    assert!(oracle.converged);

    let mut rng = StdRng::seed_from_u64(4);
    let gossip = GossipTrustAggregator::new(params.clone().with_epsilon(1e-6))
        .with_prior_policy(PriorPolicy::Fixed(Prior::uniform(n)))
        .aggregate(&scenario.honest, &mut rng);
    assert!(gossip.converged);

    let eigentrust = EigenTrust::new(params, vec![]).compute(&scenario.honest);
    assert!(eigentrust.converged);

    // Value-level agreement.
    assert!(oracle.vector.rms_relative_error(&gossip.vector).unwrap() < 0.02);
    assert!(oracle.vector.rms_relative_error(&eigentrust.vector).unwrap() < 1e-4);
    // Top-5 agreement.
    let overlap = gossiptrust::core::metrics::top_k_overlap(
        &oracle.vector.ranking(),
        &gossip.vector.ranking(),
        5,
    );
    assert!(overlap >= 0.8, "top-5 overlap {overlap}");
}

/// Under an independent-malicious threat model, the gossiped scores of
/// honest peers dominate those of the attackers even though the attackers
/// pollute the input matrix.
#[test]
fn gossip_demotes_independent_attackers() {
    let n = 100;
    let cfg = ScenarioConfig::small(n, ThreatConfig::independent(0.2));
    let scenario = Scenario::generate(&cfg, &mut StdRng::seed_from_u64(5));
    let params = Params::for_network(n);
    let mut rng = StdRng::seed_from_u64(6);
    let report = GossipTrustAggregator::new(params)
        .with_prior_policy(PriorPolicy::Fixed(Prior::uniform(n)))
        .aggregate(&scenario.polluted, &mut rng);

    let avg = |ids: &[NodeId]| {
        ids.iter().map(|&i| report.vector.score(i)).sum::<f64>() / ids.len() as f64
    };
    let honest = avg(&scenario.population.honest_peers());
    let malicious = avg(&scenario.population.malicious_peers());
    assert!(honest > malicious, "honest {honest} should outscore malicious {malicious}");
}

/// NoTrust is genuinely reputation-free: its vector is uniform and its
/// selection ignores scores entirely.
#[test]
fn notrust_is_uniform() {
    let v = NoTrust.vector(10);
    for id in NodeId::all(10) {
        assert!((v.score(id) - 0.1).abs() < 1e-12);
    }
}

/// The centralized oracle and the gossip pipeline survive a *warm restart*:
/// re-aggregating from a converged vector terminates almost immediately
/// (this is the reputation-updating path of §3).
#[test]
fn reputation_updating_warm_restart() {
    let n = 40;
    let scenario = benign_scenario(n, 7);
    let params = Params::for_network(n).with_epsilon(1e-7);
    let agg =
        GossipTrustAggregator::new(params).with_prior_policy(PriorPolicy::Fixed(Prior::uniform(n)));
    let mut rng = StdRng::seed_from_u64(8);
    let cold = agg.aggregate(&scenario.honest, &mut rng);
    let warm = agg.aggregate_with(&scenario.honest, &cold.vector, &UniformChooser, &mut rng);
    assert!(warm.cycles < cold.cycles, "{} vs {}", warm.cycles, cold.cycles);
}
