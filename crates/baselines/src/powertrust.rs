//! PowerTrust (Zhou & Hwang, TPDS 2007) — the authors' own DHT-based
//! predecessor that GossipTrust adapts to unstructured networks.
//!
//! PowerTrust's pipeline, reproduced at the level the comparison needs:
//!
//! 1. **Initial aggregation** — score managers on the DHT run the global
//!    power iteration (like EigenTrust, but with a uniform start and no
//!    exogenous pre-trusted set);
//! 2. **Power-node selection** — the top-`m` most reputable nodes are
//!    designated power nodes;
//! 3. **Look-ahead random walk with the greedy factor `α`** — subsequent
//!    iterations mix `α` of the jump mass onto the power nodes, which both
//!    accelerates convergence (the chain's spectral gap grows) and hardens
//!    the scores against malicious raters;
//! 4. **Distributed ranking module** — we reuse the same top-`m` selection
//!    the core crate provides (the paper's locality-preserving-hash
//!    ranking is an implementation detail of *finding* the top-m on a DHT;
//!    we charge its cost as one lookup per candidate).
//!
//! Message accounting mirrors [`crate::eigentrust`]: every remote score
//! fetch is routed over the Chord substrate and charged its hop count.

use crate::dht::Chord;
use gossiptrust_core::convergence::VectorConvergence;
use gossiptrust_core::id::NodeId;
use gossiptrust_core::matrix::TrustMatrix;
use gossiptrust_core::params::Params;
use gossiptrust_core::power_nodes::{PowerNodeSelector, Prior};
use gossiptrust_core::vector::ReputationVector;

/// Result of a PowerTrust computation.
#[derive(Clone, Debug)]
pub struct PowerTrustReport {
    /// Converged global reputation vector.
    pub vector: ReputationVector,
    /// Iterations of the initial aggregation phase.
    pub initial_cycles: usize,
    /// Iterations of the power-node-accelerated phase.
    pub accelerated_cycles: usize,
    /// Whether the final `δ` test fired.
    pub converged: bool,
    /// Remote score fetches (application messages).
    pub fetches: u64,
    /// Total DHT hops across all fetches (network messages).
    pub dht_hops: u64,
    /// The power nodes selected after the initial aggregation.
    pub power_nodes: Vec<NodeId>,
}

/// The PowerTrust baseline system.
#[derive(Clone, Debug)]
pub struct PowerTrust {
    params: Params,
    /// Cycles of plain aggregation before power nodes are first selected.
    bootstrap_cycles: usize,
}

impl PowerTrust {
    /// PowerTrust with the given parameters (`alpha` is the greedy factor,
    /// `max_power_nodes` the top-`m` budget).
    pub fn new(params: Params) -> Self {
        PowerTrust { params, bootstrap_cycles: 3 }
    }

    /// Override how many plain cycles run before the first power-node
    /// selection (the paper bootstraps from the first converged round; 3
    /// cycles gets the ranking close enough at far lower cost).
    pub fn with_bootstrap_cycles(mut self, cycles: usize) -> Self {
        assert!(cycles >= 1, "need at least one bootstrap cycle");
        self.bootstrap_cycles = cycles;
        self
    }

    /// Run the full PowerTrust pipeline over `matrix`.
    pub fn compute(&self, matrix: &TrustMatrix) -> PowerTrustReport {
        let n = matrix.n();
        let dht = Chord::build(n);
        let selector = PowerNodeSelector::new(self.params.max_power_nodes);

        // Inverted rater index, as in the EigenTrust baseline.
        let mut raters_of: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        let mut dangling: Vec<u32> = Vec::new();
        for i in 0..n {
            let id = NodeId::from_index(i);
            if matrix.row_is_dangling(id) {
                dangling.push(i as u32);
                continue;
            }
            let (cols, vals) = matrix.row(id);
            for (&j, &s) in cols.iter().zip(vals) {
                raters_of[j as usize].push((i as u32, s));
            }
        }

        let mut fetches = 0u64;
        let mut dht_hops = 0u64;
        let mut current = ReputationVector::uniform(n);
        let mut outer = VectorConvergence::new(self.params.delta);
        outer.observe(&current);

        let one_cycle = |current: &ReputationVector,
                         prior: &Prior,
                         alpha: f64,
                         fetches: &mut u64,
                         dht_hops: &mut u64|
         -> ReputationVector {
            let mut next = vec![0.0; n];
            let mut dangling_mass = 0.0;
            for &i in &dangling {
                dangling_mass += current.score(NodeId(i));
                *fetches += 1;
                *dht_hops += dht.lookup_manager(NodeId(i), NodeId(i)).hops as u64;
            }
            let dangling_share = dangling_mass / n as f64;
            for (j, raters) in raters_of.iter().enumerate() {
                let manager = dht.owner_of(dht.key_for(NodeId::from_index(j)));
                let mut acc = dangling_share;
                for &(i, s) in raters {
                    let out = dht.lookup_from(manager, dht.key_for(NodeId(i)));
                    *fetches += 1;
                    *dht_hops += out.hops as u64;
                    acc += s * current.score(NodeId(i));
                }
                next[j] = acc;
            }
            prior.mix_into(&mut next, alpha);
            ReputationVector::from_weights(next).expect("stochastic iterate stays valid")
        };

        // Phase 1: bootstrap without power nodes (α = 0, uniform world).
        let uniform = Prior::uniform(n);
        let mut initial_cycles = 0usize;
        for _ in 0..self.bootstrap_cycles {
            initial_cycles += 1;
            let next = one_cycle(&current, &uniform, 0.0, &mut fetches, &mut dht_hops);
            outer.observe(&next);
            current = next;
        }

        // Power-node selection: finding the top-m costs one routed lookup
        // per candidate in the distributed ranking module.
        let power_nodes = selector.select(&current);
        for &p in &power_nodes {
            fetches += 1;
            dht_hops += dht.lookup_manager(NodeId(0), p).hops as u64;
        }
        let prior = Prior::over_nodes(n, &power_nodes);

        // Phase 2: look-ahead-random-walk-accelerated iterations.
        let mut accelerated_cycles = 0usize;
        let mut converged = false;
        for _ in 0..self.params.max_cycles {
            accelerated_cycles += 1;
            let next = one_cycle(&current, &prior, self.params.alpha, &mut fetches, &mut dht_hops);
            let hit = outer.observe(&next);
            current = next;
            if hit {
                converged = true;
                break;
            }
        }

        PowerTrustReport {
            vector: current,
            initial_cycles,
            accelerated_cycles,
            converged,
            fetches,
            dht_hops,
            power_nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossiptrust_core::matrix::TrustMatrixBuilder;
    use gossiptrust_core::power_iter::PowerIteration;

    fn authority(n: usize) -> TrustMatrix {
        let mut b = TrustMatrixBuilder::new(n);
        for i in 1..n {
            b.record(NodeId::from_index(i), NodeId(0), 4.0);
            b.record(NodeId::from_index(i), NodeId::from_index((i + 1) % n), 1.0);
            b.record(NodeId(0), NodeId::from_index(i), 1.0);
        }
        b.build()
    }

    #[test]
    fn converges_and_selects_the_authority_as_power_node() {
        let n = 40;
        let m = authority(n);
        let pt = PowerTrust::new(Params::for_network(n));
        let report = pt.compute(&m);
        assert!(report.converged);
        assert!(report.power_nodes.contains(&NodeId(0)));
        assert_eq!(report.vector.ranking()[0], NodeId(0));
    }

    #[test]
    fn matches_the_equivalent_mixed_fixed_point() {
        // After the bootstrap, PowerTrust iterates (1−α)Sᵀv + α·P with P on
        // its selected power nodes; the fixed point must match the core
        // solver given the same prior.
        let n = 30;
        let m = authority(n);
        let params = Params::for_network(n).with_delta(1e-9);
        let pt = PowerTrust::new(params.clone());
        let report = pt.compute(&m);
        assert!(report.converged);
        let oracle =
            PowerIteration::new(params).solve(&m, &Prior::over_nodes(n, &report.power_nodes));
        let err = oracle.vector.rms_relative_error(&report.vector).unwrap();
        assert!(err < 1e-4, "rms {err}");
    }

    #[test]
    fn acceleration_beats_plain_eigentrust_in_cycles() {
        // The α-mixing bounds the convergence rate by (1−α); plain power
        // iteration converges at the matrix's own (slower) rate here.
        let n = 50;
        let m = authority(n);
        let params = Params::for_network(n).with_delta(1e-8);
        let pt = PowerTrust::new(params.clone()).compute(&m);
        assert!(pt.converged);
        let plain = PowerIteration::new(params.with_alpha(0.0)).solve(&m, &Prior::uniform(n));
        let pt_total = pt.initial_cycles + pt.accelerated_cycles;
        assert!(pt_total <= plain.cycles, "PowerTrust {pt_total} vs plain {}", plain.cycles);
    }

    #[test]
    fn message_accounting_is_charged() {
        let n = 25;
        let m = authority(n);
        let report = PowerTrust::new(Params::for_network(n)).compute(&m);
        assert!(report.fetches > 0);
        assert!(report.dht_hops > 0);
    }

    #[test]
    fn bootstrap_cycles_are_respected() {
        let n = 20;
        let m = authority(n);
        let report = PowerTrust::new(Params::for_network(n))
            .with_bootstrap_cycles(5)
            .compute(&m);
        assert_eq!(report.initial_cycles, 5);
    }
}
