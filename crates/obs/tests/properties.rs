//! Property tests for the histogram bucket scheme: every sample must land
//! in a bucket that contains it, readout must bound the true quantiles,
//! and merge must be associative.

use gossiptrust_obs::Histogram;
use proptest::prelude::*;

proptest! {
    /// record → bucket → bounds round-trip: the bucket chosen for `v`
    /// always contains `v`, and bucket indices are monotone in `v`.
    #[test]
    fn bucket_contains_its_sample(v in any::<u64>()) {
        let i = Histogram::bucket_index(v);
        let (lo, hi) = Histogram::bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "v={v} not in bucket {i} [{lo}, {hi}]");
        if v > 0 {
            prop_assert!(Histogram::bucket_index(v - 1) <= i);
        }
        if v < u64::MAX {
            prop_assert!(Histogram::bucket_index(v + 1) >= i);
        }
    }

    /// Bucket bounds tile the u64 line: bucket i+1 starts right after
    /// bucket i ends.
    #[test]
    fn buckets_tile_without_gaps(i in 0usize..gossiptrust_obs::metrics::BUCKETS - 1) {
        let (_, hi) = Histogram::bucket_bounds(i);
        let (lo_next, _) = Histogram::bucket_bounds(i + 1);
        prop_assert_eq!(hi + 1, lo_next);
    }

    /// Snapshot quantiles bracket the true quantiles: never below the
    /// exact rank value, never more than one bucket width above, and
    /// always clamped to the exact max.
    #[test]
    fn quantiles_bound_the_true_values(mut samples in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.max, *samples.last().expect("non-empty"));
        for (q, got) in [(0.50, snap.p50), (0.90, snap.p90), (0.99, snap.p99)] {
            let rank = ((samples.len() as f64 * q).ceil() as usize).clamp(1, samples.len());
            let truth = samples[rank - 1];
            let (_, hi) = Histogram::bucket_bounds(Histogram::bucket_index(truth));
            prop_assert!(got >= truth, "q={q}: got {got} < true {truth}");
            prop_assert!(got <= hi.min(snap.max), "q={q}: got {got} > bucket cap {hi}");
        }
    }

    /// Merge associativity: (a ⊕ b) ⊕ c and a ⊕ (b ⊕ c) agree on every
    /// bucket, and on count/sum/max.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(any::<u64>(), 0..50),
        b in prop::collection::vec(any::<u64>(), 0..50),
        c in prop::collection::vec(any::<u64>(), 0..50),
    ) {
        let fill = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                // Keep sums away from u64 overflow; bucket logic still
                // sees the full 64-bit range via the raw values above.
                h.record(v >> 8);
            }
            h
        };
        let left = fill(&a);
        left.absorb(&fill(&b));
        left.absorb(&fill(&c));

        let bc = fill(&b);
        bc.absorb(&fill(&c));
        let right = fill(&a);
        right.absorb(&bc);

        prop_assert_eq!(left.bucket_counts(), right.bucket_counts());
        prop_assert_eq!(left.snapshot(), right.snapshot());
    }
}
