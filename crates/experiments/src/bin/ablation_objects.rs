//! Ablation: §7's object (copy-level) reputation in file sharing.

use gossiptrust_experiments::ablations::object_reputation;
use gossiptrust_experiments::{Scale, TextTable};

fn main() {
    let scale = Scale::from_env();
    println!("Ablation — object reputation (copy-level filtering) ({scale:?} scale)\n");
    let rows = object_reputation(scale);
    let mut t = TextTable::new(vec!["gamma", "objects", "steady success", "std"]);
    for r in &rows {
        t.row(vec![
            format!("{:.0}%", r.gamma * 100.0),
            if r.objects_enabled { "on" } else { "off" }.to_string(),
            format!("{:.3}", r.steady_rate),
            format!("{:.3}", r.std_rate),
        ]);
    }
    print!("{}", t.render());
    println!("\nexpected shape: filtering community-flagged copies lifts the");
    println!("success rate of even reputation-free (random) selection.");
}
