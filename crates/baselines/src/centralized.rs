//! The centralized oracle baseline.
//!
//! A trusted central server that sees every local trust score and runs
//! Eq. 2 exactly — the upper bound on accuracy any distributed scheme can
//! reach, and the ground truth for every error metric in the evaluation.

use gossiptrust_core::matrix::TrustMatrix;
use gossiptrust_core::params::Params;
use gossiptrust_core::power_iter::{PowerIteration, SolveOutcome};
use gossiptrust_core::power_nodes::Prior;

/// The centralized reputation authority.
#[derive(Clone, Debug)]
pub struct CentralizedOracle {
    solver: PowerIteration,
}

impl CentralizedOracle {
    /// Oracle with the given parameters.
    pub fn new(params: Params) -> Self {
        CentralizedOracle { solver: PowerIteration::new(params) }
    }

    /// Compute the exact global reputation vector with a uniform prior.
    pub fn compute(&self, matrix: &TrustMatrix) -> SolveOutcome {
        self.solver.solve(matrix, &Prior::uniform(matrix.n()))
    }

    /// Compute with an explicit prior (e.g. power nodes).
    pub fn compute_with_prior(&self, matrix: &TrustMatrix, prior: &Prior) -> SolveOutcome {
        self.solver.solve(matrix, prior)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossiptrust_core::id::NodeId;
    use gossiptrust_core::matrix::TrustMatrixBuilder;

    #[test]
    fn oracle_solves_exactly() {
        let mut b = TrustMatrixBuilder::new(3);
        b.record(NodeId(1), NodeId(0), 1.0);
        b.record(NodeId(2), NodeId(0), 1.0);
        b.record(NodeId(0), NodeId(1), 1.0);
        let out = CentralizedOracle::new(Params::for_network(3)).compute(&b.build());
        assert!(out.converged);
        assert_eq!(out.vector.ranking()[0], NodeId(0));
    }
}
