//! The two systems named in the paper's conclusion beyond gossip itself:
//! Bloom-filter reputation storage and identity-based message signing.
//!
//! Run with: `cargo run --release --example secure_storage`

use gossiptrust::crypto::{Pkg, SignedEnvelope};
use gossiptrust::prelude::*;
use gossiptrust::storage::{RankStorage, RankStorageConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ----------------------------------------------- Bloom rank storage --
    let n = 1000;
    let cfg = ScenarioConfig::new(n, ThreatConfig::benign());
    let scenario = Scenario::generate(&cfg, &mut StdRng::seed_from_u64(5));
    let vector = PowerIteration::new(Params::for_network(n))
        .solve(&scenario.honest, &Prior::uniform(n))
        .vector;

    println!("Bloom-filter reputation-rank storage, n = {n}, 8 rank levels\n");
    println!("fp budget  bytes  (exact table: {} B)  mean rank error", n * 12);
    for fp in [0.001, 0.01, 0.05] {
        let storage = RankStorage::build(&vector, RankStorageConfig { levels: 8, fp_rate: fp });
        println!(
            "{fp:<9}  {:<5}                        {:.4}",
            storage.byte_size(),
            storage.mean_rank_error(&vector)
        );
    }
    let storage = RankStorage::build(&vector, RankStorageConfig::default());
    let top = vector.ranking()[0];
    println!(
        "\nmost reputable peer {top} is stored at rank level {} (level 0 = best)\n",
        storage.rank_level(top)
    );

    // ------------------------------------- identity-based signing demo --
    println!("identity-based signing of gossip pushes");
    let pkg = Pkg::from_seed(99);
    let alice = pkg.issue(1);
    let verifier = pkg.verifier();

    let envelope = alice.seal(b"x=0.125,w=0.5 for peer 42");
    println!("  node 1 seals a push ({} bytes on the wire)", envelope.encode().len());
    assert!(verifier.open(&envelope).is_some());
    println!("  verifier accepts the genuine push");

    let mut tampered = envelope.encode().to_vec();
    tampered[10] ^= 0x40;
    let tampered = SignedEnvelope::decode(&tampered).unwrap();
    assert!(verifier.open(&tampered).is_none());
    println!("  verifier rejects a bit-flipped push");

    let mallory = pkg.issue(13);
    let mut forged = mallory.seal(b"x=9.0,w=0.001 for peer 13");
    forged.sender = 1; // claim to be node 1
    assert!(verifier.open(&forged).is_none());
    println!("  verifier rejects a push spoofing another identity");
}
