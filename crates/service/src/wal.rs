//! CRC-framed write-ahead log for the feedback path.
//!
//! Without a WAL, a crashed node loses its entire [`crate::log::FeedbackLog`]
//! — every local-trust row it accumulated since startup — and rejoins the
//! network as a blank rater. The paper's fault-tolerance story (§6.1)
//! assumes peers keep their local trust across churn; this module is what
//! makes that true for the real service: every acknowledged feedback event
//! is appended here *before* it is applied to the in-memory log, and a
//! restarting service replays the file back into the log, rebuilding the
//! exact same rows (and therefore, after a fold, the bit-identical
//! `TrustMatrix`).
//!
//! ## On-disk format
//!
//! ```text
//! header  (16 bytes): magic "GTWAL1\0\0" | n: u64 LE
//! record  (24 bytes): len: u32 LE (= 16) | crc32(payload): u32 LE | payload
//! payload (16 bytes): rater: u32 LE | target: u32 LE | score: f64 bits LE
//! ```
//!
//! The CRC is CRC-32 (IEEE, reflected — the zlib/PNG polynomial),
//! hand-rolled because the workspace pins its dependency set. Scores are
//! stored as raw bit patterns, so replay is bit-exact (`-0.0`, subnormals
//! and all).
//!
//! ## Crash tolerance
//!
//! [`Wal::open`] scans the whole file on startup and accepts the longest
//! prefix of valid records. The first torn record (truncated mid-write),
//! CRC mismatch (bit flip), bad length tag or out-of-range peer id ends
//! the replay: the file is truncated back to the end of the last valid
//! record and appends continue from there. A torn tail therefore costs at
//! most the events that were never acknowledged; acknowledged events are
//! written (and pushed to the OS) before the acknowledgment, so a process
//! crash — `kill -9` included — cannot lose them. (Surviving power loss
//! would additionally need an fsync per append; that durability class is
//! out of scope and documented in DESIGN.md §9.)
//!
//! Compaction is deliberately absent: the feedback log is append-only and
//! cumulative across epochs (folds never consume it), so the WAL is simply
//! the same history in durable form.

use crate::log::FeedbackEvent;
use gossiptrust_core::id::NodeId;
use gossiptrust_obs::{Deadline, Histogram, Stopwatch};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// File header magic (8 bytes): format name + version.
const MAGIC: [u8; 8] = *b"GTWAL1\0\0";
/// Header length: magic + `n` as u64 LE.
const HEADER_LEN: u64 = 16;
/// Payload length of the (single) record type.
const PAYLOAD_LEN: usize = 16;
/// Full framed record length: len tag + crc + payload.
const RECORD_LEN: usize = 8 + PAYLOAD_LEN;
/// Name of the log file inside the WAL directory.
const FILE_NAME: &str = "feedback.wal";

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
static CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE, reflected) of `bytes` — the zlib/PNG checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        // The & 0xFF mask keeps the probe in range; .get keeps the loop
        // panic-free even so (the unwrap_or arm is dead code).
        let probe = CRC_TABLE
            .get(((crc ^ b as u32) & 0xFF) as usize)
            .copied()
            .unwrap_or(0);
        crc = (crc >> 8) ^ probe;
    }
    !crc
}

/// What a startup replay recovered.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WalReplay {
    /// Every valid record, in append order.
    pub events: Vec<FeedbackEvent>,
    /// Bytes discarded from the tail (0 = the file was clean).
    pub truncated_bytes: u64,
}

/// An open write-ahead log: appends go to the end of the recovered prefix.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

/// Encode one event as a framed record (len | crc | payload).
pub fn encode_record(event: &FeedbackEvent) -> [u8; RECORD_LEN] {
    let mut payload = [0u8; PAYLOAD_LEN];
    let fields = event
        .rater
        .0
        .to_le_bytes()
        .into_iter()
        .chain(event.target.0.to_le_bytes())
        .chain(event.score.to_bits().to_le_bytes());
    for (dst, src) in payload.iter_mut().zip(fields) {
        *dst = src;
    }
    let mut record = [0u8; RECORD_LEN];
    let frame = (PAYLOAD_LEN as u32)
        .to_le_bytes()
        .into_iter()
        .chain(crc32(&payload).to_le_bytes())
        .chain(payload);
    for (dst, src) in record.iter_mut().zip(frame) {
        *dst = src;
    }
    record
}

/// Little-endian `u32` at byte offset `off`; `None` when out of range.
fn le_u32(bytes: &[u8], off: usize) -> Option<u32> {
    let window = bytes.get(off..off.checked_add(4)?)?;
    Some(window.iter().rev().fold(0u32, |acc, &b| (acc << 8) | b as u32))
}

/// Little-endian `u64` at byte offset `off`; `None` when out of range.
fn le_u64(bytes: &[u8], off: usize) -> Option<u64> {
    let window = bytes.get(off..off.checked_add(8)?)?;
    Some(window.iter().rev().fold(0u64, |acc, &b| (acc << 8) | b as u64))
}

/// Decode the payload of one framed record (CRC already checked by the
/// caller); `None` when the payload is short, which replay treats as a
/// torn tail.
fn decode_payload(payload: &[u8]) -> Option<FeedbackEvent> {
    let rater = le_u32(payload, 0)?;
    let target = le_u32(payload, 4)?;
    let bits = le_u64(payload, 8)?;
    Some(FeedbackEvent {
        rater: NodeId(rater),
        target: NodeId(target),
        score: f64::from_bits(bits),
    })
}

impl Wal {
    /// Open (or create) the WAL for an `n`-peer population under `dir`,
    /// replaying any existing records.
    ///
    /// Creates `dir` if missing. An existing file must carry the right
    /// magic and the same `n` — a population mismatch means the operator
    /// pointed the service at another deployment's log, which must abort
    /// loudly rather than replay nonsense ids. The recovered prefix rule
    /// is described in the module docs; after `open` returns, the file
    /// contains exactly the records in [`WalReplay::events`].
    pub fn open(dir: &Path, n: usize) -> io::Result<(Wal, WalReplay)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(FILE_NAME);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.is_empty() {
            let mut header = [0u8; HEADER_LEN as usize];
            let fields = MAGIC.into_iter().chain((n as u64).to_le_bytes());
            for (dst, src) in header.iter_mut().zip(fields) {
                *dst = src;
            }
            file.write_all(&header)?;
            file.flush()?;
            return Ok((Wal { file, path }, WalReplay::default()));
        }
        if bytes.len() < HEADER_LEN as usize || bytes.get(0..8) != Some(&MAGIC[..]) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a GTWAL1 file", path.display()),
            ));
        }
        // The length check above guarantees the read; u64::MAX is an
        // impossible peer count, so the fallback can only mismatch.
        let header_n = le_u64(&bytes, 8).unwrap_or(u64::MAX);
        if header_n != n as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{} was written for n = {header_n}, this service has n = {n}",
                    path.display()
                ),
            ));
        }

        // Accept the longest valid prefix of records; anything after the
        // first torn/corrupt record is a tail to discard.
        let mut events = Vec::new();
        let mut good_end = HEADER_LEN as usize;
        while let Some(frame) = bytes.get(good_end..good_end + RECORD_LEN) {
            let (Some(len), Some(crc), Some(payload)) =
                (le_u32(frame, 0), le_u32(frame, 4), frame.get(8..))
            else {
                break;
            };
            if len as usize != PAYLOAD_LEN || crc32(payload) != crc {
                break;
            }
            let Some(event) = decode_payload(payload) else {
                break;
            };
            if event.rater.index() >= n || event.target.index() >= n {
                break;
            }
            events.push(event);
            good_end += RECORD_LEN;
        }
        let truncated_bytes = (bytes.len() - good_end) as u64;
        if truncated_bytes > 0 {
            file.set_len(good_end as u64)?;
        }
        file.seek(SeekFrom::Start(good_end as u64))?;
        Ok((Wal { file, path }, WalReplay { events, truncated_bytes }))
    }

    /// Append one event. The record is written (and pushed to the OS)
    /// before this returns — only after that may the caller acknowledge.
    pub fn append(&mut self, event: &FeedbackEvent) -> io::Result<()> {
        self.file.write_all(&encode_record(event))?;
        self.file.flush()
    }

    /// Append a batch of ratings from one rater as one contiguous write.
    pub fn append_batch(&mut self, rater: NodeId, ratings: &[(NodeId, f64)]) -> io::Result<()> {
        let mut buf = Vec::with_capacity(ratings.len() * RECORD_LEN);
        for &(target, score) in ratings {
            buf.extend_from_slice(&encode_record(&FeedbackEvent { rater, target, score }));
        }
        self.file.write_all(&buf)?;
        self.file.flush()
    }

    /// Path of the underlying log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Wrap an arbitrary file handle as a `Wal` — the hook the write-error
    /// regression tests use to hand the writer thread a doomed fd.
    #[cfg(test)]
    pub(crate) fn from_file_for_tests(file: File, path: PathBuf) -> Wal {
        Wal { file, path }
    }
}

/// One ingest's submission to the writer thread: pre-encoded record bytes
/// plus the completion slot that is answered only after the group commit
/// containing these records has flushed (or failed).
struct Submission {
    bytes: Vec<u8>,
    records: u64,
    ack: mpsc::Sender<Result<(), String>>,
}

/// Histogram handles the writer thread records into (`None` = unrecorded;
/// tests and tools run the writer without a registry).
#[derive(Clone, Debug, Default)]
pub struct GroupCommitObs {
    /// Records coalesced per commit (`gt_wal_group_records`).
    pub group_records: Option<Arc<Histogram>>,
    /// Coalesced write + flush latency per commit (`gt_wal_commit_ns`).
    pub commit_ns: Option<Arc<Histogram>>,
}

/// The group-commit front of a [`Wal`]: one dedicated writer thread owns
/// the file; ingest threads submit pre-encoded records over an mpsc
/// channel and block on a completion slot. The writer drains everything
/// already queued into a single `write_all` + `flush` — up to `group_max`
/// records or the drain deadline — then completes every ack in the group.
/// The append-before-ack contract is preserved record for record while
/// the syscall pair is paid once per group instead of once per ingest,
/// and ingest threads never contend on a file lock (the old
/// `Arc<Mutex<Wal>>` handoff).
///
/// ## Byte identity
///
/// The on-disk layout is byte-identical to sequential [`Wal::append`]
/// calls in commit order: submissions are concatenated whole, in queue
/// order, and [`encode_record`] is the only encoder — no group header, no
/// padding, no reordering inside a submission. Torn-tail replay therefore
/// works on a group-committed file exactly as on a sequentially written
/// one.
///
/// ## Failure handling
///
/// A failed group commit acks *every* submitter in the group with the
/// error (never success), and the writer rolls the file back to the last
/// committed record boundary so later groups cannot land after a torn
/// middle — replay stops at the first bad record, so a record behind a
/// tear would be silently lost even though it was acked. If the rollback
/// itself fails the writer poisons: every later submission is refused
/// outright. Either way the invariant stands: acknowledged records are a
/// prefix of the durable file.
#[derive(Debug)]
pub struct GroupCommitWal {
    /// `None` after shutdown begins; dropping the sender is what tells the
    /// writer thread to drain and exit.
    tx: Option<mpsc::Sender<Submission>>,
    path: PathBuf,
    writer: Option<std::thread::JoinHandle<()>>,
}

impl GroupCommitWal {
    /// Take ownership of an open `wal` and start the writer thread.
    ///
    /// `group_max` caps the records coalesced per commit
    /// (`GT_WAL_GROUP_MAX`); `group_deadline` bounds how long one drain
    /// keeps absorbing arrivals under saturation (`GT_WAL_GROUP_US`).
    ///
    /// # Panics
    ///
    /// Panics when the OS refuses to spawn the writer thread — like the
    /// epoch thread, the service cannot come up without it.
    pub fn start(
        wal: Wal,
        group_max: usize,
        group_deadline: Duration,
        obs: GroupCommitObs,
    ) -> Self {
        let path = wal.path().to_path_buf();
        let (tx, rx) = mpsc::channel();
        let writer = std::thread::Builder::new()
            .name("gt-wal".into())
            .spawn(move || writer_loop(wal, rx, group_max.max(1), group_deadline, obs))
            .expect("spawn WAL writer thread");
        GroupCommitWal { tx: Some(tx), path, writer: Some(writer) }
    }

    /// Path of the underlying log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Encode + submit one event and block until its group commits.
    pub fn append(&self, event: &FeedbackEvent) -> Result<(), String> {
        self.submit(encode_record(event).to_vec(), 1)
    }

    /// Encode + submit one rater's batch as a single contiguous submission
    /// (a batch is never split across groups) and block until the group
    /// containing it commits.
    pub fn append_batch(&self, rater: NodeId, ratings: &[(NodeId, f64)]) -> Result<(), String> {
        let mut bytes = Vec::with_capacity(ratings.len().saturating_mul(RECORD_LEN));
        for &(target, score) in ratings {
            bytes.extend_from_slice(&encode_record(&FeedbackEvent { rater, target, score }));
        }
        self.submit(bytes, ratings.len() as u64)
    }

    fn submit(&self, bytes: Vec<u8>, records: u64) -> Result<(), String> {
        let Some(tx) = self.tx.as_ref() else {
            return Err("WAL writer is shut down".into());
        };
        let (ack_tx, ack_rx) = mpsc::channel();
        tx.send(Submission { bytes, records, ack: ack_tx })
            .map_err(|_| "WAL writer thread exited".to_string())?;
        match ack_rx.recv() {
            Ok(result) => result,
            // The writer died between accepting the submission and acking:
            // the records may or may not be durable, and the only honest
            // answer is failure (no ack without a committed group).
            Err(_) => Err("WAL writer thread exited before the group committed".to_string()),
        }
    }
}

impl Drop for GroupCommitWal {
    fn drop(&mut self) {
        // Disconnect the queue first so the writer commits what is still
        // pending and exits, then join it — in-flight submissions are
        // flushed (and acked) before the file closes.
        self.tx = None;
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

/// The writer-thread body: block for the first submission, drain the rest
/// of the queue into one buffer, commit with a single `write_all` +
/// `flush`, ack the whole group.
fn writer_loop(
    mut wal: Wal,
    rx: mpsc::Receiver<Submission>,
    group_max: usize,
    group_deadline: Duration,
    obs: GroupCommitObs,
) {
    let mut buf: Vec<u8> = Vec::new();
    let mut acks: Vec<mpsc::Sender<Result<(), String>>> = Vec::new();
    // Byte offset of the last committed record boundary — where a failed
    // commit rolls the file back to.
    let mut committed_end: u64 = 0;
    let mut poisoned: Option<String> = match wal.file.stream_position() {
        Ok(pos) => {
            committed_end = pos;
            None
        }
        Err(e) => Some(format!("WAL position unknown: {e}")),
    };

    while let Ok(first) = rx.recv() {
        if let Some(msg) = &poisoned {
            let _ = first.ack.send(Err(msg.clone()));
            continue;
        }
        buf.clear();
        acks.clear();
        let mut records = first.records;
        buf.extend_from_slice(&first.bytes);
        acks.push(first.ack);
        // Adaptive batch: absorb whatever is already queued — an empty
        // queue commits immediately (no added latency at low load), a
        // saturated queue commits at `group_max` records or the drain
        // deadline so the earliest submitter's ack is never starved.
        let deadline = Deadline::after(group_deadline);
        while (records as usize) < group_max && !deadline.expired() {
            match rx.try_recv() {
                Ok(sub) => {
                    records += sub.records;
                    buf.extend_from_slice(&sub.bytes);
                    acks.push(sub.ack);
                }
                // Empty or disconnected: the queue has drained, commit now.
                Err(_) => break,
            }
        }

        let sw = Stopwatch::start();
        let result = wal
            .file
            .write_all(&buf)
            .and_then(|()| wal.file.flush())
            .map_err(|e| e.to_string());
        if let Some(h) = &obs.commit_ns {
            h.record(sw.elapsed_ns());
        }
        if let Some(h) = &obs.group_records {
            h.record(records);
        }
        match &result {
            Ok(()) => committed_end += buf.len() as u64,
            Err(msg) => {
                // Roll back to the last committed boundary so a later
                // (successful) group cannot land behind a torn middle;
                // replay stops at the first bad record, so that would lose
                // acked records. An unrecoverable file poisons the writer.
                let rolled_back = wal
                    .file
                    .set_len(committed_end)
                    .and_then(|()| wal.file.seek(SeekFrom::Start(committed_end)).map(|_| ()))
                    .is_ok();
                if !rolled_back {
                    poisoned = Some(format!("WAL unrecoverable after failed group commit: {msg}"));
                }
            }
        }
        // Ack only after the flush (or the rollback): every record in the
        // group is durable, or every submitter hears the same failure — a
        // failed group commit never acks success to anyone.
        for ack in &acks {
            let _ = ack.send(result.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique, collision-free scratch directory per test invocation —
    /// process id + a process-local counter, no ambient entropy.
    fn scratch_dir(tag: &str) -> PathBuf {
        static SERIAL: AtomicU64 = AtomicU64::new(0);
        let serial = SERIAL.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("gt-wal-test-{}-{tag}-{serial}", std::process::id()));
        // A leftover directory from a crashed previous run would alias
        // this test's state; start clean.
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn ev(rater: u32, target: u32, score: f64) -> FeedbackEvent {
        FeedbackEvent { rater: NodeId(rater), target: NodeId(target), score }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vectors for CRC-32/ISO-HDLC (the zlib polynomial).
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn fresh_open_then_append_then_replay() {
        let dir = scratch_dir("roundtrip");
        let (mut wal, replay) = Wal::open(&dir, 16).expect("open fresh");
        assert!(replay.events.is_empty());
        assert_eq!(replay.truncated_bytes, 0);
        wal.append(&ev(1, 2, 3.5)).expect("append");
        wal.append_batch(NodeId(7), &[(NodeId(0), 1.0), (NodeId(3), -0.0)])
            .expect("append batch");
        drop(wal);

        let (_wal, replay) = Wal::open(&dir, 16).expect("reopen");
        assert_eq!(replay.events, vec![ev(1, 2, 3.5), ev(7, 0, 1.0), ev(7, 3, -0.0)]);
        // Bit-exact: -0.0 survives as -0.0.
        assert!(replay.events[2].score.is_sign_negative());
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = scratch_dir("torn");
        let (mut wal, _) = Wal::open(&dir, 8).expect("open");
        wal.append(&ev(0, 1, 1.0)).expect("append");
        wal.append(&ev(2, 3, 2.0)).expect("append");
        let path = wal.path().to_path_buf();
        drop(wal);

        // Tear the last record mid-write: chop 5 bytes off the tail.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("tear");

        let (mut wal, replay) = Wal::open(&dir, 8).expect("recover");
        assert_eq!(replay.events, vec![ev(0, 1, 1.0)]);
        assert_eq!(replay.truncated_bytes, (RECORD_LEN - 5) as u64);

        // The log is usable again: new appends land after the good prefix.
        wal.append(&ev(4, 5, 3.0)).expect("append after recovery");
        drop(wal);
        let (_, replay) = Wal::open(&dir, 8).expect("reopen");
        assert_eq!(replay.events, vec![ev(0, 1, 1.0), ev(4, 5, 3.0)]);
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn bit_flip_stops_replay_at_the_flip() {
        let dir = scratch_dir("bitflip");
        let (mut wal, _) = Wal::open(&dir, 8).expect("open");
        for i in 0..4 {
            wal.append(&ev(i, (i + 1) % 8, 1.0 + i as f64)).expect("append");
        }
        let path = wal.path().to_path_buf();
        drop(wal);

        // Flip one payload bit in the third record.
        let mut bytes = std::fs::read(&path).expect("read");
        let offset = HEADER_LEN as usize + 2 * RECORD_LEN + 12;
        bytes[offset] ^= 0x40;
        std::fs::write(&path, &bytes).expect("flip");

        let (_, replay) = Wal::open(&dir, 8).expect("recover");
        assert_eq!(replay.events, vec![ev(0, 1, 1.0), ev(1, 2, 2.0)]);
        assert_eq!(replay.truncated_bytes, 2 * RECORD_LEN as u64);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn out_of_range_id_is_treated_as_corruption() {
        let dir = scratch_dir("range");
        let (mut wal, _) = Wal::open(&dir, 8).expect("open");
        wal.append(&ev(0, 1, 1.0)).expect("append");
        // Forge a valid-CRC record whose rater is out of range for n = 8.
        let forged = encode_record(&ev(99, 1, 1.0));
        wal.file.write_all(&forged).expect("forge");
        wal.file.flush().expect("flush");
        drop(wal);

        let (_, replay) = Wal::open(&dir, 8).expect("recover");
        assert_eq!(replay.events, vec![ev(0, 1, 1.0)]);
        assert_eq!(replay.truncated_bytes, RECORD_LEN as u64);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn population_mismatch_refuses_to_open() {
        let dir = scratch_dir("mismatch");
        let (wal, _) = Wal::open(&dir, 8).expect("open");
        drop(wal);
        let err = Wal::open(&dir, 9).expect_err("n mismatch must refuse");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn foreign_file_refuses_to_open() {
        let dir = scratch_dir("foreign");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join(FILE_NAME), b"definitely not a WAL file").expect("write");
        let err = Wal::open(&dir, 8).expect_err("bad magic must refuse");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    proptest! {
        /// Any event sequence round-trips bit-exactly through the framing,
        /// and any tail truncation recovers the longest intact prefix.
        #[test]
        fn records_roundtrip_and_survive_any_truncation(
            raw in proptest::collection::vec((0u32..32, 0u32..32, -1e9f64..1e9), 0..40),
            cut in 0usize..=40 * RECORD_LEN,
        ) {
            let events: Vec<FeedbackEvent> =
                raw.iter().map(|&(r, t, s)| ev(r, t, s)).collect();
            let dir = scratch_dir("prop");
            let (mut wal, _) = Wal::open(&dir, 32).expect("open");
            for e in &events {
                wal.append(e).expect("append");
            }
            let path = wal.path().to_path_buf();
            drop(wal);

            // Clean reopen: everything comes back bit-for-bit.
            let (_, replay) = Wal::open(&dir, 32).expect("reopen");
            prop_assert_eq!(replay.events.len(), events.len());
            for (got, want) in replay.events.iter().zip(&events) {
                prop_assert_eq!(got.rater, want.rater);
                prop_assert_eq!(got.target, want.target);
                prop_assert_eq!(got.score.to_bits(), want.score.to_bits());
            }

            // Truncate `cut` bytes off the tail: the replay is exactly the
            // records that remained whole.
            let bytes = std::fs::read(&path).expect("read");
            let cut = cut.min(bytes.len() - HEADER_LEN as usize);
            std::fs::write(&path, &bytes[..bytes.len() - cut]).expect("truncate");
            let (_, replay) = Wal::open(&dir, 32).expect("recover");
            let whole = (bytes.len() - HEADER_LEN as usize - cut) / RECORD_LEN;
            prop_assert_eq!(replay.events.len(), whole);
            for (got, want) in replay.events.iter().zip(&events) {
                prop_assert_eq!(got.score.to_bits(), want.score.to_bits());
            }
            std::fs::remove_dir_all(&dir).expect("cleanup");
        }

        /// Group commit is byte-identical to sequential appends: whatever
        /// order the writer drains concurrent submissions in, the file it
        /// leaves behind equals a plain `Wal` appending the replayed event
        /// sequence one record at a time — no group framing, no padding,
        /// no reordering inside a batch.
        #[test]
        fn group_commit_file_is_byte_identical_to_sequential_appends(
            per_rater in proptest::collection::vec(
                proptest::collection::vec((0u32..24, -1e6f64..1e6), 1..8),
                1..6,
            ),
            group_max in 1usize..32,
            group_us in 1u64..500,
        ) {
            check_group_matches_sequential(&per_rater, group_max, group_us);
        }

        /// A tail torn mid-group replays the longest valid record prefix —
        /// exactly as for sequentially appended files — and the log keeps
        /// accepting group commits after recovery.
        #[test]
        fn torn_tail_mid_group_replays_longest_valid_prefix(
            batches in proptest::collection::vec(
                proptest::collection::vec((0u32..16, -1e3f64..1e3), 1..5),
                1..5,
            ),
            cut in 1usize..=3 * RECORD_LEN,
        ) {
            check_torn_tail_mid_group(&batches, cut);
        }
    }

    /// Shared body for the byte-identity property: drive `per_rater`
    /// batches through a concurrent [`GroupCommitWal`], then assert the
    /// resulting file equals a plain sequential `Wal` replaying the same
    /// event order, and that every batch stayed contiguous.
    fn check_group_matches_sequential(
        per_rater: &[Vec<(u32, f64)>],
        group_max: usize,
        group_us: u64,
    ) {
        let dir = scratch_dir("group-prop");
        let (wal, _) = Wal::open(&dir, 24).expect("open");
        let group = std::sync::Arc::new(GroupCommitWal::start(
            wal,
            group_max,
            Duration::from_micros(group_us),
            GroupCommitObs::default(),
        ));
        let path = group.path().to_path_buf();
        // One submitting thread per rater: batches from different raters
        // interleave however the queue happens to order them, batches
        // from one rater stay in that rater's program order.
        let total: usize = per_rater.iter().map(|b| b.len()).sum();
        std::thread::scope(|scope| {
            for (r, ratings) in per_rater.iter().enumerate() {
                let group = std::sync::Arc::clone(&group);
                scope.spawn(move || {
                    let ratings: Vec<(NodeId, f64)> =
                        ratings.iter().map(|&(t, s)| (NodeId(t), s)).collect();
                    group.append_batch(NodeId(r as u32), &ratings).expect("commit");
                });
            }
        });
        drop(group);

        // Replay the group-committed file, then re-write the replayed
        // sequence through sequential appends: bytes must match.
        let grouped_bytes = std::fs::read(&path).expect("read grouped");
        let (_, replay) = Wal::open(&dir, 24).expect("replay grouped");
        assert_eq!(replay.truncated_bytes, 0, "group commit must not tear");
        assert_eq!(replay.events.len(), total, "every acked record is durable");
        let seq_dir = scratch_dir("group-prop-seq");
        let (mut seq, _) = Wal::open(&seq_dir, 24).expect("open sequential");
        for e in &replay.events {
            seq.append(e).expect("sequential append");
        }
        let seq_path = seq.path().to_path_buf();
        drop(seq);
        let seq_bytes = std::fs::read(&seq_path).expect("read sequential");
        assert_eq!(grouped_bytes, seq_bytes, "on-disk layout must be byte-identical");

        // Each rater's batch stayed contiguous and in order: its records
        // appear as one uninterrupted run.
        for (r, ratings) in per_rater.iter().enumerate() {
            let mine = replay.events.iter().filter(|e| e.rater.index() == r).count();
            assert_eq!(mine, ratings.len());
            let first = replay
                .events
                .iter()
                .position(|e| e.rater.index() == r)
                .expect("batch present");
            for (k, &(t, s)) in ratings.iter().enumerate() {
                let e = &replay.events[first + k];
                assert_eq!(e.rater.index(), r, "batch must stay contiguous");
                assert_eq!(e.target.0, t);
                assert_eq!(e.score.to_bits(), s.to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
        std::fs::remove_dir_all(&seq_dir).expect("cleanup seq");
    }

    /// Shared body for the torn-tail property: group-commit `batches`,
    /// chop `cut` bytes off the tail, and assert recovery keeps exactly
    /// the whole-record prefix and accepts further group commits.
    fn check_torn_tail_mid_group(batches: &[Vec<(u32, f64)>], cut: usize) {
        let dir = scratch_dir("group-torn");
        let (wal, _) = Wal::open(&dir, 16).expect("open");
        let group =
            GroupCommitWal::start(wal, 8, Duration::from_micros(100), GroupCommitObs::default());
        for (r, ratings) in batches.iter().enumerate() {
            let ratings: Vec<(NodeId, f64)> =
                ratings.iter().map(|&(t, s)| (NodeId(t), s)).collect();
            group.append_batch(NodeId(r as u32), &ratings).expect("commit");
        }
        let path = group.path().to_path_buf();
        drop(group);

        let bytes = std::fs::read(&path).expect("read");
        let cut = cut.min(bytes.len() - HEADER_LEN as usize);
        std::fs::write(&path, &bytes[..bytes.len() - cut]).expect("tear");
        let (wal, replay) = Wal::open(&dir, 16).expect("recover");
        let whole = (bytes.len() - HEADER_LEN as usize - cut) / RECORD_LEN;
        assert_eq!(replay.events.len(), whole, "longest valid prefix");

        // Recovery hands the file back to a fresh group writer and
        // appends land cleanly after the truncation point.
        let group =
            GroupCommitWal::start(wal, 8, Duration::from_micros(100), GroupCommitObs::default());
        group.append(&ev(3, 4, 5.0)).expect("append after recovery");
        drop(group);
        let (_, replay) = Wal::open(&dir, 16).expect("reopen");
        assert_eq!(replay.events.len(), whole + 1);
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// The byte-identity property pinned on fixed scenarios, so the
    /// contract is exercised even when the proptest harness is absent
    /// (the offline build swallows `proptest!` bodies). Covers: single
    /// submitter, many submitters with group_max forcing splits, and a
    /// deadline short enough that most groups are singletons.
    #[test]
    fn group_commit_matches_sequential_fixed_scenarios() {
        let heavy: Vec<Vec<(u32, f64)>> = (0..5u32)
            .map(|r| {
                (0..6u32)
                    .map(|k| (k % 24, f64::from(r * 10 + k) * 0.5 - 7.0))
                    .collect()
            })
            .collect();
        check_group_matches_sequential(&heavy, 4, 200);
        check_group_matches_sequential(&heavy, 1, 50);
        check_group_matches_sequential(&[vec![(3, 1.5), (9, -2.25)]], 32, 500);
    }

    /// The torn-tail property pinned on fixed cuts: mid-record, exactly
    /// one record, and deeper than one group.
    #[test]
    fn torn_tail_mid_group_fixed_scenarios() {
        let batches: Vec<Vec<(u32, f64)>> = vec![
            vec![(1, 0.5), (2, 1.5), (3, -0.5)],
            vec![(4, 9.0)],
            vec![(5, 2.0), (6, 3.0)],
        ];
        check_torn_tail_mid_group(&batches, 7);
        check_torn_tail_mid_group(&batches, RECORD_LEN);
        check_torn_tail_mid_group(&batches, 2 * RECORD_LEN + 11);
    }

    #[test]
    fn group_commit_failure_acks_error_to_every_submitter() {
        // A writer over a read-only fd: every group commit fails. Each
        // submitter must hear the error (no silent ack, no success).
        let dir = scratch_dir("group-fail");
        let (wal, _) = Wal::open(&dir, 8).expect("open");
        let path = wal.path().to_path_buf();
        drop(wal);
        let file = OpenOptions::new().read(true).open(&path).expect("reopen read-only");
        let group = std::sync::Arc::new(GroupCommitWal::start(
            Wal::from_file_for_tests(file, path.clone()),
            8,
            Duration::from_micros(100),
            GroupCommitObs::default(),
        ));
        let errors: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|r| {
                    let group = std::sync::Arc::clone(&group);
                    scope.spawn(move || {
                        group
                            .append_batch(NodeId(r), &[(NodeId(0), 1.0)])
                            .expect_err("read-only fd must fail the commit")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("submitter")).collect()
        });
        assert_eq!(errors.len(), 4);
        drop(group);
        // Nothing was acked, and indeed nothing is durable.
        let (_, replay) = Wal::open(&dir, 8).expect("reopen");
        assert!(replay.events.is_empty(), "failed commits must leave no records");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn group_commit_shutdown_flushes_pending_submissions() {
        let dir = scratch_dir("group-drain");
        let (wal, _) = Wal::open(&dir, 8).expect("open");
        let group =
            GroupCommitWal::start(wal, 64, Duration::from_micros(500), GroupCommitObs::default());
        for i in 0..20u32 {
            group.append(&ev(i % 8, (i + 1) % 8, i as f64)).expect("commit");
        }
        drop(group); // joins the writer; everything acked is on disk
        let (_, replay) = Wal::open(&dir, 8).expect("reopen");
        assert_eq!(replay.events.len(), 20);
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
