//! Golden-fixture self-tests for the workspace-analysis rule families.
//!
//! Each family has a committed pair of mini-workspaces under
//! `crates/xtask/fixtures/`: one that provably trips the rule and one
//! that stays clean while containing the same tempting construct off the
//! analyzed paths. Running the real `run_lint_with` over them pins both
//! the detection and the precision side of every rule.

use gossiptrust_xtask::rules::Violation;
use gossiptrust_xtask::run_lint_with;
use std::path::PathBuf;

/// Lint one committed fixture workspace. The cache is disabled so the
/// run never writes a `target/` directory into the committed tree.
fn lint_fixture(name: &str) -> Vec<Violation> {
    // env!, not env::var: the manifest dir is a compile-time constant and
    // the env-var rule exists to keep runtime reads out of this crate.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    assert!(root.is_dir(), "missing fixture {}", root.display());
    let report = run_lint_with(&root, false).unwrap_or_else(|e| panic!("lint {name}: {e}"));
    assert!(report.expired_waivers.is_empty(), "{name}: {:?}", report.expired_waivers);
    report.violations
}

#[test]
fn taint_trip_fixture_trips_and_names_the_chain() {
    let v = lint_fixture("taint_trip");
    let taint: Vec<&Violation> = v.iter().filter(|v| v.rule == "taint-clock").collect();
    assert_eq!(taint.len(), 1, "{v:?}");
    let hit = taint[0];
    assert_eq!(hit.path, "crates/k/src/lib.rs");
    // The message carries the full sink → source chain.
    for hop in ["step_slab", "helper", "tick", "Instant::now"] {
        assert!(hit.message.contains(hop), "missing {hop} in {}", hit.message);
    }
}

#[test]
fn taint_clean_fixture_is_clean() {
    let v = lint_fixture("taint_clean");
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn panic_trip_fixture_trips_on_the_reachable_unwrap() {
    let v = lint_fixture("panic_trip");
    let p: Vec<&Violation> = v.iter().filter(|v| v.rule == "panic-path").collect();
    assert_eq!(p.len(), 1, "{v:?}");
    assert_eq!(p[0].path, "crates/k/src/lib.rs");
    assert!(p[0].message.contains("handle"), "{}", p[0].message);
    assert!(p[0].message.contains("serve"), "{}", p[0].message);
}

#[test]
fn panic_clean_fixture_tolerates_offline_unwraps() {
    let v = lint_fixture("panic_clean");
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn async_trip_fixture_trips_on_blocking_sleep() {
    let v = lint_fixture("async_trip");
    let a: Vec<&Violation> = v.iter().filter(|v| v.rule == "async-discipline").collect();
    assert_eq!(a.len(), 1, "{v:?}");
    assert_eq!(a[0].path, "crates/k/src/lib.rs");
    assert!(a[0].message.contains("thread::sleep"), "{}", a[0].message);
}

#[test]
fn async_clean_fixture_accepts_runtime_sleep_and_scoped_guards() {
    let v = lint_fixture("async_clean");
    assert!(v.is_empty(), "{v:?}");
}
