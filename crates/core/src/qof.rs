//! Quality-of-Feedback (QoF) scoring — the paper's §7 extension.
//!
//! "To probe further, we suggest to keep two kinds of reputation scores on
//! each peer node: one to measure the quality-of-service (QoS) … and
//! another for quality-of-feedback (QoF) by participating peers. We
//! suggest integrating these two scores together…" (§7).
//!
//! The QoS score is the ordinary global reputation this workspace computes
//! everywhere. The QoF score implemented here follows the
//! PeerTrust-style *feedback credibility* idea: a rater whose normalized
//! opinions systematically disagree with the (reputation-weighted)
//! consensus about the peers it rated is probably lying, so its feedback
//! should count for less.
//!
//! * [`feedback_credibility`] computes a QoF score in `[0, 1]` per rater.
//! * [`discount_matrix`] folds QoF back into the trust matrix by shrinking
//!   each rater's row toward the uninformative uniform row in proportion
//!   to its distrust: `s'_ij = qof_i·s_ij + (1−qof_i)/n`. Rows stay
//!   stochastic, so everything downstream (power iteration, gossip) works
//!   unchanged.
//! * [`combine_scores`] integrates QoS and QoF into a single ranking
//!   signal with a tunable trade-off `θ` (the open question §7 poses).

use crate::id::NodeId;
use crate::local::LocalTrust;
use crate::matrix::TrustMatrix;
use crate::vector::ReputationVector;

/// Per-rater Quality-of-Feedback scores in `[0, 1]`.
#[derive(Clone, Debug, PartialEq)]
pub struct QofScores {
    scores: Vec<f64>,
}

impl QofScores {
    /// QoF score of rater `i`.
    pub fn score(&self, i: NodeId) -> f64 {
        self.scores[i.index()]
    }

    /// All scores, indexed by node.
    pub fn values(&self) -> &[f64] {
        &self.scores
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.scores.len()
    }
}

/// Compute feedback credibility.
///
/// A rater's *opinion* about peer `j` is its degree-adjusted share
/// `o_ij = s_ij · deg_i` — the ratio of the rating it gave `j` to its own
/// average rating. (Raw normalized entries `s_ij` scale with `1/deg_i`,
/// so comparing them across raters would punish prolific raters, not
/// dishonest ones.) For every peer `j` the reputation-weighted consensus
/// opinion is `c_j = Σ_i v_i·o_ij / Σ_i v_i`; a rater's *divergence* is
/// the mean absolute difference between its opinions and the consensus,
/// and its QoF score is `1 − divergence / max_divergence` (so the most
/// discordant rater scores `floor`, agreeable raters score near 1).
///
/// Raters with no feedback (dangling rows) are assigned QoF 1: they
/// express no opinion, so there is nothing to distrust.
pub fn feedback_credibility(
    matrix: &TrustMatrix,
    reputation: &ReputationVector,
    floor: f64,
) -> QofScores {
    assert_eq!(matrix.n(), reputation.n(), "matrix and reputation must agree on n");
    assert!((0.0..1.0).contains(&floor), "floor must be in [0,1)");
    let n = matrix.n();

    // Consensus opinion per ratee, reputation-weighted over raters.
    let mut consensus_num = vec![0.0; n];
    let mut consensus_den = vec![0.0; n];
    for i in 0..n {
        let rater = NodeId::from_index(i);
        if matrix.row_is_dangling(rater) {
            continue;
        }
        let vi = reputation.score(rater).max(f64::MIN_POSITIVE);
        let (cols, vals) = matrix.row(rater);
        let deg = cols.len() as f64;
        for (&j, &s) in cols.iter().zip(vals) {
            consensus_num[j as usize] += vi * s * deg;
            consensus_den[j as usize] += vi;
        }
    }
    let consensus: Vec<f64> = consensus_num
        .iter()
        .zip(&consensus_den)
        .map(|(&num, &den)| if den > 0.0 { num / den } else { 0.0 })
        .collect();

    // Per-rater divergence from consensus, in opinion space.
    let mut divergence = vec![0.0; n];
    for (i, slot) in divergence.iter_mut().enumerate() {
        let rater = NodeId::from_index(i);
        if matrix.row_is_dangling(rater) {
            continue;
        }
        let (cols, vals) = matrix.row(rater);
        let deg = cols.len() as f64;
        let mut acc = 0.0;
        for (&j, &s) in cols.iter().zip(vals) {
            acc += (s * deg - consensus[j as usize]).abs();
        }
        *slot = acc / deg;
    }
    let max_div = divergence.iter().copied().fold(0.0, f64::max);
    let scores = divergence
        .iter()
        .map(|&d| {
            if max_div > 0.0 {
                (1.0 - d / max_div).max(floor)
            } else {
                1.0
            }
        })
        .collect();
    QofScores { scores }
}

/// Fold QoF scores into the trust matrix: each rater's row is blended
/// toward the uniform (uninformative) row by its distrust,
/// `s'_ij = qof_i·s_ij + (1 − qof_i)/n`. The result stays row-stochastic.
pub fn discount_matrix(matrix: &TrustMatrix, qof: &QofScores) -> TrustMatrix {
    assert_eq!(matrix.n(), qof.n(), "matrix and QoF must agree on n");
    let n = matrix.n();
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let rater = NodeId::from_index(i);
        let mut row = LocalTrust::new();
        if matrix.row_is_dangling(rater) {
            rows.push(row); // stays uniform-implicit
            continue;
        }
        let q = qof.score(rater);
        let uniform_share = (1.0 - q) / n as f64;
        let (cols, vals) = matrix.row(rater);
        // Dense blend: existing entries get q·s + share, absent get share.
        // (The blend necessarily densifies discounted rows; fully-credible
        // rows (q = 1) stay sparse.)
        if q >= 1.0 {
            for (&c, &s) in cols.iter().zip(vals) {
                row.add_feedback(NodeId(c), s);
            }
        } else {
            let mut dense = vec![uniform_share; n];
            for (&c, &s) in cols.iter().zip(vals) {
                dense[c as usize] += q * s;
            }
            for (j, &s) in dense.iter().enumerate() {
                if j != i {
                    row.add_feedback(NodeId::from_index(j), s);
                }
            }
        }
        rows.push(row);
    }
    TrustMatrix::from_rows(&rows)
}

/// Integrate QoS and QoF into one ranking signal:
/// `combined_i ∝ qos_i^θ · qof_i^(1−θ)`, normalized to sum 1.
/// `θ = 1` is pure QoS (service quality), `θ = 0` pure QoF (honesty as a
/// witness) — §7 leaves the trade-off open; the ablation sweeps it.
pub fn combine_scores(qos: &ReputationVector, qof: &QofScores, theta: f64) -> ReputationVector {
    assert_eq!(qos.n(), qof.n(), "QoS and QoF must agree on n");
    assert!((0.0..=1.0).contains(&theta), "theta must be in [0,1]");
    let weights: Vec<f64> = qos
        .values()
        .iter()
        .zip(qof.values())
        .map(|(&s, &f)| {
            s.max(f64::MIN_POSITIVE).powf(theta) * f.max(f64::MIN_POSITIVE).powf(1.0 - theta)
        })
        .collect();
    ReputationVector::from_weights(weights).expect("positive weights")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::TrustMatrixBuilder;

    /// Three honest raters agree peer 0 is good and peer 3 is bad; one
    /// dissenter claims the opposite. The dissenter must get the lowest
    /// QoF score.
    fn dissent_matrix() -> TrustMatrix {
        let mut b = TrustMatrixBuilder::new(5);
        for i in 1..4u32 {
            b.record(NodeId(i), NodeId(0), 9.0);
            b.record(NodeId(i), NodeId(4), 1.0);
        }
        // Node 4 (the dissenter) inverts the consensus.
        b.record(NodeId(4), NodeId(0), 1.0);
        b.record(NodeId(4), NodeId(3), 9.0);
        b.build()
    }

    #[test]
    fn dissenter_gets_lowest_qof() {
        let m = dissent_matrix();
        let v = ReputationVector::uniform(5);
        let qof = feedback_credibility(&m, &v, 0.05);
        let dissenter = qof.score(NodeId(4));
        for i in 1..4u32 {
            assert!(
                qof.score(NodeId(i)) > dissenter,
                "rater {i}: {} vs dissenter {dissenter}",
                qof.score(NodeId(i))
            );
        }
        assert!(dissenter >= 0.05, "floor respected");
    }

    #[test]
    fn unanimous_raters_all_score_one() {
        let mut b = TrustMatrixBuilder::new(4);
        for i in 1..4u32 {
            b.record(NodeId(i), NodeId(0), 1.0);
        }
        let m = b.build();
        let qof = feedback_credibility(&m, &ReputationVector::uniform(4), 0.1);
        for i in 1..4u32 {
            assert!((qof.score(NodeId(i)) - 1.0).abs() < 1e-12);
        }
        // Node 0 issued nothing: QoF 1 by convention.
        assert_eq!(qof.score(NodeId(0)), 1.0);
    }

    #[test]
    fn discounted_matrix_stays_stochastic_and_demotes_dissent() {
        let m = dissent_matrix();
        let v = ReputationVector::uniform(5);
        let qof = feedback_credibility(&m, &v, 0.05);
        let discounted = discount_matrix(&m, &qof);
        assert!(discounted.is_row_stochastic(1e-9));
        // The dissenter's opinion about peer 3 is shrunk toward 1/n.
        let before = m.entry(NodeId(4), NodeId(3));
        let after = discounted.entry(NodeId(4), NodeId(3));
        assert!(after < before, "{after} !< {before}");
        // A credible rater's row is (nearly) untouched.
        let q1 = qof.score(NodeId(1));
        let drift = (discounted.entry(NodeId(1), NodeId(0)) - m.entry(NodeId(1), NodeId(0))).abs();
        assert!(drift <= (1.0 - q1) + 1e-12);
    }

    #[test]
    fn discount_with_full_credibility_is_identity() {
        let mut b = TrustMatrixBuilder::new(3);
        b.record(NodeId(0), NodeId(1), 1.0);
        b.record(NodeId(1), NodeId(2), 1.0);
        let m = b.build();
        let qof = QofScores { scores: vec![1.0; 3] };
        assert_eq!(discount_matrix(&m, &qof), m);
    }

    #[test]
    fn combined_scores_interpolate() {
        let qos = ReputationVector::from_weights(vec![0.7, 0.3]).unwrap();
        let qof = QofScores { scores: vec![0.2, 1.0] };
        // θ = 1: pure QoS order (node 0 first).
        let pure_qos = combine_scores(&qos, &qof, 1.0);
        assert_eq!(pure_qos.ranking()[0], NodeId(0));
        // θ = 0: pure QoF order (node 1 first).
        let pure_qof = combine_scores(&qos, &qof, 0.0);
        assert_eq!(pure_qof.ranking()[0], NodeId(1));
        // Everything stays normalized.
        for theta in [0.0, 0.3, 0.5, 1.0] {
            let c = combine_scores(&qos, &qof, theta);
            assert!((c.values().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn combine_rejects_bad_theta() {
        let qos = ReputationVector::uniform(2);
        let qof = QofScores { scores: vec![1.0, 1.0] };
        let _ = combine_scores(&qos, &qof, 1.5);
    }
}
