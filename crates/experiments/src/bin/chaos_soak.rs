//! Chaos soak: drive the reputation service through the full injected
//! fault matrix — epoch panics, fold/aggregate overruns, ingest
//! overload, a hard crash with a torn WAL tail, and a TCP drill with
//! dropped/delayed/duplicated/truncated response frames, slow-loris and
//! oversize clients, and an exhausted connection limit — then prove the
//! self-healing invariants held:
//!
//! 1. **Zero lost acknowledged feedback**: every `record` the service
//!    acked is in the write-ahead log, survives a torn-tail crash, and
//!    folds into the *bit-identical* trust matrix a clean twin produces.
//! 2. **A snapshot on every query**: a concurrent reader never observes
//!    a missing snapshot or a version that goes backwards, no matter how
//!    many epochs panic or overrun around it.
//! 3. **Counters match the faults dealt**: the injector's own tally
//!    agrees with the `ServiceStats` robustness counters, so the
//!    degradation the soak reports is exactly the degradation injected.
//!
//! Faults come from the seeded [`ChaosInjector`] — `GT_CHAOS_SEED`
//! overrides the fixed default, and a given seed replays the identical
//! fault schedule. `GT_QUICK=1` runs the reduced-scale CI shard.

use gossiptrust_core::id::NodeId;
use gossiptrust_core::params::chaos_seed;
use gossiptrust_experiments::{Scale, TextTable};
use gossiptrust_serve::chaos::{ChaosConfig, ChaosInjector, ClientFault};
use gossiptrust_serve::server::{serve_on_with, ServerConfig};
use gossiptrust_serve::service::{ReputationService, ServiceConfig, ServiceHandle};
use gossiptrust_workloads::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One acknowledged feedback event in the shadow ledger.
type Acked = (u32, u32, f64);

/// A unique scratch directory: process id + a fixed tag, no ambient
/// entropy (gt-lint rule 5) and no collision across concurrent CI jobs.
fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gt-chaos-soak-{}-{tag}", std::process::id()))
}

fn main() {
    let scale = Scale::from_env();
    let (n, rounds, tcp_ops) = match scale {
        Scale::Paper => (200, 12, 120),
        Scale::Quick => (80, 6, 40),
    };
    let seed = chaos_seed().unwrap_or(7002);
    println!("Chaos soak ({scale:?} scale, n = {n}, seed = {seed}; override with GT_CHAOS_SEED)\n");

    let wal_dir = scratch_dir("wal");
    let _ = std::fs::remove_dir_all(&wal_dir);
    let acked = soak_phase(n, rounds, seed, &wal_dir);
    restart_phase(n, seed, &wal_dir, &acked);
    tcp_phase(n, tcp_ops, seed);
    let _ = std::fs::remove_dir_all(&wal_dir);

    println!("\nchaos soak passed: zero lost acknowledged feedback, a snapshot on");
    println!("every query, and every degradation counter matching the faults dealt.");
}

/// Phase 1 — the in-process soak: epoch panics and overruns under a tight
/// deadline, ingest overload against a small queue, with a concurrent
/// reader asserting snapshot availability the whole time.
fn soak_phase(n: usize, rounds: usize, seed: u64, wal_dir: &PathBuf) -> Vec<Acked> {
    println!("=== phase 1: in-process soak (epoch faults + overload + WAL) ===");
    let service = ReputationService::start(
        ServiceConfig::new(n)
            .with_seed(seed)
            .with_ingest_queue(512)
            .with_epoch_deadline(Duration::from_millis(25))
            .with_wal_dir(wal_dir)
            .with_chaos(ChaosConfig::soak(seed)),
    );
    let handle = service.handle();

    // Concurrent reader: every query must see a snapshot, versions must
    // never go backwards.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let handle = service.handle();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let queries = AtomicU64::new(0);
            let mut last_version = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = handle.snapshot();
                assert!(
                    snap.vector.n() == handle.n() && !snap.vector.values().is_empty(),
                    "a query observed a missing snapshot"
                );
                assert!(
                    snap.version >= last_version,
                    "snapshot version went backwards: {} -> {}",
                    last_version,
                    snap.version
                );
                last_version = snap.version;
                let top = handle.top_k(5);
                assert_eq!(top.peers.len(), 5.min(handle.n()));
                queries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(200));
            }
            queries.load(Ordering::Relaxed)
        })
    };

    // Writers: Zipf-skewed feedback with retry-on-shed; every Ok is an
    // acknowledgment the rest of the soak holds the service to.
    let zipf = Zipf::new(n, 0.8);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xACED);
    let mut acked: Vec<Acked> = Vec::new();
    let mut sheds_seen = 0u64;
    let (mut panics_seen, mut overruns_seen, mut published_seen) = (0u64, 0u64, 0u64);
    for _round in 0..rounds {
        for rater in 0..n {
            for _ in 0..3 {
                let target = zipf.sample(&mut rng) - 1;
                if target == rater {
                    continue;
                }
                let score = 1.0 + rng.random::<f64>() * 4.0;
                // Retry a shed by draining the backlog (an epoch folds it),
                // exactly what a real client's backoff gives time for.
                for attempt in 0..3 {
                    match handle.record(
                        NodeId::from_index(rater),
                        NodeId::from_index(target),
                        score,
                    ) {
                        Ok(()) => {
                            acked.push((rater as u32, target as u32, score));
                            break;
                        }
                        Err(e) if e.retriable() && attempt < 2 => {
                            sheds_seen += 1;
                            let outcome = handle.run_epoch_now().expect("epoch loop alive");
                            tally(
                                &outcome,
                                &mut panics_seen,
                                &mut overruns_seen,
                                &mut published_seen,
                            );
                        }
                        Err(e) => panic!("non-retriable record failure: {e}"),
                    }
                }
            }
        }
        let outcome = handle.run_epoch_now().expect("epoch loop alive");
        tally(&outcome, &mut panics_seen, &mut overruns_seen, &mut published_seen);
    }
    stop.store(true, Ordering::Relaxed);
    let queries = reader.join().expect("reader thread");

    let stats = handle.stats_report();
    let chaos = service.chaos_report().expect("chaos armed");
    let mut t = TextTable::new(vec!["metric", "observed", "counter"]);
    t.row(vec![
        "epochs panicked".into(),
        panics_seen.to_string(),
        stats.epochs_panicked.to_string(),
    ]);
    t.row(vec![
        "epochs overrun".into(),
        overruns_seen.to_string(),
        stats.epochs_overrun.to_string(),
    ]);
    t.row(vec![
        "requests shed".into(),
        sheds_seen.to_string(),
        stats.requests_shed.to_string(),
    ]);
    t.row(vec![
        "acked feedback".into(),
        acked.len().to_string(),
        stats.wal_appended_records.to_string(),
    ]);
    t.row(vec!["reader queries".into(), queries.to_string(), String::new()]);
    print!("{}", t.render());

    // Counters must match the faults dealt and the acks given — exactly.
    assert_eq!(stats.epochs_panicked, chaos.epochs_panicked, "panic counter vs faults dealt");
    // `>=`: every injected overrun (50 ms pause vs the 25 ms deadline) is
    // abandoned, and a slow machine may add natural overruns on top.
    assert!(stats.epochs_overrun >= chaos.epochs_overrun, "overrun counter vs faults dealt");
    assert_eq!(stats.epochs_panicked, panics_seen, "panic counter vs outcomes observed");
    assert_eq!(stats.epochs_overrun, overruns_seen, "overrun counter vs outcomes observed");
    assert_eq!(stats.requests_shed, sheds_seen, "shed counter vs retriable errors observed");
    assert_eq!(stats.wal_appended_records, acked.len() as u64, "every ack hit the WAL");
    assert_eq!(stats.epochs_published, published_seen, "published tally");
    assert!(
        panics_seen + overruns_seen > 0,
        "the soak rates must actually deal epoch faults (seed {seed})"
    );
    assert!(queries > 0, "the reader must have run");
    service.shutdown();
    acked
}

fn tally(
    outcome: &gossiptrust_serve::epoch::EpochOutcome,
    panics: &mut u64,
    overruns: &mut u64,
    published: &mut u64,
) {
    if outcome.panicked {
        *panics += 1;
    }
    if outcome.overran {
        *overruns += 1;
    }
    if outcome.published {
        *published += 1;
    }
}

/// Phase 2 — crash recovery: tear the WAL tail the way a kill -9 mid-append
/// would, restart, and demand the replayed log fold bit-identically to a
/// clean twin fed the shadow ledger directly.
fn restart_phase(n: usize, seed: u64, wal_dir: &PathBuf, acked: &[Acked]) {
    println!("\n=== phase 2: torn-tail crash + restart (WAL replay) ===");
    // A partial record after the last complete one: what an interrupted
    // append leaves behind. Replay must stop at the last intact record.
    let wal_file = std::fs::read_dir(wal_dir)
        .expect("wal dir exists")
        .next()
        .expect("wal file exists")
        .expect("readable dir entry")
        .path();
    let mut torn = std::fs::OpenOptions::new()
        .append(true)
        .open(&wal_file)
        .expect("open wal for tearing");
    torn.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02])
        .expect("tear tail");
    drop(torn);

    let restarted =
        ReputationService::start(ServiceConfig::new(n).with_seed(seed).with_wal_dir(wal_dir));
    let twin = ReputationService::start(ServiceConfig::new(n).with_seed(seed));
    let th = twin.handle();
    for &(rater, target, score) in acked {
        th.record(NodeId(rater), NodeId(target), score).expect("twin ingest");
    }

    let rh = restarted.handle();
    let stats = rh.stats_report();
    assert_eq!(
        stats.wal_replayed_records,
        acked.len() as u64,
        "replay must recover every acked record past the torn tail"
    );
    assert_eq!(rh.events_ingested(), acked.len() as u64, "zero lost acknowledged feedback");

    // Bit-for-bit: the raw local-trust rows, and the snapshot an epoch
    // folds them into, are identical between replay and twin.
    let flat = |h: &ServiceHandle| -> Vec<(u32, u64)> {
        h.raw_rows()
            .iter()
            .flat_map(|row| {
                row.iter_raw()
                    .map(|(id, amt)| (id.0, amt.to_bits()))
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    assert_eq!(flat(&rh), flat(&th), "replayed rows differ from the twin's");
    let r_out = rh.run_epoch_now().expect("epoch loop alive");
    let t_out = th.run_epoch_now().expect("epoch loop alive");
    assert!(r_out.published && t_out.published, "clean epochs publish");
    let bits = |h: &ServiceHandle| -> Vec<u64> {
        h.snapshot().vector.values().iter().map(|v| v.to_bits()).collect()
    };
    assert_eq!(bits(&rh), bits(&th), "replayed fold must aggregate bit-identically");
    println!(
        "replayed {} records past a torn tail; folded matrix and published\nsnapshot bit-identical to a clean twin.",
        acked.len()
    );
    restarted.shutdown();
    twin.shutdown();
}

/// Phase 3 — the TCP drill: response-frame faults on the server side,
/// slow-loris and oversize clients on ours, plus an exhausted connection
/// limit; the server must reap, refuse, and keep answering.
fn tcp_phase(n: usize, ops: usize, seed: u64) {
    println!("\n=== phase 3: TCP drill (frame faults + slow-loris + conn limit) ===");
    let service = ReputationService::start(ServiceConfig::new(n).with_seed(seed));
    let handle = service.handle();
    let frame_chaos = Arc::new(ChaosInjector::new(ChaosConfig::soak(seed ^ 1)));
    let server_config = ServerConfig {
        max_conns: 4,
        read_timeout: Duration::from_millis(100),
        max_line_bytes: 1024,
        chaos: Some(Arc::clone(&frame_chaos)),
    };
    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("build tokio runtime");
    let listener = runtime
        .block_on(tokio::net::TcpListener::bind("127.0.0.1:0"))
        .expect("bind drill listener");
    let addr = listener.local_addr().expect("listener addr");
    let server_handle = service.handle();
    std::thread::spawn(move || {
        let _ = runtime.block_on(serve_on_with(server_handle, listener, server_config));
    });

    // Our own misbehavior schedule, independent of the server's injector.
    let client_chaos = ChaosInjector::new(ChaosConfig::soak(seed ^ 2));
    let (mut answered, mut silent, mut stalled, mut oversized) = (0u64, 0u64, 0u64, 0u64);
    for _ in 0..ops {
        let mut conn = std::net::TcpStream::connect(addr).expect("drill connect");
        conn.set_read_timeout(Some(Duration::from_millis(500)))
            .expect("set deadline");
        match client_chaos.client_fault() {
            ClientFault::Honest => {
                conn.write_all(b"{\"op\":\"ping\"}\n").expect("send ping");
                let mut line = String::new();
                // Silence (a dropped frame) or a short read (a truncated
                // one) are the injected weather; an honest reply must be a
                // well-formed frame naming the live snapshot version.
                match BufReader::new(&conn).read_line(&mut line) {
                    Ok(read) if read > 0 && line.ends_with('\n') => {
                        assert!(line.contains("\"version\""), "reply without a version: {line}");
                        answered += 1;
                    }
                    _ => silent += 1,
                }
            }
            ClientFault::Stall => {
                // Slow-loris: hold an incomplete line open; the read
                // deadline must reap us with a farewell, then EOF.
                conn.write_all(b"{\"op\":\"pi").expect("send partial");
                let mut rest = String::new();
                let _ = conn.read_to_string(&mut rest);
                assert!(rest.contains("read timeout"), "stalled conn not reaped: {rest:?}");
                stalled += 1;
            }
            ClientFault::OversizeLine => {
                let huge = vec![b'x'; 4096];
                conn.write_all(&huge).expect("send oversize");
                conn.write_all(b"\n").expect("terminate oversize");
                let mut rest = String::new();
                let _ = conn.read_to_string(&mut rest);
                assert!(rest.contains("too long"), "oversize line not refused: {rest:?}");
                oversized += 1;
            }
        }
    }

    // Exhaust the accept gate: fill every slot with held-open connections,
    // then the next arrival must be shed with a retriable error line.
    let held: Vec<std::net::TcpStream> = (0..4)
        .map(|_| std::net::TcpStream::connect(addr).expect("fill slot"))
        .collect();
    std::thread::sleep(Duration::from_millis(20));
    let mut shed = std::net::TcpStream::connect(addr).expect("over-limit connect");
    shed.set_read_timeout(Some(Duration::from_millis(500)))
        .expect("set deadline");
    let mut line = String::new();
    let read = BufReader::new(&shed).read_line(&mut line);
    assert!(
        read.is_ok() && line.contains("\"retriable\": true"),
        "over-limit conn must get a retriable shed line, got {line:?}"
    );
    drop(held);

    let stats = handle.stats_report();
    let report = frame_chaos.report();
    let mut t = TextTable::new(vec!["metric", "count"]);
    t.row(vec!["honest replies".into(), answered.to_string()]);
    t.row(vec!["replies lost to frame faults".into(), silent.to_string()]);
    t.row(vec!["slow-loris conns reaped".into(), stalled.to_string()]);
    t.row(vec!["oversize lines refused".into(), oversized.to_string()]);
    t.row(vec![
        "conns rejected at the gate".into(),
        stats.conns_rejected.to_string(),
    ]);
    t.row(vec![
        "frame faults dealt (drop/delay/dup/trunc)".into(),
        format!(
            "{}/{}/{}/{}",
            report.frames_dropped,
            report.frames_delayed,
            report.frames_duplicated,
            report.frames_truncated
        ),
    ]);
    print!("{}", t.render());

    assert!(answered > 0, "some honest requests must get through the weather");
    // `>=`: the held-open gate-filler conns may also trip the deadline.
    assert!(stats.conns_timed_out >= stalled, "every stall must be reaped");
    assert!(stats.conns_rejected >= 1, "the accept gate must have shed the over-limit conn");
    if answered + silent >= 30 {
        assert!(
            report.frames_dropped
                + report.frames_delayed
                + report.frames_duplicated
                + report.frames_truncated
                > 0,
            "soak rates over {} responses must deal at least one frame fault",
            answered + silent
        );
    }
    service.shutdown();
}
