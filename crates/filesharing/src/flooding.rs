//! Gnutella-style TTL flooding to locate file holders.
//!
//! "After a query for a file is issued and flooded over the entire P2P
//! network, a list of nodes having this file is generated" (§6.4). We
//! implement classic bounded flooding: the query fans out to all online
//! neighbors, decrementing a TTL per hop; every visited holder responds.
//! Message cost is one per traversed edge — the overhead the paper
//! contrasts against TrustMe's broadcast storms.

use gossiptrust_core::id::NodeId;
use gossiptrust_simnet::topology::Overlay;
use gossiptrust_workloads::files::FileCatalog;
use std::collections::VecDeque;

/// Result of flooding one query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FloodResult {
    /// Online holders of the file discovered within the TTL.
    pub holders: Vec<NodeId>,
    /// Overlay nodes reached (including the requester).
    pub nodes_reached: usize,
    /// Query messages generated (one per traversed edge).
    pub messages: u64,
}

/// Flood `file`'s query from `from` with time-to-live `ttl` hops.
///
/// Returns the online holders discovered, in ascending id order. A TTL of
/// `usize::MAX` floods the entire connected component ("the entire P2P
/// network").
pub fn flood_search(
    overlay: &Overlay,
    catalog: &FileCatalog,
    from: NodeId,
    file: u32,
    ttl: usize,
) -> FloodResult {
    let n = overlay.n();
    let mut dist = vec![usize::MAX; n];
    let mut messages = 0u64;
    let mut reached = 0usize;
    let mut holders = Vec::new();
    if !overlay.is_online(from) {
        return FloodResult { holders, nodes_reached: 0, messages };
    }
    dist[from.index()] = 0;
    reached += 1;
    if catalog.peer_has(from, file) {
        holders.push(from);
    }
    let mut q = VecDeque::from([from]);
    while let Some(u) = q.pop_front() {
        let du = dist[u.index()];
        if du >= ttl {
            continue;
        }
        for v in overlay.online_neighbors(u) {
            messages += 1;
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = du + 1;
                reached += 1;
                if catalog.peer_has(v, file) {
                    holders.push(v);
                }
                q.push_back(v);
            }
        }
    }
    holders.sort_unstable();
    FloodResult { holders, nodes_reached: reached, messages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossiptrust_workloads::saroiu::SaroiuFiles;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, files: usize, seed: u64) -> (Overlay, FileCatalog) {
        let mut rng = StdRng::seed_from_u64(seed);
        let overlay = Overlay::random_k_out(n, 4, &mut rng);
        let catalog = FileCatalog::generate(n, files, 1.2, &SaroiuFiles::default(), &mut rng);
        (overlay, catalog)
    }

    #[test]
    fn full_flood_finds_all_online_holders() {
        let (overlay, catalog) = setup(60, 200, 1);
        for file in [0u32, 5, 50, 199] {
            let res = flood_search(&overlay, &catalog, NodeId(0), file, usize::MAX);
            let expected: Vec<NodeId> = catalog.holders(file).iter().map(|&p| NodeId(p)).collect();
            assert_eq!(res.holders, expected, "file {file}");
            assert_eq!(res.nodes_reached, 60);
        }
    }

    #[test]
    fn ttl_zero_sees_only_the_requester() {
        let (overlay, catalog) = setup(30, 100, 2);
        let res = flood_search(&overlay, &catalog, NodeId(3), 0, 0);
        assert_eq!(res.nodes_reached, 1);
        assert_eq!(res.messages, 0);
        let expects_self = catalog.peer_has(NodeId(3), 0);
        assert_eq!(res.holders.contains(&NodeId(3)), expects_self);
    }

    #[test]
    fn larger_ttl_reaches_no_fewer_holders() {
        let (overlay, catalog) = setup(80, 300, 3);
        let small = flood_search(&overlay, &catalog, NodeId(1), 0, 1);
        let big = flood_search(&overlay, &catalog, NodeId(1), 0, 4);
        assert!(big.holders.len() >= small.holders.len());
        assert!(big.nodes_reached >= small.nodes_reached);
        assert!(big.messages >= small.messages);
        for h in &small.holders {
            assert!(big.holders.contains(h));
        }
    }

    #[test]
    fn offline_holders_are_not_returned() {
        let (mut overlay, catalog) = setup(40, 100, 4);
        // Take all holders of an *unpopular* file offline (the rank-1 file
        // is held by nearly everyone, which would empty the network).
        let file = 99u32;
        let holders: Vec<u32> = catalog.holders(file).to_vec();
        assert!(holders.len() < 20, "tail file should have few holders");
        for &h in &holders {
            overlay.go_offline(NodeId(h));
        }
        // Pick an online requester.
        let requester = (0..40u32).map(NodeId).find(|id| overlay.is_online(*id)).unwrap();
        let res = flood_search(&overlay, &catalog, requester, file, usize::MAX);
        assert!(res.holders.is_empty());
    }

    #[test]
    fn offline_requester_gets_nothing() {
        let (mut overlay, catalog) = setup(20, 50, 5);
        overlay.go_offline(NodeId(2));
        let res = flood_search(&overlay, &catalog, NodeId(2), 0, usize::MAX);
        assert!(res.holders.is_empty());
        assert_eq!(res.nodes_reached, 0);
    }

    #[test]
    fn message_count_equals_traversed_edges() {
        // On a fully-flooded connected overlay every edge is traversed from
        // the side that is dequeued first... messages equal the number of
        // directed edge traversals from visited nodes within TTL, which for
        // full flood equals Σ_v deg(v) = 2·|E|.
        let (overlay, catalog) = setup(25, 50, 6);
        let res = flood_search(&overlay, &catalog, NodeId(0), 0, usize::MAX);
        let total_degree: u64 = (0..25).map(|i| overlay.degree(NodeId(i)) as u64).sum();
        assert_eq!(res.messages, total_degree);
    }
}
