//! Replay a Zipf query mix against an in-process reputation service and
//! write `BENCH_service.json` (queries/sec, p50/p99 latency, epoch wall
//! time), then run the pipelined durable-ingest benchmark: concurrent
//! writers feeding the group-commit WAL, against a serial mutexed-WAL
//! baseline (the pre-group-commit hot path), reported as
//! `baseline_delta_ingest_speedup`.
//!
//! ```text
//! cargo run --release -p gossiptrust-serve --bin loadgen
//! ```
//!
//! Set `GT_BENCH_QUICK=1` for a seconds-long smoke pass at reduced size
//! (recorded as such in the JSON). `GT_N` overrides the population. The
//! JSON records the measuring machine's core count the same way
//! `BENCH_engine.json` does. When a committed `BENCH_service.json` is
//! already present, its query throughput/p99 are diffed into
//! `prev_queries_per_sec` / `baseline_delta_queries_pct` before the file
//! is overwritten.

use gossiptrust_core::id::NodeId;
use gossiptrust_core::params::{bench_quick, network_size_override};
use gossiptrust_serve::json::{self, JsonObj};
use gossiptrust_serve::loadgen::{
    ingest_fields, report_fields, run, run_pipelined_ingest, run_serial_wal_baseline, IngestConfig,
    LoadConfig,
};
use gossiptrust_serve::service::{ReputationService, ServiceConfig};
use gossiptrust_workloads::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let quick = bench_quick();
    let default_n: usize = if quick { 120 } else { 1_000 };
    let n = network_size_override().unwrap_or(default_n);
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    // The committed bench document (when present) is the query-path
    // baseline; parse it before this run overwrites the file.
    let prev = std::fs::read_to_string("BENCH_service.json")
        .ok()
        .and_then(|text| json::parse_flat(text.trim()).ok());

    let service = ReputationService::start(ServiceConfig::new(n).with_seed(7));
    let handle = service.handle();

    // Seed a power-law feedback graph: every peer rates ~8 Zipf-popular
    // targets, so the first epoch aggregates a realistic skewed matrix.
    let zipf = Zipf::new(n, 0.8);
    let mut rng = StdRng::seed_from_u64(11);
    for rater in 0..n {
        for _ in 0..8 {
            let target = zipf.sample(&mut rng) - 1;
            if target != rater {
                handle
                    .record(
                        NodeId::from_index(rater),
                        NodeId::from_index(target),
                        1.0 + rng.random::<f64>(),
                    )
                    .expect("seeded ids are in range");
            }
        }
    }
    let first = handle.run_epoch_now().expect("epoch loop alive");
    println!(
        "seeded epoch 1: published = {}, cycles = {}, wall = {:.1} ms",
        first.published, first.cycles, first.wall_ms
    );

    let config = LoadConfig {
        queries: if quick { 5_000 } else { 200_000 },
        epoch_every: if quick { 2_000 } else { 50_000 },
        ..LoadConfig::default()
    };
    let report = run(&handle, &config);
    println!(
        "n={n}  {} queries ({} writes, {} epochs)  {:.0} q/s  p50 = {:.1} µs  p99 = {:.1} µs  epoch = {:.1} ms  ({} retries, {} gave up, {} shed)",
        report.queries,
        report.writes,
        report.epochs,
        report.queries_per_sec,
        report.p50_us,
        report.p99_us,
        report.epoch_wall_ms,
        report.retries,
        report.gave_up,
        report.stats.requests_shed
    );
    let metrics_text = handle.metrics_text();
    service.shutdown();

    // Pipelined durable-ingest pass: a fresh WAL-armed service takes the
    // concurrent writers (group-commit path); the serial baseline drives
    // the identical workload through one mutexed `Wal` with a write+flush
    // per batch — the pre-group-commit hot path.
    let ingest_config = if quick {
        IngestConfig { connections: 4, batches_per_conn: 250, batch_size: 16, seed: 1 }
    } else {
        IngestConfig { connections: 8, batches_per_conn: 1_500, batch_size: 32, seed: 1 }
    };
    let total_events =
        ingest_config.connections * ingest_config.batches_per_conn * ingest_config.batch_size;
    let scratch = std::env::temp_dir().join(format!("gt-loadgen-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let wal_service = ReputationService::start(
        ServiceConfig::new(n)
            .with_seed(7)
            .with_wal_dir(scratch.join("pipelined"))
            .with_ingest_queue(total_events * 2),
    );
    let piped = run_pipelined_ingest(&wal_service.handle(), &ingest_config);
    wal_service.shutdown();
    let serial = run_serial_wal_baseline(n, &scratch.join("serial"), &ingest_config);
    let _ = std::fs::remove_dir_all(&scratch);
    let speedup = if serial.events_per_sec > 0.0 {
        piped.events_per_sec / serial.events_per_sec
    } else {
        0.0
    };
    println!(
        "durable ingest: {} conns × {} batches × {}  pipelined = {:.0} ev/s (p99 {:.1} µs)  serial = {:.0} ev/s (p99 {:.1} µs)  speedup = {speedup:.2}×",
        ingest_config.connections,
        ingest_config.batches_per_conn,
        ingest_config.batch_size,
        piped.events_per_sec,
        piped.p99_us,
        serial.events_per_sec,
        serial.p99_us,
    );

    let obj = report_fields(JsonObj::new(), &report, n, cores, quick);
    let mut obj = ingest_fields(obj, &ingest_config, &piped, &serial);
    // Query-path delta vs the previously committed document, when one was
    // there to compare against.
    if let Some(prev) = prev {
        if let (Some(prev_qps), Some(prev_p99)) =
            (json::get_num(&prev, "queries_per_sec"), json::get_num(&prev, "p99_us"))
        {
            let qps_pct = if prev_qps > 0.0 {
                (report.queries_per_sec - prev_qps) / prev_qps * 100.0
            } else {
                0.0
            };
            let p99_pct = if prev_p99 > 0.0 {
                (report.p99_us - prev_p99) / prev_p99 * 100.0
            } else {
                0.0
            };
            obj = obj
                .num("prev_queries_per_sec", prev_qps)
                .num("prev_p99_us", prev_p99)
                .num("baseline_delta_queries_pct", qps_pct)
                .num("baseline_delta_query_p99_pct", p99_pct);
            println!("query path vs committed baseline: {qps_pct:+.1}% q/s, {p99_pct:+.1}% p99");
        }
    }
    let mut doc = obj.finish();
    doc.push('\n');
    std::fs::write("BENCH_service.json", &doc).expect("write BENCH_service.json");
    println!("wrote BENCH_service.json");

    // The full Prometheus exposition as measured during the query run —
    // the same text a live `GT_METRICS_ADDR` scrape would have returned;
    // CI uploads it as an artifact next to the bench JSON.
    std::fs::write("METRICS_service.prom", metrics_text).expect("write METRICS_service.prom");
    println!("wrote METRICS_service.prom");
}
