//! Unstructured overlay topologies (Gnutella-like flat networks).
//!
//! The paper simulates "a Gnutella-like flat unstructured network". Two
//! generators are provided:
//!
//! * [`Overlay::random_k_out`] — every node opens `k` connections to
//!   uniformly random peers; edges are symmetric. This matches early
//!   Gnutella clients with a fixed connection budget.
//! * [`Overlay::power_law`] — preferential-attachment (Barabási–Albert
//!   style) growth producing the heavy-tailed degree distribution measured
//!   in deployed Gnutella networks.
//!
//! Nodes can leave and (re)join, which the churn model drives.

use gossiptrust_core::id::NodeId;
use rand::Rng;
use std::collections::VecDeque;

/// An undirected overlay graph over nodes `0..n`, with per-node liveness.
#[derive(Clone, Debug)]
pub struct Overlay {
    adj: Vec<Vec<u32>>,
    online: Vec<bool>,
}

impl Overlay {
    /// Empty overlay of `n` isolated, online nodes.
    pub fn empty(n: usize) -> Self {
        Overlay { adj: vec![Vec::new(); n], online: vec![true; n] }
    }

    /// Random `k`-out overlay: each node connects to `k` distinct random
    /// peers; the union of links is kept symmetric.
    pub fn random_k_out<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Self {
        assert!(n >= 2, "need at least two nodes");
        let k = k.min(n - 1).max(1);
        let mut overlay = Overlay::empty(n);
        for i in 0..n {
            let mut picked = 0;
            let mut guard = 0;
            while picked < k && guard < 50 * k {
                guard += 1;
                let raw = rng.random_range(0..n - 1);
                let j = if raw >= i { raw + 1 } else { raw };
                if overlay.connect(NodeId::from_index(i), NodeId::from_index(j)) {
                    picked += 1;
                }
            }
        }
        overlay
    }

    /// Preferential-attachment overlay: nodes join one by one, each linking
    /// to `m` existing nodes chosen with probability proportional to their
    /// current degree (+1 smoothing). Produces a power-law-ish degree tail.
    pub fn power_law<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Self {
        assert!(n >= 2, "need at least two nodes");
        let m = m.max(1);
        let mut overlay = Overlay::empty(n);
        // Repeated-endpoint list: each edge endpoint appears once, so
        // sampling uniformly from it is degree-proportional.
        let mut endpoints: Vec<u32> = vec![0];
        for i in 1..n {
            let links = m.min(i);
            let mut picked = 0;
            let mut guard = 0;
            while picked < links && guard < 50 * links {
                guard += 1;
                // +1 smoothing: with small probability pick uniformly.
                let j = if rng.random::<f64>() < 0.1 {
                    rng.random_range(0..i) as u32
                } else {
                    endpoints[rng.random_range(0..endpoints.len())]
                };
                if overlay.connect(NodeId::from_index(i), NodeId(j)) {
                    endpoints.push(j);
                    endpoints.push(i as u32);
                    picked += 1;
                }
            }
        }
        overlay
    }

    /// Number of nodes (online or not).
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Add a symmetric edge. Returns `false` for self-loops and duplicates.
    pub fn connect(&mut self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        if self.adj[a.index()].contains(&b.0) {
            return false;
        }
        self.adj[a.index()].push(b.0);
        self.adj[b.index()].push(a.0);
        true
    }

    /// Neighbors of `node` (including offline ones; filter with
    /// [`online_neighbors`](Self::online_neighbors) when routing).
    pub fn neighbors(&self, node: NodeId) -> &[u32] {
        &self.adj[node.index()]
    }

    /// Online neighbors of `node`.
    pub fn online_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.adj[node.index()]
            .iter()
            .filter(|&&j| self.online[j as usize])
            .map(|&j| NodeId(j))
            .collect()
    }

    /// Degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj[node.index()].len()
    }

    /// Whether `node` is currently online.
    pub fn is_online(&self, node: NodeId) -> bool {
        self.online[node.index()]
    }

    /// Take `node` offline (its edges persist for when it returns).
    pub fn go_offline(&mut self, node: NodeId) {
        self.online[node.index()] = false;
    }

    /// Bring `node` back online.
    pub fn go_online(&mut self, node: NodeId) {
        self.online[node.index()] = true;
    }

    /// Ids of all online nodes.
    pub fn online_nodes(&self) -> Vec<NodeId> {
        (0..self.n())
            .filter(|&i| self.online[i])
            .map(NodeId::from_index)
            .collect()
    }

    /// A uniformly random *online* node different from `not` (if possible).
    pub fn random_online_peer<R: Rng + ?Sized>(&self, not: NodeId, rng: &mut R) -> Option<NodeId> {
        let candidates: Vec<NodeId> = (0..self.n())
            .filter(|&i| self.online[i] && i != not.index())
            .map(NodeId::from_index)
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[rng.random_range(0..candidates.len())])
        }
    }

    /// BFS connectivity over online nodes starting anywhere.
    pub fn is_connected(&self) -> bool {
        let online: Vec<usize> = (0..self.n()).filter(|&i| self.online[i]).collect();
        let Some(&start) = online.first() else {
            return true; // vacuously
        };
        let mut seen = vec![false; self.n()];
        seen[start] = true;
        let mut q = VecDeque::from([start]);
        let mut count = 1;
        while let Some(u) = q.pop_front() {
            for &v in &self.adj[u] {
                let v = v as usize;
                if self.online[v] && !seen[v] {
                    seen[v] = true;
                    count += 1;
                    q.push_back(v);
                }
            }
        }
        count == online.len()
    }

    /// BFS hop distances over online nodes from `start` (`None` where
    /// unreachable or offline).
    pub fn hop_distances(&self, start: NodeId) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.n()];
        if !self.online[start.index()] {
            return dist;
        }
        dist[start.index()] = Some(0);
        let mut q = VecDeque::from([start.index()]);
        while let Some(u) = q.pop_front() {
            let du = dist[u].expect("visited");
            for &v in &self.adj[u] {
                let v = v as usize;
                if self.online[v] && dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    q.push_back(v);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn k_out_is_symmetric_and_simple() {
        let mut rng = StdRng::seed_from_u64(1);
        let o = Overlay::random_k_out(50, 4, &mut rng);
        for i in 0..50 {
            let id = NodeId(i);
            for &j in o.neighbors(id) {
                assert_ne!(j, i, "self loop at {i}");
                assert!(o.neighbors(NodeId(j)).contains(&i), "asymmetric edge {i}-{j}");
            }
            // No duplicates.
            let mut ns = o.neighbors(id).to_vec();
            ns.sort_unstable();
            ns.dedup();
            assert_eq!(ns.len(), o.neighbors(id).len());
            assert!(o.degree(id) >= 4, "degree {} at {i}", o.degree(id));
        }
    }

    #[test]
    fn k_out_is_connected_for_reasonable_k() {
        let mut rng = StdRng::seed_from_u64(2);
        let o = Overlay::random_k_out(200, 4, &mut rng);
        assert!(o.is_connected());
    }

    #[test]
    fn power_law_has_skewed_degrees() {
        let mut rng = StdRng::seed_from_u64(3);
        let o = Overlay::power_law(500, 3, &mut rng);
        let mut degrees: Vec<usize> = (0..500).map(|i| o.degree(NodeId(i))).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = degrees.iter().sum();
        let top10: usize = degrees[..50].iter().sum();
        assert!(
            top10 as f64 / total as f64 > 0.2,
            "top-10% degree share {}",
            top10 as f64 / total as f64
        );
        assert!(o.is_connected());
    }

    #[test]
    fn offline_nodes_break_paths() {
        let mut o = Overlay::empty(3);
        o.connect(NodeId(0), NodeId(1));
        o.connect(NodeId(1), NodeId(2));
        assert!(o.is_connected());
        o.go_offline(NodeId(1));
        assert!(!o.is_connected());
        assert_eq!(o.online_nodes(), vec![NodeId(0), NodeId(2)]);
        assert!(o.online_neighbors(NodeId(0)).is_empty());
        o.go_online(NodeId(1));
        assert!(o.is_connected());
    }

    #[test]
    fn connect_rejects_loops_and_duplicates() {
        let mut o = Overlay::empty(2);
        assert!(!o.connect(NodeId(0), NodeId(0)));
        assert!(o.connect(NodeId(0), NodeId(1)));
        assert!(!o.connect(NodeId(1), NodeId(0)));
        assert_eq!(o.degree(NodeId(0)), 1);
    }

    #[test]
    fn hop_distances_are_bfs() {
        let mut o = Overlay::empty(4);
        o.connect(NodeId(0), NodeId(1));
        o.connect(NodeId(1), NodeId(2));
        let d = o.hop_distances(NodeId(0));
        assert_eq!(d[0], Some(0));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[2], Some(2));
        assert_eq!(d[3], None);
    }

    #[test]
    fn random_online_peer_excludes_self_and_offline() {
        let mut o = Overlay::empty(3);
        o.go_offline(NodeId(2));
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let p = o.random_online_peer(NodeId(0), &mut rng).unwrap();
            assert_eq!(p, NodeId(1));
        }
        o.go_offline(NodeId(1));
        assert_eq!(o.random_online_peer(NodeId(0), &mut rng), None);
    }
}
