//! # gossiptrust-xtask
//!
//! Workspace automation, `cargo xtask` style. The one subcommand that
//! matters is **`gt-lint`** (`cargo xtask lint`): a repo-specific static
//! analysis pass that machine-checks the contracts the compiler cannot
//! see — float-equality hygiene, the single env-knob surface, hash-free
//! deterministic kernels, `#![forbid(unsafe_code)]` coverage, and the ban
//! on ambient entropy. See [`rules`] for the rule set and `DESIGN.md` §8
//! for the contract rationale.
//!
//! The crate is **dependency-free by design**: the linter is the first CI
//! gate and must build and run before any of the workspace's external
//! dependencies resolve. It therefore walks token streams from its own
//! small lexer ([`lexer`]) rather than a full AST; every rule is written
//! against tokens plus just enough structure (bracket matching, attribute
//! and `cfg(test)`-module detection) to be precise on this codebase.
//!
//! Waivers live in the checked-in `lint.toml` ([`config`]): one
//! `(rule, path, reason)` triple per exception, validated strictly so
//! stale entries cannot linger.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod rules;
pub mod walk;

use config::LintConfig;
use rules::Violation;
use std::path::Path;

/// Outcome of a full lint run.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Violations that survived the waiver filter (non-empty = fail).
    pub violations: Vec<Violation>,
    /// Waivers present in lint.toml that matched no violation this run.
    /// Reported as warnings — the waiver (or the rule) has gone stale.
    pub unused_waivers: Vec<config::Waiver>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run the full gt-lint pass over the workspace at `root`.
///
/// Reads `lint.toml` at the root (absence = no waivers), scans every
/// lintable source (see [`walk::rust_sources`]), and filters violations
/// through the waiver list.
///
/// # Errors
/// Configuration problems (malformed lint.toml, waivers naming unknown
/// rules or nonexistent files) and unreadable sources are errors — a lint
/// run must never silently skip what it cannot check.
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    let config_path = root.join("lint.toml");
    let config: LintConfig = if config_path.is_file() {
        let text =
            std::fs::read_to_string(&config_path).map_err(|e| format!("reading lint.toml: {e}"))?;
        config::parse(&text)?
    } else {
        LintConfig::default()
    };
    for w in &config.waivers {
        if !root.join(&w.path).is_file() {
            return Err(format!(
                "lint.toml:{}: waiver for ({}, {}) names a file that does not exist",
                w.line, w.rule, w.path
            ));
        }
    }

    let files = walk::rust_sources(root);
    let mut violations = Vec::new();
    let mut used = vec![false; config.waivers.len()];
    for rel in &files {
        let source =
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        let tokens = lexer::tokenize(&source);
        for v in rules::check_file(rel, &tokens, rules::classify(rel)) {
            match config
                .waivers
                .iter()
                .position(|w| w.rule == v.rule && w.path == v.path)
            {
                Some(idx) => used[idx] = true,
                None => violations.push(v),
            }
        }
    }
    let unused_waivers = config
        .waivers
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(w, _)| w.clone())
        .collect();
    Ok(LintReport { violations, unused_waivers, files_scanned: files.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gt_lint_run_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("crates/k/src")).unwrap();
        fs::write(dir.join("Cargo.toml"), "[workspace]").unwrap();
        dir
    }

    #[test]
    fn clean_tree_is_clean() {
        let root = scratch("clean");
        fs::write(
            root.join("crates/k/src/lib.rs"),
            "#![forbid(unsafe_code)]\npub fn f(x: f64) -> bool { x > 0.5 }\n",
        )
        .unwrap();
        let report = run_lint(&root).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.files_scanned, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn waivers_suppress_and_stale_waivers_surface() {
        let root = scratch("waive");
        fs::write(
            root.join("crates/k/src/lib.rs"),
            "#![forbid(unsafe_code)]\npub fn f(x: f64) -> bool { x == 0.5 }\n",
        )
        .unwrap();
        // Unwaived: one float-eq violation.
        let report = run_lint(&root).unwrap();
        assert_eq!(report.violations.len(), 1);
        // Waived: clean, waiver used.
        fs::write(
            root.join("lint.toml"),
            "[[allow]]\nrule = \"float-eq\"\npath = \"crates/k/src/lib.rs\"\nreason = \"r\"\n",
        )
        .unwrap();
        let report = run_lint(&root).unwrap();
        assert!(report.is_clean());
        assert!(report.unused_waivers.is_empty());
        // Over-waived: a second waiver that matches nothing is reported.
        fs::write(
            root.join("lint.toml"),
            "[[allow]]\nrule = \"float-eq\"\npath = \"crates/k/src/lib.rs\"\nreason = \"r\"\n\
             [[allow]]\nrule = \"entropy\"\npath = \"crates/k/src/lib.rs\"\nreason = \"r\"\n",
        )
        .unwrap();
        let report = run_lint(&root).unwrap();
        assert_eq!(report.unused_waivers.len(), 1);
        assert_eq!(report.unused_waivers[0].rule, "entropy");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn waiver_for_missing_file_is_an_error() {
        let root = scratch("missing");
        fs::write(root.join("crates/k/src/lib.rs"), "#![forbid(unsafe_code)]\n").unwrap();
        fs::write(
            root.join("lint.toml"),
            "[[allow]]\nrule = \"float-eq\"\npath = \"crates/gone.rs\"\nreason = \"r\"\n",
        )
        .unwrap();
        let err = run_lint(&root).unwrap_err();
        assert!(err.contains("does not exist"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }
}
