//! The per-node gossip actor.
//!
//! Each node runs as one tokio task owning its `(x, w)` vector. A cycle
//! begins when the coordinator broadcasts `StartCycle` (carrying the dense
//! mixing prior); the node seeds from **its own** previous estimate of its
//! own score — no global state is consulted — and starts its gossip tick.
//! Every tick it halves its vector and pushes the other half (signed) to a
//! uniformly random peer. Received pushes are verified, checked against
//! the current cycle, and merged. When the node's local convergence
//! detector fires it notifies the coordinator; `EndCycle` extracts its
//! estimate.

use crate::codec::Push;
use crate::transport::Transport;
use bytes::Bytes;
use gossiptrust_crypto::{IdentityKey, SignedEnvelope, Verifier};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::sync::{mpsc, oneshot};
use tokio::time::MissedTickBehavior;

/// Coordinator → node control messages.
pub enum Control {
    /// Begin aggregation cycle `cycle` with the dense mixing prior `prior`.
    StartCycle {
        /// Cycle index (1-based).
        cycle: u32,
        /// Dense prior distribution `p` (power nodes or uniform).
        prior: Arc<Vec<f64>>,
    },
    /// Stop gossiping and report the current estimate vector.
    EndCycle {
        /// Channel for the node's estimate (x_j/w_j per component).
        reply: oneshot::Sender<Vec<f64>>,
    },
    /// Terminate the task.
    Stop,
}

/// Shared cluster counters.
#[derive(Debug, Default)]
pub struct ClusterCounters {
    /// Pushes sent by all nodes.
    pub pushes_sent: AtomicU64,
    /// Pushes rejected by signature verification.
    pub auth_failures: AtomicU64,
    /// Pushes discarded because they belonged to another cycle.
    pub stale_pushes: AtomicU64,
}

/// Static per-node configuration.
pub struct NodeConfig {
    /// This node's id.
    pub id: u32,
    /// Network size.
    pub n: usize,
    /// Greedy factor `α`.
    pub alpha: f64,
    /// Gossip threshold `ε` (relative change).
    pub epsilon: f64,
    /// Consecutive calm ticks required.
    pub patience: usize,
    /// Minimum ticks before convergence may be declared.
    pub min_ticks: usize,
    /// Tick budget per cycle (after which the node reports convergence
    /// regardless, so a pathological cycle cannot hang the cluster).
    pub max_ticks: usize,
    /// Gossip tick period.
    pub tick: Duration,
    /// This node's normalized trust row `(j, s_ij)`; empty = dangling
    /// (treated as uniform, like everywhere else in the workspace).
    pub row: Vec<(u32, f64)>,
    /// Identity signing key.
    pub key: IdentityKey,
    /// Verification capability.
    pub verifier: Verifier,
    /// RNG seed (combined with the id).
    pub seed: u64,
}

struct NodeState {
    xs: Vec<f64>,
    ws: Vec<f64>,
    prev_beta: Vec<f64>,
    streak: usize,
    ticks: usize,
    cycle: u32,
    v_own: f64,
    ticking: bool,
    notified: bool,
}

impl NodeState {
    fn extract(&self) -> Vec<f64> {
        self.xs
            .iter()
            .zip(&self.ws)
            .map(|(&x, &w)| if w > 0.0 { x / w } else { 0.0 })
            .collect()
    }
}

/// Run one node actor until `Stop`.
pub async fn run_node<T: Transport>(
    config: NodeConfig,
    transport: T,
    mut net_rx: mpsc::Receiver<Bytes>,
    mut ctrl_rx: mpsc::Receiver<Control>,
    converged_tx: mpsc::Sender<(u32, u32)>,
    counters: Arc<ClusterCounters>,
) {
    let n = config.n;
    let mut rng =
        StdRng::seed_from_u64(config.seed ^ (config.id as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let mut state = NodeState {
        xs: vec![0.0; n],
        ws: vec![0.0; n],
        prev_beta: vec![f64::NAN; n],
        streak: 0,
        ticks: 0,
        cycle: 0,
        v_own: 1.0 / n as f64,
        ticking: false,
        notified: false,
    };
    let mut interval = tokio::time::interval(config.tick);
    interval.set_missed_tick_behavior(MissedTickBehavior::Delay);

    loop {
        tokio::select! {
            ctrl = ctrl_rx.recv() => {
                match ctrl {
                    Some(Control::StartCycle { cycle, prior }) => {
                        seed(&mut state, &config, &prior, cycle);
                        interval.reset();
                    }
                    Some(Control::EndCycle { reply }) => {
                        state.ticking = false;
                        let estimate = state.extract();
                        state.v_own = estimate[config.id as usize].max(f64::MIN_POSITIVE);
                        let _ = reply.send(estimate);
                    }
                    Some(Control::Stop) | None => break,
                }
            }
            _ = interval.tick(), if state.ticking => {
                tick(&mut state, &config, &transport, &mut rng, &counters).await;
                if converged_now(&mut state, &config) && !state.notified {
                    state.notified = true;
                    let _ = converged_tx.send((config.id, state.cycle)).await;
                }
            }
            msg = net_rx.recv() => {
                match msg {
                    Some(data) => merge(&mut state, &config, &data, &counters),
                    None => break,
                }
            }
        }
    }
}

fn seed(state: &mut NodeState, config: &NodeConfig, prior: &[f64], cycle: u32) {
    let n = config.n;
    let vi = state.v_own;
    for (x, &pj) in state.xs.iter_mut().zip(prior) {
        *x = vi * config.alpha * pj;
    }
    if config.row.is_empty() {
        let share = vi * (1.0 - config.alpha) / n as f64;
        for x in state.xs.iter_mut() {
            *x += share;
        }
    } else {
        for &(j, s) in &config.row {
            state.xs[j as usize] += vi * (1.0 - config.alpha) * s;
        }
    }
    state.ws.fill(0.0);
    state.ws[config.id as usize] = 1.0;
    state.prev_beta.fill(f64::NAN);
    state.streak = 0;
    state.ticks = 0;
    state.cycle = cycle;
    state.ticking = true;
    state.notified = false;
}

async fn tick<T: Transport>(
    state: &mut NodeState,
    config: &NodeConfig,
    transport: &T,
    rng: &mut StdRng,
    counters: &ClusterCounters,
) {
    let n = config.n;
    if n < 2 {
        return;
    }
    for x in state.xs.iter_mut() {
        *x *= 0.5;
    }
    for w in state.ws.iter_mut() {
        *w *= 0.5;
    }
    let raw = rng.random_range(0..n - 1);
    let target = if raw >= config.id as usize {
        raw + 1
    } else {
        raw
    } as u32;
    let push = Push {
        sender: config.id,
        cycle: state.cycle,
        xs: state.xs.clone(),
        ws: state.ws.clone(),
    };
    let envelope = config.key.seal(&push.encode());
    counters.pushes_sent.fetch_add(1, Ordering::Relaxed);
    transport.send(target, envelope.encode()).await;
    state.ticks += 1;
}

fn merge(state: &mut NodeState, config: &NodeConfig, data: &[u8], counters: &ClusterCounters) {
    let Some(envelope) = SignedEnvelope::decode(data) else {
        counters.auth_failures.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let Some(payload) = config.verifier.open(&envelope) else {
        counters.auth_failures.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let Some(push) = Push::decode(&payload) else {
        counters.auth_failures.fetch_add(1, Ordering::Relaxed);
        return;
    };
    if push.sender != envelope.sender {
        // Payload claims a different sender than the signature: spoofing.
        counters.auth_failures.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if push.cycle != state.cycle || !state.ticking {
        counters.stale_pushes.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if push.xs.len() != state.xs.len() {
        counters.auth_failures.fetch_add(1, Ordering::Relaxed);
        return;
    }
    for (d, s) in state.xs.iter_mut().zip(&push.xs) {
        *d += s;
    }
    for (d, s) in state.ws.iter_mut().zip(&push.ws) {
        *d += s;
    }
}

fn converged_now(state: &mut NodeState, config: &NodeConfig) -> bool {
    // Budget exhaustion forces a report so the cluster barrier can't hang.
    if state.ticks >= config.max_ticks {
        return true;
    }
    let mut max_change: f64 = 0.0;
    let mut defined = true;
    for j in 0..config.n {
        let w = state.ws[j];
        if w > 0.0 {
            let beta = state.xs[j] / w;
            let prev = state.prev_beta[j];
            if prev.is_nan() {
                max_change = f64::INFINITY;
            } else {
                let denom = beta.abs().max(f64::MIN_POSITIVE);
                max_change = max_change.max((beta - prev).abs() / denom);
            }
            state.prev_beta[j] = beta;
        } else {
            defined = false;
            state.prev_beta[j] = f64::NAN;
        }
    }
    if defined && max_change <= config.epsilon {
        state.streak += 1;
    } else {
        state.streak = 0;
    }
    state.streak >= config.patience && state.ticks >= config.min_ticks
}
