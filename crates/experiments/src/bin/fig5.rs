//! Reproduce Fig. 5: query success rate of simulated P2P file sharing,
//! GossipTrust vs NoTrust, as the malicious fraction grows.

use gossiptrust_experiments::figures::fig5;
use gossiptrust_experiments::{Scale, TextTable};

fn main() {
    let scale = Scale::from_env();
    println!(
        "Fig. 5 — query success rate, n = {}, {} queries, refresh every {} ({scale:?} scale)\n",
        scale.n(),
        scale.fig5_queries(),
        scale.fig5_update_interval()
    );
    let rows = fig5(scale);
    let mut t = TextTable::new(vec![
        "system",
        "gamma",
        "success (overall)",
        "success (steady)",
        "std",
    ]);
    for r in &rows {
        t.row(vec![
            r.system.clone(),
            format!("{:.0}%", r.gamma * 100.0),
            format!("{:.3}", r.success_rate),
            format!("{:.3}", r.steady_rate),
            format!("{:.3}", r.std_rate),
        ]);
    }
    print!("{}", t.render());
    println!("\nexpected shape: GossipTrust degrades slowly (≈0.8 at γ = 20%),");
    println!("NoTrust falls roughly with the malicious fraction.");
}
