//! Whole-run lint cache keyed by a content hash.
//!
//! `cargo xtask lint` now parses and graph-analyzes every crate; the
//! cache keeps the everyday loop fast. The key is an FNV-1a hash over the
//! linter version, `lint.toml`, and the contents of every scanned file —
//! any edit anywhere changes the key. Only **clean** runs (no violations,
//! no unused or expired waivers) are recorded: a cache hit certifies
//! cleanliness, a dirty tree always re-runs in full. The record lives
//! under `target/`, so `cargo clean` clears it and it never enters the
//! repo.

use std::path::{Path, PathBuf};

/// Bump when rule semantics change, so stale clean-records die.
pub const LINT_VERSION: &str = "gt-lint-v2.0";

/// 64-bit FNV-1a.
#[derive(Clone, Copy, Debug)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv {
    /// Fold bytes into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Final hash value, hex.
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

fn cache_file(root: &Path) -> PathBuf {
    root.join("target").join("gt-lint.cache")
}

/// True if a clean run with exactly this key is recorded.
pub fn is_clean_hit(root: &Path, key: &str) -> Option<usize> {
    let text = std::fs::read_to_string(cache_file(root)).ok()?;
    let mut lines = text.lines();
    if lines.next()? != key {
        return None;
    }
    lines.next()?.parse().ok()
}

/// Record a clean run (`files_scanned` is restored on a later hit).
/// Best-effort: an unwritable target dir only costs the next run speed.
pub fn record_clean(root: &Path, key: &str, files_scanned: usize) {
    let path = cache_file(root);
    if std::fs::create_dir_all(root.join("target")).is_ok() {
        let _ = std::fs::write(path, format!("{key}\n{files_scanned}\n"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        let mut a = Fnv::default();
        a.update(b"hello");
        let mut b = Fnv::default();
        b.update(b"hell");
        b.update(b"o");
        assert_eq!(a.hex(), b.hex());
        let mut c = Fnv::default();
        c.update(b"olleh");
        assert_ne!(a.hex(), c.hex());
    }

    #[test]
    fn roundtrip_and_key_mismatch() {
        let root = std::env::temp_dir().join(format!("gt_lint_cache_{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        assert!(is_clean_hit(&root, "k1").is_none());
        record_clean(&root, "k1", 42);
        assert_eq!(is_clean_hit(&root, "k1"), Some(42));
        assert!(is_clean_hit(&root, "k2").is_none());
        let _ = fs::remove_dir_all(&root);
    }
}
