//! A lightweight item parser on top of [`crate::lexer`].
//!
//! gt-lint v2 needs just enough structure to build a call graph: which
//! functions exist (with their module path, surrounding `impl` type and
//! `async`-ness), what each body *calls*, and which `use` declarations are
//! in scope per file. This is deliberately **not** a Rust grammar — it is
//! a single forward pass over the token stream that tracks brace nesting
//! and recognizes `mod`/`impl`/`fn`/`use`/`struct`/`enum` item heads.
//!
//! Precision choices (documented in `DESIGN.md` §8):
//! - `#[cfg(test)]` modules, `#[test]`/`#[tokio::test]` functions and
//!   whole test files are skipped — the graph describes production paths.
//! - Calls made inside closures are attributed to the enclosing function,
//!   so `tokio::spawn(async move { handle(x) })` yields an edge from the
//!   spawning function to `handle`.
//! - Function-pointer types (`fn(u32)`), trait-method declarations without
//!   bodies, and macro invocations are recognized and skipped; a macro
//!   body's tokens still flow into the enclosing function's call list,
//!   which errs on the side of more edges, never fewer.

use crate::lexer::{Token, TokenKind};

/// One call site inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Call {
    /// Path segments as written, minus `crate`/`self`/`super` prefixes:
    /// `Stopwatch::start` → `["Stopwatch", "start"]`; a bare `helper()` →
    /// `["helper"]`; a method call `.record(…)` → `["record"]`.
    pub segments: Vec<String>,
    /// True for `.name(…)` method-call syntax.
    pub is_method: bool,
    /// 1-based source line of the call.
    pub line: u32,
}

/// One `fn` item (free function, inherent or trait method).
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Inline `mod` path inside the file (the file's own module position
    /// is carried by [`ParsedFile::module`]).
    pub module: Vec<String>,
    /// Enclosing `impl` self-type (last path segment), if any.
    pub impl_type: Option<String>,
    /// Declared `async`.
    pub is_async: bool,
    /// Carries a `#[cfg(feature = …)]`-style gate (directly or via the
    /// enclosing item). Such functions stay in the graph but are exempt
    /// from panic-site scanning: feature-gated invariant checks exist to
    /// panic.
    pub cfg_gated: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range `[open, close]` of the body braces, inclusive.
    pub body: (usize, usize),
    /// Every call site found in the body (closures included).
    pub calls: Vec<Call>,
}

/// Parse result for one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Repo-relative `/`-separated path.
    pub rel: String,
    /// Module path of the file itself within its crate (`engine.rs` →
    /// `["engine"]`, `lib.rs`/`main.rs` → `[]`, nested dirs included).
    pub module: Vec<String>,
    /// Flattened `use` paths, each ending in the imported (or `as`-renamed)
    /// name; glob imports record the path ending in `*`.
    pub uses: Vec<Vec<String>>,
    /// Names of `struct`/`enum` types declared in the file.
    pub types: Vec<String>,
    /// All functions found.
    pub fns: Vec<FnItem>,
}

/// Keywords that can never be a call target.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "Self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "async"
            | "await"
    )
}

/// Attribute summary for the item that follows it.
#[derive(Clone, Copy, Debug, Default)]
struct Attrs {
    cfg_test: bool,
    test_fn: bool,
    cfg_gated: bool,
}

struct Parser<'a> {
    tokens: &'a [Token],
    out: ParsedFile,
}

/// Derive the file's module path from its repo-relative location.
fn file_module(rel: &str) -> Vec<String> {
    let Some(tail) = rel
        .split_once("/src/")
        .map(|(_, t)| t)
        .or_else(|| rel.strip_prefix("src/"))
    else {
        // tests/benches/examples: each file is its own root module.
        return Vec::new();
    };
    let mut parts: Vec<String> = tail.split('/').map(str::to_string).collect();
    if let Some(last) = parts.last_mut() {
        *last = last.trim_end_matches(".rs").to_string();
    }
    match parts.last().map(String::as_str) {
        Some("lib") | Some("main") | Some("mod") => {
            parts.pop();
        }
        _ => {}
    }
    parts
}

/// Parse one tokenized file into its item skeleton.
pub fn parse_file(rel: &str, tokens: &[Token]) -> ParsedFile {
    let mut p = Parser {
        tokens,
        out: ParsedFile { rel: rel.to_string(), module: file_module(rel), ..Default::default() },
    };
    let mut i = 0usize;
    p.items(&mut i, tokens.len(), &[], None, false, None);
    p.out
}

impl Parser<'_> {
    fn tok(&self, i: usize) -> Option<&Token> {
        self.tokens.get(i)
    }

    /// Token index just past the matching close bracket for `open` at `i`
    /// (or `end` if unbalanced).
    fn skip_balanced(&self, i: usize, end: usize, open: &str, close: &str) -> usize {
        let mut depth = 0usize;
        let mut k = i;
        while k < end {
            if let Some(t) = self.tok(k) {
                if t.is_punct(open) {
                    depth += 1;
                } else if t.is_punct(close) {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return k + 1;
                    }
                }
            }
            k += 1;
        }
        end
    }

    /// Consume one `#[…]` attribute at `i`, folding its meaning into
    /// `attrs`. Returns the index just past it.
    fn attribute(&self, i: usize, end: usize, attrs: &mut Attrs) -> usize {
        let close = self.skip_balanced(i + 1, end, "[", "]");
        let body = &self.tokens[i + 2..close.saturating_sub(1).min(end)];
        let has = |name: &str| body.iter().any(|t| t.is_ident(name));
        if has("cfg") && has("test") {
            attrs.cfg_test = true;
        }
        if has("cfg") && (has("feature") || has("debug_assertions")) {
            attrs.cfg_gated = true;
        }
        // `#[test]`, `#[tokio::test]`, `#[bench]`, `#[proptest]` — a body
        // that *is* a test entry point.
        if body
            .first()
            .is_some_and(|t| t.is_ident("test") || t.is_ident("bench"))
            || (has("tokio") && has("test"))
            || body.first().is_some_and(|t| t.is_ident("proptest"))
        {
            attrs.test_fn = true;
        }
        close
    }

    /// Parse items in `[*i, end)`; `end` is one past the region (the body
    /// close brace of the enclosing scope, or the token count at top
    /// level). Updates `*i` to `end`.
    #[allow(clippy::too_many_arguments)]
    fn items(
        &mut self,
        i: &mut usize,
        end: usize,
        module: &[String],
        impl_type: Option<&str>,
        cfg_gated: bool,
        in_fn: Option<usize>,
    ) {
        let mut attrs = Attrs::default();
        while *i < end {
            let Some(t) = self.tok(*i) else { break };
            let t = t.clone();
            // Attributes (outer `#[…]`; inner `#![…]` is skipped whole).
            if t.is_punct("#") {
                if self.tok(*i + 1).is_some_and(|n| n.is_punct("!")) {
                    *i = self.skip_balanced(*i + 2, end, "[", "]");
                } else if self.tok(*i + 1).is_some_and(|n| n.is_punct("[")) {
                    *i = self.attribute(*i, end, &mut attrs);
                } else {
                    *i += 1;
                }
                continue;
            }
            if t.kind == TokenKind::Ident {
                match t.text.as_str() {
                    // A failed guard falls through to the same plain
                    // descent as any other token.
                    "mod" if self.item_mod(i, end, module, cfg_gated, attrs) => {
                        attrs = Attrs::default();
                        continue;
                    }
                    "impl" if self.item_impl(i, end, module, cfg_gated || attrs.cfg_gated) => {
                        attrs = Attrs::default();
                        continue;
                    }
                    "fn" if self.item_fn(i, end, module, impl_type, cfg_gated, attrs) => {
                        attrs = Attrs::default();
                        continue;
                    }
                    "use" => {
                        self.item_use(i, end);
                        attrs = Attrs::default();
                        continue;
                    }
                    "struct" | "enum" | "trait" => {
                        if let Some(name) = self.tok(*i + 1).filter(|n| n.kind == TokenKind::Ident)
                        {
                            if t.text != "trait" {
                                self.out.types.push(name.text.clone());
                            }
                        }
                        *i += 1;
                        attrs = Attrs::default();
                        continue;
                    }
                    _ => {}
                }
                // Inside a function body: record calls.
                if let Some(fn_idx) = in_fn {
                    if let Some(next) = self.body_token(*i, fn_idx) {
                        *i = next;
                        attrs = Attrs::default();
                        continue;
                    }
                }
            }
            // Any other token: plain descent. Braces inside bodies or item
            // regions are handled by the recursive calls above; here we
            // just advance. Visibility qualifiers between an attribute and
            // its item (`#[cfg(test)] pub mod …`) keep the pending attrs.
            let keeps_attrs = (t.kind == TokenKind::Ident
                && matches!(
                    t.text.as_str(),
                    "pub"
                        | "const"
                        | "unsafe"
                        | "async"
                        | "extern"
                        | "crate"
                        | "super"
                        | "self"
                        | "in"
                ))
                || t.is_punct("(")
                || t.is_punct(")")
                || t.kind == TokenKind::Str;
            *i += 1;
            if !keeps_attrs {
                attrs = Attrs::default();
            }
        }
        *i = end;
    }

    /// `mod name { … }` / `mod name;`. Returns true if consumed.
    fn item_mod(
        &mut self,
        i: &mut usize,
        end: usize,
        module: &[String],
        cfg_gated: bool,
        attrs: Attrs,
    ) -> bool {
        let Some(name) = self.tok(*i + 1).filter(|n| n.kind == TokenKind::Ident) else {
            return false;
        };
        let name = name.text.clone();
        let mut k = *i + 2;
        while k < end && !self.tok(k).is_some_and(|t| t.is_punct("{") || t.is_punct(";")) {
            k += 1;
        }
        if self.tok(k).is_some_and(|t| t.is_punct(";")) {
            *i = k + 1;
            return true;
        }
        if !self.tok(k).is_some_and(|t| t.is_punct("{")) {
            return false;
        }
        let body_end = self.skip_balanced(k, end, "{", "}");
        if attrs.cfg_test {
            *i = body_end; // skip test modules entirely
            return true;
        }
        let mut inner = module.to_vec();
        inner.push(name);
        let mut j = k + 1;
        self.items(
            &mut j,
            body_end.saturating_sub(1),
            &inner,
            None,
            cfg_gated || attrs.cfg_gated,
            None,
        );
        *i = body_end;
        true
    }

    /// `impl … { … }`. Returns true if consumed. `-> impl Trait` inside
    /// signatures never reaches here because signatures are consumed by
    /// [`Self::item_fn`].
    fn item_impl(&mut self, i: &mut usize, end: usize, module: &[String], cfg_gated: bool) -> bool {
        // Find the body `{`, skipping generics (`<…>` may nest).
        let mut k = *i + 1;
        let mut angle = 0i32;
        let mut trait_path: Vec<String> = Vec::new();
        let mut for_path: Vec<String> = Vec::new();
        let mut saw_for = false;
        let mut saw_where = false;
        while k < end {
            let Some(t) = self.tok(k) else { return false };
            match (&t.kind, t.text.as_str()) {
                (TokenKind::Punct, "<") => angle += 1,
                (TokenKind::Punct, "<<") => angle += 2,
                (TokenKind::Punct, ">") => angle -= 1,
                (TokenKind::Punct, ">>") => angle -= 2,
                (TokenKind::Punct, "{") if angle <= 0 => break,
                (TokenKind::Punct, ";") if angle <= 0 => {
                    *i = k + 1;
                    return true;
                }
                (TokenKind::Ident, "for") if angle <= 0 => saw_for = true,
                (TokenKind::Ident, "where") if angle <= 0 => saw_where = true,
                (TokenKind::Ident, id) if angle <= 0 && !is_keyword(id) && !saw_where => {
                    if saw_for {
                        for_path.push(id.to_string());
                    } else {
                        trait_path.push(id.to_string());
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if !self.tok(k).is_some_and(|t| t.is_punct("{")) {
            return false;
        }
        // Self type = the `for`-side when present (trait impl), else the
        // inherent path; its last path segment names the type. Generic
        // params inside `<…>` and everything after `where` are excluded.
        let self_ty = if saw_for {
            for_path.last().cloned()
        } else {
            trait_path.last().cloned()
        };
        let body_end = self.skip_balanced(k, end, "{", "}");
        let mut j = k + 1;
        let module = module.to_vec();
        self.items(
            &mut j,
            body_end.saturating_sub(1),
            &module,
            self_ty.as_deref(),
            cfg_gated,
            None,
        );
        *i = body_end;
        true
    }

    /// `fn name(… ) … { … }`. Returns true if consumed.
    fn item_fn(
        &mut self,
        i: &mut usize,
        end: usize,
        module: &[String],
        impl_type: Option<&str>,
        cfg_gated: bool,
        attrs: Attrs,
    ) -> bool {
        let Some(name_tok) = self.tok(*i + 1).filter(|n| n.kind == TokenKind::Ident) else {
            // `fn(…)` pointer type or malformed — not a definition.
            *i += 1;
            return true;
        };
        let name = name_tok.text.clone();
        let line = self.tokens[*i].line;
        // `async` appears among the qualifiers just before `fn`.
        let mut is_async = false;
        let mut back = *i;
        while back > 0 {
            back -= 1;
            let Some(q) = self.tok(back) else { break };
            let qualifier = (q.kind == TokenKind::Ident
                && matches!(
                    q.text.as_str(),
                    "pub"
                        | "const"
                        | "unsafe"
                        | "async"
                        | "extern"
                        | "crate"
                        | "super"
                        | "in"
                        | "self"
                ))
                || q.is_punct("(")
                || q.is_punct(")")
                || q.kind == TokenKind::Str;
            if !qualifier {
                break;
            }
            if q.is_ident("async") {
                is_async = true;
            }
        }
        // Consume the signature: everything up to the body `{` or a `;`
        // (trait declaration). `-> impl Trait`, generics and where-clauses
        // carry no braces, so the first brace at angle depth ≤ 0 is the body.
        let mut k = *i + 2;
        let mut angle = 0i32;
        while k < end {
            let Some(t) = self.tok(k) else { break };
            match (&t.kind, t.text.as_str()) {
                (TokenKind::Punct, "<") => angle += 1,
                (TokenKind::Punct, "<<") => angle += 2,
                (TokenKind::Punct, ">") => angle -= 1,
                (TokenKind::Punct, ">>") => angle -= 2,
                (TokenKind::Punct, "{") => break,
                (TokenKind::Punct, ";") if angle <= 0 => {
                    *i = k + 1; // bodyless trait method
                    return true;
                }
                _ => {}
            }
            k += 1;
        }
        if !self.tok(k).is_some_and(|t| t.is_punct("{")) {
            *i = k;
            return true;
        }
        let body_end = self.skip_balanced(k, end, "{", "}");
        if attrs.test_fn || attrs.cfg_test {
            *i = body_end; // test functions contribute no graph nodes
            return true;
        }
        let fn_idx = self.out.fns.len();
        self.out.fns.push(FnItem {
            name,
            module: module.to_vec(),
            impl_type: impl_type.map(str::to_string),
            is_async,
            cfg_gated: cfg_gated || attrs.cfg_gated,
            line,
            body: (k, body_end.saturating_sub(1)),
            calls: Vec::new(),
        });
        let mut j = k + 1;
        let module = module.to_vec();
        self.items(&mut j, body_end.saturating_sub(1), &module, impl_type, cfg_gated, Some(fn_idx));
        *i = body_end;
        true
    }

    /// `use a::{b, c::d as e};` — flatten into leaf paths.
    fn item_use(&mut self, i: &mut usize, end: usize) {
        let mut k = *i + 1;
        let mut stack: Vec<Vec<String>> = vec![Vec::new()];
        let mut current: Vec<String> = Vec::new();
        let flush =
            |stack: &[Vec<String>], current: &mut Vec<String>, out: &mut Vec<Vec<String>>| {
                if current.is_empty() {
                    return;
                }
                let mut full: Vec<String> = stack.iter().flatten().cloned().collect();
                full.append(current);
                out.push(full);
            };
        let mut uses = Vec::new();
        while k < end {
            let Some(t) = self.tok(k) else { break };
            match (&t.kind, t.text.as_str()) {
                (TokenKind::Punct, ";") => {
                    k += 1;
                    break;
                }
                (TokenKind::Punct, "{") => {
                    stack.push(std::mem::take(&mut current));
                }
                (TokenKind::Punct, "}") => {
                    flush(&stack, &mut current, &mut uses);
                    stack.pop();
                }
                (TokenKind::Punct, ",") => flush(&stack, &mut current, &mut uses),
                (TokenKind::Punct, "*") => current.push("*".to_string()),
                (TokenKind::Ident, "as") => {
                    // `x as y`: drop x's last segment, keep y instead.
                    if let Some(next) = self.tok(k + 1).filter(|n| n.kind == TokenKind::Ident) {
                        let renamed = next.text.clone();
                        current.pop();
                        current.push(renamed);
                        k += 1;
                    }
                }
                (TokenKind::Ident, id) if !matches!(id, "crate" | "self" | "super" | "pub") => {
                    current.push(id.to_string());
                }
                _ => {}
            }
            k += 1;
        }
        flush(&stack, &mut current, &mut uses);
        self.out.uses.append(&mut uses);
        *i = k;
    }

    /// Try to read a call starting at identifier index `i` inside a fn
    /// body; on success, push it and return the index to continue from.
    fn body_token(&mut self, i: usize, fn_idx: usize) -> Option<usize> {
        let t = self.tok(i)?;
        if t.kind != TokenKind::Ident || (is_keyword(&t.text) && t.text != "Self") {
            // Method call / `.await` is keyed off the preceding `.`;
            // handle it when we *land* on the ident after a dot, below.
            return None;
        }
        // Method call: `.name(` — previous token is `.`.
        let after_dot = i > 0 && self.tok(i - 1).is_some_and(|p| p.is_punct("."));
        if after_dot {
            let mut k = i + 1;
            // optional turbofish `::<…>`
            if self.tok(k).is_some_and(|t| t.is_punct("::"))
                && self.tok(k + 1).is_some_and(|t| t.is_punct("<"))
            {
                k = self.skip_balanced_angles(k + 1);
            }
            if self.tok(k).is_some_and(|t| t.is_punct("(")) {
                let line = t.line;
                let name = t.text.clone();
                self.out.fns[fn_idx].calls.push(Call {
                    segments: vec![name],
                    is_method: true,
                    line,
                });
                return Some(i + 1);
            }
            return None;
        }
        // Path call: `A::B::name(` (or bare `name(`), not a macro `name!(`.
        let mut segments = vec![t.text.clone()];
        let line = t.line;
        let mut k = i + 1;
        loop {
            if self.tok(k).is_some_and(|t| t.is_punct("::")) {
                if self.tok(k + 1).is_some_and(|t| t.is_punct("<")) {
                    // turbofish before the final `(`
                    k = self.skip_balanced_angles(k + 1);
                    break;
                }
                if let Some(seg) = self.tok(k + 1).filter(|n| n.kind == TokenKind::Ident) {
                    segments.push(seg.text.clone());
                    k += 2;
                    continue;
                }
            }
            break;
        }
        if self.tok(k).is_some_and(|t| t.is_punct("!")) {
            return None; // macro invocation
        }
        if !self.tok(k).is_some_and(|t| t.is_punct("(")) {
            return None;
        }
        // Drop relative-path prefixes; `Self` is kept for the resolver.
        segments.retain(|s| !matches!(s.as_str(), "crate" | "self" | "super"));
        if segments.is_empty() || segments.iter().any(|s| s != "Self" && is_keyword(s)) {
            return None;
        }
        self.out.fns[fn_idx]
            .calls
            .push(Call { segments, is_method: false, line });
        Some(k)
    }

    /// `i` points at `<`; return the index just past the matching `>`.
    fn skip_balanced_angles(&self, i: usize) -> usize {
        let mut depth = 0i32;
        let mut k = i;
        while let Some(t) = self.tok(k) {
            match t.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            k += 1;
            if depth <= 0 {
                break;
            }
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/k/src/lib.rs", &tokenize(src))
    }

    #[test]
    fn extracts_free_fns_and_calls() {
        let f = parse("pub fn a() { b(); c::d(); }\nfn b() {}\n");
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "a");
        assert_eq!(f.fns[0].calls.len(), 2);
        assert_eq!(f.fns[0].calls[0].segments, vec!["b"]);
        assert_eq!(f.fns[0].calls[1].segments, vec!["c", "d"]);
        assert!(!f.fns[0].calls[0].is_method);
    }

    #[test]
    fn extracts_impl_methods_and_method_calls() {
        let f = parse("struct S; impl S { fn m(&self) { self.n(); } fn n(&self) {} }");
        assert_eq!(f.types, vec!["S"]);
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].impl_type.as_deref(), Some("S"));
        assert_eq!(f.fns[0].calls.len(), 1);
        assert!(f.fns[0].calls[0].is_method);
        assert_eq!(f.fns[0].calls[0].segments, vec!["n"]);
    }

    #[test]
    fn trait_impl_uses_the_self_type() {
        let f = parse("impl<T: Clone> Display for Wrapper<T> { fn fmt(&self) {} }");
        assert_eq!(f.fns[0].impl_type.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn modules_nest_and_test_modules_are_skipped() {
        let f = parse(
            "mod a { mod b { fn deep() {} } }\n#[cfg(test)] mod tests { fn t() { boom(); } }",
        );
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].module, vec!["a", "b"]);
    }

    #[test]
    fn test_fns_and_cfg_gates_are_tracked() {
        let f = parse(
            "#[test] fn t() {}\n#[cfg(feature = \"invariants\")] fn gated() {}\nasync fn go() {}",
        );
        assert_eq!(f.fns.len(), 2);
        assert!(f.fns[0].cfg_gated);
        assert_eq!(f.fns[1].name, "go");
        assert!(f.fns[1].is_async);
    }

    #[test]
    fn closures_attribute_calls_to_the_enclosing_fn() {
        let f = parse("fn spawner() { spawn(move || { helper(1) }); }");
        let segs: Vec<_> = f.fns[0].calls.iter().map(|c| c.segments.join("::")).collect();
        assert!(segs.contains(&"spawn".to_string()));
        assert!(segs.contains(&"helper".to_string()));
    }

    #[test]
    fn macros_are_not_calls_but_their_args_are_scanned() {
        let f = parse("fn f() { println!(\"{}\", compute()); }");
        let segs: Vec<_> = f.fns[0].calls.iter().map(|c| c.segments.join("::")).collect();
        assert_eq!(segs, vec!["compute"]);
    }

    #[test]
    fn use_declarations_flatten() {
        let f = parse("use a::b::C;\nuse x::{y, z::w as v};\nfn f() {}");
        assert!(f.uses.contains(&vec!["a".into(), "b".into(), "C".into()]));
        assert!(f.uses.contains(&vec!["x".into(), "y".into()]));
        assert!(f.uses.contains(&vec!["x".into(), "z".into(), "v".into()]));
    }

    #[test]
    fn fn_pointer_types_and_trait_decls_are_not_items() {
        let f = parse("fn hof(cb: fn(u32) -> u32) -> u32 { cb(1) }\ntrait T { fn decl(&self); }");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "hof");
    }

    #[test]
    fn impl_trait_return_types_parse() {
        let f = parse("fn make() -> impl Iterator<Item = u32> { inner() } fn inner() {}");
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].calls[0].segments, vec!["inner"]);
    }

    #[test]
    fn turbofish_calls_are_recognized() {
        let f = parse("fn f() { parse::<u32>(); v.collect::<Vec<_>>(); }");
        let names: Vec<_> = f.fns[0].calls.iter().map(|c| c.segments.join("::")).collect();
        assert!(names.contains(&"parse".to_string()));
        assert!(names.contains(&"collect".to_string()));
    }

    #[test]
    fn file_module_paths() {
        assert_eq!(file_module("crates/gossip/src/engine.rs"), vec!["engine"]);
        assert!(file_module("crates/gossip/src/lib.rs").is_empty());
        assert_eq!(
            file_module("crates/a/src/sub/inner.rs"),
            vec!["sub".to_string(), "inner".to_string()]
        );
        assert!(file_module("crates/a/tests/t.rs").is_empty());
    }
}
