//! Replay a Zipf query mix against an in-process reputation service and
//! write `BENCH_service.json` (queries/sec, p50/p99 latency, epoch wall
//! time).
//!
//! ```text
//! cargo run --release -p gossiptrust-serve --bin loadgen
//! ```
//!
//! Set `GT_BENCH_QUICK=1` for a seconds-long smoke pass at reduced size
//! (recorded as such in the JSON). `GT_N` overrides the population. The
//! JSON records the measuring machine's core count the same way
//! `BENCH_engine.json` does.

use gossiptrust_core::id::NodeId;
use gossiptrust_core::params::{bench_quick, network_size_override};
use gossiptrust_serve::loadgen::{report_json, run, LoadConfig};
use gossiptrust_serve::service::{ReputationService, ServiceConfig};
use gossiptrust_workloads::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let quick = bench_quick();
    let default_n: usize = if quick { 120 } else { 1_000 };
    let n = network_size_override().unwrap_or(default_n);
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    let service = ReputationService::start(ServiceConfig::new(n).with_seed(7));
    let handle = service.handle();

    // Seed a power-law feedback graph: every peer rates ~8 Zipf-popular
    // targets, so the first epoch aggregates a realistic skewed matrix.
    let zipf = Zipf::new(n, 0.8);
    let mut rng = StdRng::seed_from_u64(11);
    for rater in 0..n {
        for _ in 0..8 {
            let target = zipf.sample(&mut rng) - 1;
            if target != rater {
                handle
                    .record(
                        NodeId::from_index(rater),
                        NodeId::from_index(target),
                        1.0 + rng.random::<f64>(),
                    )
                    .expect("seeded ids are in range");
            }
        }
    }
    let first = handle.run_epoch_now().expect("epoch loop alive");
    println!(
        "seeded epoch 1: published = {}, cycles = {}, wall = {:.1} ms",
        first.published, first.cycles, first.wall_ms
    );

    let config = LoadConfig {
        queries: if quick { 5_000 } else { 200_000 },
        epoch_every: if quick { 2_000 } else { 50_000 },
        ..LoadConfig::default()
    };
    let report = run(&handle, &config);
    println!(
        "n={n}  {} queries ({} writes, {} epochs)  {:.0} q/s  p50 = {:.1} µs  p99 = {:.1} µs  epoch = {:.1} ms  ({} retries, {} gave up, {} shed)",
        report.queries,
        report.writes,
        report.epochs,
        report.queries_per_sec,
        report.p50_us,
        report.p99_us,
        report.epoch_wall_ms,
        report.retries,
        report.gave_up,
        report.stats.requests_shed
    );

    let mut json = report_json(&report, n, cores, quick);
    json.push('\n');
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("wrote BENCH_service.json");

    // The full Prometheus exposition as measured during the run — the same
    // text a live `GT_METRICS_ADDR` scrape would have returned; CI uploads
    // it as an artifact next to the bench JSON.
    std::fs::write("METRICS_service.prom", handle.metrics_text())
        .expect("write METRICS_service.prom");
    println!("wrote METRICS_service.prom");
    service.shutdown();
}
