//! Ablation: accuracy under peer churn (async sim).

use gossiptrust_experiments::ablations::churn_resilience;
use gossiptrust_experiments::{Scale, TextTable};

fn main() {
    let scale = Scale::from_env();
    println!("Ablation — churn resilience ({scale:?} scale)\n");
    let rows = churn_resilience(scale);
    let mut t = TextTable::new(vec!["availability", "mean rel error", "converged fraction"]);
    for r in &rows {
        t.row(vec![
            format!("{:.3}", r.availability),
            format!("{:.2e}", r.mean_rel_error),
            format!("{:.2}", r.converged_fraction),
        ]);
    }
    print!("{}", t.render());
}
