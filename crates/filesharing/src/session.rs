//! The file-sharing experiment driver (§6.4).
//!
//! A session wires together the peer population (with its threat model),
//! the file catalog, the unstructured overlay, and the query workload. At
//! each step "a query is randomly generated at a peer and completely
//! executed before the next query step": the query floods the overlay, the
//! requester downloads from a holder picked by the configured
//! [`SelectionPolicy`], the outcome (authentic or not) is determined by the
//! provider's intrinsic behavior, and feedback is recorded per the
//! requester's kind. "The system updates global reputation scores at all
//! sites after 1,000 queries."

use crate::flooding::flood_search;
use crate::objects::{ObjectRepConfig, ObjectReputation};
use crate::selection::SelectionPolicy;
use gossiptrust_core::id::NodeId;
use gossiptrust_core::local::LocalTrust;
use gossiptrust_core::matrix::TrustMatrix;
use gossiptrust_core::params::Params;
use gossiptrust_core::power_iter::PowerIteration;
use gossiptrust_core::power_nodes::{PowerNodeSelector, Prior};
use gossiptrust_core::vector::ReputationVector;
use gossiptrust_gossip::cycle::{GossipTrustAggregator, PriorPolicy};
use gossiptrust_gossip::UniformChooser;
use gossiptrust_simnet::topology::Overlay;
use gossiptrust_workloads::files::FileCatalog;
use gossiptrust_workloads::population::{PeerKind, Population};
use gossiptrust_workloads::queries::QueryWorkload;
use gossiptrust_workloads::saroiu::SaroiuFiles;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How global reputation scores are recomputed at each refresh.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReputationBackend {
    /// Centralized exact power iteration (fast oracle; used to isolate the
    /// selection-policy effect from gossip noise).
    Exact,
    /// Full distributed gossip aggregation (the real GossipTrust pipeline).
    Gossip,
    /// Never update — scores stay uniform. Combined with
    /// [`SelectionPolicy::Random`] this is the paper's *NoTrust* system.
    None,
}

/// Session configuration.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Reputation-system parameters (`α`, thresholds, power-node budget).
    pub params: Params,
    /// Source-selection policy.
    pub selection: SelectionPolicy,
    /// Reputation refresh backend.
    pub backend: ReputationBackend,
    /// Queries between reputation refreshes (paper: 1000).
    pub update_interval: usize,
    /// Number of files in the catalog (paper: > 100 000).
    pub num_files: usize,
    /// Flood TTL in hops (`usize::MAX` floods the whole network).
    pub flood_ttl: usize,
    /// Overlay out-degree for the random `k`-out topology.
    pub overlay_degree: usize,
    /// Extra fake positive feedback each collusive peer injects for each
    /// group mate at every refresh window (reputation-boost spam).
    pub collusion_spam: f64,
    /// Copy-level object-reputation filtering (§7 extension); `None`
    /// disables it.
    pub object_reputation: Option<ObjectRepConfig>,
    /// Probability a requester ignores the policy and downloads from a
    /// uniformly random holder. EigenTrust's simulations use the same 10%
    /// exploration to distribute load and keep fresh feedback flowing to
    /// unrated peers; without it, pure argmax selection can lock onto a
    /// briefly-top-scored malicious peer (only malicious raters reward bad
    /// service, so the victim cluster stops producing counter-evidence).
    pub exploration: f64,
}

impl SessionConfig {
    /// The paper's GossipTrust configuration for an `n`-peer network
    /// (power-node budget per Table 2's "1% of n" rule).
    pub fn gossiptrust(params: Params) -> Self {
        SessionConfig {
            params,
            selection: SelectionPolicy::HighestReputation,
            backend: ReputationBackend::Gossip,
            update_interval: 1000,
            num_files: 100_000,
            flood_ttl: usize::MAX,
            overlay_degree: 4,
            collusion_spam: 5.0,
            object_reputation: None,
            exploration: 0.10,
        }
    }

    /// The paper's NoTrust baseline for the same network.
    pub fn notrust(params: Params) -> Self {
        SessionConfig {
            selection: SelectionPolicy::Random,
            backend: ReputationBackend::None,
            ..SessionConfig::gossiptrust(params)
        }
    }

    /// Scale file counts and windows down for unit tests.
    pub fn scaled_down(mut self, num_files: usize, update_interval: usize) -> Self {
        self.num_files = num_files;
        self.update_interval = update_interval;
        self
    }

    /// Builder-style backend override.
    pub fn with_backend(mut self, backend: ReputationBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Enable copy-level object reputation (§7 extension).
    pub fn with_object_reputation(mut self, config: ObjectRepConfig) -> Self {
        self.object_reputation = Some(config);
        self
    }
}

/// Statistics of one refresh window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Queries issued in the window.
    pub queries: usize,
    /// Authentic downloads.
    pub successes: usize,
    /// Queries whose flood found no (other) holder.
    pub no_holder: usize,
}

impl WindowStats {
    /// Success rate within this window.
    pub fn success_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.successes as f64 / self.queries as f64
        }
    }
}

/// Full session report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SessionReport {
    /// Total queries issued.
    pub queries: usize,
    /// Total authentic downloads.
    pub successes: usize,
    /// Queries with inauthentic downloads.
    pub inauthentic: usize,
    /// Queries that found no holder.
    pub no_holder: usize,
    /// Flood messages generated.
    pub flood_messages: u64,
    /// Reputation refreshes performed.
    pub reputation_updates: usize,
    /// Per-window learning curve.
    pub windows: Vec<WindowStats>,
}

impl SessionReport {
    /// Overall query success rate (the paper's Fig. 5 metric).
    pub fn success_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.successes as f64 / self.queries as f64
        }
    }

    /// Success rate over the final `k` windows (steady state after the
    /// reputation system has learned).
    pub fn steady_state_success_rate(&self, k: usize) -> f64 {
        let tail: Vec<&WindowStats> = self.windows.iter().rev().take(k).collect();
        let q: usize = tail.iter().map(|w| w.queries).sum();
        let s: usize = tail.iter().map(|w| w.successes).sum();
        if q == 0 {
            0.0
        } else {
            s as f64 / q as f64
        }
    }
}

/// A running file-sharing experiment.
pub struct FileSharingSession {
    population: Population,
    catalog: FileCatalog,
    overlay: Overlay,
    workload: QueryWorkload,
    config: SessionConfig,
    trust_rows: Vec<LocalTrust>,
    reputation: ReputationVector,
    objects: ObjectReputation,
    selector: PowerNodeSelector,
    report: SessionReport,
    window: WindowStats,
    queries_in_window: usize,
}

impl FileSharingSession {
    /// Build a session: generates the catalog, overlay and workload from
    /// `rng` for the given `population`.
    pub fn new<R: Rng + ?Sized>(
        population: Population,
        config: SessionConfig,
        rng: &mut R,
    ) -> Self {
        let n = population.n();
        assert!(n >= 2, "session needs at least two peers");
        assert!(config.update_interval >= 1, "update interval must be positive");
        let catalog = FileCatalog::generate(n, config.num_files, 1.2, &SaroiuFiles::default(), rng);
        let overlay = Overlay::random_k_out(n, config.overlay_degree, rng);
        let workload = QueryWorkload::new(n, config.num_files);
        let selector = PowerNodeSelector::new(config.params.max_power_nodes);
        FileSharingSession {
            population,
            catalog,
            overlay,
            workload,
            config,
            trust_rows: vec![LocalTrust::new(); n],
            reputation: ReputationVector::uniform(n),
            objects: ObjectReputation::new(),
            selector,
            report: SessionReport {
                queries: 0,
                successes: 0,
                inauthentic: 0,
                no_holder: 0,
                flood_messages: 0,
                reputation_updates: 0,
                windows: Vec::new(),
            },
            window: WindowStats::default(),
            queries_in_window: 0,
        }
    }

    /// Current global reputation vector.
    pub fn reputation(&self) -> &ReputationVector {
        &self.reputation
    }

    /// The population driving this session.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Execute `count` queries (reputation refreshes happen inline each
    /// time the window fills).
    pub fn run_queries<R: Rng + ?Sized>(&mut self, count: usize, rng: &mut R) {
        for _ in 0..count {
            self.process_one(rng);
            self.queries_in_window += 1;
            if self.queries_in_window >= self.config.update_interval {
                self.close_window(rng);
            }
        }
    }

    /// Finish the session: closes the open window and returns the report.
    pub fn finish<R: Rng + ?Sized>(mut self, rng: &mut R) -> SessionReport {
        if self.window.queries > 0 {
            self.close_window(rng);
        }
        self.report
    }

    fn process_one<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let q = self.workload.sample(rng);
        self.report.queries += 1;
        self.window.queries += 1;

        let flood =
            flood_search(&self.overlay, &self.catalog, q.requester, q.file, self.config.flood_ttl);
        self.report.flood_messages += flood.messages;
        if flood.holders.is_empty() {
            self.report.no_holder += 1;
            self.window.no_holder += 1;
            return;
        }
        // Local hit: the requester already holds an authentic copy.
        if flood.holders == [q.requester] {
            self.report.successes += 1;
            self.window.successes += 1;
            return;
        }
        let policy =
            if self.config.exploration > 0.0 && rng.random::<f64>() < self.config.exploration {
                SelectionPolicy::Random
            } else {
                self.config.selection
            };
        // Copy-level object-reputation filter (when enabled): skip copies
        // the community has voted fake.
        let object_filtered: Vec<NodeId> = match &self.config.object_reputation {
            Some(cfg) => self.objects.filter_holders(q.file, &flood.holders, cfg),
            None => flood.holders.clone(),
        };
        // Local avoidance: skip holders this requester has personally
        // caught cheating (net-negative satisfaction balance). Global
        // reputation can lag or be gamed; first-hand evidence cannot.
        // Fall back to the full holder set if everyone is blacklisted.
        let requester_row = &self.trust_rows[q.requester.index()];
        let acceptable: Vec<NodeId> = object_filtered
            .iter()
            .copied()
            .filter(|&h| requester_row.satisfaction_balance(h) >= 0)
            .collect();
        let pool = if acceptable.is_empty() {
            &object_filtered
        } else {
            &acceptable
        };
        let provider = policy.select(pool, q.requester, &self.reputation, rng);
        let authentic = rng.random::<f64>() < self.population.authenticity(provider);
        if authentic {
            self.report.successes += 1;
            self.window.successes += 1;
        } else {
            self.report.inauthentic += 1;
        }
        // Feedback per the requester's kind — both peer-level ratings and
        // (when enabled) the copy-level object vote follow the same lie.
        let row = &mut self.trust_rows[q.requester.index()];
        let claimed = match self.population.kind(q.requester) {
            PeerKind::Honest => authentic,
            PeerKind::IndependentMalicious => !authentic,
            PeerKind::Collusive(_) => self.population.same_collusion_group(q.requester, provider),
        };
        row.rate_satisfaction(provider, claimed);
        if self.config.object_reputation.is_some() {
            self.objects.record(q.file, provider, claimed);
        }
    }

    fn close_window<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.report.windows.push(self.window);
        self.window = WindowStats::default();
        self.queries_in_window = 0;
        if !matches!(self.config.backend, ReputationBackend::None) {
            self.inject_collusion_spam();
            self.refresh_reputation(rng);
            self.report.reputation_updates += 1;
        }
    }

    /// Collusive peers manufacture in-group positive feedback every window.
    fn inject_collusion_spam(&mut self) {
        if self.config.collusion_spam <= 0.0 {
            return;
        }
        let groups = self.population.collusion_group_count();
        for g in 0..groups {
            let members = self.population.collusion_group(g as u32);
            for &a in &members {
                for &b in &members {
                    if a != b {
                        self.trust_rows[a.index()].add_feedback(b, self.config.collusion_spam);
                    }
                }
            }
        }
    }

    fn refresh_reputation<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let matrix = TrustMatrix::from_rows(&self.trust_rows);
        let prior = if self.config.params.alpha > 0.0 {
            self.selector.prior(&self.reputation)
        } else {
            Prior::uniform(matrix.n())
        };
        self.reputation = match self.config.backend {
            ReputationBackend::None => return,
            ReputationBackend::Exact => {
                let solver = PowerIteration::new(self.config.params.clone());
                solver.solve_from(&matrix, &prior, &self.reputation).vector
            }
            ReputationBackend::Gossip => {
                let agg = GossipTrustAggregator::new(self.config.params.clone())
                    .with_prior_policy(PriorPolicy::Fixed(prior));
                agg.aggregate_with(&matrix, &self.reputation, &UniformChooser, rng)
                    .vector
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossiptrust_workloads::population::ThreatConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_session(
        n: usize,
        gamma: f64,
        selection: SelectionPolicy,
        backend: ReputationBackend,
        queries: usize,
        seed: u64,
    ) -> SessionReport {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = Population::generate(n, &ThreatConfig::independent(gamma), &mut rng);
        let params = Params::for_network(n);
        let config = SessionConfig { selection, backend, ..SessionConfig::gossiptrust(params) }
            .scaled_down(500, 200);
        let mut session = FileSharingSession::new(pop, config, &mut rng);
        session.run_queries(queries, &mut rng);
        session.finish(&mut rng)
    }

    #[test]
    fn report_accounting_adds_up() {
        let r = run_session(60, 0.2, SelectionPolicy::Random, ReputationBackend::None, 600, 1);
        assert_eq!(r.queries, 600);
        assert_eq!(r.successes + r.inauthentic + r.no_holder, r.queries);
        assert_eq!(r.windows.iter().map(|w| w.queries).sum::<usize>(), 600);
        assert!(r.flood_messages > 0);
        assert_eq!(r.reputation_updates, 0, "NoTrust never updates");
    }

    #[test]
    fn benign_network_has_high_success_either_way() {
        let a = run_session(60, 0.0, SelectionPolicy::Random, ReputationBackend::None, 500, 2);
        assert!(a.success_rate() > 0.85, "rate {}", a.success_rate());
    }

    #[test]
    fn reputation_selection_beats_random_under_attack() {
        // Table 2's default γ = 20% malicious peers; exact backend isolates
        // the selection effect. Averaged over seeds to tame variance. The
        // network must be large enough for the adaptive power-node anchor
        // to bootstrap reliably (at toy sizes the 1%-of-n power-node set
        // degenerates to a single node and the anchor can flip — the same
        // small-sample fragility EigenTrust counters with pre-trusted
        // peers; see DESIGN.md).
        let mut reputation_total = 0.0;
        let mut random_total = 0.0;
        let seeds = 3;
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(300 + seed);
            let pop = Population::generate(150, &ThreatConfig::independent(0.2), &mut rng);
            let params = Params::for_network(150);
            let mk = |selection, backend| {
                SessionConfig { selection, backend, ..SessionConfig::gossiptrust(params.clone()) }
                    .scaled_down(400, 400)
            };
            let mut s = FileSharingSession::new(
                pop.clone(),
                mk(SelectionPolicy::HighestReputation, ReputationBackend::Exact),
                &mut rng,
            );
            s.run_queries(3_200, &mut rng);
            reputation_total += s.finish(&mut rng).steady_state_success_rate(3);

            let mut rng = StdRng::seed_from_u64(300 + seed);
            let pop2 = Population::generate(150, &ThreatConfig::independent(0.2), &mut rng);
            let mut s = FileSharingSession::new(
                pop2,
                mk(SelectionPolicy::Random, ReputationBackend::None),
                &mut rng,
            );
            s.run_queries(3_200, &mut rng);
            random_total += s.finish(&mut rng).steady_state_success_rate(3);
        }
        let (rep, ran) = (reputation_total / seeds as f64, random_total / seeds as f64);
        assert!(rep > ran + 0.03, "reputation {rep} vs random {ran}");
    }

    #[test]
    fn gossip_backend_also_learns() {
        let g = run_session(
            50,
            0.3,
            SelectionPolicy::HighestReputation,
            ReputationBackend::Gossip,
            600,
            7,
        );
        assert!(g.reputation_updates >= 2);
        let early = g.windows[0].success_rate();
        let late = g.steady_state_success_rate(1);
        assert!(late >= early - 0.05, "learning must not regress: {early} -> {late}");
    }

    #[test]
    fn reputation_scores_separate_honest_from_malicious() {
        let mut rng = StdRng::seed_from_u64(21);
        let pop = Population::generate(150, &ThreatConfig::independent(0.2), &mut rng);
        let params = Params::for_network(150);
        let config = SessionConfig::gossiptrust(params)
            .with_backend(ReputationBackend::Exact)
            .scaled_down(400, 400);
        let mut session = FileSharingSession::new(pop, config, &mut rng);
        session.run_queries(2_800, &mut rng);
        let pop = session.population().clone();
        let v = session.reputation().clone();
        let avg = |ids: &[NodeId]| ids.iter().map(|&i| v.score(i)).sum::<f64>() / ids.len() as f64;
        let honest = avg(&pop.honest_peers());
        let malicious = avg(&pop.malicious_peers());
        assert!(honest > malicious, "honest {honest} vs malicious {malicious}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run_session(
            40,
            0.2,
            SelectionPolicy::HighestReputation,
            ReputationBackend::Exact,
            300,
            5,
        );
        let b = run_session(
            40,
            0.2,
            SelectionPolicy::HighestReputation,
            ReputationBackend::Exact,
            300,
            5,
        );
        assert_eq!(a.successes, b.successes);
        assert_eq!(a.flood_messages, b.flood_messages);
    }

    #[test]
    fn object_reputation_helps_random_selection() {
        // With NoTrust-style random selection, the copy-level filter is the
        // only defense; it should raise success against fixed-behaviour
        // attackers. Averaged over seeds.
        let run_with = |objects: bool, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let pop = Population::generate(80, &ThreatConfig::independent(0.3), &mut rng);
            let mut config = SessionConfig {
                selection: SelectionPolicy::Random,
                backend: ReputationBackend::None,
                ..SessionConfig::gossiptrust(Params::for_network(80))
            }
            .scaled_down(60, 400);
            if objects {
                config = config.with_object_reputation(crate::objects::ObjectRepConfig::default());
            }
            let mut s = FileSharingSession::new(pop, config, &mut rng);
            s.run_queries(3_200, &mut rng);
            s.finish(&mut rng).steady_state_success_rate(3)
        };
        let mut with = 0.0;
        let mut without = 0.0;
        for seed in 0..3 {
            with += run_with(true, 500 + seed);
            without += run_with(false, 500 + seed);
        }
        assert!(
            with > without + 0.05,
            "object reputation {:.3} vs plain {:.3}",
            with / 3.0,
            without / 3.0
        );
    }
}
