//! HMAC-SHA256 (RFC 2104), validated against RFC 4231 test vectors.

use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;

/// Compute `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    // Keys longer than the block size are hashed first.
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let digest = sha256(key);
        k[..32].copy_from_slice(&digest);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0u8; BLOCK];
    let mut opad = [0u8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] = k[i] ^ 0x36;
        opad[i] = k[i] ^ 0x5c;
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time byte-slice comparison (no early exit on mismatch).
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(hex(&tag), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    /// RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(hex(&tag), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
    }

    /// RFC 4231 test case 6 (key longer than the block size).
    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(hex(&tag), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    #[test]
    fn different_keys_give_different_tags() {
        let a = hmac_sha256(b"key-a", b"msg");
        let b = hmac_sha256(b"key-b", b"msg");
        assert_ne!(a, b);
    }

    #[test]
    fn constant_time_eq_works() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
        assert!(constant_time_eq(b"", b""));
    }
}
