//! Deterministic, seed-driven fault injection for the service paths.
//!
//! The paper sells GossipTrust on fault tolerance — aggregation that keeps
//! converging under churn, message loss and disturbance (§6.1, Fig. 4) —
//! but `simnet` only *simulates* those faults. This module injects them
//! against the **real** service: the TCP front-end's response frames
//! (dropped / delayed / duplicated / truncated), adversarial client
//! behavior (stalled slow-loris connections, oversize lines) and the epoch
//! thread (injected panics, simulated fold/aggregate overruns).
//!
//! Every decision flows from one seeded RNG ([`ChaosConfig::seed`], wired
//! through `core::params::chaos_seed` / `GT_CHAOS_SEED`) — no ambient
//! entropy, per gt-lint rule `entropy` — so a fault schedule is a pure
//! function of `(seed, decision sequence)` and a chaos soak can be
//! replayed exactly. The injector also *counts* every fault it deals
//! ([`ChaosReport`]), which is what lets the soak assert that the
//! service's degradation counters match the injected fault counts instead
//! of merely "some faults happened".
//!
//! The injector is deliberately dumb: it decides, callers act. That keeps
//! the blast radius auditable — grep for `frame_fault` / `epoch_fault` /
//! `client_fault` and you have the complete list of places chaos can bite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Fault mix of one chaos run. Rates are per-mille (0..=1000) so the knob
/// is integer-exact and the config carries no floats to mis-compare.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed of the injector's RNG (thread through
    /// `core::params::chaos_seed`, never ambient entropy).
    pub seed: u64,
    /// Response frames dropped outright (‰).
    pub drop_per_mille: u32,
    /// Response frames delayed by [`ChaosConfig::delay_ms`] (‰).
    pub delay_per_mille: u32,
    /// Delay applied to delayed frames, in milliseconds.
    pub delay_ms: u64,
    /// Response frames written twice (‰).
    pub duplicate_per_mille: u32,
    /// Response frames cut mid-line, connection closed (‰).
    pub truncate_per_mille: u32,
    /// Client connections that stall without completing a line (‰).
    pub stall_per_mille: u32,
    /// Client requests inflated past the server's line cap (‰).
    pub oversize_per_mille: u32,
    /// Epochs that panic on the epoch thread (‰).
    pub epoch_panic_per_mille: u32,
    /// Epochs that sleep [`ChaosConfig::overrun_ms`] to overrun the epoch
    /// deadline (‰).
    pub epoch_overrun_per_mille: u32,
    /// Sleep injected into overrunning epochs, in milliseconds.
    pub overrun_ms: u64,
}

impl ChaosConfig {
    /// All faults off (the injector still counts decisions).
    pub fn disabled(seed: u64) -> Self {
        ChaosConfig {
            seed,
            drop_per_mille: 0,
            delay_per_mille: 0,
            delay_ms: 0,
            duplicate_per_mille: 0,
            truncate_per_mille: 0,
            stall_per_mille: 0,
            oversize_per_mille: 0,
            epoch_panic_per_mille: 0,
            epoch_overrun_per_mille: 0,
            overrun_ms: 0,
        }
    }

    /// The full soak matrix: loss × delay × duplication × truncation ×
    /// stalls × oversize lines × epoch panics × epoch overruns, at rates
    /// high enough that a few hundred decisions exercise every arm.
    pub fn soak(seed: u64) -> Self {
        ChaosConfig {
            seed,
            drop_per_mille: 100,
            delay_per_mille: 100,
            delay_ms: 20,
            duplicate_per_mille: 60,
            truncate_per_mille: 60,
            stall_per_mille: 60,
            oversize_per_mille: 40,
            epoch_panic_per_mille: 250,
            epoch_overrun_per_mille: 250,
            overrun_ms: 50,
        }
    }

    /// Domain check: each decision's rates must fit in one per-mille roll.
    pub fn validate(&self) -> Result<(), String> {
        let frame = self.drop_per_mille
            + self.delay_per_mille
            + self.duplicate_per_mille
            + self.truncate_per_mille;
        if frame > 1000 {
            return Err(format!("frame fault rates sum to {frame}‰ (> 1000)"));
        }
        let client = self.stall_per_mille + self.oversize_per_mille;
        if client > 1000 {
            return Err(format!("client fault rates sum to {client}‰ (> 1000)"));
        }
        let epoch = self.epoch_panic_per_mille + self.epoch_overrun_per_mille;
        if epoch > 1000 {
            return Err(format!("epoch fault rates sum to {epoch}‰ (> 1000)"));
        }
        Ok(())
    }
}

/// What to do with one response frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFault {
    /// Write it normally.
    Deliver,
    /// Do not write it at all (the client sees silence and must retry).
    Drop,
    /// Sleep, then write it.
    Delay(Duration),
    /// Write it twice (a retransmit-style duplicate).
    Duplicate,
    /// Write only a prefix, then sever the connection.
    Truncate,
}

/// How the (soak-driven) client behaves on one connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientFault {
    /// Speak the protocol honestly.
    Honest,
    /// Open the connection, send a partial line, and go silent
    /// (slow-loris) — the server's read deadline must reap it.
    Stall,
    /// Send a newline-free line past the server's cap — the line cap must
    /// reject it without buffering unboundedly.
    OversizeLine,
}

/// What to do to one epoch on the epoch thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochFault {
    /// Panic mid-epoch (the watchdog's `catch_unwind` must contain it).
    Panic,
    /// Sleep this long inside the epoch body, simulating a fold/aggregate
    /// overrun (the deadline watchdog must abandon the result).
    Overrun(Duration),
}

impl EpochFault {
    /// Materialize the fault inside the epoch watchdog body: `Panic`
    /// unwinds (the exact failure `catch_unwind` exists to contain),
    /// `Overrun` stalls the epoch thread past its deadline. Keeping the
    /// `panic!` here, not in the epoch manager, makes this file the single
    /// deliberate panic site on the serving path.
    pub fn materialize(self) {
        match self {
            EpochFault::Panic => panic!("chaos: injected epoch panic"),
            EpochFault::Overrun(pause) => std::thread::sleep(pause),
        }
    }
}

/// Monotonic counts of every fault dealt, by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Response frames dropped.
    pub frames_dropped: u64,
    /// Response frames delayed.
    pub frames_delayed: u64,
    /// Response frames duplicated.
    pub frames_duplicated: u64,
    /// Response frames truncated.
    pub frames_truncated: u64,
    /// Client connections told to stall.
    pub client_stalls: u64,
    /// Client requests told to oversize.
    pub client_oversize: u64,
    /// Epochs told to panic.
    pub epochs_panicked: u64,
    /// Epochs told to overrun.
    pub epochs_overrun: u64,
}

#[derive(Debug, Default)]
struct ChaosCounters {
    frames_dropped: AtomicU64,
    frames_delayed: AtomicU64,
    frames_duplicated: AtomicU64,
    frames_truncated: AtomicU64,
    client_stalls: AtomicU64,
    client_oversize: AtomicU64,
    epochs_panicked: AtomicU64,
    epochs_overrun: AtomicU64,
}

/// The seeded fault dealer. `Send + Sync`: the RNG sits behind a mutex
/// (decisions are rare and cheap next to the I/O they perturb), the
/// counters are atomics.
#[derive(Debug)]
pub struct ChaosInjector {
    config: ChaosConfig,
    rng: Mutex<StdRng>,
    counters: ChaosCounters,
}

impl ChaosInjector {
    /// Build an injector for `config`.
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`ChaosConfig::validate`] — an
    /// over-1000‰ fault mix is a harness bug, not a runtime condition.
    pub fn new(config: ChaosConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid chaos config: {e}");
        }
        let rng = Mutex::new(StdRng::seed_from_u64(config.seed));
        ChaosInjector { config, rng, counters: ChaosCounters::default() }
    }

    /// The configuration this injector deals from.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// One per-mille roll off the seeded stream.
    fn roll(&self) -> u32 {
        self.rng
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .random_range(0..1000)
    }

    /// Decide the fate of one response frame.
    pub fn frame_fault(&self) -> FrameFault {
        let c = &self.config;
        let roll = self.roll();
        let mut edge = c.drop_per_mille;
        if roll < edge {
            self.counters.frames_dropped.fetch_add(1, Ordering::Relaxed);
            return FrameFault::Drop;
        }
        edge += c.delay_per_mille;
        if roll < edge {
            self.counters.frames_delayed.fetch_add(1, Ordering::Relaxed);
            return FrameFault::Delay(Duration::from_millis(c.delay_ms));
        }
        edge += c.duplicate_per_mille;
        if roll < edge {
            self.counters.frames_duplicated.fetch_add(1, Ordering::Relaxed);
            return FrameFault::Duplicate;
        }
        edge += c.truncate_per_mille;
        if roll < edge {
            self.counters.frames_truncated.fetch_add(1, Ordering::Relaxed);
            return FrameFault::Truncate;
        }
        FrameFault::Deliver
    }

    /// Decide how the soak client behaves on one connection.
    pub fn client_fault(&self) -> ClientFault {
        let c = &self.config;
        let roll = self.roll();
        let mut edge = c.stall_per_mille;
        if roll < edge {
            self.counters.client_stalls.fetch_add(1, Ordering::Relaxed);
            return ClientFault::Stall;
        }
        edge += c.oversize_per_mille;
        if roll < edge {
            self.counters.client_oversize.fetch_add(1, Ordering::Relaxed);
            return ClientFault::OversizeLine;
        }
        ClientFault::Honest
    }

    /// Decide the fate of one epoch (`None` = run it honestly).
    pub fn epoch_fault(&self) -> Option<EpochFault> {
        let c = &self.config;
        let roll = self.roll();
        let mut edge = c.epoch_panic_per_mille;
        if roll < edge {
            self.counters.epochs_panicked.fetch_add(1, Ordering::Relaxed);
            return Some(EpochFault::Panic);
        }
        edge += c.epoch_overrun_per_mille;
        if roll < edge {
            self.counters.epochs_overrun.fetch_add(1, Ordering::Relaxed);
            return Some(EpochFault::Overrun(Duration::from_millis(c.overrun_ms)));
        }
        None
    }

    /// Snapshot of every fault dealt so far.
    pub fn report(&self) -> ChaosReport {
        let c = &self.counters;
        ChaosReport {
            frames_dropped: c.frames_dropped.load(Ordering::Relaxed),
            frames_delayed: c.frames_delayed.load(Ordering::Relaxed),
            frames_duplicated: c.frames_duplicated.load(Ordering::Relaxed),
            frames_truncated: c.frames_truncated.load(Ordering::Relaxed),
            client_stalls: c.client_stalls.load(Ordering::Relaxed),
            client_oversize: c.client_oversize.load(Ordering::Relaxed),
            epochs_panicked: c.epochs_panicked.load(Ordering::Relaxed),
            epochs_overrun: c.epochs_overrun.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_fault_schedule() {
        let a = ChaosInjector::new(ChaosConfig::soak(42));
        let b = ChaosInjector::new(ChaosConfig::soak(42));
        let seq_a: Vec<FrameFault> = (0..200).map(|_| a.frame_fault()).collect();
        let seq_b: Vec<FrameFault> = (0..200).map(|_| b.frame_fault()).collect();
        assert_eq!(seq_a, seq_b, "chaos is a pure function of the seed");
        assert_eq!(a.report(), b.report());
        // A different seed deals a different schedule.
        let c = ChaosInjector::new(ChaosConfig::soak(43));
        let seq_c: Vec<FrameFault> = (0..200).map(|_| c.frame_fault()).collect();
        assert_ne!(seq_a, seq_c, "distinct seeds must not alias");
    }

    #[test]
    fn counters_match_dealt_faults_exactly() {
        let chaos = ChaosInjector::new(ChaosConfig::soak(7));
        let mut dealt = ChaosReport::default();
        for _ in 0..500 {
            match chaos.frame_fault() {
                FrameFault::Drop => dealt.frames_dropped += 1,
                FrameFault::Delay(_) => dealt.frames_delayed += 1,
                FrameFault::Duplicate => dealt.frames_duplicated += 1,
                FrameFault::Truncate => dealt.frames_truncated += 1,
                FrameFault::Deliver => {}
            }
        }
        for _ in 0..200 {
            match chaos.epoch_fault() {
                Some(EpochFault::Panic) => dealt.epochs_panicked += 1,
                Some(EpochFault::Overrun(_)) => dealt.epochs_overrun += 1,
                None => {}
            }
        }
        for _ in 0..200 {
            match chaos.client_fault() {
                ClientFault::Stall => dealt.client_stalls += 1,
                ClientFault::OversizeLine => dealt.client_oversize += 1,
                ClientFault::Honest => {}
            }
        }
        assert_eq!(chaos.report(), dealt);
        // The soak rates are high enough that every arm actually fired.
        assert!(dealt.frames_dropped > 0);
        assert!(dealt.frames_delayed > 0);
        assert!(dealt.frames_duplicated > 0);
        assert!(dealt.frames_truncated > 0);
        assert!(dealt.client_stalls > 0);
        assert!(dealt.epochs_panicked > 0);
        assert!(dealt.epochs_overrun > 0);
    }

    #[test]
    fn disabled_config_never_faults() {
        let chaos = ChaosInjector::new(ChaosConfig::disabled(1));
        for _ in 0..100 {
            assert_eq!(chaos.frame_fault(), FrameFault::Deliver);
            assert_eq!(chaos.client_fault(), ClientFault::Honest);
            assert_eq!(chaos.epoch_fault(), None);
        }
        assert_eq!(chaos.report(), ChaosReport::default());
    }

    #[test]
    #[should_panic(expected = "invalid chaos config")]
    fn over_unity_frame_rates_are_rejected() {
        let config =
            ChaosConfig { drop_per_mille: 600, delay_per_mille: 600, ..ChaosConfig::disabled(0) };
        ChaosInjector::new(config);
    }
}
