//! Flat-arena vector gossip engine: the thread-sweep step-cost matrix.
//!
//! Tracks the tentpole hot path — one `O(n²)` tiled gossip step — over
//! the full `n × threads` matrix (three network sizes × thread counts
//! 1/2/4), so the speedup *trajectory* is visible per size, not just one
//! headline number. Every cell produces bit-identical results (the
//! engine's determinism contract), so this is a pure wall-time
//! comparison. The `bench_summary` binary in this crate distills the same
//! matrix into `BENCH_engine.json` for the perf trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gossiptrust_core::id::NodeId;
use gossiptrust_core::matrix::{TrustMatrix, TrustMatrixBuilder};
use gossiptrust_core::params::Params;
use gossiptrust_core::power_nodes::Prior;
use gossiptrust_core::vector::ReputationVector;
use gossiptrust_gossip::engine::{EngineConfig, VectorGossipEngine};
use gossiptrust_gossip::UniformChooser;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Sparse ring-of-trust matrix: degree 2, deterministic, O(n) to build —
/// keeps setup cheap even at n = 4000 (the step cost is layout-dominated,
/// not matrix-dominated, so the matrix shape is irrelevant here).
fn ring_matrix(n: usize) -> TrustMatrix {
    let mut b = TrustMatrixBuilder::new(n);
    for i in 0..n {
        b.record(NodeId::from_index(i), NodeId::from_index((i + 1) % n), 3.0);
        b.record(NodeId::from_index(i), NodeId::from_index((i + 7) % n), 1.0);
    }
    b.build()
}

fn seeded_engine(n: usize, threads: usize, m: &TrustMatrix) -> VectorGossipEngine {
    let config = EngineConfig::from_params(&Params::for_network(n), n).with_threads(threads);
    let mut engine = VectorGossipEngine::new(n, config);
    engine.seed(m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
    engine
}

fn bench_engine_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_step");
    group.sample_size(10);
    for &n in &[250usize, 1_000, 4_000] {
        let m = ring_matrix(n);
        // n² triplets move per step.
        group.throughput(Throughput::Elements((n * n) as u64));
        for &threads in &[1usize, 2, 4] {
            let label = match threads {
                1 => "seq",
                2 => "par2",
                _ => "par4",
            };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                let mut engine = seeded_engine(n, threads, &m);
                let mut rng = StdRng::seed_from_u64(6);
                // `par_step` with one thread *is* the sequential step.
                b.iter(|| {
                    black_box(engine.par_step(&UniformChooser, &mut rng));
                });
            });
        }
    }
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
        .sample_size(10)
}

criterion_group!(name = benches; config = short(); targets = bench_engine_step);
criterion_main!(benches);
