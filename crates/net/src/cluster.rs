//! Cluster driver: `n` node tasks + a coordinator barrier.
//!
//! The coordinator starts each aggregation cycle, waits for all nodes'
//! local convergence notifications (with a timeout backstop), collects the
//! estimates, checks the outer `δ` test, re-selects power nodes and starts
//! the next cycle — the explicit-barrier rendition of Algorithm 2's outer
//! loop. The gossip itself (ticks, pushes, merges) is fully decentralized.

use crate::node::{run_node, ClusterCounters, Control, NodeConfig};
use crate::transport::{InMemoryHandle, InMemoryNetwork, Transport};
use crate::udp::UdpEndpoint;
use bytes::Bytes;
use gossiptrust_core::convergence::VectorConvergence;
use gossiptrust_core::id::NodeId;
use gossiptrust_core::matrix::TrustMatrix;
use gossiptrust_core::params::Params;
use gossiptrust_core::power_nodes::PowerNodeSelector;
use gossiptrust_core::vector::ReputationVector;
use gossiptrust_crypto::Pkg;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;
use tokio::sync::{mpsc, oneshot};

/// Network/runtime configuration for a cluster run.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Gossip tick period per node.
    pub tick: Duration,
    /// Gossip threshold `ε` (relative change per tick).
    pub epsilon: f64,
    /// Consecutive calm ticks required by the local detector.
    pub patience: usize,
    /// Per-cycle tick budget per node.
    pub max_ticks: usize,
    /// Per-node inbound queue capacity (in-memory transport).
    pub queue_cap: usize,
    /// Injected message loss (in-memory transport only; UDP has its own).
    pub loss_rate: f64,
    /// Seed for loss injection and node RNGs.
    pub seed: u64,
    /// Barrier timeout per cycle (backstop for lost notifications).
    pub cycle_timeout: Duration,
}

impl NetConfig {
    /// Fast settings for local tests: 2 ms ticks, `ε = 10⁻⁴`.
    pub fn fast_local() -> Self {
        NetConfig {
            tick: Duration::from_millis(2),
            epsilon: 1e-4,
            patience: 2,
            max_ticks: 5_000,
            queue_cap: 1024,
            loss_rate: 0.0,
            seed: 0,
            cycle_timeout: Duration::from_secs(60),
        }
    }

    /// Builder-style loss-rate setter.
    pub fn with_loss_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss rate in [0,1]");
        self.loss_rate = p;
        self
    }

    /// Builder-style seed setter.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Which transport the cluster uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TransportKind {
    InMemory,
    Udp,
}

/// Result of a cluster aggregation.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Converged global reputation vector (mean of node estimates).
    pub vector: ReputationVector,
    /// Aggregation cycles executed.
    pub cycles: usize,
    /// Whether the outer `δ` test fired within `params.max_cycles`.
    pub converged: bool,
    /// Pushes sent across the network.
    pub pushes_sent: u64,
    /// Pushes rejected by signature/format verification.
    pub auth_failures: u64,
    /// Pushes discarded as stale (cycle mismatch).
    pub stale_pushes: u64,
    /// Power nodes selected from the final vector.
    pub power_nodes: Vec<NodeId>,
}

/// An async GossipTrust cluster.
pub struct Cluster {
    config: NetConfig,
    kind: TransportKind,
}

impl Cluster {
    /// Cluster over the in-process channel transport.
    pub fn in_memory(config: NetConfig) -> Self {
        Cluster { config, kind: TransportKind::InMemory }
    }

    /// Cluster over UDP loopback sockets.
    pub fn udp(config: NetConfig) -> Self {
        Cluster { config, kind: TransportKind::Udp }
    }

    /// Run a full aggregation of `matrix` under `params`.
    pub async fn run(&self, matrix: &TrustMatrix, params: &Params) -> ClusterReport {
        let n = matrix.n();
        assert!(n >= 2, "cluster needs at least two nodes");
        assert_eq!(params.n, n, "params.n must match the matrix");
        match self.kind {
            TransportKind::InMemory => {
                let (net, receivers) = InMemoryNetwork::new(
                    n,
                    self.config.queue_cap,
                    self.config.loss_rate,
                    self.config.seed,
                );
                let transports: Vec<InMemoryHandle> =
                    (0..n).map(|_| InMemoryHandle::new(Arc::clone(&net))).collect();
                self.run_with(matrix, params, transports, receivers).await
            }
            TransportKind::Udp => {
                let endpoints = UdpEndpoint::bind_cluster(n).await;
                let (transports, receivers): (Vec<_>, Vec<_>) = endpoints.into_iter().unzip();
                self.run_with(matrix, params, transports, receivers).await
            }
        }
    }

    async fn run_with<T: Transport>(
        &self,
        matrix: &TrustMatrix,
        params: &Params,
        transports: Vec<T>,
        receivers: Vec<mpsc::Receiver<Bytes>>,
    ) -> ClusterReport {
        let n = matrix.n();
        let pkg = Pkg::from_seed(self.config.seed ^ 0x5EC0DE);
        let counters = Arc::new(ClusterCounters::default());
        let (converged_tx, mut converged_rx) = mpsc::channel::<(u32, u32)>(n * 2);

        let min_ticks = (n.max(2) as f64).log2().ceil() as usize;
        let mut ctrl_txs = Vec::with_capacity(n);
        let mut tasks = Vec::with_capacity(n);
        for (i, (transport, net_rx)) in transports.into_iter().zip(receivers).enumerate() {
            let id = NodeId::from_index(i);
            let (cols, vals) = matrix.row(id);
            let row: Vec<(u32, f64)> = cols.iter().zip(vals).map(|(&c, &v)| (c, v)).collect();
            let config = NodeConfig {
                id: i as u32,
                n,
                alpha: params.alpha,
                epsilon: self.config.epsilon,
                patience: self.config.patience,
                min_ticks,
                max_ticks: self.config.max_ticks,
                tick: self.config.tick,
                row,
                key: pkg.issue(i as u32),
                verifier: pkg.verifier(),
                seed: self.config.seed,
            };
            let (ctrl_tx, ctrl_rx) = mpsc::channel::<Control>(8);
            ctrl_txs.push(ctrl_tx);
            tasks.push(tokio::spawn(run_node(
                config,
                transport,
                net_rx,
                ctrl_rx,
                converged_tx.clone(),
                Arc::clone(&counters),
            )));
        }
        drop(converged_tx);

        let selector = PowerNodeSelector::new(params.max_power_nodes);
        let mut outer = VectorConvergence::new(params.delta);
        let mut current = ReputationVector::uniform(n);
        outer.observe(&current);
        let mut prior: Arc<Vec<f64>> = Arc::new(vec![1.0 / n as f64; n]);
        let mut cycles = 0usize;
        let mut converged = false;

        for cycle in 1..=params.max_cycles as u32 {
            cycles = cycle as usize;
            for tx in &ctrl_txs {
                let _ = tx
                    .send(Control::StartCycle { cycle, prior: Arc::clone(&prior) })
                    .await;
            }
            // Barrier: wait for all n nodes to report convergence for this
            // cycle, with a timeout backstop.
            let mut reported = vec![false; n];
            let mut count = 0usize;
            // The whole barrier races one timeout (no per-recv deadline
            // arithmetic — raw clock reads stay out of this crate).
            let _ = tokio::time::timeout(self.config.cycle_timeout, async {
                while count < n {
                    match converged_rx.recv().await {
                        Some((node, c)) if c == cycle => {
                            if !reported[node as usize] {
                                reported[node as usize] = true;
                                count += 1;
                            }
                        }
                        Some(_) => {} // stale notification from a prior cycle
                        None => break,
                    }
                }
            })
            .await;
            // Collect estimates.
            let mut estimates = Vec::with_capacity(n);
            for tx in &ctrl_txs {
                let (reply_tx, reply_rx) = oneshot::channel();
                let _ = tx.send(Control::EndCycle { reply: reply_tx }).await;
                if let Ok(est) = reply_rx.await {
                    estimates.push(est);
                }
            }
            let mut mean = vec![0.0; n];
            let denom = estimates.len().max(1) as f64;
            for est in &estimates {
                for (m, &e) in mean.iter_mut().zip(est) {
                    *m += e / denom;
                }
            }
            let next = ReputationVector::from_weights(mean.iter().map(|&x| x.max(0.0)).collect())
                .expect("estimates stay positive in aggregate");
            let hit = outer.observe(&next);
            current = next;
            prior = Arc::new(selector.prior(&current).to_dense());
            if hit {
                converged = true;
                break;
            }
        }

        for tx in &ctrl_txs {
            let _ = tx.send(Control::Stop).await;
        }
        for task in tasks {
            let _ = task.await;
        }

        ClusterReport {
            power_nodes: selector.select(&current),
            vector: current,
            cycles,
            converged,
            pushes_sent: counters.pushes_sent.load(Ordering::Relaxed),
            auth_failures: counters.auth_failures.load(Ordering::Relaxed),
            stale_pushes: counters.stale_pushes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossiptrust_core::matrix::TrustMatrixBuilder;
    use gossiptrust_core::power_iter::PowerIteration;
    use gossiptrust_core::power_nodes::Prior;

    fn authority(n: usize) -> TrustMatrix {
        // Node 0 is an unambiguous authority: everyone directs most trust
        // at it, and node 0 spreads its own trust thinly over all others
        // (so no single second hub can overtake it even when the adaptive
        // power-node prior concentrates the α-jump on one node).
        let mut b = TrustMatrixBuilder::new(n);
        for i in 1..n {
            b.record(NodeId::from_index(i), NodeId(0), 4.0);
            b.record(NodeId::from_index(i), NodeId::from_index((i + 1) % n), 1.0);
            b.record(NodeId(0), NodeId::from_index(i), 1.0);
        }
        b.build()
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn in_memory_cluster_matches_oracle_ranking() {
        let n = 16;
        let m = authority(n);
        let params = Params::for_network(n);
        let report = Cluster::in_memory(NetConfig::fast_local().with_seed(1))
            .run(&m, &params)
            .await;
        assert!(report.converged, "cluster must converge");
        assert!(report.pushes_sent > 0);
        assert_eq!(report.auth_failures, 0);
        // The async result agrees with the centralized oracle on ranking
        // and approximately on values. The cluster re-selects power nodes
        // adaptively, so compare against the matching adaptive oracle run
        // loosely: check the authority is ranked first and the RMS error
        // against a uniform-prior oracle stays moderate.
        assert_eq!(report.vector.ranking()[0], NodeId(0));
        let oracle = PowerIteration::new(params).solve(&m, &Prior::uniform(n));
        let err = oracle.vector.rms_relative_error(&report.vector).unwrap();
        assert!(err < 0.6, "rms vs uniform-prior oracle {err}");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn lossy_cluster_still_converges() {
        let n = 12;
        let m = authority(n);
        // Loss puts a noise floor under the per-cycle gossip error (each
        // drop removes x and w mass together, so ratios wander), so the
        // outer threshold must sit well above it — the same ε/δ pairing
        // logic as Table 3, scaled to the injected fault rate. What must
        // survive untouched is the *ranking*.
        let params = Params::for_network(n).with_delta(0.1);
        let report = Cluster::in_memory(NetConfig::fast_local().with_seed(2).with_loss_rate(0.05))
            .run(&m, &params)
            .await;
        assert!(report.converged);
        assert_eq!(report.vector.ranking()[0], NodeId(0));
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn udp_cluster_smoke() {
        let n = 8;
        let m = authority(n);
        let params = Params::for_network(n);
        let report = Cluster::udp(NetConfig::fast_local().with_seed(3))
            .run(&m, &params)
            .await;
        assert!(report.converged);
        assert_eq!(report.vector.ranking()[0], NodeId(0));
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn stale_pushes_are_counted_not_merged() {
        // Loss + tiny network forces cycle boundaries where in-flight
        // pushes straggle; the counter proves the guard is exercised.
        let n = 8;
        let m = authority(n);
        let params = Params::for_network(n).with_delta(1e-4);
        let report = Cluster::in_memory(NetConfig::fast_local().with_seed(4))
            .run(&m, &params)
            .await;
        // Not asserting > 0 (scheduling-dependent), but the run must still
        // be healthy and authenticated.
        assert!(report.converged);
        assert_eq!(report.auth_failures, 0);
    }
}
