//! Ablation: convergence-detector patience vs steps and gossip error.

use gossiptrust_experiments::ablations::patience;
use gossiptrust_experiments::{Scale, TextTable};

fn main() {
    let scale = Scale::from_env();
    println!("Ablation — detector patience ({scale:?} scale)\n");
    let rows = patience(scale);
    let mut t = TextTable::new(vec!["patience", "steps/cycle", "gossip error"]);
    for r in &rows {
        t.row(vec![
            r.patience.to_string(),
            format!("{:.1}", r.steps),
            format!("{:.2e}", r.gossip_error),
        ]);
    }
    print!("{}", t.render());
}
