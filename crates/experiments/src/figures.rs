//! Regeneration of every table and figure in §6 of the paper.
//!
//! Each function returns structured rows so the experiment logic is
//! unit-testable at `Scale::Quick`; the binaries render them with
//! [`crate::TextTable`]. Expected *shapes* (who wins, what grows) are
//! documented per function and asserted loosely in the crate tests;
//! absolute values are recorded in EXPERIMENTS.md.

use crate::scale::Scale;
use crate::stats::{mean, stddev};
use gossiptrust_core::prelude::*;
use gossiptrust_filesharing::{
    FileSharingSession, ReputationBackend, SelectionPolicy, SessionConfig,
};
use gossiptrust_gossip::cycle::{exact_reference, GossipTrustAggregator, PriorPolicy};
use gossiptrust_gossip::{PushSumNetwork, ScriptedChooser, UniformChooser};
use gossiptrust_workloads::population::{Population, ThreatConfig};
use gossiptrust_workloads::scenario::{Scenario, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Build a scenario at network size `n` (paper feedback parameters for
/// large networks, scaled-down degrees for small test networks).
pub fn scenario_for(n: usize, threat: ThreatConfig, seed: u64) -> Scenario {
    let cfg = if n >= 500 {
        ScenarioConfig::new(n, threat)
    } else {
        ScenarioConfig::small(n, threat)
    };
    Scenario::generate(&cfg, &mut StdRng::seed_from_u64(seed))
}

// ---------------------------------------------------------------- Table 1

/// One row of the Table 1 reproduction: a node's gossip pair and ratio at
/// a given step of the Fig. 2 worked example.
#[derive(Clone, Debug, Serialize)]
pub struct Table1Row {
    /// Gossip step (1-based).
    pub step: usize,
    /// Node label (paper numbering: N1, N2, N3).
    pub node: String,
    /// Weighted score `x`.
    pub x: f64,
    /// Consensus factor `w`.
    pub w: f64,
    /// Ratio `β = x/w` (`None` = the paper's `∞` case).
    pub beta: Option<f64>,
}

/// Reproduce the Fig. 2 / Table 1 worked example: aggregate peer N2's
/// score on a 3-node network with `V(t) = (1/2, 1/3, 1/6)`, `s₁₂ = 0.2`,
/// `s₂₂ = 0`, `s₃₂ = 0.6`. Step 1 follows the paper's scripted targets
/// (N1→N3, N2→N1, N3→N1); the run then continues with uniform gossip until
/// consensus. Returns the per-step rows and the final consensus value
/// (which must equal `v₂(t+1) = 0.2`).
///
/// Note: the paper's printed Table 1 contains internal typos (its step-1
/// row for N2/N3 disagrees with its own §4.2 text); we reproduce the text,
/// which is self-consistent.
pub fn table1() -> (Vec<Table1Row>, f64) {
    let xs = vec![0.5 * 0.2, (1.0 / 3.0) * 0.0, (1.0 / 6.0) * 0.6];
    let ws = vec![0.0, 1.0, 0.0];
    let mut net = PushSumNetwork::from_pairs(xs, ws, 1e-10, 2);
    let chooser = ScriptedChooser::new(vec![vec![2, 0, 0]]);
    let mut rng = StdRng::seed_from_u64(2007);
    let mut rows = Vec::new();
    let record = |net: &PushSumNetwork, step: usize, rows: &mut Vec<Table1Row>| {
        for i in 0..3 {
            let (x, w) = net.pair(NodeId(i as u32));
            rows.push(Table1Row {
                step,
                node: format!("N{}", i + 1),
                x,
                w,
                beta: if w > 0.0 { Some(x / w) } else { None },
            });
        }
    };
    net.step(&chooser, &mut rng);
    record(&net, 1, &mut rows);
    net.step(&chooser, &mut rng);
    record(&net, 2, &mut rows);
    // Continue to full consensus.
    let out = net.run(2, 1000, &UniformChooser, &mut rng);
    let consensus = out.ratios[0].expect("consensus reached");
    (rows, consensus)
}

// ----------------------------------------------------------------- Fig. 3

/// One point of Fig. 3.
#[derive(Clone, Debug, Serialize)]
pub struct Fig3Row {
    /// Network size.
    pub n: usize,
    /// Gossip error threshold ε.
    pub epsilon: f64,
    /// Mean gossip steps per aggregation cycle.
    pub mean_steps: f64,
    /// Stddev over seeds.
    pub std_steps: f64,
}

/// The ε grid of Fig. 3.
pub const FIG3_EPSILONS: [f64; 5] = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5];

/// Fig. 3: gossip step counts vs gossip error threshold for three network
/// sizes. Expected shape: steps grow with `log(1/ε)` and with `log n`; at
/// tight ε the threshold dominates (curves converge), at loose ε the
/// network size dominates (the `min_steps = ⌈log₂ n⌉` floor).
///
/// Measures the mean steps per cycle over the first 3 aggregation cycles
/// (the per-cycle step count is stationary across cycles, so this keeps
/// the sweep affordable).
pub fn fig3(scale: Scale) -> Vec<Fig3Row> {
    let mut rows = Vec::new();
    for &n in &scale.fig3_sizes() {
        for &eps in &FIG3_EPSILONS {
            let mut samples = Vec::new();
            for seed in 0..scale.seeds() {
                let scenario = scenario_for(n, ThreatConfig::benign(), 9_000 + seed);
                let params = Params {
                    delta: 1e-15, // never stop early: we want 3 full cycles
                    max_cycles: 3,
                    ..Params::for_network(n).with_epsilon(eps)
                };
                let agg = GossipTrustAggregator::new(params)
                    .with_prior_policy(PriorPolicy::Fixed(Prior::uniform(n)));
                let mut rng = StdRng::seed_from_u64(31 + seed);
                let report = agg.aggregate(&scenario.honest, &mut rng);
                samples.push(report.mean_gossip_steps());
            }
            rows.push(Fig3Row {
                n,
                epsilon: eps,
                mean_steps: mean(&samples),
                std_steps: stddev(&samples),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------- Table 3

/// One row of Table 3.
#[derive(Clone, Debug, Serialize)]
pub struct Table3Row {
    /// Gossip threshold ε.
    pub epsilon: f64,
    /// Aggregation threshold δ.
    pub delta: f64,
    /// Aggregation cycles until the δ test fired (mean over seeds).
    pub cycles: f64,
    /// Gossip steps per cycle (mean).
    pub gossip_steps: f64,
    /// Gossip error: RMS of the per-cycle gossip estimate against the
    /// exact same-cycle iterate (mean over cycles and seeds).
    pub gossip_error: f64,
    /// Aggregation error: RMS of the final gossiped vector against the
    /// fully-converged exact eigenvector.
    pub aggregation_error: f64,
}

/// Table 3's three (ε, δ) settings.
pub const TABLE3_SETTINGS: [(f64, f64); 3] = [(1e-5, 1e-4), (1e-4, 1e-3), (1e-3, 1e-2)];

/// Table 3: gossip and aggregation errors under three convergence-threshold
/// settings. Expected shape: tighter thresholds → more cycles and steps,
/// smaller errors; each row's aggregation error lands near its δ and the
/// gossip error well below it.
pub fn table3(scale: Scale) -> Vec<Table3Row> {
    let n = scale.n();
    let mut rows = Vec::new();
    for &(eps, delta) in &TABLE3_SETTINGS {
        let mut cycles = Vec::new();
        let mut steps = Vec::new();
        let mut gossip_err = Vec::new();
        let mut agg_err = Vec::new();
        for seed in 0..scale.seeds() {
            let scenario = scenario_for(n, ThreatConfig::benign(), 17_000 + seed);
            let params = Params::for_network(n).with_epsilon(eps).with_delta(delta);
            let agg = GossipTrustAggregator::new(params.clone())
                .with_prior_policy(PriorPolicy::Fixed(Prior::uniform(n)));
            let mut rng = StdRng::seed_from_u64(47 + seed);
            let report = agg.aggregate(&scenario.honest, &mut rng);
            // "Actual" vector: exact solve driven far past any δ here.
            let exact = PowerIteration::new(params.clone().with_delta(1e-12))
                .solve(&scenario.honest, &Prior::uniform(n));
            cycles.push(report.cycles as f64);
            steps.push(report.mean_gossip_steps());
            let mean_cycle_err =
                mean(&report.per_cycle.iter().map(|c| c.gossip_error).collect::<Vec<_>>());
            gossip_err.push(mean_cycle_err);
            agg_err.push(exact.vector.rms_relative_error(&report.vector).expect("same n"));
        }
        rows.push(Table3Row {
            epsilon: eps,
            delta,
            cycles: mean(&cycles),
            gossip_steps: mean(&steps),
            gossip_error: mean(&gossip_err),
            aggregation_error: mean(&agg_err),
        });
    }
    rows
}

// --------------------------------------------------------------- Fig. 4(a)

/// One point of Fig. 4(a) or 4(b).
#[derive(Clone, Debug, Serialize)]
pub struct Fig4Row {
    /// Greedy factor α of the run.
    pub alpha: f64,
    /// Fraction of malicious peers γ.
    pub gamma: f64,
    /// Collusion group size (0 = independent threat model).
    pub group_size: usize,
    /// RMS aggregation error (Eq. 8) against the honest ground truth.
    pub rms_error: f64,
    /// Stddev over seeds.
    pub std_error: f64,
}

/// How strongly a malicious peer inflates the pushed `x` of the components
/// it boosts (its own score, or its collusion group's scores).
const DISTURBANCE_FACTOR: f64 = 2.0;

/// Run one Fig. 4 cell.
///
/// §6.3's RMS error compares "the calculated and gossiped global
/// reputation scores": `v` is the exact centralized computation over the
/// observed (polluted) trust matrix, and `u` is what the *gossip protocol*
/// actually produces while the malicious peers disturb it — every
/// malicious peer forges extra reputation mass for itself (independent
/// setting) or its whole group (collusive setting) in the gossip pairs it
/// pushes. Power nodes (the greedy factor's jump mass) re-anchor each
/// cycle on exactly computed seeds, which is what damps the accumulated
/// forgery — the effect Fig. 4 quantifies.
fn fig4_cell(n: usize, threat: ThreatConfig, alpha: f64, seeds: u64, seed_base: u64) -> (f64, f64) {
    let mut samples = Vec::new();
    for seed in 0..seeds {
        let scenario = scenario_for(n, threat.clone(), seed_base + seed);
        let mut params = Params::for_network(n).with_alpha(alpha);
        // Table 2's "up to 1% of n" power nodes, floored at 4 so that
        // small (quick-scale) networks don't degenerate to a single-node
        // anchor (a q=1 anchor can lock onto a malicious top scorer; see
        // the power-node-count ablation).
        params.max_power_nodes = (n / 100).max(4);
        // Polluted matrices under α = 0 can have a tiny spectral gap (the
        // collusion clusters exchange mass almost periodically), pushing
        // the δ test out to hundreds of cycles. The RMS metric is stable
        // long before; cap the budget so the sweep stays tractable.
        params.max_cycles = 40;
        let policy = if alpha > 0.0 {
            PriorPolicy::PowerNodesEachCycle
        } else {
            PriorPolicy::Fixed(Prior::uniform(n))
        };
        // "Calculated": the exact value of the aggregation the honest
        // protocol would compute over the same observed matrix.
        let truth = exact_reference(&scenario.polluted, &params.clone().with_delta(1e-10), &policy);
        // "Gossiped": the same aggregation with malicious peers forging
        // their pushes.
        let corruption: Vec<(NodeId, Vec<u32>, f64)> = scenario
            .population
            .malicious_peers()
            .into_iter()
            .map(|node| {
                let targets = match scenario.population.kind(node) {
                    gossiptrust_workloads::population::PeerKind::Collusive(g) => scenario
                        .population
                        .collusion_group(g)
                        .into_iter()
                        .map(|m| m.0)
                        .collect(),
                    _ => vec![node.0],
                };
                (node, targets, DISTURBANCE_FACTOR)
            })
            .collect();
        let agg = GossipTrustAggregator::new(params)
            .with_prior_policy(policy.clone())
            .with_corruption(corruption);
        let mut rng = StdRng::seed_from_u64(1_000 + seed);
        let report = agg.aggregate(&scenario.polluted, &mut rng);
        samples.push(truth.rms_relative_error(&report.vector).expect("same n"));
    }
    (mean(&samples), stddev(&samples))
}

/// The α settings of Fig. 4(a).
pub const FIG4A_ALPHAS: [f64; 3] = [0.0, 0.15, 0.30];
/// The γ grid of Fig. 4(a). Beyond ~25% *independent* attackers the
/// adaptive power-node anchor itself becomes attackable (a poisoned top-q
/// re-amplifies the pollution) — EXPERIMENTS.md discusses the regime; the
/// paper's claims live in this band.
pub const FIG4A_GAMMAS: [f64; 4] = [0.05, 0.10, 0.20, 0.30];

/// Fig. 4(a): RMS aggregation error vs the percentage of *independent*
/// malicious peers, for α ∈ {0, 0.15, 0.3}. Expected shape: error grows
/// with γ; α = 0.15 (power nodes) beats α = 0 (everyone equal); pushing α
/// to 0.3 does not improve on 0.15.
pub fn fig4a(scale: Scale) -> Vec<Fig4Row> {
    let n = scale.n();
    let mut rows = Vec::new();
    for &alpha in &FIG4A_ALPHAS {
        for &gamma in &FIG4A_GAMMAS {
            let (m, s) =
                fig4_cell(n, ThreatConfig::independent(gamma), alpha, scale.seeds(), 23_000);
            rows.push(Fig4Row { alpha, gamma, group_size: 0, rms_error: m, std_error: s });
        }
    }
    rows
}

/// Collusion group sizes of Fig. 4(b).
pub const FIG4B_GROUP_SIZES: [usize; 4] = [2, 4, 6, 8];
/// Collusive fractions of Fig. 4(b).
pub const FIG4B_GAMMAS: [f64; 2] = [0.05, 0.10];

/// Fig. 4(b): RMS aggregation error under *collusive* malicious peers, vs
/// collusion group size, for 5% and 10% collusive peers, with power nodes
/// on (α = 0.15) and off (α = 0). Expected shape: error grows with group
/// size and γ; power nodes reduce the error.
pub fn fig4b(scale: Scale) -> Vec<Fig4Row> {
    let n = scale.n();
    let mut rows = Vec::new();
    for &alpha in &[0.0, 0.15] {
        for &gamma in &FIG4B_GAMMAS {
            for &gs in &FIG4B_GROUP_SIZES {
                let (m, s) =
                    fig4_cell(n, ThreatConfig::collusive(gamma, gs), alpha, scale.seeds(), 29_000);
                rows.push(Fig4Row { alpha, gamma, group_size: gs, rms_error: m, std_error: s });
            }
        }
    }
    rows
}

// ----------------------------------------------------------------- Fig. 5

/// One point of Fig. 5.
#[derive(Clone, Debug, Serialize)]
pub struct Fig5Row {
    /// System name ("GossipTrust" or "NoTrust").
    pub system: String,
    /// Fraction of malicious peers γ.
    pub gamma: f64,
    /// Overall query success rate.
    pub success_rate: f64,
    /// Steady-state success rate (final 3 refresh windows).
    pub steady_rate: f64,
    /// Stddev of the steady-state rate over seeds.
    pub std_rate: f64,
}

/// The γ grid of Fig. 5.
pub const FIG5_GAMMAS: [f64; 5] = [0.0, 0.10, 0.20, 0.30, 0.40];

/// Fig. 5: query success rate of simulated P2P file sharing, GossipTrust
/// vs NoTrust, as malicious peers increase. Expected shape: GossipTrust
/// degrades slowly (≈ 80% at γ = 0.2); NoTrust falls roughly linearly with
/// the malicious fraction.
pub fn fig5(scale: Scale) -> Vec<Fig5Row> {
    let n = scale.n();
    let mut rows = Vec::new();
    for &(system, selection, backend) in &[
        ("GossipTrust", SelectionPolicy::HighestReputation, ReputationBackend::Gossip),
        ("NoTrust", SelectionPolicy::Random, ReputationBackend::None),
    ] {
        for &gamma in &FIG5_GAMMAS {
            let mut overall = Vec::new();
            let mut steady = Vec::new();
            for seed in 0..scale.seeds() {
                let mut rng = StdRng::seed_from_u64(41_000 + seed);
                let pop = Population::generate(n, &ThreatConfig::independent(gamma), &mut rng);
                // Cap cycles per refresh: a slow-mixing polluted matrix must
                // not stall the whole session (same rationale as Fig. 4).
                let mut params = Params::for_network(n);
                params.max_cycles = 50;
                let config =
                    SessionConfig { selection, backend, ..SessionConfig::gossiptrust(params) }
                        .scaled_down(scale.fig5_files(), scale.fig5_update_interval());
                let mut session = FileSharingSession::new(pop, config, &mut rng);
                session.run_queries(scale.fig5_queries(), &mut rng);
                let report = session.finish(&mut rng);
                overall.push(report.success_rate());
                steady.push(report.steady_state_success_rate(3));
            }
            rows.push(Fig5Row {
                system: system.to_string(),
                gamma,
                success_rate: mean(&overall),
                steady_rate: mean(&steady),
                std_rate: stddev(&steady),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_the_papers_worked_example() {
        let (rows, consensus) = table1();
        assert!((consensus - 0.2).abs() < 1e-6, "consensus {consensus}");
        // Step-1 values from §4.2's text: N1 = (0.1, 0.5) with β = 0.2,
        // N2 has β = 0, N3 is the ∞ case.
        let n1 = &rows[0];
        assert!((n1.x - 0.1).abs() < 1e-12 && (n1.w - 0.5).abs() < 1e-12);
        assert!((n1.beta.unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(rows[1].beta, Some(0.0));
        assert_eq!(rows[2].beta, None);
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn fig3_steps_grow_with_tighter_epsilon() {
        let rows = fig3(Scale::Quick);
        // Group by n; within each group steps must not decrease as ε
        // tightens (allowing for the min-step floor at loose ε).
        for &n in &Scale::Quick.fig3_sizes() {
            let per_n: Vec<&Fig3Row> = rows.iter().filter(|r| r.n == n).collect();
            assert_eq!(per_n.len(), FIG3_EPSILONS.len());
            let loosest = per_n.first().unwrap().mean_steps;
            let tightest = per_n.last().unwrap().mean_steps;
            assert!(
                tightest > loosest,
                "n={n}: steps at ε=1e-5 ({tightest}) vs ε=1e-1 ({loosest})"
            );
        }
    }

    #[test]
    fn table3_tradeoff_shape() {
        let rows = table3(Scale::Quick);
        assert_eq!(rows.len(), 3);
        // Tighter settings (row 0) take more cycles and steps and leave
        // less error than the loosest (row 2).
        assert!(rows[0].cycles >= rows[2].cycles);
        assert!(rows[0].gossip_steps > rows[2].gossip_steps);
        assert!(rows[0].aggregation_error < rows[2].aggregation_error);
        assert!(rows[0].gossip_error < rows[2].gossip_error * 10.0);
    }

    #[test]
    fn fig4a_error_grows_with_gamma() {
        let rows = fig4a(Scale::Quick);
        for &alpha in &FIG4A_ALPHAS {
            let per: Vec<&Fig4Row> = rows.iter().filter(|r| r.alpha == alpha).collect();
            let lo = per.first().unwrap().rms_error;
            let hi = per.last().unwrap().rms_error;
            assert!(hi > lo * 0.8, "alpha={alpha}: {lo} -> {hi} should trend up");
        }
    }

    #[test]
    fn fig5_gossiptrust_beats_notrust_under_attack() {
        let rows = fig5(Scale::Quick);
        let get = |system: &str, gamma: f64| {
            rows.iter()
                .find(|r| r.system == system && (r.gamma - gamma).abs() < 1e-9)
                .unwrap()
                .steady_rate
        };
        // At γ = 0 both are high; under attack GossipTrust holds up better.
        assert!(get("NoTrust", 0.0) > 0.8);
        assert!(get("GossipTrust", 0.0) > 0.8);
        let gt = get("GossipTrust", 0.3);
        let nt = get("NoTrust", 0.3);
        assert!(gt > nt, "GossipTrust {gt} vs NoTrust {nt} at γ=0.3");
    }
}
