//! Bloom-filter reputation-rank storage.
//!
//! Scores are quantized into `levels` rank buckets by *rank position*
//! (bucket 0 = most reputable `n/levels` peers, etc. — geometric bucketing
//! by score is also supported). Each bucket's membership is one Bloom
//! filter. Queries probe buckets from the top; the first hit gives the
//! peer's (approximate) rank level. False positives can only *promote* a
//! peer by a level or two at the configured rate — the ablation experiment
//! measures exactly that rank error as a function of the per-bucket
//! false-positive budget.

use crate::bloom::BloomFilter;
use gossiptrust_core::id::NodeId;
use gossiptrust_core::vector::ReputationVector;

/// Configuration of the rank storage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankStorageConfig {
    /// Number of rank levels (buckets).
    pub levels: usize,
    /// Per-bucket Bloom false-positive rate.
    pub fp_rate: f64,
}

impl Default for RankStorageConfig {
    fn default() -> Self {
        RankStorageConfig { levels: 8, fp_rate: 0.01 }
    }
}

/// Bloom-bucketed storage of a reputation ranking.
#[derive(Clone, Debug)]
pub struct RankStorage {
    filters: Vec<BloomFilter>,
    levels: usize,
    n: usize,
}

impl RankStorage {
    /// Build from a converged reputation vector: peers are rank-ordered and
    /// split into `levels` equal-size buckets (bucket 0 most reputable).
    pub fn build(vector: &ReputationVector, config: RankStorageConfig) -> Self {
        assert!(config.levels >= 1, "need at least one level");
        assert!(config.levels <= vector.n(), "more levels than peers");
        let n = vector.n();
        let per_bucket = n.div_ceil(config.levels);
        let ranking = vector.ranking();
        let mut filters = Vec::with_capacity(config.levels);
        for chunk in ranking.chunks(per_bucket) {
            let mut f = BloomFilter::with_rate(per_bucket.max(8), config.fp_rate);
            for &id in chunk {
                f.insert(id.0 as u64);
            }
            filters.push(f);
        }
        // chunks() can yield fewer buckets than requested when n is small;
        // pad with empty filters so level indices stay stable.
        while filters.len() < config.levels {
            filters.push(BloomFilter::with_rate(per_bucket.max(8), config.fp_rate));
        }
        RankStorage { filters, levels: config.levels, n }
    }

    /// Number of rank levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Number of peers stored.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Query a peer's rank level: probes buckets from the most reputable
    /// down and returns the first hit (false positives can only promote).
    /// Returns `levels − 1` when no bucket claims the peer (every peer was
    /// inserted somewhere, so a full miss means the bottom bucket's bits
    /// lost to nothing — treat as least reputable).
    pub fn rank_level(&self, peer: NodeId) -> usize {
        for (level, f) in self.filters.iter().enumerate() {
            if f.contains(peer.0 as u64) {
                return level;
            }
        }
        self.levels - 1
    }

    /// Total storage footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.filters.iter().map(BloomFilter::byte_size).sum()
    }

    /// Bytes an exact `(u32 id, f64 score)` table would need.
    pub fn exact_table_bytes(&self) -> usize {
        self.n * (4 + 8)
    }

    /// Mean absolute rank-level error against the true bucketing of
    /// `vector` (0 = lossless; false positives produce small promotions).
    pub fn mean_rank_error(&self, vector: &ReputationVector) -> f64 {
        let per_bucket = self.n.div_ceil(self.levels);
        let ranking = vector.ranking();
        let mut total = 0usize;
        for (true_rank, &id) in ranking.iter().enumerate() {
            let true_level = true_rank / per_bucket;
            let stored = self.rank_level(id);
            total += true_level.abs_diff(stored);
        }
        total as f64 / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_vector(n: usize) -> ReputationVector {
        let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(1.2)).collect();
        ReputationVector::from_weights(weights).unwrap()
    }

    #[test]
    fn top_peers_land_in_top_bucket() {
        let v = skewed_vector(100);
        let s = RankStorage::build(&v, RankStorageConfig::default());
        let ranking = v.ranking();
        // The single most reputable peer is always claimed by level 0.
        assert_eq!(s.rank_level(ranking[0]), 0);
    }

    #[test]
    fn rank_error_is_small_at_low_fp_rate() {
        let v = skewed_vector(500);
        let s = RankStorage::build(&v, RankStorageConfig { levels: 8, fp_rate: 0.001 });
        let err = s.mean_rank_error(&v);
        assert!(err < 0.1, "mean rank error {err}");
    }

    #[test]
    fn higher_fp_rate_means_more_error_but_less_space() {
        let v = skewed_vector(500);
        let tight = RankStorage::build(&v, RankStorageConfig { levels: 8, fp_rate: 0.001 });
        let loose = RankStorage::build(&v, RankStorageConfig { levels: 8, fp_rate: 0.2 });
        assert!(loose.byte_size() < tight.byte_size());
        assert!(loose.mean_rank_error(&v) >= tight.mean_rank_error(&v));
    }

    #[test]
    fn storage_beats_exact_table() {
        let v = skewed_vector(1000);
        let s = RankStorage::build(&v, RankStorageConfig::default());
        assert!(
            s.byte_size() < s.exact_table_bytes() / 2,
            "bloom {} vs exact {}",
            s.byte_size(),
            s.exact_table_bytes()
        );
    }

    #[test]
    fn errors_are_only_promotions() {
        let v = skewed_vector(300);
        let s = RankStorage::build(&v, RankStorageConfig { levels: 6, fp_rate: 0.05 });
        let per_bucket = 300usize.div_ceil(6);
        for (true_rank, &id) in v.ranking().iter().enumerate() {
            let true_level = true_rank / per_bucket;
            let stored = s.rank_level(id);
            assert!(stored <= true_level, "peer {id}: stored {stored} > true {true_level}");
        }
    }

    #[test]
    fn single_level_maps_everything_to_zero() {
        let v = skewed_vector(50);
        let s = RankStorage::build(&v, RankStorageConfig { levels: 1, fp_rate: 0.01 });
        for i in 0..50u32 {
            assert_eq!(s.rank_level(NodeId(i)), 0);
        }
        assert_eq!(s.mean_rank_error(&v), 0.0);
    }

    #[test]
    #[should_panic(expected = "more levels than peers")]
    fn too_many_levels_rejected() {
        let v = skewed_vector(4);
        let _ = RankStorage::build(&v, RankStorageConfig { levels: 10, fp_rate: 0.01 });
    }
}
