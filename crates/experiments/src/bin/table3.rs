//! Reproduce Table 3: gossip and aggregation errors under three
//! convergence-threshold settings.

use gossiptrust_experiments::figures::table3;
use gossiptrust_experiments::{gossip_threads, Scale, TextTable};

fn main() {
    let scale = Scale::from_env();
    println!(
        "Table 3 — errors under three (ε, δ) settings, n = {} ({scale:?} scale)\n",
        scale.n()
    );
    println!("gossip threads: {} (override with GT_THREADS)\n", gossip_threads());
    let rows = table3(scale);
    let mut t = TextTable::new(vec![
        "epsilon",
        "delta",
        "aggregation cycles",
        "gossip steps",
        "gossip error",
        "aggregation error",
    ]);
    for r in &rows {
        t.row(vec![
            format!("{:.0e}", r.epsilon),
            format!("{:.0e}", r.delta),
            format!("{:.1}", r.cycles),
            format!("{:.1}", r.gossip_steps),
            format!("{:.2e}", r.gossip_error),
            format!("{:.2e}", r.aggregation_error),
        ]);
    }
    print!("{}", t.render());
    println!("\npaper (1000 nodes): (1e-5,1e-4): 19 cycles / 35 steps / 1e-6 / 1.6e-4");
    println!("                    (1e-4,1e-3): 15 cycles / 28 steps / 7e-6 / 7.3e-4");
    println!("                    (1e-3,1e-2):  5 cycles / 22 steps / 1.6e-4 / 3.8e-3");
}
