//! Error types for the core crate.

use std::fmt;

/// Errors produced by core reputation-math operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A vector or matrix dimension did not match the network size.
    DimensionMismatch {
        /// Expected dimension (network size `n`).
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// A node id was out of range for the network size.
    NodeOutOfRange {
        /// Offending node index.
        node: usize,
        /// Network size `n`.
        n: usize,
    },
    /// A probability/score was outside its valid domain.
    InvalidScore {
        /// Human-readable description of the violated constraint.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An iterative computation failed to converge within its budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            CoreError::NodeOutOfRange { node, n } => {
                write!(f, "node index {node} out of range for network of {n} nodes")
            }
            CoreError::InvalidScore { what, value } => {
                write!(f, "invalid score: {what} (value {value})")
            }
            CoreError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::DimensionMismatch { expected: 10, actual: 3 };
        assert!(e.to_string().contains("expected 10"));
        let e = CoreError::NodeOutOfRange { node: 12, n: 10 };
        assert!(e.to_string().contains("12"));
        let e = CoreError::InvalidScore { what: "negative rating", value: -1.0 };
        assert!(e.to_string().contains("negative rating"));
        let e = CoreError::NoConvergence { iterations: 99 };
        assert!(e.to_string().contains("99"));
    }
}
