//! Runtime invariant checkers behind the `invariants` cargo feature.
//!
//! The checker *functions* are always compiled (so the negative tests that
//! prove each checker trips run in every test configuration); what the
//! feature gates is the **call sites** on the hot paths — matrix builds,
//! vector constructors, every gossip step's mass accounting, and the
//! service's snapshot-replay check. With the feature off the checks cost
//! nothing; with it on, a violated conservation law panics at the step that
//! broke it instead of surfacing cycles later as a skewed score.
//!
//! Tolerances are absolute-ish (`scale = max(|expected|, 1)`): the masses
//! and sums checked here are all `O(1)` by construction (`Σv = 1`, per-node
//! weight mass 1), so a relative tolerance on the expected value alone
//! would go degenerate near zero.

use crate::matrix::TrustMatrix;

/// Tolerance for conserved-mass comparisons. Push-sum masses are sums of
/// `O(n)` doubles of magnitude ≤ 1; accumulated rounding is `O(n·2⁻⁵²)`,
/// orders of magnitude below this, while a genuine accounting bug loses at
/// least half of one node's component (`~1/(2n)`), orders above it.
pub const MASS_TOL: f64 = 1e-9;

/// Tolerance for row-stochasticity of published trust matrices.
pub const STOCHASTIC_TOL: f64 = 1e-9;

/// Tolerance for score-vector normalization (`Σ_i v_i = 1`).
pub const SCORE_SUM_TOL: f64 = 1e-9;

/// Assert a conserved quantity matches its accounting.
///
/// # Panics
/// Panics when `actual` differs from `expected` by more than
/// [`MASS_TOL`] × `max(|expected|, 1)`.
pub fn check_mass(component: usize, expected: f64, actual: f64, context: &str) {
    let scale = expected.abs().max(1.0);
    assert!(
        (actual - expected).abs() <= MASS_TOL * scale,
        "invariant violated [{context}]: component {component} mass {actual} \
         diverged from conservation accounting {expected} (|Δ| = {})",
        (actual - expected).abs()
    );
}

/// Assert a trust matrix is row-stochastic (every stored row sums to 1
/// within [`STOCHASTIC_TOL`], entries in `[0, 1]`; dangling rows are
/// implicit-uniform and always stochastic).
///
/// # Panics
/// Panics when the matrix is not row-stochastic.
pub fn check_row_stochastic(matrix: &TrustMatrix, context: &str) {
    assert!(
        matrix.is_row_stochastic(STOCHASTIC_TOL),
        "invariant violated [{context}]: trust matrix (n = {}) is not row-stochastic",
        matrix.n()
    );
}

/// Assert a score vector is a probability vector: non-empty, every
/// component finite and non-negative, components summing to 1 within
/// [`SCORE_SUM_TOL`].
///
/// # Panics
/// Panics when any component is negative or non-finite, or the sum is off.
pub fn check_score_vector(scores: &[f64], context: &str) {
    assert!(!scores.is_empty(), "invariant violated [{context}]: empty score vector");
    for (i, &v) in scores.iter().enumerate() {
        assert!(
            v.is_finite() && v >= 0.0,
            "invariant violated [{context}]: score[{i}] = {v} is negative or non-finite"
        );
    }
    let sum: f64 = scores.iter().sum();
    assert!(
        (sum - 1.0).abs() <= SCORE_SUM_TOL,
        "invariant violated [{context}]: scores sum to {sum}, expected 1"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conserved_mass_passes_within_tolerance() {
        check_mass(0, 1.0, 1.0 + 1e-12, "test");
        check_mass(3, 0.0, 5e-10, "test");
    }

    #[test]
    #[should_panic(expected = "diverged from conservation accounting")]
    fn mass_violating_merge_trips_the_checker() {
        // Half of one node's component went missing: exactly the class of
        // bug the accounting exists to catch.
        check_mass(7, 1.0, 1.0 - 0.5 / 128.0, "test");
    }

    #[test]
    fn probability_vector_passes() {
        check_score_vector(&[0.25, 0.25, 0.5], "test");
    }

    #[test]
    #[should_panic(expected = "negative or non-finite")]
    fn negative_score_trips_the_checker() {
        check_score_vector(&[0.6, -0.1, 0.5], "test");
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn unnormalized_scores_trip_the_checker() {
        check_score_vector(&[0.6, 0.6], "test");
    }

    #[test]
    #[should_panic(expected = "empty score vector")]
    fn empty_scores_trip_the_checker() {
        check_score_vector(&[], "test");
    }
}
