//! Ablations beyond the paper's figures, covering the design choices
//! DESIGN.md calls out: the baseline comparison against EigenTrust-over-DHT,
//! Bloom-filter storage, link loss, power-node count, gossip scope, churn
//! and the convergence-detector patience.

use crate::figures::scenario_for;
use crate::scale::Scale;
use crate::stats::{mean, stddev};
use gossiptrust_baselines::eigentrust::EigenTrust;
use gossiptrust_baselines::powertrust::PowerTrust;
use gossiptrust_core::prelude::*;
use gossiptrust_core::qof;
use gossiptrust_filesharing::{
    FileSharingSession, ObjectRepConfig, ReputationBackend, SelectionPolicy, SessionConfig,
};
use gossiptrust_gossip::cycle::{GossipTrustAggregator, PriorPolicy};
use gossiptrust_gossip::engine::EngineConfig;
use gossiptrust_simnet::sim::{AsyncGossipSim, SimConfig, TargetScope};
use gossiptrust_simnet::{ChurnModel, LinkModel, Overlay};
use gossiptrust_storage::{RankStorage, RankStorageConfig};
use gossiptrust_workloads::population::Population;
use gossiptrust_workloads::population::ThreatConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

// ---------------------------------------------------- EigenTrust vs gossip

/// One row comparing GossipTrust with EigenTrust-over-DHT.
#[derive(Clone, Debug, Serialize)]
pub struct BaselineRow {
    /// System name.
    pub system: String,
    /// RMS error against the exact eigenvector.
    pub rms_vs_oracle: f64,
    /// Aggregation cycles.
    pub cycles: f64,
    /// Application messages (gossip pushes / DHT fetches).
    pub messages: f64,
    /// Network messages (gossip pushes / DHT hop traversals).
    pub network_messages: f64,
}

/// Accuracy and message cost: GossipTrust vs EigenTrust on the same
/// (benign) trust matrix. Expected shape: both reach the oracle's answer;
/// EigenTrust pays DHT lookup hops per fetch while GossipTrust pays
/// `n` messages per gossip step — the structured overlay buys fewer,
/// bigger rounds.
pub fn eigentrust_vs_gossip(scale: Scale) -> Vec<BaselineRow> {
    let n = scale.n().min(500); // EigenTrust's per-edge routing is O(nnz·hops); cap for time
    let seeds = scale.seeds();
    let mut gossip_err = Vec::new();
    let mut gossip_cycles = Vec::new();
    let mut gossip_msgs = Vec::new();
    let mut gossip_net = Vec::new();
    let mut et_err = Vec::new();
    let mut et_cycles = Vec::new();
    let mut et_msgs = Vec::new();
    let mut et_net = Vec::new();
    let mut pt_err = Vec::new();
    let mut pt_cycles = Vec::new();
    let mut pt_msgs = Vec::new();
    let mut pt_net = Vec::new();
    for seed in 0..seeds {
        let scenario = scenario_for(n, ThreatConfig::benign(), 61_000 + seed);
        let params = Params::for_network(n);
        let oracle = PowerIteration::new(params.clone().with_delta(1e-10))
            .solve(&scenario.honest, &Prior::uniform(n))
            .vector;

        let agg = GossipTrustAggregator::new(params.clone())
            .with_prior_policy(PriorPolicy::Fixed(Prior::uniform(n)));
        let mut rng = StdRng::seed_from_u64(71 + seed);
        let g = agg.aggregate(&scenario.honest, &mut rng);
        gossip_err.push(oracle.rms_relative_error(&g.vector).expect("same n"));
        gossip_cycles.push(g.cycles as f64);
        let stats = g.total_stats();
        gossip_msgs.push(stats.messages_sent as f64);
        gossip_net.push(stats.messages_sent as f64);

        let et = EigenTrust::new(params.clone(), vec![]);
        let r = et.compute(&scenario.honest);
        et_err.push(oracle.rms_relative_error(&r.vector).expect("same n"));
        et_cycles.push(r.cycles as f64);
        et_msgs.push(r.fetches as f64);
        et_net.push(r.dht_hops as f64);

        let pt = PowerTrust::new(params);
        let r = pt.compute(&scenario.honest);
        // PowerTrust converges to its *own* power-node-anchored fixed
        // point; compare it against the matching oracle.
        let pt_oracle = PowerIteration::new(Params::for_network(n).with_delta(1e-10))
            .solve(&scenario.honest, &Prior::over_nodes(n, &r.power_nodes))
            .vector;
        pt_err.push(pt_oracle.rms_relative_error(&r.vector).expect("same n"));
        pt_cycles.push((r.initial_cycles + r.accelerated_cycles) as f64);
        pt_msgs.push(r.fetches as f64);
        pt_net.push(r.dht_hops as f64);
    }
    vec![
        BaselineRow {
            system: "GossipTrust".into(),
            rms_vs_oracle: mean(&gossip_err),
            cycles: mean(&gossip_cycles),
            messages: mean(&gossip_msgs),
            network_messages: mean(&gossip_net),
        },
        BaselineRow {
            system: "EigenTrust/DHT".into(),
            rms_vs_oracle: mean(&et_err),
            cycles: mean(&et_cycles),
            messages: mean(&et_msgs),
            network_messages: mean(&et_net),
        },
        BaselineRow {
            system: "PowerTrust/DHT".into(),
            rms_vs_oracle: mean(&pt_err),
            cycles: mean(&pt_cycles),
            messages: mean(&pt_msgs),
            network_messages: mean(&pt_net),
        },
    ]
}

// ------------------------------------------------------------ Bloom storage

/// One row of the Bloom storage ablation.
#[derive(Clone, Debug, Serialize)]
pub struct BloomRow {
    /// Per-bucket false-positive budget.
    pub fp_rate: f64,
    /// Bytes used by the Bloom rank storage.
    pub bloom_bytes: usize,
    /// Bytes an exact table would use.
    pub exact_bytes: usize,
    /// Mean absolute rank-level error.
    pub mean_rank_error: f64,
}

/// Storage-vs-accuracy for Bloom-filter reputation ranks. Expected shape:
/// looser fp budgets shrink storage and grow (promotion-only) rank error.
pub fn bloom_storage(scale: Scale) -> Vec<BloomRow> {
    let n = scale.n();
    let scenario = scenario_for(n, ThreatConfig::benign(), 67_000);
    let vector = PowerIteration::new(Params::for_network(n))
        .solve(&scenario.honest, &Prior::uniform(n))
        .vector;
    [0.0001, 0.001, 0.01, 0.05, 0.2]
        .into_iter()
        .map(|fp_rate| {
            let storage = RankStorage::build(&vector, RankStorageConfig { levels: 8, fp_rate });
            BloomRow {
                fp_rate,
                bloom_bytes: storage.byte_size(),
                exact_bytes: storage.exact_table_bytes(),
                mean_rank_error: storage.mean_rank_error(&vector),
            }
        })
        .collect()
}

// ------------------------------------------------------------- Loss sweep

/// One row of the link-loss ablation.
#[derive(Clone, Debug, Serialize)]
pub struct LossRow {
    /// Injected message-loss probability.
    pub loss_rate: f64,
    /// Mean gossip steps per cycle.
    pub steps: f64,
    /// Mean per-cycle gossip error.
    pub gossip_error: f64,
    /// RMS of the final vector against the exact eigenvector.
    pub final_error: f64,
}

/// Fault tolerance: the lock-step engine under increasing message loss.
/// Expected shape: the protocol keeps converging; errors grow smoothly
/// with the loss rate (mass loss biases individual components, ratios
/// degrade gracefully) — the paper's "tolerates link failures" claim.
pub fn loss_tolerance(scale: Scale) -> Vec<LossRow> {
    let n = scale.n().min(500);
    let seeds = scale.seeds();
    [0.0, 0.02, 0.05, 0.10, 0.20]
        .into_iter()
        .map(|loss| {
            let mut steps = Vec::new();
            let mut gerr = Vec::new();
            let mut ferr = Vec::new();
            for seed in 0..seeds {
                let scenario = scenario_for(n, ThreatConfig::benign(), 71_000 + seed);
                let params = Params::for_network(n).with_delta(0.05_f64.max(loss));
                let engine_cfg = EngineConfig::from_params(&params, n).with_loss_rate(loss);
                let agg = GossipTrustAggregator::new(params.clone())
                    .with_engine_config(engine_cfg)
                    .with_prior_policy(PriorPolicy::Fixed(Prior::uniform(n)));
                let mut rng = StdRng::seed_from_u64(73 + seed);
                let report = agg.aggregate(&scenario.honest, &mut rng);
                let exact = PowerIteration::new(params.with_delta(1e-10))
                    .solve(&scenario.honest, &Prior::uniform(n))
                    .vector;
                steps.push(report.mean_gossip_steps());
                gerr.push(mean(
                    &report.per_cycle.iter().map(|c| c.gossip_error).collect::<Vec<_>>(),
                ));
                ferr.push(exact.rms_relative_error(&report.vector).expect("same n"));
            }
            LossRow {
                loss_rate: loss,
                steps: mean(&steps),
                gossip_error: mean(&gerr),
                final_error: mean(&ferr),
            }
        })
        .collect()
}

// ------------------------------------------------------- Power-node count

/// One row of the power-node-count ablation.
#[derive(Clone, Debug, Serialize)]
pub struct PowerNodeRow {
    /// Power-node budget q.
    pub q: usize,
    /// RMS Eq. 8 error against the honest ground truth.
    pub rms_error: f64,
    /// Stddev over seeds.
    pub std_error: f64,
}

/// How many power nodes to keep: q sweep at fixed γ = 0.2 independent
/// attackers, α = 0.15. Expected shape: a handful of power nodes already
/// buys the robustness; very small q is brittle (single-anchor lock-in),
/// very large q dilutes toward the uniform prior.
pub fn power_node_count(scale: Scale) -> Vec<PowerNodeRow> {
    let n = scale.n();
    let seeds = scale.seeds();
    let mut qs: Vec<usize> = vec![1, n / 200, n / 100, n / 20, n / 5]
        .into_iter()
        .map(|q| q.max(1))
        .collect();
    qs.dedup();
    qs.into_iter()
        .map(|q| {
            let mut samples = Vec::new();
            for seed in 0..seeds {
                let scenario = scenario_for(n, ThreatConfig::independent(0.2), 79_000 + seed);
                let mut params = Params::for_network(n);
                params.max_power_nodes = q;
                // Per-q honest reference, same policy — isolates the
                // pollution-induced distortion for each q.
                let truth = gossiptrust_gossip::cycle::exact_reference(
                    &scenario.honest,
                    &params.clone().with_delta(1e-10),
                    &PriorPolicy::PowerNodesEachCycle,
                );
                let agg = GossipTrustAggregator::new(params)
                    .with_prior_policy(PriorPolicy::PowerNodesEachCycle);
                let mut rng = StdRng::seed_from_u64(83 + seed);
                let report = agg.aggregate(&scenario.polluted, &mut rng);
                samples.push(truth.rms_relative_error(&report.vector).expect("same n"));
            }
            PowerNodeRow { q, rms_error: mean(&samples), std_error: stddev(&samples) }
        })
        .collect()
}

// ---------------------------------------------------------- Gossip scope

/// One row of the gossip-scope ablation.
#[derive(Clone, Debug, Serialize)]
pub struct ScopeRow {
    /// "global" or "neighbors".
    pub scope: String,
    /// Mean virtual convergence time (µs) of one async cycle.
    pub virtual_time_us: f64,
    /// Mean relative estimate error vs the exact cycle iterate.
    pub mean_rel_error: f64,
}

/// Whole-id-space gossip targets vs overlay-neighbor-only targets in the
/// asynchronous simulator. Expected shape: both converge; neighbor-only
/// is slower on a sparse overlay (mixing time of the graph vs the
/// complete graph).
pub fn gossip_scope(scale: Scale) -> Vec<ScopeRow> {
    let n = scale.n().min(300);
    let seeds = scale.seeds();
    [TargetScope::Global, TargetScope::Neighbors]
        .into_iter()
        .map(|scope| {
            let mut times = Vec::new();
            let mut errors = Vec::new();
            for seed in 0..seeds {
                let scenario = scenario_for(n, ThreatConfig::benign(), 83_000 + seed);
                let mut rng = StdRng::seed_from_u64(89 + seed);
                let overlay = Overlay::random_k_out(n, 4, &mut rng);
                let config = SimConfig {
                    link: LinkModel::fixed(30_000),
                    epsilon: 1e-3,
                    scope,
                    ..Default::default()
                };
                let mut sim = AsyncGossipSim::new(overlay, config);
                let v0 = ReputationVector::uniform(n);
                let prior = Prior::uniform(n);
                let report = sim.run_cycle(&scenario.honest, &v0, &prior, 0.15, &mut rng);
                let mut exact = vec![0.0; n];
                scenario
                    .honest
                    .transpose_mul(v0.values(), &mut exact)
                    .expect("same n");
                prior.mix_into(&mut exact, 0.15);
                let err = exact
                    .iter()
                    .zip(&report.estimate)
                    .map(|(&e, &g)| (e - g).abs() / e.max(1e-12))
                    .sum::<f64>()
                    / n as f64;
                times.push(report.virtual_time as f64);
                errors.push(err);
            }
            ScopeRow {
                scope: match scope {
                    TargetScope::Global => "global".into(),
                    TargetScope::Neighbors => "neighbors".into(),
                },
                virtual_time_us: mean(&times),
                mean_rel_error: mean(&errors),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Churn

/// One row of the churn ablation.
#[derive(Clone, Debug, Serialize)]
pub struct ChurnRow {
    /// Long-run peer availability (fraction online).
    pub availability: f64,
    /// Mean relative estimate error vs the exact cycle iterate.
    pub mean_rel_error: f64,
    /// Fraction of runs whose ε-consensus probe fired before the deadline.
    pub converged_fraction: f64,
}

/// Peer dynamics: one async gossip cycle under churn of decreasing
/// availability. Expected shape: errors grow as availability drops (mass
/// frozen on offline peers skews the consensus), degrading gracefully —
/// the paper's "adaptive to peer dynamics" claim.
pub fn churn_resilience(scale: Scale) -> Vec<ChurnRow> {
    let n = scale.n().min(300);
    let seeds = scale.seeds();
    // (mean_session, mean_offline) pairs: 100%, ~95%, ~87.5%, ~75% online.
    let models: Vec<(Option<ChurnModel>, f64)> = vec![
        (None, 1.0),
        (Some(ChurnModel::new(95_000_000, 5_000_000)), 0.95),
        (Some(ChurnModel::new(35_000_000, 5_000_000)), 0.875),
        (Some(ChurnModel::new(15_000_000, 5_000_000)), 0.75),
    ];
    models
        .into_iter()
        .map(|(churn, availability)| {
            let mut errors = Vec::new();
            let mut converged = 0usize;
            for seed in 0..seeds {
                let scenario = scenario_for(n, ThreatConfig::benign(), 89_000 + seed);
                let mut rng = StdRng::seed_from_u64(97 + seed);
                let overlay = Overlay::random_k_out(n, 4, &mut rng);
                let config = SimConfig {
                    link: LinkModel::fixed(30_000),
                    epsilon: 1e-3,
                    churn,
                    max_time: 120_000_000,
                    ..Default::default()
                };
                let mut sim = AsyncGossipSim::new(overlay, config);
                let v0 = ReputationVector::uniform(n);
                let prior = Prior::uniform(n);
                let report = sim.run_cycle(&scenario.honest, &v0, &prior, 0.15, &mut rng);
                if report.converged {
                    converged += 1;
                }
                let mut exact = vec![0.0; n];
                scenario
                    .honest
                    .transpose_mul(v0.values(), &mut exact)
                    .expect("same n");
                prior.mix_into(&mut exact, 0.15);
                let err = exact
                    .iter()
                    .zip(&report.estimate)
                    .map(|(&e, &g)| (e - g).abs() / e.max(1e-12))
                    .sum::<f64>()
                    / n as f64;
                errors.push(err);
            }
            ChurnRow {
                availability,
                mean_rel_error: mean(&errors),
                converged_fraction: converged as f64 / seeds as f64,
            }
        })
        .collect()
}

// -------------------------------------------------------------- Patience

/// One row of the detector-patience ablation.
#[derive(Clone, Debug, Serialize)]
pub struct PatienceRow {
    /// Consecutive calm steps required before a node declares convergence.
    pub patience: usize,
    /// Mean gossip steps per cycle.
    pub steps: f64,
    /// Mean per-cycle gossip error.
    pub gossip_error: f64,
}

/// Our convergence detector adds a `patience` parameter over the paper's
/// single-step test. Expected shape: higher patience costs a few steps and
/// buys lower gossip error; patience 1 (the literal paper test) is the
/// cheapest and noisiest.
pub fn patience(scale: Scale) -> Vec<PatienceRow> {
    let n = scale.n().min(500);
    let seeds = scale.seeds();
    [1usize, 2, 3, 5]
        .into_iter()
        .map(|patience| {
            let mut steps = Vec::new();
            let mut gerr = Vec::new();
            for seed in 0..seeds {
                let scenario = scenario_for(n, ThreatConfig::benign(), 97_000 + seed);
                let mut params = Params::for_network(n);
                params.gossip_patience = patience;
                params.max_cycles = 3;
                params.delta = 1e-15;
                let agg = GossipTrustAggregator::new(params)
                    .with_prior_policy(PriorPolicy::Fixed(Prior::uniform(n)));
                let mut rng = StdRng::seed_from_u64(101 + seed);
                let report = agg.aggregate(&scenario.honest, &mut rng);
                steps.push(report.mean_gossip_steps());
                gerr.push(mean(
                    &report.per_cycle.iter().map(|c| c.gossip_error).collect::<Vec<_>>(),
                ));
            }
            PatienceRow { patience, steps: mean(&steps), gossip_error: mean(&gerr) }
        })
        .collect()
}

// ------------------------------------------------------------------ QoF

/// One row of the Quality-of-Feedback ablation.
#[derive(Clone, Debug, Serialize)]
pub struct QofRow {
    /// Whether QoF discounting was applied.
    pub qof_enabled: bool,
    /// Fraction of malicious peers γ.
    pub gamma: f64,
    /// RMS Eq. 8 error against the honest ground truth.
    pub rms_error: f64,
    /// Stddev over seeds.
    pub std_error: f64,
    /// Mean QoF score of honest peers.
    pub honest_qof: f64,
    /// Mean QoF score of malicious peers.
    pub malicious_qof: f64,
}

/// §7's Quality-of-Feedback extension: discount each rater's row by its
/// feedback credibility before aggregating. Expected shape: malicious
/// raters (whose opinions invert the consensus) get lower QoF scores, and
/// the discounted aggregation lands closer to the honest ground truth.
pub fn qof_discounting(scale: Scale) -> Vec<QofRow> {
    let n = scale.n().min(500);
    let seeds = scale.seeds();
    let mut rows = Vec::new();
    for &gamma in &[0.1f64, 0.2, 0.3] {
        for &enabled in &[false, true] {
            let mut errors = Vec::new();
            let mut honest_q = Vec::new();
            let mut malicious_q = Vec::new();
            for seed in 0..seeds {
                let scenario = scenario_for(n, ThreatConfig::independent(gamma), 101_000 + seed);
                let params = Params::for_network(n);
                let truth = PowerIteration::new(params.clone().with_delta(1e-10))
                    .solve(&scenario.honest, &Prior::uniform(n))
                    .vector;
                // One bootstrap pass gives the reputation weights for the
                // credibility computation.
                let bootstrap = PowerIteration::new(params.clone())
                    .solve(&scenario.polluted, &Prior::uniform(n))
                    .vector;
                let credibility = qof::feedback_credibility(&scenario.polluted, &bootstrap, 0.05);
                let avg = |ids: &[gossiptrust_core::NodeId]| {
                    ids.iter().map(|&i| credibility.score(i)).sum::<f64>() / ids.len().max(1) as f64
                };
                honest_q.push(avg(&scenario.population.honest_peers()));
                malicious_q.push(avg(&scenario.population.malicious_peers()));
                let matrix = if enabled {
                    qof::discount_matrix(&scenario.polluted, &credibility)
                } else {
                    scenario.polluted.clone()
                };
                let estimate = PowerIteration::new(params.with_delta(1e-10))
                    .solve(&matrix, &Prior::uniform(n))
                    .vector;
                errors.push(truth.rms_relative_error(&estimate).expect("same n"));
            }
            rows.push(QofRow {
                qof_enabled: enabled,
                gamma,
                rms_error: mean(&errors),
                std_error: stddev(&errors),
                honest_qof: mean(&honest_q),
                malicious_qof: mean(&malicious_q),
            });
        }
    }
    rows
}

// ------------------------------------------------------- Object reputation

/// One row of the object-reputation ablation.
#[derive(Clone, Debug, Serialize)]
pub struct ObjectRepRow {
    /// Whether copy-level filtering was enabled.
    pub objects_enabled: bool,
    /// Fraction of malicious peers γ.
    pub gamma: f64,
    /// Steady-state query success rate.
    pub steady_rate: f64,
    /// Stddev over seeds.
    pub std_rate: f64,
}

/// §7's object-reputation extension on top of the Fig. 5 session (random
/// selection isolates the copy-filter effect from peer reputation).
/// Expected shape: filtering community-flagged copies lifts the success
/// rate, most at higher γ.
pub fn object_reputation(scale: Scale) -> Vec<ObjectRepRow> {
    let n = scale.n().min(300);
    let seeds = scale.seeds();
    let queries = scale.fig5_queries().min(4_000);
    let window = (queries / 8).max(100);
    let files = 200; // concentrated votes: the filter needs repeat downloads
    let mut rows = Vec::new();
    for &gamma in &[0.1f64, 0.2, 0.3] {
        for &enabled in &[false, true] {
            let mut rates = Vec::new();
            for seed in 0..seeds {
                let mut rng = StdRng::seed_from_u64(103_000 + seed);
                let pop = Population::generate(n, &ThreatConfig::independent(gamma), &mut rng);
                let mut config = SessionConfig {
                    selection: SelectionPolicy::Random,
                    backend: ReputationBackend::None,
                    ..SessionConfig::gossiptrust(Params::for_network(n))
                }
                .scaled_down(files, window);
                if enabled {
                    config = config.with_object_reputation(ObjectRepConfig::default());
                }
                let mut session = FileSharingSession::new(pop, config, &mut rng);
                session.run_queries(queries, &mut rng);
                rates.push(session.finish(&mut rng).steady_state_success_rate(3));
            }
            rows.push(ObjectRepRow {
                objects_enabled: enabled,
                gamma,
                steady_rate: mean(&rates),
                std_rate: stddev(&rates),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eigentrust_comparison_has_all_systems_accurate() {
        let rows = eigentrust_vs_gossip(Scale::Quick);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.rms_vs_oracle < 0.1, "{} error {}", r.system, r.rms_vs_oracle);
            assert!(r.messages > 0.0);
        }
    }

    #[test]
    fn qof_scores_separate_honest_from_malicious() {
        let rows = qof_discounting(Scale::Quick);
        for r in &rows {
            assert!(
                r.honest_qof > r.malicious_qof,
                "γ={}: honest {} vs malicious {}",
                r.gamma,
                r.honest_qof,
                r.malicious_qof
            );
        }
        // Discounting should not hurt, and typically helps, at every γ.
        for &gamma in &[0.1f64, 0.2, 0.3] {
            let without = rows
                .iter()
                .find(|r| !r.qof_enabled && (r.gamma - gamma).abs() < 1e-9)
                .unwrap();
            let with = rows
                .iter()
                .find(|r| r.qof_enabled && (r.gamma - gamma).abs() < 1e-9)
                .unwrap();
            assert!(
                with.rms_error <= without.rms_error * 1.1,
                "γ={gamma}: QoF {} vs plain {}",
                with.rms_error,
                without.rms_error
            );
        }
    }

    #[test]
    fn object_reputation_rows_have_sane_rates() {
        let rows = object_reputation(Scale::Quick);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.steady_rate > 0.3 && r.steady_rate <= 1.0, "rate {}", r.steady_rate);
        }
    }

    #[test]
    fn bloom_rows_trade_space_for_error() {
        let rows = bloom_storage(Scale::Quick);
        assert!(rows.first().unwrap().bloom_bytes > rows.last().unwrap().bloom_bytes);
        assert!(rows.first().unwrap().mean_rank_error <= rows.last().unwrap().mean_rank_error);
    }

    #[test]
    fn loss_rows_degrade_gracefully() {
        let rows = loss_tolerance(Scale::Quick);
        let clean = rows.first().unwrap();
        let lossy = rows.last().unwrap();
        assert!(clean.final_error < lossy.final_error + 1e-9);
        assert!(clean.gossip_error < 0.01);
    }

    #[test]
    fn patience_rows_show_the_tradeoff() {
        let rows = patience(Scale::Quick);
        assert!(rows.first().unwrap().steps <= rows.last().unwrap().steps);
    }
}
