//! The workspace's only sanctioned clock surface.
//!
//! Every wall/monotonic clock read in the workspace lives behind these two
//! types; the `gt-lint` `time-source` rule rejects `Instant::now` and
//! `SystemTime::now` tokens everywhere else. Keeping the clock behind a
//! two-type API makes the determinism audit lexical: a kernel that never
//! names `Stopwatch` or `Deadline` provably never reads time.

use std::time::{Duration, Instant};

/// A started monotonic timer. Construction is the clock read; elapsed
/// queries read the clock again and subtract.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Time since [`start`](Stopwatch::start).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX` (≈ 584 years).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed milliseconds as a float, for human-facing reports.
    pub fn elapsed_ms_f64(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }
}

/// A fixed point in the future, for timeout/backoff bookkeeping.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    end: Instant,
}

impl Deadline {
    /// A deadline `dur` from now.
    pub fn after(dur: Duration) -> Self {
        Deadline { end: Instant::now() + dur }
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        Instant::now() >= self.end
    }

    /// Will the deadline pass within the next `dur`? Used to decide
    /// whether a planned sleep/backoff would overshoot the budget.
    pub fn expires_within(&self, dur: Duration) -> bool {
        Instant::now() + dur >= self.end
    }

    /// Time left until the deadline (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.end.saturating_duration_since(Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        std::thread::sleep(Duration::from_millis(2));
        let b = sw.elapsed_ns();
        assert!(b > a);
        assert!(sw.elapsed_ms_f64() >= 2.0);
    }

    #[test]
    fn deadline_expires_and_reports_remaining() {
        let d = Deadline::after(Duration::from_millis(5));
        assert!(!d.expired());
        assert!(d.expires_within(Duration::from_secs(1)));
        assert!(d.remaining() <= Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(7));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
    }
}
