//! The reputation daemon: ingest feedback, aggregate per epoch, answer
//! queries over line-delimited JSON TCP.
//!
//! ```text
//! GT_N=1000 GT_EPOCH_MS=1000 GT_SERVICE_ADDR=127.0.0.1:7401 \
//!     cargo run --release -p gossiptrust-serve --bin serve
//! ```
//!
//! Knobs (all strictly parsed — a malformed value aborts startup):
//!
//! * `GT_N` — peer population (default 1000)
//! * `GT_EPOCH_MS` — epoch period in milliseconds (default 1000)
//! * `GT_SERVICE_ADDR` — TCP listen address (default `127.0.0.1:7401`)
//! * `GT_THREADS` — gossip engine worker threads (default: machine)
//! * `GT_CONN_LIMIT` — concurrent-connection cap (default 1024)
//! * `GT_READ_TIMEOUT_MS` — per-line read deadline (default 30000)
//! * `GT_EPOCH_DEADLINE_MS` — epoch abandonment budget (default 30000)
//! * `GT_INGEST_QUEUE` — unfolded-backlog bound before load-shedding
//!   (default 65536)
//! * `GT_WAL_DIR` — write-ahead-log directory; set it to make every
//!   acknowledged feedback event crash-durable (default: no WAL)
//! * `GT_WAL_GROUP_MAX` — most records the WAL writer thread coalesces
//!   into one group commit (default 512)
//! * `GT_WAL_GROUP_US` — group-commit drain deadline in microseconds;
//!   the writer stops absorbing queued submissions and flushes once the
//!   deadline passes (default 200)
//! * `GT_CHAOS_SEED` — arm the deterministic fault injector with this
//!   seed (a chaos *drill* mode: epoch panics/overruns and response-frame
//!   faults are injected on purpose; never set it in production)
//! * `GT_METRICS_ADDR` — bind a Prometheus scrape listener here (default:
//!   unset = no listener; the `metrics` verb on the main port always works)
//! * `GT_OBS_EVENTS` — trace-event ring capacity (default 4096)

use gossiptrust_core::params::{
    chaos_seed, conn_limit, epoch_deadline_ms, ingest_queue, metrics_addr, network_size_override,
    obs_events, read_timeout_ms, service_addr, wal_dir, wal_group_max, wal_group_us,
};
use gossiptrust_serve::chaos::{ChaosConfig, ChaosInjector};
use gossiptrust_serve::server::ServerConfig;
use gossiptrust_serve::service::{ReputationService, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let n = network_size_override().unwrap_or(1000);
    let addr = service_addr();
    let mut config = ServiceConfig::new(n)
        .with_epoch_interval_from_env(1_000)
        .with_ingest_queue(ingest_queue())
        .with_epoch_deadline(Duration::from_millis(epoch_deadline_ms()))
        .with_obs_events(obs_events());
    if let Some(dir) = wal_dir() {
        config = config
            .with_wal_dir(dir)
            .with_wal_group(wal_group_max(), wal_group_us());
    }
    let drill = chaos_seed();
    if let Some(seed) = drill {
        config = config.with_chaos(ChaosConfig::soak(seed));
    }
    let interval = config.epoch_interval.expect("interval set from env");
    let wal_note = match &config.wal_dir {
        Some(dir) => format!(", WAL in {}", dir.display()),
        None => String::new(),
    };

    let service = ReputationService::start(config);
    println!(
        "gossiptrust-serve: n = {n}, epoch every {} ms, listening on {addr}{wal_note}",
        interval.as_millis()
    );
    let server_config = ServerConfig {
        max_conns: conn_limit(),
        read_timeout: Duration::from_millis(read_timeout_ms()),
        // The response path gets its own injector (same seed, independent
        // RNG stream from the epoch-path injector inside the service).
        chaos: drill.map(|seed| Arc::new(ChaosInjector::new(ChaosConfig::soak(seed)))),
        ..ServerConfig::default()
    };
    if drill.is_some() {
        println!("gossiptrust-serve: CHAOS DRILL armed (GT_CHAOS_SEED) — injecting faults");
    }

    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("build tokio runtime");
    let scrape_addr = metrics_addr();
    let scrape_handle = service.handle();
    let serve_handle = service.handle();
    let result = runtime.block_on(async move {
        if let Some(scrape_addr) = scrape_addr {
            println!("gossiptrust-serve: metrics scrape listener on {scrape_addr}");
            tokio::spawn(async move {
                let listener = tokio::net::TcpListener::bind(&scrape_addr)
                    .await
                    .expect("bind GT_METRICS_ADDR");
                gossiptrust_serve::server::serve_metrics_on(scrape_handle, listener)
                    .await
                    .expect("metrics listener");
            });
        }
        gossiptrust_serve::server::serve_with(serve_handle, &addr, server_config).await
    });
    // serve() only returns on a bind/accept error; surface it and stop the
    // epoch loop cleanly.
    service.shutdown();
    result.expect("serve");
}
