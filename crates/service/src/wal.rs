//! CRC-framed write-ahead log for the feedback path.
//!
//! Without a WAL, a crashed node loses its entire [`crate::log::FeedbackLog`]
//! — every local-trust row it accumulated since startup — and rejoins the
//! network as a blank rater. The paper's fault-tolerance story (§6.1)
//! assumes peers keep their local trust across churn; this module is what
//! makes that true for the real service: every acknowledged feedback event
//! is appended here *before* it is applied to the in-memory log, and a
//! restarting service replays the file back into the log, rebuilding the
//! exact same rows (and therefore, after a fold, the bit-identical
//! `TrustMatrix`).
//!
//! ## On-disk format
//!
//! ```text
//! header  (16 bytes): magic "GTWAL1\0\0" | n: u64 LE
//! record  (24 bytes): len: u32 LE (= 16) | crc32(payload): u32 LE | payload
//! payload (16 bytes): rater: u32 LE | target: u32 LE | score: f64 bits LE
//! ```
//!
//! The CRC is CRC-32 (IEEE, reflected — the zlib/PNG polynomial),
//! hand-rolled because the workspace pins its dependency set. Scores are
//! stored as raw bit patterns, so replay is bit-exact (`-0.0`, subnormals
//! and all).
//!
//! ## Crash tolerance
//!
//! [`Wal::open`] scans the whole file on startup and accepts the longest
//! prefix of valid records. The first torn record (truncated mid-write),
//! CRC mismatch (bit flip), bad length tag or out-of-range peer id ends
//! the replay: the file is truncated back to the end of the last valid
//! record and appends continue from there. A torn tail therefore costs at
//! most the events that were never acknowledged; acknowledged events are
//! written (and pushed to the OS) before the acknowledgment, so a process
//! crash — `kill -9` included — cannot lose them. (Surviving power loss
//! would additionally need an fsync per append; that durability class is
//! out of scope and documented in DESIGN.md §9.)
//!
//! Compaction is deliberately absent: the feedback log is append-only and
//! cumulative across epochs (folds never consume it), so the WAL is simply
//! the same history in durable form.

use crate::log::FeedbackEvent;
use gossiptrust_core::id::NodeId;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File header magic (8 bytes): format name + version.
const MAGIC: [u8; 8] = *b"GTWAL1\0\0";
/// Header length: magic + `n` as u64 LE.
const HEADER_LEN: u64 = 16;
/// Payload length of the (single) record type.
const PAYLOAD_LEN: usize = 16;
/// Full framed record length: len tag + crc + payload.
const RECORD_LEN: usize = 8 + PAYLOAD_LEN;
/// Name of the log file inside the WAL directory.
const FILE_NAME: &str = "feedback.wal";

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
static CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE, reflected) of `bytes` — the zlib/PNG checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        // The & 0xFF mask keeps the probe in range; .get keeps the loop
        // panic-free even so (the unwrap_or arm is dead code).
        let probe = CRC_TABLE
            .get(((crc ^ b as u32) & 0xFF) as usize)
            .copied()
            .unwrap_or(0);
        crc = (crc >> 8) ^ probe;
    }
    !crc
}

/// What a startup replay recovered.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WalReplay {
    /// Every valid record, in append order.
    pub events: Vec<FeedbackEvent>,
    /// Bytes discarded from the tail (0 = the file was clean).
    pub truncated_bytes: u64,
}

/// An open write-ahead log: appends go to the end of the recovered prefix.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

/// Encode one event as a framed record (len | crc | payload).
pub fn encode_record(event: &FeedbackEvent) -> [u8; RECORD_LEN] {
    let mut payload = [0u8; PAYLOAD_LEN];
    let fields = event
        .rater
        .0
        .to_le_bytes()
        .into_iter()
        .chain(event.target.0.to_le_bytes())
        .chain(event.score.to_bits().to_le_bytes());
    for (dst, src) in payload.iter_mut().zip(fields) {
        *dst = src;
    }
    let mut record = [0u8; RECORD_LEN];
    let frame = (PAYLOAD_LEN as u32)
        .to_le_bytes()
        .into_iter()
        .chain(crc32(&payload).to_le_bytes())
        .chain(payload);
    for (dst, src) in record.iter_mut().zip(frame) {
        *dst = src;
    }
    record
}

/// Little-endian `u32` at byte offset `off`; `None` when out of range.
fn le_u32(bytes: &[u8], off: usize) -> Option<u32> {
    let window = bytes.get(off..off.checked_add(4)?)?;
    Some(window.iter().rev().fold(0u32, |acc, &b| (acc << 8) | b as u32))
}

/// Little-endian `u64` at byte offset `off`; `None` when out of range.
fn le_u64(bytes: &[u8], off: usize) -> Option<u64> {
    let window = bytes.get(off..off.checked_add(8)?)?;
    Some(window.iter().rev().fold(0u64, |acc, &b| (acc << 8) | b as u64))
}

/// Decode the payload of one framed record (CRC already checked by the
/// caller); `None` when the payload is short, which replay treats as a
/// torn tail.
fn decode_payload(payload: &[u8]) -> Option<FeedbackEvent> {
    let rater = le_u32(payload, 0)?;
    let target = le_u32(payload, 4)?;
    let bits = le_u64(payload, 8)?;
    Some(FeedbackEvent {
        rater: NodeId(rater),
        target: NodeId(target),
        score: f64::from_bits(bits),
    })
}

impl Wal {
    /// Open (or create) the WAL for an `n`-peer population under `dir`,
    /// replaying any existing records.
    ///
    /// Creates `dir` if missing. An existing file must carry the right
    /// magic and the same `n` — a population mismatch means the operator
    /// pointed the service at another deployment's log, which must abort
    /// loudly rather than replay nonsense ids. The recovered prefix rule
    /// is described in the module docs; after `open` returns, the file
    /// contains exactly the records in [`WalReplay::events`].
    pub fn open(dir: &Path, n: usize) -> io::Result<(Wal, WalReplay)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(FILE_NAME);
        let mut file = OpenOptions::new().read(true).write(true).create(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.is_empty() {
            let mut header = [0u8; HEADER_LEN as usize];
            let fields = MAGIC.into_iter().chain((n as u64).to_le_bytes());
            for (dst, src) in header.iter_mut().zip(fields) {
                *dst = src;
            }
            file.write_all(&header)?;
            file.flush()?;
            return Ok((Wal { file, path }, WalReplay::default()));
        }
        if bytes.len() < HEADER_LEN as usize || bytes.get(0..8) != Some(&MAGIC[..]) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a GTWAL1 file", path.display()),
            ));
        }
        // The length check above guarantees the read; u64::MAX is an
        // impossible peer count, so the fallback can only mismatch.
        let header_n = le_u64(&bytes, 8).unwrap_or(u64::MAX);
        if header_n != n as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{} was written for n = {header_n}, this service has n = {n}",
                    path.display()
                ),
            ));
        }

        // Accept the longest valid prefix of records; anything after the
        // first torn/corrupt record is a tail to discard.
        let mut events = Vec::new();
        let mut good_end = HEADER_LEN as usize;
        while let Some(frame) = bytes.get(good_end..good_end + RECORD_LEN) {
            let (Some(len), Some(crc), Some(payload)) =
                (le_u32(frame, 0), le_u32(frame, 4), frame.get(8..))
            else {
                break;
            };
            if len as usize != PAYLOAD_LEN || crc32(payload) != crc {
                break;
            }
            let Some(event) = decode_payload(payload) else {
                break;
            };
            if event.rater.index() >= n || event.target.index() >= n {
                break;
            }
            events.push(event);
            good_end += RECORD_LEN;
        }
        let truncated_bytes = (bytes.len() - good_end) as u64;
        if truncated_bytes > 0 {
            file.set_len(good_end as u64)?;
        }
        file.seek(SeekFrom::Start(good_end as u64))?;
        Ok((Wal { file, path }, WalReplay { events, truncated_bytes }))
    }

    /// Append one event. The record is written (and pushed to the OS)
    /// before this returns — only after that may the caller acknowledge.
    pub fn append(&mut self, event: &FeedbackEvent) -> io::Result<()> {
        self.file.write_all(&encode_record(event))?;
        self.file.flush()
    }

    /// Append a batch of ratings from one rater as one contiguous write.
    pub fn append_batch(&mut self, rater: NodeId, ratings: &[(NodeId, f64)]) -> io::Result<()> {
        let mut buf = Vec::with_capacity(ratings.len() * RECORD_LEN);
        for &(target, score) in ratings {
            buf.extend_from_slice(&encode_record(&FeedbackEvent { rater, target, score }));
        }
        self.file.write_all(&buf)?;
        self.file.flush()
    }

    /// Path of the underlying log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique, collision-free scratch directory per test invocation —
    /// process id + a process-local counter, no ambient entropy.
    fn scratch_dir(tag: &str) -> PathBuf {
        static SERIAL: AtomicU64 = AtomicU64::new(0);
        let serial = SERIAL.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("gt-wal-test-{}-{tag}-{serial}", std::process::id()));
        // A leftover directory from a crashed previous run would alias
        // this test's state; start clean.
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn ev(rater: u32, target: u32, score: f64) -> FeedbackEvent {
        FeedbackEvent { rater: NodeId(rater), target: NodeId(target), score }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vectors for CRC-32/ISO-HDLC (the zlib polynomial).
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn fresh_open_then_append_then_replay() {
        let dir = scratch_dir("roundtrip");
        let (mut wal, replay) = Wal::open(&dir, 16).expect("open fresh");
        assert!(replay.events.is_empty());
        assert_eq!(replay.truncated_bytes, 0);
        wal.append(&ev(1, 2, 3.5)).expect("append");
        wal.append_batch(NodeId(7), &[(NodeId(0), 1.0), (NodeId(3), -0.0)])
            .expect("append batch");
        drop(wal);

        let (_wal, replay) = Wal::open(&dir, 16).expect("reopen");
        assert_eq!(replay.events, vec![ev(1, 2, 3.5), ev(7, 0, 1.0), ev(7, 3, -0.0)]);
        // Bit-exact: -0.0 survives as -0.0.
        assert!(replay.events[2].score.is_sign_negative());
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = scratch_dir("torn");
        let (mut wal, _) = Wal::open(&dir, 8).expect("open");
        wal.append(&ev(0, 1, 1.0)).expect("append");
        wal.append(&ev(2, 3, 2.0)).expect("append");
        let path = wal.path().to_path_buf();
        drop(wal);

        // Tear the last record mid-write: chop 5 bytes off the tail.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("tear");

        let (mut wal, replay) = Wal::open(&dir, 8).expect("recover");
        assert_eq!(replay.events, vec![ev(0, 1, 1.0)]);
        assert_eq!(replay.truncated_bytes, (RECORD_LEN - 5) as u64);

        // The log is usable again: new appends land after the good prefix.
        wal.append(&ev(4, 5, 3.0)).expect("append after recovery");
        drop(wal);
        let (_, replay) = Wal::open(&dir, 8).expect("reopen");
        assert_eq!(replay.events, vec![ev(0, 1, 1.0), ev(4, 5, 3.0)]);
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn bit_flip_stops_replay_at_the_flip() {
        let dir = scratch_dir("bitflip");
        let (mut wal, _) = Wal::open(&dir, 8).expect("open");
        for i in 0..4 {
            wal.append(&ev(i, (i + 1) % 8, 1.0 + i as f64)).expect("append");
        }
        let path = wal.path().to_path_buf();
        drop(wal);

        // Flip one payload bit in the third record.
        let mut bytes = std::fs::read(&path).expect("read");
        let offset = HEADER_LEN as usize + 2 * RECORD_LEN + 12;
        bytes[offset] ^= 0x40;
        std::fs::write(&path, &bytes).expect("flip");

        let (_, replay) = Wal::open(&dir, 8).expect("recover");
        assert_eq!(replay.events, vec![ev(0, 1, 1.0), ev(1, 2, 2.0)]);
        assert_eq!(replay.truncated_bytes, 2 * RECORD_LEN as u64);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn out_of_range_id_is_treated_as_corruption() {
        let dir = scratch_dir("range");
        let (mut wal, _) = Wal::open(&dir, 8).expect("open");
        wal.append(&ev(0, 1, 1.0)).expect("append");
        // Forge a valid-CRC record whose rater is out of range for n = 8.
        let forged = encode_record(&ev(99, 1, 1.0));
        wal.file.write_all(&forged).expect("forge");
        wal.file.flush().expect("flush");
        drop(wal);

        let (_, replay) = Wal::open(&dir, 8).expect("recover");
        assert_eq!(replay.events, vec![ev(0, 1, 1.0)]);
        assert_eq!(replay.truncated_bytes, RECORD_LEN as u64);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn population_mismatch_refuses_to_open() {
        let dir = scratch_dir("mismatch");
        let (wal, _) = Wal::open(&dir, 8).expect("open");
        drop(wal);
        let err = Wal::open(&dir, 9).expect_err("n mismatch must refuse");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn foreign_file_refuses_to_open() {
        let dir = scratch_dir("foreign");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join(FILE_NAME), b"definitely not a WAL file").expect("write");
        let err = Wal::open(&dir, 8).expect_err("bad magic must refuse");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    proptest! {
        /// Any event sequence round-trips bit-exactly through the framing,
        /// and any tail truncation recovers the longest intact prefix.
        #[test]
        fn records_roundtrip_and_survive_any_truncation(
            raw in proptest::collection::vec((0u32..32, 0u32..32, -1e9f64..1e9), 0..40),
            cut in 0usize..=40 * RECORD_LEN,
        ) {
            let events: Vec<FeedbackEvent> =
                raw.iter().map(|&(r, t, s)| ev(r, t, s)).collect();
            let dir = scratch_dir("prop");
            let (mut wal, _) = Wal::open(&dir, 32).expect("open");
            for e in &events {
                wal.append(e).expect("append");
            }
            let path = wal.path().to_path_buf();
            drop(wal);

            // Clean reopen: everything comes back bit-for-bit.
            let (_, replay) = Wal::open(&dir, 32).expect("reopen");
            prop_assert_eq!(replay.events.len(), events.len());
            for (got, want) in replay.events.iter().zip(&events) {
                prop_assert_eq!(got.rater, want.rater);
                prop_assert_eq!(got.target, want.target);
                prop_assert_eq!(got.score.to_bits(), want.score.to_bits());
            }

            // Truncate `cut` bytes off the tail: the replay is exactly the
            // records that remained whole.
            let bytes = std::fs::read(&path).expect("read");
            let cut = cut.min(bytes.len() - HEADER_LEN as usize);
            std::fs::write(&path, &bytes[..bytes.len() - cut]).expect("truncate");
            let (_, replay) = Wal::open(&dir, 32).expect("recover");
            let whole = (bytes.len() - HEADER_LEN as usize - cut) / RECORD_LEN;
            prop_assert_eq!(replay.events.len(), whole);
            for (got, want) in replay.events.iter().zip(&events) {
                prop_assert_eq!(got.score.to_bits(), want.score.to_bits());
            }
            std::fs::remove_dir_all(&dir).expect("cleanup");
        }
    }
}
