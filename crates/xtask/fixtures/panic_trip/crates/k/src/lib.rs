//! Panic-path fixture (trip): a `.unwrap()` one hop from the accept loop.
#![forbid(unsafe_code)]

/// Request-serving root.
pub fn serve(line: &str) -> u32 {
    handle(line)
}

fn handle(line: &str) -> u32 {
    line.parse::<u32>().unwrap()
}
