//! End-to-end check that gt-lint catches a seeded violation of **every**
//! rule class in a synthetic workspace — the lint's own acceptance gate:
//! float `==`, a stray `env::var`, `HashMap` in a kernel, a crate root
//! missing `#![forbid(unsafe_code)]`, and an entropy source.

use gossiptrust_xtask::run_lint;
use std::fs;
use std::path::PathBuf;

/// Build a minimal fake workspace with one violation per rule.
fn seeded_workspace() -> PathBuf {
    let root = std::env::temp_dir().join(format!("gt_lint_seeded_{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    for dir in ["crates/gossip/src", "crates/app/src", "src"] {
        fs::create_dir_all(root.join(dir)).unwrap();
    }
    fs::write(root.join("Cargo.toml"), "[workspace]").unwrap();
    // Root facade: clean.
    fs::write(root.join("src/lib.rs"), "#![forbid(unsafe_code)]\n").unwrap();
    // Kernel crate: missing forbid(unsafe_code) + HashMap + float ==.
    fs::write(
        root.join("crates/gossip/src/lib.rs"),
        "use std::collections::HashMap;\n\
         pub fn merge(m: &HashMap<u32, f64>, x: f64) -> bool {\n\
             let _ = m.len();\n\
             x == 0.5\n\
         }\n",
    )
    .unwrap();
    // App crate: stray env read + ambient entropy.
    fs::write(
        root.join("crates/app/src/lib.rs"),
        "#![forbid(unsafe_code)]\n\
         pub fn knob() -> bool { std::env::var(\"GT_X\").is_ok() }\n\
         pub fn roll() -> u32 { let _r = rand::thread_rng(); 4 }\n",
    )
    .unwrap();
    root
}

#[test]
fn every_rule_class_catches_its_seeded_violation() {
    let root = seeded_workspace();
    let report = run_lint(&root).unwrap();
    let rules_hit: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    for rule in [
        "float-eq",
        "env-var",
        "hash-iter",
        "forbid-unsafe",
        "entropy",
    ] {
        assert!(rules_hit.contains(&rule), "rule {rule} not caught; hit = {rules_hit:?}");
    }
    // And each violation points at the right file.
    for v in &report.violations {
        let expect = match v.rule {
            "float-eq" | "hash-iter" | "forbid-unsafe" => "crates/gossip/src/lib.rs",
            "env-var" | "entropy" => "crates/app/src/lib.rs",
            other => panic!("unexpected rule {other}"),
        };
        assert_eq!(v.path, expect, "{v:?}");
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn waiving_every_violation_makes_the_tree_clean() {
    let root = seeded_workspace();
    let n_before = run_lint(&root).unwrap().violations.len();
    assert!(n_before >= 5);
    fs::write(
        root.join("lint.toml"),
        "[[allow]]\nrule = \"float-eq\"\npath = \"crates/gossip/src/lib.rs\"\nreason = \"t\"\nexpires = \"2099-12-31\"\n\
         [[allow]]\nrule = \"hash-iter\"\npath = \"crates/gossip/src/lib.rs\"\nreason = \"t\"\nexpires = \"2099-12-31\"\n\
         [[allow]]\nrule = \"forbid-unsafe\"\npath = \"crates/gossip/src/lib.rs\"\nreason = \"t\"\nexpires = \"2099-12-31\"\n\
         [[allow]]\nrule = \"env-var\"\npath = \"crates/app/src/lib.rs\"\nreason = \"t\"\nexpires = \"2099-12-31\"\n\
         [[allow]]\nrule = \"entropy\"\npath = \"crates/app/src/lib.rs\"\nreason = \"t\"\nexpires = \"2099-12-31\"\n",
    )
    .unwrap();
    let report = run_lint(&root).unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
    assert!(report.unused_waivers.is_empty());
    let _ = fs::remove_dir_all(&root);
}
