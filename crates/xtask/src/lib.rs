//! # gossiptrust-xtask
//!
//! Workspace automation, `cargo xtask` style. The one subcommand that
//! matters is **`gt-lint`** (`cargo xtask lint`): a repo-specific static
//! analysis pass that machine-checks the contracts the compiler cannot
//! see. Two layers run on every invocation:
//!
//! - **Per-file token rules** ([`rules`]): float-equality hygiene, the
//!   single env-knob surface, hash-free deterministic kernels,
//!   `#![forbid(unsafe_code)]` coverage, the ban on ambient entropy, and
//!   the obs-only clock surface.
//! - **Workspace call-graph rules** ([`analysis`] over [`parser`] +
//!   [`graph`]): taint reachability into the deterministic kernel entry
//!   points, panic-path freedom for request-serving code, and async
//!   discipline in the tokio front-end.
//!
//! Findings are reported in a human format and, on request, as SARIF
//! 2.1 ([`sarif`]) for CI annotation. A content-hash cache ([`cache`])
//! short-circuits clean re-runs. See `DESIGN.md` §8 for the contract
//! rationale and the documented imprecision of the call-graph
//! approximation.
//!
//! The crate is **dependency-free by design**: the linter is the first CI
//! gate and must build and run before any of the workspace's external
//! dependencies resolve. It therefore walks token streams from its own
//! small lexer ([`lexer`]) rather than a full AST.
//!
//! Waivers live in the checked-in `lint.toml` ([`config`]): one
//! `(rule, path, reason, expires)` tuple per exception, validated
//! strictly — stale entries are warnings, expired entries are errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cache;
pub mod config;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod walk;

use config::LintConfig;
use rules::Violation;
use std::path::Path;

/// Outcome of a full lint run.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Violations that survived the waiver filter (non-empty = fail).
    pub violations: Vec<Violation>,
    /// Waivers present in lint.toml that matched no violation this run.
    /// Reported as warnings — the waiver (or the rule) has gone stale.
    pub unused_waivers: Vec<config::Waiver>,
    /// Waivers whose `expires` date has passed (non-empty = fail).
    pub expired_waivers: Vec<config::Waiver>,
    /// How many files were scanned.
    pub files_scanned: usize,
    /// True when the result came from the clean-run cache.
    pub from_cache: bool,
}

impl LintReport {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.expired_waivers.is_empty()
    }
}

/// Run the full gt-lint pass over the workspace at `root`, using the
/// clean-run cache.
///
/// See [`run_lint_with`] for details.
///
/// # Errors
/// As for [`run_lint_with`].
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    run_lint_with(root, true)
}

/// Run the full gt-lint pass over the workspace at `root`.
///
/// Reads `lint.toml` at the root (absence = no waivers, no workspace
/// analysis), scans every lintable source (see [`walk::rust_sources`]),
/// runs the per-file rules and — when `[analysis]` is configured — the
/// call-graph rule families, and filters violations through the waiver
/// list. With `use_cache`, a content-hash hit from a previous fully-clean
/// run short-circuits the scan.
///
/// # Errors
/// Configuration problems (malformed lint.toml, waivers naming unknown
/// rules or nonexistent files) and unreadable sources are errors — a lint
/// run must never silently skip what it cannot check.
pub fn run_lint_with(root: &Path, use_cache: bool) -> Result<LintReport, String> {
    let config_path = root.join("lint.toml");
    let config_text = if config_path.is_file() {
        std::fs::read_to_string(&config_path).map_err(|e| format!("reading lint.toml: {e}"))?
    } else {
        String::new()
    };
    let config: LintConfig = config::parse(&config_text)?;
    for w in &config.waivers {
        if !root.join(&w.path).is_file() {
            return Err(format!(
                "lint.toml:{}: waiver for ({}, {}) names a file that does not exist",
                w.line, w.rule, w.path
            ));
        }
    }
    let today = config::today_utc();
    let expired_waivers: Vec<config::Waiver> = config::expired(&config.waivers, &today)
        .into_iter()
        .cloned()
        .collect();

    // Read every source once; the contents feed the cache key, the token
    // rules, and the parser.
    let files = walk::rust_sources(root);
    let mut sources: Vec<String> = Vec::with_capacity(files.len());
    let mut key = cache::Fnv::default();
    key.update(cache::LINT_VERSION.as_bytes());
    key.update(config_text.as_bytes());
    for rel in &files {
        let source =
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        key.update(rel.as_bytes());
        key.update(source.as_bytes());
        sources.push(source);
    }
    let key = key.hex();
    if use_cache && expired_waivers.is_empty() {
        if let Some(files_scanned) = cache::is_clean_hit(root, &key) {
            return Ok(LintReport { files_scanned, from_cache: true, ..Default::default() });
        }
    }

    // Layer 1: per-file token rules.
    let mut raw: Vec<Violation> = Vec::new();
    let mut tokens: Vec<Vec<lexer::Token>> = Vec::with_capacity(files.len());
    for (rel, source) in files.iter().zip(&sources) {
        let toks = lexer::tokenize(source);
        raw.extend(rules::check_file(rel, &toks, rules::classify(rel)));
        tokens.push(toks);
    }

    // Layer 2: workspace call-graph rules (configured via [analysis]).
    let run_analysis = !(config.analysis.taint_sinks.is_empty()
        && config.analysis.panic_roots.is_empty()
        && config.analysis.async_paths.is_empty());
    if run_analysis {
        let parsed: Vec<parser::ParsedFile> = files
            .iter()
            .zip(&tokens)
            .map(|(rel, toks)| {
                if rules::classify(rel).is_test_file {
                    // Test files contribute no production graph nodes.
                    parser::ParsedFile { rel: rel.clone(), ..Default::default() }
                } else {
                    parser::parse_file(rel, toks)
                }
            })
            .collect();
        let g = graph::Graph::build(root, &parsed);
        analysis::taint(&parsed, &tokens, &g, &config.analysis, &mut raw);
        analysis::panic_path(&tokens, &g, &config.analysis, &mut raw);
        analysis::async_discipline(&tokens, &g, &config.analysis, &mut raw);
    }

    // Waiver filter.
    let mut violations = Vec::new();
    let mut used = vec![false; config.waivers.len()];
    for v in raw {
        match config
            .waivers
            .iter()
            .position(|w| w.rule == v.rule && w.path == v.path)
        {
            Some(idx) => used[idx] = true,
            None => violations.push(v),
        }
    }
    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    let unused_waivers: Vec<config::Waiver> = config
        .waivers
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(w, _)| w.clone())
        .collect();
    let report = LintReport {
        violations,
        unused_waivers,
        expired_waivers,
        files_scanned: files.len(),
        from_cache: false,
    };
    if use_cache && report.is_clean() && report.unused_waivers.is_empty() {
        cache::record_clean(root, &key, report.files_scanned);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gt_lint_run_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("crates/k/src")).unwrap();
        fs::write(dir.join("Cargo.toml"), "[workspace]").unwrap();
        dir
    }

    #[test]
    fn clean_tree_is_clean_and_caches() {
        let root = scratch("clean");
        fs::write(
            root.join("crates/k/src/lib.rs"),
            "#![forbid(unsafe_code)]\npub fn f(x: f64) -> bool { x > 0.5 }\n",
        )
        .unwrap();
        let report = run_lint(&root).unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.files_scanned, 1);
        assert!(!report.from_cache);
        // Second identical run hits the cache.
        let report = run_lint(&root).unwrap();
        assert!(report.is_clean());
        assert!(report.from_cache);
        assert_eq!(report.files_scanned, 1);
        // An edit invalidates it.
        fs::write(
            root.join("crates/k/src/lib.rs"),
            "#![forbid(unsafe_code)]\npub fn f(x: f64) -> bool { x > 0.25 }\n",
        )
        .unwrap();
        let report = run_lint(&root).unwrap();
        assert!(!report.from_cache);
        // --no-cache never reads nor hits.
        let report = run_lint_with(&root, false).unwrap();
        assert!(!report.from_cache);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn waivers_suppress_and_stale_waivers_surface() {
        let root = scratch("waive");
        fs::write(
            root.join("crates/k/src/lib.rs"),
            "#![forbid(unsafe_code)]\npub fn f(x: f64) -> bool { x == 0.5 }\n",
        )
        .unwrap();
        // Unwaived: one float-eq violation.
        let report = run_lint_with(&root, false).unwrap();
        assert_eq!(report.violations.len(), 1);
        // Waived: clean, waiver used.
        fs::write(
            root.join("lint.toml"),
            "[[allow]]\nrule = \"float-eq\"\npath = \"crates/k/src/lib.rs\"\nreason = \"r\"\n\
             expires = \"2099-12-31\"\n",
        )
        .unwrap();
        let report = run_lint_with(&root, false).unwrap();
        assert!(report.is_clean());
        assert!(report.unused_waivers.is_empty());
        // Over-waived: a second waiver that matches nothing is reported.
        fs::write(
            root.join("lint.toml"),
            "[[allow]]\nrule = \"float-eq\"\npath = \"crates/k/src/lib.rs\"\nreason = \"r\"\n\
             expires = \"2099-12-31\"\n\
             [[allow]]\nrule = \"entropy\"\npath = \"crates/k/src/lib.rs\"\nreason = \"r\"\n\
             expires = \"2099-12-31\"\n",
        )
        .unwrap();
        let report = run_lint_with(&root, false).unwrap();
        assert_eq!(report.unused_waivers.len(), 1);
        assert_eq!(report.unused_waivers[0].rule, "entropy");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn expired_waivers_fail_the_run() {
        let root = scratch("expired");
        fs::write(
            root.join("crates/k/src/lib.rs"),
            "#![forbid(unsafe_code)]\npub fn f(x: f64) -> bool { x == 0.5 }\n",
        )
        .unwrap();
        fs::write(
            root.join("lint.toml"),
            "[[allow]]\nrule = \"float-eq\"\npath = \"crates/k/src/lib.rs\"\nreason = \"r\"\n\
             expires = \"2020-01-01\"\n",
        )
        .unwrap();
        let report = run_lint_with(&root, false).unwrap();
        // The waiver still suppresses the violation but its expiry fails
        // the run — renew (with a fresh justification) or fix the code.
        assert!(report.violations.is_empty());
        assert_eq!(report.expired_waivers.len(), 1);
        assert!(!report.is_clean());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn analysis_rules_run_when_configured() {
        let root = scratch("analysis");
        fs::write(
            root.join("crates/k/src/lib.rs"),
            "#![forbid(unsafe_code)]\n\
             pub fn step_slab() { helper(); }\n\
             fn helper() { let _ = Instant::now(); }\n",
        )
        .unwrap();
        // Without [analysis]: only the lexical time-source rule fires.
        let report = run_lint_with(&root, false).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "time-source");
        // With [analysis]: the taint rule fires too.
        fs::write(root.join("lint.toml"), "[analysis]\ntaint_sinks = [\"step_slab\"]\n").unwrap();
        let report = run_lint_with(&root, false).unwrap();
        assert!(report.violations.iter().any(|v| v.rule == "taint-clock"), "{report:?}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn waiver_for_missing_file_is_an_error() {
        let root = scratch("missing");
        fs::write(root.join("crates/k/src/lib.rs"), "#![forbid(unsafe_code)]\n").unwrap();
        fs::write(
            root.join("lint.toml"),
            "[[allow]]\nrule = \"float-eq\"\npath = \"crates/gone.rs\"\nreason = \"r\"\n\
             expires = \"2099-12-31\"\n",
        )
        .unwrap();
        let err = run_lint(&root).unwrap_err();
        assert!(err.contains("does not exist"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }
}
