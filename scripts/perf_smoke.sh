#!/usr/bin/env bash
# Perf smoke: a quick-mode run of the bench_summary binary — the same
# `n × threads` sweep the full benchmark distills, at reduced sizes so it
# finishes in seconds on a shared runner. Produces BENCH_engine.json and
# BENCH_service.json in the repo root (marked "quick": true, with the
# machine's core count), including the per-n speedup sweep and the
# baseline_delta against the committed BENCH_engine.json.
#
#   scripts/perf_smoke.sh           # quick mode (default here)
#   GT_TILE=256 scripts/perf_smoke.sh
#
# This script is advisory: CI runs it non-blocking (shared runners are
# far too noisy to gate on wall time) and uploads the two JSONs as an
# artifact so the perf trajectory stays inspectable per commit. The
# committed BENCH_engine.json is regenerated on a quiet machine with the
# full (non-quick) run: `cargo run --release -p gossiptrust-bench --bin
# bench_summary`.
set -euo pipefail
cd "$(dirname "$0")/.."

GT_BENCH_QUICK=1 cargo run --release -p gossiptrust-bench --bin bench_summary

# Observability overhead proof: instrumented vs bare engine step on twin
# seeded trajectories; exits nonzero (failing this script) if the obs
# hooks cost more than their 2% budget. Writes BENCH_obs.json.
GT_BENCH_QUICK=1 cargo run --release -p gossiptrust-bench --bin obs_overhead

# Service pass: the loadgen bin replays the Zipf query mix, then runs the
# pipelined durable-ingest benchmark (concurrent writers through the
# group-commit WAL vs the serial mutexed-WAL baseline) and writes
# BENCH_service.json with the `baseline_delta_ingest_speedup` field plus
# METRICS_service.prom (the full Prometheus exposition of the query run).
GT_BENCH_QUICK=1 cargo run --release -p gossiptrust-serve --bin loadgen
