//! Criterion micro-benchmarks for GossipTrust components.
//!
//! The benchmark targets live in `benches/`:
//!
//! * `pushsum` — one synchronous scalar push-sum step at several `n`.
//! * `matvec` — the sparse `Sᵀ·v` product (the per-cycle exact cost).
//! * `aggregation` — one vector-gossip step and one full small aggregation.
//! * `engine` — sequential vs pool-parallel vector gossip step at
//!   n ∈ {250, 1000, 4000} (the flat-arena hot path).
//! * `bloom` — Bloom filter insert/query and rank-storage build.
//! * `crypto` — SHA-256, HMAC and envelope seal/verify throughput.
//! * `dht` — Chord lookup routing.
//!
//! These complement (not replace) the experiment harness in
//! `gossiptrust-experiments`, which regenerates the paper's tables and
//! figures; criterion tracks the raw component costs over time. The
//! `bench_summary` binary distills the engine-step numbers into
//! `BENCH_engine.json` for the recorded perf trajectory.

#![forbid(unsafe_code)]
