//! Cross-crate consistency between the three executions of the protocol:
//! the lock-step engine (`gossiptrust-gossip`), the discrete-event
//! simulator (`gossiptrust-simnet`) and the tokio cluster
//! (`gossiptrust-net`). All three must approximate the same exact cycle
//! iterate — asynchrony, latency and real message passing change the cost,
//! not the answer.

use gossiptrust::gossip::engine::{EngineConfig, VectorGossipEngine};
use gossiptrust::net::cluster::{Cluster, NetConfig};
use gossiptrust::prelude::*;
use gossiptrust::simnet::{AsyncGossipSim, LinkModel, Overlay, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario(n: usize, seed: u64) -> Scenario {
    Scenario::generate(
        &ScenarioConfig::small(n, ThreatConfig::benign()),
        &mut StdRng::seed_from_u64(seed),
    )
}

fn exact_cycle(m: &TrustMatrix, v: &ReputationVector, prior: &Prior, alpha: f64) -> Vec<f64> {
    let mut out = vec![0.0; m.n()];
    m.transpose_mul(v.values(), &mut out).unwrap();
    prior.mix_into(&mut out, alpha);
    out
}

fn mean_rel_error(exact: &[f64], estimate: &[f64]) -> f64 {
    exact
        .iter()
        .zip(estimate)
        .map(|(&e, &g)| (e - g).abs() / e.max(1e-12))
        .sum::<f64>()
        / exact.len() as f64
}

/// Lock-step engine and discrete-event simulator agree with the exact
/// iterate (and therefore with each other).
#[test]
fn lockstep_and_event_driven_agree() {
    let n = 40;
    let s = scenario(n, 11);
    let v0 = ReputationVector::uniform(n);
    let prior = Prior::uniform(n);
    let exact = exact_cycle(&s.honest, &v0, &prior, 0.15);

    // Lock-step.
    let params = Params::for_network(n).with_epsilon(1e-6);
    let mut engine = VectorGossipEngine::new(n, EngineConfig::from_params(&params, n));
    engine.seed(&s.honest, &v0, &prior, 0.15);
    let mut rng = StdRng::seed_from_u64(12);
    let (_, converged) = engine.run(&UniformChooser, &mut rng);
    assert!(converged);
    let lockstep_err = mean_rel_error(&exact, &engine.mean_estimate());
    assert!(lockstep_err < 1e-3, "lock-step error {lockstep_err}");

    // Event-driven.
    let mut rng = StdRng::seed_from_u64(13);
    let overlay = Overlay::random_k_out(n, 4, &mut rng);
    let config = SimConfig { link: LinkModel::fixed(25_000), epsilon: 1e-4, ..Default::default() };
    let mut sim = AsyncGossipSim::new(overlay, config);
    let report = sim.run_cycle(&s.honest, &v0, &prior, 0.15, &mut rng);
    assert!(report.converged);
    let event_err = mean_rel_error(&exact, &report.estimate);
    assert!(event_err < 1e-2, "event-driven error {event_err}");
}

/// The tokio cluster (real tasks, signed messages) reaches the same
/// ranking as the centralized oracle.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn tokio_cluster_matches_oracle_ranking() {
    // An unambiguous authority matrix: random tiny scenarios can have
    // near-tied top scorers, which makes the cluster's adaptive one-node
    // power anchor flip between cycles and keeps the outer residual above
    // any reasonable δ (see DESIGN.md on anchor fragility).
    let n = 16;
    let mut b = TrustMatrixBuilder::new(n);
    for i in 1..n as u32 {
        b.record(NodeId(i), NodeId(0), 4.0);
        b.record(NodeId(i), NodeId(i % (n as u32 - 1) + 1), 1.0);
        b.record(NodeId(0), NodeId(i), 1.0);
    }
    let m = b.build();
    let params = Params::for_network(n);

    let report = Cluster::in_memory(NetConfig::fast_local().with_seed(15))
        .run(&m, &params)
        .await;
    assert!(report.converged);
    assert_eq!(report.auth_failures, 0);

    let oracle = PowerIteration::new(params).solve(&m, &Prior::uniform(n));
    // Below rank 1 this matrix is nearly tied, and the cluster's adaptive
    // prior legitimately reorders the tail — the authority must match.
    assert_eq!(report.vector.ranking()[0], oracle.vector.ranking()[0]);
    assert_eq!(report.vector.ranking()[0], NodeId(0));
}
