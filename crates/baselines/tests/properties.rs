//! Property-based tests for the DHT substrate and baselines.

use gossiptrust_baselines::{Chord, NoTrust};
use gossiptrust_core::id::NodeId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Chord routing from any start reaches the unique owner of any key,
    /// within the O(log n) hop bound (with generous slack).
    #[test]
    fn chord_routing_correct_and_bounded(n in 1usize..400, seed in 0u64..500) {
        let dht = Chord::build(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let hop_cap = 2 * (n.max(2) as f64).log2().ceil() as usize + 4;
        for _ in 0..30 {
            let start = NodeId::from_index(rng.random_range(0..n));
            let key: u64 = rng.random();
            let out = dht.lookup_from(start, key);
            prop_assert_eq!(out.owner, dht.owner_of(key), "wrong owner");
            prop_assert!(out.hops <= hop_cap, "hops {} > cap {}", out.hops, hop_cap);
        }
    }

    /// Ownership is a function: the same key always resolves to the same
    /// owner, from any starting node.
    #[test]
    fn chord_ownership_is_start_independent(n in 2usize..200, key in any::<u64>()) {
        let dht = Chord::build(n);
        let owner = dht.owner_of(key);
        for start in (0..n).step_by((n / 8).max(1)) {
            prop_assert_eq!(dht.lookup_from(NodeId::from_index(start), key).owner, owner);
        }
    }

    /// NoTrust selection always returns one of the offered holders.
    #[test]
    fn notrust_selects_within_holders(
        holders in proptest::collection::vec(0u32..10_000, 1..50),
        seed in 0u64..500,
    ) {
        let ids: Vec<NodeId> = holders.iter().map(|&h| NodeId(h)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let pick = NoTrust.select(&ids, &mut rng);
            prop_assert!(ids.contains(&pick));
        }
    }
}
