//! A from-scratch Chord-like DHT (the structured-overlay substrate).
//!
//! Peers hash into a 64-bit identifier ring; every key is owned by its
//! *successor* (the first peer clockwise from the key). Each peer keeps a
//! finger table (`fingers[k]` = successor of `id + 2^k`) and lookups route
//! greedily: forward to the closest preceding finger until the owner is
//! reached — `O(log n)` hops with high probability.
//!
//! The table is built over a static membership snapshot, which is all the
//! EigenTrust baseline needs; churn-maintenance (stabilization) is out of
//! scope and documented as such.

use gossiptrust_core::id::NodeId;

/// Splitmix64 — a tiny, high-quality 64-bit mixer used as the consistent
/// hash for ring positions and keys.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Result of a routed lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LookupOutcome {
    /// The peer owning the key.
    pub owner: NodeId,
    /// Overlay hops taken to reach it.
    pub hops: usize,
}

/// A Chord-like ring over a static set of peers.
#[derive(Clone, Debug)]
pub struct Chord {
    /// (ring position, peer) sorted by position.
    ring: Vec<(u64, NodeId)>,
    /// Finger tables: `fingers[i][k]` = ring index of the successor of
    /// `pos(i) + 2^k`.
    fingers: Vec<Vec<usize>>,
}

impl Chord {
    /// Number of finger levels (the full 64-bit ring).
    pub const FINGER_BITS: usize = 64;

    /// Build the ring and finger tables for `n` peers (ids `0..n`).
    pub fn build(n: usize) -> Self {
        assert!(n >= 1, "DHT needs at least one peer");
        let mut ring: Vec<(u64, NodeId)> = (0..n)
            .map(|i| (splitmix64(i as u64 ^ 0xD1B54A32D192ED03), NodeId::from_index(i)))
            .collect();
        ring.sort_unstable();
        // Hash collisions over u64 are vanishingly unlikely but would break
        // ownership; fail loudly.
        for w in ring.windows(2) {
            assert_ne!(w[0].0, w[1].0, "ring position collision");
        }
        let mut fingers = Vec::with_capacity(n);
        for idx in 0..ring.len() {
            let base = ring[idx].0;
            let table: Vec<usize> = (0..Self::FINGER_BITS)
                .map(|k| {
                    let target = base.wrapping_add(1u64 << k);
                    Self::successor_index(&ring, target)
                })
                .collect();
            fingers.push(table);
        }
        Chord { ring, fingers }
    }

    /// Number of peers.
    pub fn n(&self) -> usize {
        self.ring.len()
    }

    /// Hash an application key (e.g. the peer whose score is managed).
    pub fn key_for(&self, peer: NodeId) -> u64 {
        splitmix64(peer.0 as u64 ^ 0xA24BAED4963EE407)
    }

    fn successor_index(ring: &[(u64, NodeId)], key: u64) -> usize {
        match ring.binary_search_by(|&(pos, _)| pos.cmp(&key)) {
            Ok(i) => i,
            Err(i) => i % ring.len(),
        }
    }

    /// The peer owning `key` (its successor on the ring).
    pub fn owner_of(&self, key: u64) -> NodeId {
        self.ring[Self::successor_index(&self.ring, key)].1
    }

    /// Ring distance from `from` clockwise to `to`.
    fn clockwise(from: u64, to: u64) -> u64 {
        to.wrapping_sub(from)
    }

    /// Route a lookup for `key` starting at peer `start`, counting hops.
    ///
    /// Each hop forwards to the closest finger that precedes the key
    /// (classic Chord greedy routing); the hop count is what the EigenTrust
    /// baseline charges per remote fetch.
    pub fn lookup_from(&self, start: NodeId, key: u64) -> LookupOutcome {
        let owner = self.owner_of(key);
        // Find start's ring index.
        let mut cur = self
            .ring
            .iter()
            .position(|&(_, id)| id == start)
            .expect("start peer must be on the ring");
        let mut hops = 0;
        let max_hops = 2 * Self::FINGER_BITS + self.n();
        while self.ring[cur].1 != owner {
            assert!(hops < max_hops, "routing loop detected");
            let cur_pos = self.ring[cur].0;
            let dist_to_key = Self::clockwise(cur_pos, key);
            // Pick the finger that makes the most clockwise progress
            // without overshooting the key.
            let mut best: Option<(u64, usize)> = None;
            for &fi in &self.fingers[cur] {
                if fi == cur {
                    continue;
                }
                let fpos = self.ring[fi].0;
                let d = Self::clockwise(cur_pos, fpos);
                if d > 0 && d < dist_to_key {
                    match best {
                        Some((bd, _)) if bd >= d => {}
                        _ => best = Some((d, fi)),
                    }
                }
            }
            cur = match best {
                Some((_, fi)) => fi,
                // No finger precedes the key: the owner is our successor.
                None => Self::successor_index(&self.ring, cur_pos.wrapping_add(1)),
            };
            hops += 1;
        }
        LookupOutcome { owner, hops }
    }

    /// Convenience: route from `start` to the manager of `peer`'s score.
    pub fn lookup_manager(&self, start: NodeId, peer: NodeId) -> LookupOutcome {
        self.lookup_from(start, self.key_for(peer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_key_has_exactly_one_owner() {
        let dht = Chord::build(32);
        for k in 0..1000u64 {
            let key = splitmix64(k);
            let owner = dht.owner_of(key);
            assert!(owner.index() < 32);
        }
    }

    #[test]
    fn lookup_reaches_the_owner_from_anywhere() {
        let dht = Chord::build(50);
        for start in 0..50 {
            for peer in [0u32, 7, 23, 49] {
                let key = dht.key_for(NodeId(peer));
                let out = dht.lookup_from(NodeId(start), key);
                assert_eq!(out.owner, dht.owner_of(key));
            }
        }
    }

    #[test]
    fn hops_scale_logarithmically() {
        let mean_hops = |n: usize| {
            let dht = Chord::build(n);
            let mut total = 0usize;
            let mut count = 0usize;
            for start in (0..n).step_by((n / 16).max(1)) {
                for peer in (0..n).step_by((n / 16).max(1)) {
                    total += dht
                        .lookup_manager(NodeId::from_index(start), NodeId::from_index(peer))
                        .hops;
                    count += 1;
                }
            }
            total as f64 / count as f64
        };
        let small = mean_hops(64);
        let large = mean_hops(1024);
        // O(log n): 16× more nodes ≈ +4 hops, definitely not 16×.
        assert!(large < small * 3.0, "small {small}, large {large}");
        assert!(large <= (1024f64).log2() * 1.5, "large {large}");
    }

    #[test]
    fn single_peer_owns_everything() {
        let dht = Chord::build(1);
        let out = dht.lookup_from(NodeId(0), 12345);
        assert_eq!(out.owner, NodeId(0));
        assert_eq!(out.hops, 0);
    }

    #[test]
    fn ownership_is_balanced_enough() {
        let n = 128;
        let dht = Chord::build(n);
        let mut counts = vec![0usize; n];
        for k in 0..20_000u64 {
            counts[dht.owner_of(splitmix64(k ^ 0xABCDEF)).index()] += 1;
        }
        let max = *counts.iter().max().unwrap();
        // Consistent hashing without virtual nodes is skewed but no peer
        // should own a massive constant fraction.
        assert!(max < 20_000 / 8, "most-loaded peer owns {max} of 20000");
    }

    #[test]
    fn lookup_from_owner_is_zero_hops() {
        let dht = Chord::build(40);
        let key = dht.key_for(NodeId(11));
        let owner = dht.owner_of(key);
        assert_eq!(dht.lookup_from(owner, key).hops, 0);
    }
}
