//! # gossiptrust-filesharing
//!
//! The simulated P2P file-sharing application of §6.4, used to measure the
//! end-to-end benefit of reputation-based source selection (Fig. 5).
//!
//! The moving parts:
//!
//! * [`flooding`] — Gnutella-style TTL flooding over the unstructured
//!   overlay to locate holders of a file (with message accounting).
//! * [`selection`] — download-source selection: GossipTrust picks the
//!   holder with the highest global reputation; NoTrust "randomly selects a
//!   node to download the desired file without considering node
//!   reputation".
//! * [`session`] — the experiment driver: a stream of queries over the
//!   catalog, downloads with authentic/inauthentic outcomes, feedback
//!   according to each peer's threat-model kind, and a global reputation
//!   refresh "after 1,000 queries" (configurable backend: the exact
//!   centralized oracle or the full gossip aggregation).
//!
//! Success is counted per the paper: a query succeeds when the downloaded
//! copy is authentic. Malicious peers both serve corrupted content and lie
//! in their feedback, so the reputation system has to work against polluted
//! input — exactly the Fig. 5 setting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flooding;
pub mod objects;
pub mod selection;
pub mod session;

pub use flooding::{flood_search, FloodResult};
pub use objects::{ObjectRepConfig, ObjectReputation};
pub use selection::SelectionPolicy;
pub use session::{FileSharingSession, ReputationBackend, SessionConfig, SessionReport};
