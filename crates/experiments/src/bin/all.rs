//! Run every table, figure and ablation in sequence (the full evaluation),
//! in-process.
//!
//! `GT_QUICK=1 cargo run --release -p gossiptrust-experiments --bin all`
//! for a fast smoke pass; the default paper scale takes minutes.

use gossiptrust_experiments::{ablations, figures, gossip_threads, Scale, TextTable};

fn banner(name: &str) {
    println!("\n=== {name} {}\n", "=".repeat(60_usize.saturating_sub(name.len())));
}

fn main() {
    let scale = Scale::from_env();
    println!("GossipTrust full evaluation at {scale:?} scale (GT_QUICK=1 for quick)");
    println!("gossip threads: {} (override with GT_THREADS)", gossip_threads());

    banner("Table 1 (worked example)");
    let (rows, consensus) = figures::table1();
    let mut t = TextTable::new(vec!["step", "node", "x(k)", "w(k)", "beta"]);
    for r in &rows {
        t.row(vec![
            r.step.to_string(),
            r.node.clone(),
            format!("{:.4}", r.x),
            format!("{:.4}", r.w),
            r.beta.map_or("inf".into(), |b| format!("{b:.4}")),
        ]);
    }
    print!("{}", t.render());
    println!("consensus: {consensus:.6} (paper: 0.2)");

    banner("Fig. 3 (gossip steps vs epsilon)");
    let mut t = TextTable::new(vec!["n", "epsilon", "steps", "std"]);
    for r in figures::fig3(scale) {
        t.row(vec![
            r.n.to_string(),
            format!("{:.0e}", r.epsilon),
            format!("{:.1}", r.mean_steps),
            format!("{:.1}", r.std_steps),
        ]);
    }
    print!("{}", t.render());

    banner("Table 3 (errors under three settings)");
    let mut t = TextTable::new(vec!["eps", "delta", "cycles", "steps", "gossip err", "agg err"]);
    for r in figures::table3(scale) {
        t.row(vec![
            format!("{:.0e}", r.epsilon),
            format!("{:.0e}", r.delta),
            format!("{:.1}", r.cycles),
            format!("{:.1}", r.gossip_steps),
            format!("{:.2e}", r.gossip_error),
            format!("{:.2e}", r.aggregation_error),
        ]);
    }
    print!("{}", t.render());

    banner("Fig. 4(a) (independent malicious, alpha sweep)");
    let mut t = TextTable::new(vec!["alpha", "gamma", "rms", "std"]);
    for r in figures::fig4a(scale) {
        t.row(vec![
            format!("{:.2}", r.alpha),
            format!("{:.0}%", r.gamma * 100.0),
            format!("{:.4}", r.rms_error),
            format!("{:.4}", r.std_error),
        ]);
    }
    print!("{}", t.render());

    banner("Fig. 4(b) (collusion)");
    let mut t = TextTable::new(vec!["alpha", "gamma", "group", "rms", "std"]);
    for r in figures::fig4b(scale) {
        t.row(vec![
            format!("{:.2}", r.alpha),
            format!("{:.0}%", r.gamma * 100.0),
            r.group_size.to_string(),
            format!("{:.4}", r.rms_error),
            format!("{:.4}", r.std_error),
        ]);
    }
    print!("{}", t.render());

    banner("Fig. 5 (file-sharing success rate)");
    let mut t = TextTable::new(vec!["system", "gamma", "overall", "steady", "std"]);
    for r in figures::fig5(scale) {
        t.row(vec![
            r.system.clone(),
            format!("{:.0}%", r.gamma * 100.0),
            format!("{:.3}", r.success_rate),
            format!("{:.3}", r.steady_rate),
            format!("{:.3}", r.std_rate),
        ]);
    }
    print!("{}", t.render());

    banner("Ablation: EigenTrust vs GossipTrust");
    let mut t = TextTable::new(vec!["system", "rms", "cycles", "app msgs", "net msgs"]);
    for r in ablations::eigentrust_vs_gossip(scale) {
        t.row(vec![
            r.system.clone(),
            format!("{:.2e}", r.rms_vs_oracle),
            format!("{:.1}", r.cycles),
            format!("{:.0}", r.messages),
            format!("{:.0}", r.network_messages),
        ]);
    }
    print!("{}", t.render());

    banner("Ablation: Bloom storage");
    let mut t = TextTable::new(vec!["fp", "bloom B", "exact B", "rank err"]);
    for r in ablations::bloom_storage(scale) {
        t.row(vec![
            format!("{:.4}", r.fp_rate),
            r.bloom_bytes.to_string(),
            r.exact_bytes.to_string(),
            format!("{:.4}", r.mean_rank_error),
        ]);
    }
    print!("{}", t.render());

    banner("Ablation: loss tolerance");
    let mut t = TextTable::new(vec!["loss", "steps", "gossip err", "final rms"]);
    for r in ablations::loss_tolerance(scale) {
        t.row(vec![
            format!("{:.2}", r.loss_rate),
            format!("{:.1}", r.steps),
            format!("{:.2e}", r.gossip_error),
            format!("{:.2e}", r.final_error),
        ]);
    }
    print!("{}", t.render());

    banner("Ablation: power-node count");
    let mut t = TextTable::new(vec!["q", "rms", "std"]);
    for r in ablations::power_node_count(scale) {
        t.row(vec![
            r.q.to_string(),
            format!("{:.4}", r.rms_error),
            format!("{:.4}", r.std_error),
        ]);
    }
    print!("{}", t.render());

    banner("Ablation: gossip scope");
    let mut t = TextTable::new(vec!["scope", "virtual ms", "rel err"]);
    for r in ablations::gossip_scope(scale) {
        t.row(vec![
            r.scope.clone(),
            format!("{:.0}", r.virtual_time_us / 1000.0),
            format!("{:.2e}", r.mean_rel_error),
        ]);
    }
    print!("{}", t.render());

    banner("Ablation: churn resilience");
    let mut t = TextTable::new(vec!["availability", "rel err", "converged"]);
    for r in ablations::churn_resilience(scale) {
        t.row(vec![
            format!("{:.3}", r.availability),
            format!("{:.2e}", r.mean_rel_error),
            format!("{:.2}", r.converged_fraction),
        ]);
    }
    print!("{}", t.render());

    banner("Ablation: detector patience");
    let mut t = TextTable::new(vec!["patience", "steps", "gossip err"]);
    for r in ablations::patience(scale) {
        t.row(vec![
            r.patience.to_string(),
            format!("{:.1}", r.steps),
            format!("{:.2e}", r.gossip_error),
        ]);
    }
    print!("{}", t.render());

    banner("Ablation: QoF discounting (§7 extension)");
    let mut t = TextTable::new(vec!["gamma", "QoF", "rms", "std", "honest QoF", "malicious QoF"]);
    for r in ablations::qof_discounting(scale) {
        t.row(vec![
            format!("{:.0}%", r.gamma * 100.0),
            if r.qof_enabled { "on" } else { "off" }.to_string(),
            format!("{:.4}", r.rms_error),
            format!("{:.4}", r.std_error),
            format!("{:.3}", r.honest_qof),
            format!("{:.3}", r.malicious_qof),
        ]);
    }
    print!("{}", t.render());

    banner("Ablation: object reputation (§7 extension)");
    let mut t = TextTable::new(vec!["gamma", "objects", "steady success", "std"]);
    for r in ablations::object_reputation(scale) {
        t.row(vec![
            format!("{:.0}%", r.gamma * 100.0),
            if r.objects_enabled { "on" } else { "off" }.to_string(),
            format!("{:.3}", r.steady_rate),
            format!("{:.3}", r.std_rate),
        ]);
    }
    print!("{}", t.render());

    println!("\nall experiments completed");
}
