//! Ablation: GossipTrust vs EigenTrust-over-DHT — accuracy and messages.

use gossiptrust_experiments::ablations::eigentrust_vs_gossip;
use gossiptrust_experiments::{Scale, TextTable};

fn main() {
    let scale = Scale::from_env();
    println!("Ablation — GossipTrust vs EigenTrust/DHT ({scale:?} scale)\n");
    let rows = eigentrust_vs_gossip(scale);
    let mut t = TextTable::new(vec![
        "system",
        "rms vs oracle",
        "cycles",
        "app messages",
        "network messages",
    ]);
    for r in &rows {
        t.row(vec![
            r.system.clone(),
            format!("{:.2e}", r.rms_vs_oracle),
            format!("{:.1}", r.cycles),
            format!("{:.0}", r.messages),
            format!("{:.0}", r.network_messages),
        ]);
    }
    print!("{}", t.render());
}
