//! EigenTrust (Kamvar, Schlosser & Garcia-Molina, WWW'03) over the DHT.
//!
//! EigenTrust computes the same eigenvector as GossipTrust but assumes a
//! structured overlay: each peer `j`'s global score is hosted by a *score
//! manager* — the DHT owner of `hash(j)`. One iteration proceeds
//! manager-side:
//!
//! 1. for every rater `i` of `j`, the manager of `j` fetches `v_i(t)` from
//!    the manager of `i` (one DHT lookup + one response);
//! 2. it computes `v_j(t+1) = (1−a)·Σ_i s_ij·v_i(t) + a·p_j` with the
//!    pre-trusted distribution `p`;
//! 3. iteration stops when the global residual drops below `δ`.
//!
//! We charge every remote fetch its routed hop count, which is what makes
//! the message-overhead comparison against gossip meaningful (Table: the
//! ablation `eigentrust_vs_gossip` in the experiments crate).

use crate::dht::Chord;
use gossiptrust_core::convergence::VectorConvergence;
use gossiptrust_core::id::NodeId;
use gossiptrust_core::matrix::TrustMatrix;
use gossiptrust_core::params::Params;
use gossiptrust_core::power_nodes::Prior;
use gossiptrust_core::vector::ReputationVector;

/// Result of a distributed EigenTrust computation.
#[derive(Clone, Debug)]
pub struct EigenTrustReport {
    /// Converged global reputation vector.
    pub vector: ReputationVector,
    /// Iterations performed.
    pub cycles: usize,
    /// Whether the `δ` test fired.
    pub converged: bool,
    /// Remote score fetches issued (application-level messages).
    pub fetches: u64,
    /// Total DHT hops across all fetches (network-level messages).
    pub dht_hops: u64,
}

/// The EigenTrust baseline system.
#[derive(Clone, Debug)]
pub struct EigenTrust {
    params: Params,
    pretrusted: Vec<NodeId>,
}

impl EigenTrust {
    /// EigenTrust with parameters `params` (its `alpha` plays EigenTrust's
    /// `a`) and the given pre-trusted peer set (empty = uniform prior).
    pub fn new(params: Params, pretrusted: Vec<NodeId>) -> Self {
        EigenTrust { params, pretrusted }
    }

    /// The pre-trusted peers.
    pub fn pretrusted(&self) -> &[NodeId] {
        &self.pretrusted
    }

    /// Run the distributed computation over `matrix`, charging all remote
    /// fetches through a freshly-built DHT of the same peers.
    pub fn compute(&self, matrix: &TrustMatrix) -> EigenTrustReport {
        let n = matrix.n();
        let dht = Chord::build(n);
        let prior = Prior::over_nodes(n, &self.pretrusted);

        // Manager-side state: who manages whom, and the inverted index of
        // raters per ratee (the manager of j needs all s_ij columns).
        let mut raters_of: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        let mut dangling: Vec<u32> = Vec::new();
        for i in 0..n {
            let id = NodeId::from_index(i);
            if matrix.row_is_dangling(id) {
                dangling.push(i as u32);
                continue;
            }
            let (cols, vals) = matrix.row(id);
            for (&j, &s) in cols.iter().zip(vals) {
                raters_of[j as usize].push((i as u32, s));
            }
        }

        let mut current = ReputationVector::uniform(n);
        let mut outer = VectorConvergence::new(self.params.delta);
        outer.observe(&current);
        let mut fetches = 0u64;
        let mut dht_hops = 0u64;
        let mut converged = false;
        let mut cycles = 0usize;

        for _ in 1..=self.params.max_cycles {
            cycles += 1;
            let mut next = vec![0.0; n];
            // Dangling rows spread uniformly (same completion as the core
            // matrix product); the managers learn the dangling mass via one
            // broadcast epoch we charge as one fetch per dangling peer.
            let mut dangling_mass = 0.0;
            for &i in &dangling {
                dangling_mass += current.score(NodeId(i));
                fetches += 1;
                dht_hops += dht.lookup_manager(NodeId(i), NodeId(i)).hops as u64;
            }
            let dangling_share = dangling_mass / n as f64;
            for (j, raters) in raters_of.iter().enumerate() {
                let manager = dht.owner_of(dht.key_for(NodeId::from_index(j)));
                let mut acc = dangling_share;
                for &(i, s) in raters {
                    // Manager of j fetches v_i from manager of i.
                    let target_manager_key = dht.key_for(NodeId(i));
                    let out = dht.lookup_from(manager, target_manager_key);
                    fetches += 1;
                    dht_hops += out.hops as u64;
                    acc += s * current.score(NodeId(i));
                }
                next[j] = acc;
            }
            prior.mix_into(&mut next, self.params.alpha);
            let next_vec =
                ReputationVector::from_weights(next).expect("stochastic iterate stays valid");
            let hit = outer.observe(&next_vec);
            current = next_vec;
            if hit {
                converged = true;
                break;
            }
        }

        EigenTrustReport { vector: current, cycles, converged, fetches, dht_hops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossiptrust_core::matrix::TrustMatrixBuilder;
    use gossiptrust_core::power_iter::PowerIteration;

    fn authority(n: usize) -> TrustMatrix {
        let mut b = TrustMatrixBuilder::new(n);
        for i in 1..n {
            b.record(NodeId::from_index(i), NodeId(0), 3.0);
            b.record(NodeId::from_index(i), NodeId::from_index((i + 1) % n), 1.0);
        }
        b.record(NodeId(0), NodeId(1), 1.0);
        b.build()
    }

    #[test]
    fn matches_centralized_power_iteration() {
        let n = 40;
        let m = authority(n);
        let params = Params::for_network(n).with_delta(1e-8);
        let pretrusted = vec![NodeId(0), NodeId(1)];
        let et = EigenTrust::new(params.clone(), pretrusted.clone());
        let report = et.compute(&m);
        assert!(report.converged);

        let oracle = PowerIteration::new(params).solve(&m, &Prior::over_nodes(n, &pretrusted));
        let err = oracle.vector.rms_relative_error(&report.vector).unwrap();
        assert!(err < 1e-4, "rms vs oracle {err}");
    }

    #[test]
    fn message_accounting_is_positive_and_scales_with_edges() {
        let n = 30;
        let m = authority(n);
        let et = EigenTrust::new(Params::for_network(n), vec![NodeId(0)]);
        let report = et.compute(&m);
        assert!(report.fetches > 0);
        assert!(
            report.dht_hops >= report.fetches / 2,
            "hops {} fetches {}",
            report.dht_hops,
            report.fetches
        );
        // Fetches per cycle ≈ nnz (+ dangling count).
        let per_cycle = report.fetches / report.cycles as u64;
        assert!(per_cycle as usize >= m.nnz());
    }

    #[test]
    fn pretrusted_peers_receive_jump_mass() {
        let n = 25;
        let m = authority(n);
        let et = EigenTrust::new(Params::for_network(n).with_alpha(0.5), vec![NodeId(7)]);
        let report = et.compute(&m);
        // N7 gets a 0.5 jump: it must outrank everything except possibly N0.
        let r = report.vector.ranking();
        assert!(r[0] == NodeId(7) || r[1] == NodeId(7), "ranking {:?}", &r[..3]);
    }

    #[test]
    fn empty_pretrusted_set_falls_back_to_uniform() {
        let n = 20;
        let m = authority(n);
        let params = Params::for_network(n).with_delta(1e-8);
        let et = EigenTrust::new(params.clone(), vec![]);
        let report = et.compute(&m);
        let oracle = PowerIteration::new(params).solve(&m, &Prior::uniform(n));
        let err = oracle.vector.rms_relative_error(&report.vector).unwrap();
        assert!(err < 1e-4, "err {err}");
    }
}
