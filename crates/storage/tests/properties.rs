//! Property-based tests for the Bloom-filter storage layer.

use gossiptrust_core::vector::ReputationVector;
use gossiptrust_storage::{BloomFilter, CountingBloomFilter, RankStorage, RankStorageConfig};
use proptest::prelude::*;

proptest! {
    /// Bloom filters never produce false negatives.
    #[test]
    fn bloom_no_false_negatives(
        keys in proptest::collection::hash_set(any::<u64>(), 1..500),
        fp in 0.001f64..0.2,
    ) {
        let mut f = BloomFilter::with_rate(keys.len(), fp);
        for &k in &keys {
            f.insert(k);
        }
        for &k in &keys {
            prop_assert!(f.contains(k), "false negative for {}", k);
        }
    }

    /// Counting filters: removal of inserted keys never breaks membership
    /// of the keys that remain.
    #[test]
    fn counting_removal_preserves_others(
        keep in proptest::collection::hash_set(any::<u64>(), 1..200),
        drop in proptest::collection::hash_set(any::<u64>(), 1..200),
    ) {
        let drop: Vec<u64> = drop.difference(&keep).copied().collect();
        let mut f = CountingBloomFilter::with_rate(keep.len() + drop.len() + 8, 0.01);
        for &k in &keep {
            f.insert(k);
        }
        for &k in &drop {
            f.insert(k);
        }
        for &k in &drop {
            f.remove(k);
        }
        for &k in &keep {
            prop_assert!(f.contains(k), "removal broke remaining key {}", k);
        }
    }

    /// Counting filters under the rank *demotion* path: peers slide from a
    /// better bucket to a worse one (remove from old, insert into new).
    /// After any sequence of demotions, every peer must still be found in
    /// its current bucket — insert→remove→query never yields a false
    /// negative for a still-present entry.
    #[test]
    fn counting_demotion_never_false_negative(
        peers in proptest::collection::hash_set(any::<u64>(), 1..150),
        demote_picks in proptest::collection::vec(any::<prop::sample::Index>(), 0..300),
        fp in 0.001f64..0.1,
    ) {
        let peers: Vec<u64> = peers.into_iter().collect();
        let capacity = peers.len() + 8;
        let mut buckets = [
            CountingBloomFilter::with_rate(capacity, fp),
            CountingBloomFilter::with_rate(capacity, fp),
            CountingBloomFilter::with_rate(capacity, fp),
        ];
        // Everyone starts in the best bucket.
        let mut level = vec![0usize; peers.len()];
        for &p in &peers {
            buckets[0].insert(p);
        }
        // Random demotion sequence: remove from the current bucket, insert
        // into the next-worse one (bottoms out at the worst bucket).
        for pick in demote_picks {
            let i = pick.index(peers.len());
            if level[i] + 1 < buckets.len() {
                buckets[level[i]].remove(peers[i]);
                level[i] += 1;
                buckets[level[i]].insert(peers[i]);
            }
        }
        for (i, &p) in peers.iter().enumerate() {
            prop_assert!(
                buckets[level[i]].contains(p),
                "peer {} missing from its current bucket {}",
                p,
                level[i]
            );
        }
    }

    /// Counting semantics: a key inserted `c` times and removed `r < c`
    /// times is still present (below the saturation regime, where removal
    /// is exact).
    #[test]
    fn counting_partial_removal_keeps_key(
        key in any::<u64>(),
        inserts in 2u8..14,
        others in proptest::collection::hash_set(any::<u64>(), 0..50),
    ) {
        let mut f = CountingBloomFilter::with_rate(64, 0.01);
        for &o in &others {
            f.insert(o);
        }
        for _ in 0..inserts {
            f.insert(key);
        }
        for _ in 0..(inserts - 1) {
            f.remove(key);
        }
        prop_assert!(f.contains(key), "one inserted copy must remain visible");
    }

    /// Rank storage: level assignments are promotion-only (a false positive
    /// can only improve a peer's apparent rank) and every queried level is
    /// in range.
    #[test]
    fn rank_storage_promotion_only(
        weights in proptest::collection::vec(0.01f64..10.0, 8..120),
        levels in 2usize..8,
        fp in 0.001f64..0.1,
    ) {
        let n = weights.len();
        let levels = levels.min(n);
        let v = ReputationVector::from_weights(weights).unwrap();
        let storage = RankStorage::build(&v, RankStorageConfig { levels, fp_rate: fp });
        let per_bucket = n.div_ceil(levels);
        for (true_rank, &id) in v.ranking().iter().enumerate() {
            let true_level = true_rank / per_bucket;
            let stored = storage.rank_level(id);
            prop_assert!(stored < levels);
            prop_assert!(stored <= true_level, "{}: stored {} > true {}", id, stored, true_level);
        }
    }
}
