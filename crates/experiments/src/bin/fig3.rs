//! Reproduce Fig. 3: gossip step counts vs gossip error threshold ε for
//! three network sizes. Set `GT_QUICK=1` for a reduced-scale run.

use gossiptrust_experiments::figures::fig3;
use gossiptrust_experiments::{gossip_threads, Scale, TextTable};

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 3 — gossip steps per aggregation cycle vs ε ({scale:?} scale)\n");
    println!("gossip threads: {} (override with GT_THREADS)\n", gossip_threads());
    let rows = fig3(scale);
    let mut t = TextTable::new(vec!["n", "epsilon", "steps (mean)", "steps (std)"]);
    for r in &rows {
        t.row(vec![
            r.n.to_string(),
            format!("{:.0e}", r.epsilon),
            format!("{:.1}", r.mean_steps),
            format!("{:.1}", r.std_steps),
        ]);
    }
    print!("{}", t.render());
    println!("\nexpected shape: steps grow with log(1/ε) and with log n;");
    println!("at tight ε the threshold dominates, at loose ε the size floor does.");
}
