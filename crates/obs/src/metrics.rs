//! Lock-free counters, gauges and log-bucketed histograms, plus the
//! registry that renders them as Prometheus text exposition.
//!
//! ## Histogram bucket layout
//!
//! Buckets are log₂-spaced with **2 significant bits** (4 sub-buckets per
//! octave), the same trade HdrHistogram makes at its lowest precision:
//! values `0..=3` get exact unit buckets; a larger value `v` with most
//! significant bit `m` lands in sub-bucket `(v >> (m-2)) & 3` of octave
//! `m`. That gives 252 fixed buckets covering all of `u64` in ~2 KiB of
//! atomics per histogram, with a relative bucket width of at most 1/4 —
//! so any reported quantile is within +25% of the true sample value
//! (exact max is tracked separately). Bucket-wise merge is associative,
//! which is what lets per-thread or per-run histograms be combined.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sub-bucket precision: 2 significant bits = 4 sub-buckets per octave.
const SUB_BITS: u32 = 2;
/// Sub-buckets per octave (and the count of exact unit buckets).
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: 4 unit buckets + 4 per octave for msb 2..=63.
pub const BUCKETS: usize = SUB as usize + (64 - SUB_BITS as usize) * SUB as usize;

/// A monotonic counter. Hot-path updates are relaxed atomic adds.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `v`.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log-bucketed histogram of `u64` samples (latencies in nanoseconds,
/// sizes in bytes, …) with exact count/sum/max and approximate quantiles.
///
/// Recording is lock-free: one relaxed `fetch_add` into the bucket, plus
/// count/sum adds and a `fetch_max`. Readers (scrapes) copy the bucket
/// array without stopping writers; a scrape racing a record may miss the
/// in-flight sample, which is fine for monitoring.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// One consistent-enough readout of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Exact maximum sample (0 when empty).
    pub max: u64,
    /// Approximate median (≤ +25% relative error, clamped to `max`).
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index of sample `v`.
    pub fn bucket_index(v: u64) -> usize {
        if v < SUB {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let group = msb - SUB_BITS;
        let sub = (v >> group) & (SUB - 1);
        (SUB + u64::from(group) * SUB + sub) as usize
    }

    /// Inclusive `[lower, upper]` sample range of bucket `index`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < BUCKETS, "bucket index out of range");
        let i = index as u64;
        if i < SUB {
            return (i, i);
        }
        let group = (i - SUB) / SUB;
        let sub = (i - SUB) % SUB;
        let lower = (SUB + sub) << group;
        // The width of every bucket in octave `group` is 2^group; the top
        // bucket's upper bound saturates at u64::MAX.
        let upper = lower.saturating_add((1u64 << group) - 1);
        (lower, upper)
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact maximum sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Bucket-wise add every sample of `other` into `self`. Merging is
    /// associative and commutative (bucket counts and sums add; max is a
    /// join), so sharded histograms combine in any order.
    pub fn absorb(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let v = theirs.load(Ordering::Relaxed);
            if v > 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Copy the bucket counts out (index-aligned with [`bucket_bounds`]).
    ///
    /// [`bucket_bounds`]: Histogram::bucket_bounds
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Read count/sum/max and the standard quantiles in one pass.
    ///
    /// Quantiles are computed against the bucket array as read (not the
    /// `count` atomic), so a snapshot racing concurrent records stays
    /// internally consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self.bucket_counts();
        let total: u64 = buckets.iter().sum();
        let max = self.max();
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            // 1-based rank of the q-quantile sample.
            let target = (((total as f64) * q).ceil() as u64).clamp(1, total);
            let mut cum = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                cum += c;
                if cum >= target {
                    return Self::bucket_bounds(i).1.min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count: total,
            sum: self.sum.load(Ordering::Relaxed),
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

/// What a name is registered as (one name, one kind — forever).
#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The metric registry: name → atomic handle.
///
/// The internal lock guards only registration and rendering; recording
/// always goes through the `Arc` handles handed out at registration, so
/// the hot path never touches the lock. Names render in sorted order,
/// which keeps the exposition stable for golden tests and diffs.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

/// A metric name must match `[a-zA-Z_][a-zA-Z0-9_]*` (the Prometheus
/// subset this registry emits without escaping).
fn assert_valid_name(name: &str) {
    let mut chars = name.chars();
    let head_ok = chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    let tail_ok = chars.all(|c| c.is_ascii_alphanumeric() || c == '_');
    assert!(head_ok && tail_ok, "invalid metric name {name:?} (want [a-zA-Z_][a-zA-Z0-9_]*)");
}

impl Registry {
    /// A fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    /// Panics when `name` is malformed or already registered as a
    /// different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        assert_valid_name(name);
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} is already registered as a {}", other.kind()),
        }
    }

    /// Get or register the gauge `name` (same contract as [`counter`]).
    ///
    /// [`counter`]: Registry::counter
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        assert_valid_name(name);
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} is already registered as a {}", other.kind()),
        }
    }

    /// Get or register the histogram `name` (same contract as [`counter`]).
    ///
    /// [`counter`]: Registry::counter
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        assert_valid_name(name);
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} is already registered as a {}", other.kind()),
        }
    }

    /// Render every registered metric as Prometheus text exposition
    /// (version 0.0.4): `# TYPE` lines, cumulative `_bucket{le="…"}`
    /// series for the non-empty histogram buckets (bounds are inclusive
    /// integers, so `le` carries each bucket's upper bound exactly),
    /// `_sum`/`_count`, names in sorted order.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("registry lock poisoned");
        let mut out = String::new();
        for (name, metric) in inner.iter() {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let buckets = h.bucket_counts();
                    let total: u64 = buckets.iter().sum();
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cum = 0u64;
                    for (i, &c) in buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cum += c;
                        let (_, upper) = Histogram::bucket_bounds(i);
                        let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cum}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {total}");
                    let _ = writeln!(out, "{name}_sum {}", h.sum.load(Ordering::Relaxed));
                    let _ = writeln!(out, "{name}_count {total}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_do_arithmetic() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn unit_buckets_are_exact() {
        for v in 0..4u64 {
            let i = Histogram::bucket_index(v);
            assert_eq!(i, v as usize);
            assert_eq!(Histogram::bucket_bounds(i), (v, v));
        }
    }

    #[test]
    fn bucket_bounds_contain_their_samples() {
        for v in [
            4u64,
            5,
            7,
            8,
            15,
            16,
            17,
            1000,
            1 << 20,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let i = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} outside bucket {i} [{lo}, {hi}]");
        }
    }

    #[test]
    fn bucket_relative_width_is_at_most_a_quarter() {
        for i in (SUB as usize)..BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            if hi == u64::MAX {
                continue; // the saturated top bucket
            }
            assert!(hi - lo + 1 <= lo / 4 + 1, "bucket {i} [{lo}, {hi}] too wide");
        }
    }

    #[test]
    fn top_bucket_is_the_last_index() {
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn snapshot_reads_count_sum_max_and_quantiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        // ≤ +25% relative quantile error, never below the true rank value.
        assert!((50..=63).contains(&s.p50), "p50 = {}", s.p50);
        assert!((90..=113).contains(&s.p90), "p90 = {}", s.p90);
        assert!((99..=124).contains(&s.p99), "p99 = {}", s.p99);
        // Quantiles clamp to the exact max.
        assert!(s.p99 <= s.max || s.p99 <= 124);
    }

    #[test]
    fn empty_histogram_snapshots_to_zeroes() {
        assert_eq!(Histogram::new().snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn registry_returns_the_same_handle_for_the_same_name() {
        let r = Registry::new();
        let a = r.counter("gt_x_total");
        let b = r.counter("gt_x_total");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn registry_rejects_kind_collisions() {
        let r = Registry::new();
        r.counter("gt_x");
        r.histogram("gt_x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn registry_rejects_malformed_names() {
        Registry::new().counter("gt x total");
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let h = Arc::new(Histogram::new());
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder thread");
        }
        assert_eq!(h.snapshot().count, 40_000);
        assert_eq!(c.get(), 40_000);
        assert_eq!(h.max(), 3 * 10_000 + 9_999);
    }

    #[test]
    fn render_while_recording_stays_parseable() {
        // A scrape racing writers must always see `# TYPE`-prefixed,
        // line-oriented text with monotone cumulative buckets.
        let r = Arc::new(Registry::new());
        let h = r.histogram("gt_race_ns");
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    h.record(v);
                    v = v.wrapping_mul(6364136223846793005).wrapping_add(1) >> 32;
                }
            })
        };
        for _ in 0..50 {
            let text = r.render();
            assert!(text.starts_with("# TYPE gt_race_ns histogram"));
            let mut last = 0u64;
            for line in text.lines().filter(|l| l.contains("_bucket{le=\"")) {
                let v: u64 = line.rsplit(' ').next().expect("count").parse().expect("number");
                assert!(v >= last, "cumulative buckets must be monotone: {text}");
                last = v;
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("writer thread");
    }

    #[test]
    fn golden_exposition_format() {
        let r = Registry::new();
        r.counter("gt_requests_total").add(7);
        r.gauge("gt_backlog").set(-2);
        let h = r.histogram("gt_test_ns");
        for v in [0u64, 3, 17, 1000] {
            h.record(v);
        }
        let expected = "\
# TYPE gt_backlog gauge
gt_backlog -2
# TYPE gt_requests_total counter
gt_requests_total 7
# TYPE gt_test_ns histogram
gt_test_ns_bucket{le=\"0\"} 1
gt_test_ns_bucket{le=\"3\"} 2
gt_test_ns_bucket{le=\"19\"} 3
gt_test_ns_bucket{le=\"1023\"} 4
gt_test_ns_bucket{le=\"+Inf\"} 4
gt_test_ns_sum 1020
gt_test_ns_count 4
";
        assert_eq!(r.render(), expected);
    }
}
