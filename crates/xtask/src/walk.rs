//! Source discovery: every `.rs` file the lint pass covers.
//!
//! The walk is rooted at the workspace root and visits `src/`, `tests/`,
//! `examples/` and every `crates/*/{src,tests,benches,examples}` tree —
//! i.e. all Rust sources that end up in some crate — while skipping
//! `target/` and hidden directories. Paths are returned repo-relative with
//! `/` separators, sorted, so lint output is stable across platforms.

use std::fs;
use std::path::{Path, PathBuf};

/// Find the workspace root by walking up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// All lintable `.rs` files under `root`, repo-relative, sorted.
pub fn rust_sources(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    for top in ["src", "tests", "examples"] {
        collect(root, &root.join(top), &mut out);
    }
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut crates: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        crates.sort();
        for krate in crates {
            for sub in ["src", "tests", "benches", "examples"] {
                collect(root, &krate.join(sub), &mut out);
            }
        }
    }
    out.sort();
    out
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gt_lint_walk_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn walks_crate_trees_and_skips_target() {
        let root = scratch("walk");
        for d in [
            "crates/a/src",
            "crates/a/tests",
            "src",
            "target/debug",
            "crates/b/src/deep",
        ] {
            fs::create_dir_all(root.join(d)).unwrap();
        }
        fs::write(root.join("Cargo.toml"), "[workspace]").unwrap();
        fs::write(root.join("src/lib.rs"), "").unwrap();
        fs::write(root.join("crates/a/src/lib.rs"), "").unwrap();
        fs::write(root.join("crates/a/tests/t.rs"), "").unwrap();
        fs::write(root.join("crates/b/src/deep/m.rs"), "").unwrap();
        fs::write(root.join("target/debug/gen.rs"), "").unwrap();
        fs::write(root.join("crates/a/src/notes.txt"), "").unwrap();
        let files = rust_sources(&root);
        assert_eq!(
            files,
            vec![
                "crates/a/src/lib.rs",
                "crates/a/tests/t.rs",
                "crates/b/src/deep/m.rs",
                "src/lib.rs",
            ]
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn find_root_walks_up() {
        let root = scratch("root");
        fs::create_dir_all(root.join("crates/a/src")).unwrap();
        fs::write(root.join("Cargo.toml"), "[workspace]").unwrap();
        assert_eq!(find_root(&root.join("crates/a/src")).unwrap(), root);
        let _ = fs::remove_dir_all(&root);
    }
}
