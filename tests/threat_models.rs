//! Cross-crate threat-model integration tests: the system-level claims
//! about attacks, pinned as tests.

use gossiptrust::core::qof;
use gossiptrust::gossip::cycle::exact_reference;
use gossiptrust::gossip::engine::{EngineConfig, VectorGossipEngine};
use gossiptrust::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Collusion inflates a group's aggregate scores, and the damage grows
/// with the collusive fraction (the Fig. 4(b) premise at test scale).
#[test]
fn collusion_damage_grows_with_gamma() {
    let distortion = |gamma: f64| {
        let mut total = 0.0;
        let seeds = 4;
        for seed in 0..seeds {
            let cfg = ScenarioConfig::small(120, ThreatConfig::collusive(gamma, 4));
            let s = Scenario::generate(&cfg, &mut StdRng::seed_from_u64(900 + seed));
            let params = Params::for_network(120).with_delta(1e-9);
            let honest = PowerIteration::new(params.clone())
                .solve(&s.honest, &Prior::uniform(120))
                .vector;
            let polluted = PowerIteration::new(params)
                .solve(&s.polluted, &Prior::uniform(120))
                .vector;
            total += honest.l1_distance(&polluted).unwrap();
        }
        total / seeds as f64
    };
    let low = distortion(0.05);
    let high = distortion(0.25);
    assert!(high > low, "more colluders must distort more: {low} vs {high}");
}

/// Gossip disturbance (forged pushes) inflates the forger's component, and
/// the exact reference is immune by construction.
#[test]
fn gossip_disturbance_only_affects_the_gossiped_path() {
    let n = 60;
    let cfg = ScenarioConfig::small(n, ThreatConfig::benign());
    let s = Scenario::generate(&cfg, &mut StdRng::seed_from_u64(42));
    let params = Params::for_network(n);
    let policy = gossiptrust::gossip::cycle::PriorPolicy::Fixed(Prior::uniform(n));
    let truth = exact_reference(&s.honest, &params.clone().with_delta(1e-10), &policy);

    // Disturbed gossip run: node 7 forges 3× its own component.
    let agg = GossipTrustAggregator::new(params)
        .with_prior_policy(policy)
        .with_corruption(vec![(NodeId(7), vec![7], 3.0)]);
    let mut rng = StdRng::seed_from_u64(43);
    let report = agg.aggregate(&s.honest, &mut rng);
    assert!(
        report.vector.score(NodeId(7)) > truth.score(NodeId(7)),
        "forging must inflate the forger: {} vs {}",
        report.vector.score(NodeId(7)),
        truth.score(NodeId(7))
    );
}

/// QoF discounting demotes inverted raters end to end: build a polluted
/// scenario, compute credibility, discount, re-aggregate, and check the
/// result moved toward the honest truth.
#[test]
fn qof_discounting_moves_toward_truth() {
    let mut improved = 0;
    let seeds = 4;
    for seed in 0..seeds {
        let cfg = ScenarioConfig::small(150, ThreatConfig::independent(0.25));
        let s = Scenario::generate(&cfg, &mut StdRng::seed_from_u64(700 + seed));
        let params = Params::for_network(150).with_delta(1e-9);
        let truth = PowerIteration::new(params.clone())
            .solve(&s.honest, &Prior::uniform(150))
            .vector;
        let bootstrap = PowerIteration::new(params.clone())
            .solve(&s.polluted, &Prior::uniform(150))
            .vector;
        let credibility = qof::feedback_credibility(&s.polluted, &bootstrap, 0.05);
        let discounted_matrix = qof::discount_matrix(&s.polluted, &credibility);
        let plain = PowerIteration::new(params.clone())
            .solve(&s.polluted, &Prior::uniform(150))
            .vector;
        let discounted = PowerIteration::new(params)
            .solve(&discounted_matrix, &Prior::uniform(150))
            .vector;
        let err_plain = truth.l1_distance(&plain).unwrap();
        let err_disc = truth.l1_distance(&discounted).unwrap();
        if err_disc <= err_plain {
            improved += 1;
        }
    }
    assert!(improved >= 3, "QoF should help in most scenarios ({improved}/{seeds})");
}

/// Dead nodes during gossip freeze their mass but never corrupt the
/// surviving consensus: the alive nodes still agree with each other.
#[test]
fn dead_nodes_leave_survivors_consistent() {
    let n = 40;
    let cfg = ScenarioConfig::small(n, ThreatConfig::benign());
    let s = Scenario::generate(&cfg, &mut StdRng::seed_from_u64(5));
    let params = Params::for_network(n);
    let mut engine = VectorGossipEngine::new(n, EngineConfig::from_params(&params, n));
    engine.seed(&s.honest, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..6 {
        engine.step(&UniformChooser, &mut rng);
    }
    for dead in [3u32, 17, 29] {
        engine.kill(NodeId(dead));
    }
    let (_, converged) = engine.run(&UniformChooser, &mut rng);
    assert!(converged);
    // All alive nodes agree (small relative spread on every component).
    let reference = engine.extract(NodeId(0));
    for i in 0..n {
        let id = NodeId::from_index(i);
        if !engine.is_alive(id) {
            continue;
        }
        let est = engine.extract(id);
        for j in 0..n {
            let rel = (est[j] - reference[j]).abs() / reference[j].abs().max(1e-12);
            assert!(rel < 5e-3, "node {i} comp {j} diverged: {rel}");
        }
    }
}
