//! The reputation daemon: ingest feedback, aggregate per epoch, answer
//! queries over line-delimited JSON TCP.
//!
//! ```text
//! GT_N=1000 GT_EPOCH_MS=1000 GT_SERVICE_ADDR=127.0.0.1:7401 \
//!     cargo run --release -p gossiptrust-serve --bin serve
//! ```
//!
//! Knobs (all strictly parsed — a malformed value aborts startup):
//!
//! * `GT_N` — peer population (default 1000)
//! * `GT_EPOCH_MS` — epoch period in milliseconds (default 1000)
//! * `GT_SERVICE_ADDR` — TCP listen address (default `127.0.0.1:7401`)
//! * `GT_THREADS` — gossip engine worker threads (default: machine)

use gossiptrust_core::params::{network_size_override, service_addr};
use gossiptrust_serve::service::{ReputationService, ServiceConfig};

fn main() {
    let n = network_size_override().unwrap_or(1000);
    let addr = service_addr();
    let config = ServiceConfig::new(n).with_epoch_interval_from_env(1_000);
    let interval = config.epoch_interval.expect("interval set from env");

    let service = ReputationService::start(config);
    println!(
        "gossiptrust-serve: n = {n}, epoch every {} ms, listening on {addr}",
        interval.as_millis()
    );

    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("build tokio runtime");
    let result = runtime.block_on(gossiptrust_serve::server::serve(service.handle(), &addr));
    // serve() only returns on a bind/accept error; surface it and stop the
    // epoch loop cleanly.
    service.shutdown();
    result.expect("serve");
}
