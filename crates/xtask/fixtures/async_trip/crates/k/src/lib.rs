//! Async fixture (trip): blocking sleep inside an async fn.
#![forbid(unsafe_code)]

/// Blocks the executor thread for the whole pause.
pub async fn pump(ms: u64) {
    std::thread::sleep(std::time::Duration::from_millis(ms));
}
