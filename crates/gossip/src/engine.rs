//! Algorithm 2 (inner loop) — the vectorized gossip engine.
//!
//! Runs `n` push-sum instances concurrently: node `i`'s state is the pair of
//! length-`n` arrays `x_i[·]`, `w_i[·]` — the paper's reputation vector of
//! triplets `⟨x_j, j, w_j⟩` in struct-of-arrays form. One [`VectorGossipEngine::step`]
//! models a gossip step: every alive node keeps half of its vector and
//! pushes the other half to a random node; all pushes of a step are merged
//! synchronously.
//!
//! The engine supports fault injection (message loss, dead nodes) and gossip
//! disturbance (forged pushes) used by the robustness experiments, and full
//! instrumentation.
//!
//! ## Memory layout & the tiled step kernel
//!
//! Node state lives in **flat row-major arenas**: one contiguous `Vec<f64>`
//! holds many node rows back to back (`row i = &buf[r·n .. (r+1)·n]`), so a
//! step streams each row linearly instead of chasing `n` separate heap
//! allocations. The arenas are partitioned into *slabs* (one slab = one
//! contiguous arena owning a block of consecutive rows). The slab is the
//! unit of write ownership during a step: each slab's double buffer is
//! owned by exactly one thread while a step is in flight, so parallel
//! writes never alias without any locking or unsafe code. There are
//! several slabs **per worker** (over-decomposition), so per-step
//! load-balancing has units to move around — see *Scheduling* below.
//!
//! The per-row kernel ([`step_slab`]) is a **column-tiled, multi-sender
//! fused sweep**: destination columns are processed in
//! [`EngineConfig::tile`]-wide tiles, and inside one tile the kernel writes
//! the retained half, folds *all* senders' contributions (plus any forged
//! disturbance mass) and runs the convergence/β bookkeeping before moving
//! to the next tile. The write tile and its β tile stay cache-hot across
//! every sender, so one step streams each array ~once — the untiled kernel
//! re-streamed the full `n`-length write row once per sender plus once for
//! convergence, which made the step memory-bandwidth-bound and parallel
//! speedup impossible. The inner loops are fixed-stride `f64` walks over
//! tile slices, shaped for auto-vectorization. The tile width is applied
//! **per row**: rows with ≤ 1 sender (the Poisson(1) majority) and dead
//! rows stream every array exactly once at any width, so they run untiled
//! (`tile = n`) and keep their sweeps long; only multi-sender rows — the
//! ones tiling exists for — use [`EngineConfig::tile`].
//!
//! ## Determinism contract
//!
//! [`par_step`](VectorGossipEngine::par_step) is **bit-identical** to the
//! sequential [`step`](VectorGossipEngine::step) for the same RNG state, for
//! any thread count *and any tile width*, including under message loss,
//! dead nodes and gossip disturbance. Four rules make this hold:
//!
//! 1. gossip targets and loss decisions are always drawn *sequentially* on
//!    the caller thread, in ascending sender order;
//! 2. deliveries are grouped **by receiver** and each receiver folds its
//!    senders in ascending order (fixed floating-point addition order); the
//!    sequential step uses the *same* receiver-grouped kernel;
//! 3. tiling never reorders the operations on a single element: for every
//!    destination `j` the kernel applies retain, then each sender's add in
//!    ascending sender order (with that sender's forged mass immediately
//!    after its add), exactly as the untiled sweep did — tiles only change
//!    *which `j` is worked on when*, never the op sequence per `j` (the
//!    `max`-fold of the convergence change is also kept in ascending-`j`
//!    order across tiles);
//! 4. per-row work (retain + merge + convergence bookkeeping) touches only
//!    that row's state, so slab boundaries and slab→thread assignment
//!    cannot change any value.
//!
//! ## Scheduling
//!
//! A step's cost is dominated by per-row streaming: roughly
//! `2 + senders(i)` array streams for row `i`. Gossip targets are drawn
//! fresh every step, so the sender load over rows is skewed and shifts
//! step to step. Each parallel step therefore distributes the slabs over
//! the caller thread + workers by **sender-weighted cost** (greedy
//! longest-processing-time assignment over the per-slab stream counts)
//! instead of handing every thread a fixed equal share of rows. The
//! shared read state is passed as persistent `Arc` arenas (cheap per-step
//! `Arc` clones — the slab payloads are never moved or copied), and the
//! freshly written slabs are published by **buffer swap** with the read
//! arenas once all writers are done.
//!
//! ## Convergence detection
//!
//! Node `i` considers itself converged when
//!
//! 1. every component's consensus factor `w_j > 0` (otherwise the estimate
//!    is the paper's `∞` case),
//! 2. the maximum *relative* change of its estimates since the previous
//!    step is ≤ ε, for `patience` consecutive steps, and
//! 3. at least `min_steps` (default `⌈log₂ n⌉`) steps have elapsed, since
//!    push-sum needs that long for weights to spread at all.
//!
//! The relative (rather than absolute) change matches §3's accuracy goal —
//! "the estimated score `v` within `[(1−ε)v, (1+ε)v]`" — and keeps the
//! detector scale-free as `n` grows (global scores shrink like `1/n`).

use crate::chooser::TargetChooser;
use crate::stats::GossipStats;
use gossiptrust_core::id::NodeId;
use gossiptrust_core::matrix::TrustMatrix;
use gossiptrust_core::params::Params;
use gossiptrust_core::power_nodes::Prior;
use gossiptrust_core::vector::ReputationVector;
use gossiptrust_obs::{Counter, Histogram, Stopwatch};
use rand::Rng;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

/// Sentinel in the per-step send table: "this node pushed nothing".
const NO_SEND: u32 = u32::MAX;

/// Observability hooks of the gossip engine: per-step wall time and the
/// estimated bytes streamed, recorded into externally owned metrics.
///
/// The engine holds an `Option<EngineObs>`; the `None` default makes the
/// hooks true no-ops — no clock read, no atomic — so an unobserved engine
/// pays nothing (`bench obs_overhead` pins the observed cost < 2%).
/// Attach with [`VectorGossipEngine::set_obs`]; handles are `Arc`s into a
/// [`Registry`](gossiptrust_obs::Registry), so a service, a bench and a
/// scrape endpoint can all watch the same engine.
#[derive(Clone, Debug)]
pub struct EngineObs {
    /// Wall time of one full step (draw + kernel + publish), nanoseconds.
    pub step_ns: Arc<Histogram>,
    /// Estimated memory traffic per step, mirroring
    /// [`GossipStats::bytes_streamed`].
    pub bytes_streamed: Arc<Counter>,
}

/// Tuning knobs of the vector gossip engine.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineConfig {
    /// Gossip error threshold `ε`.
    pub epsilon: f64,
    /// Consecutive below-`ε` steps required (≥ 1).
    pub patience: usize,
    /// Minimum steps before convergence may be declared.
    pub min_steps: usize,
    /// Hard step budget for one aggregation cycle.
    pub max_steps: usize,
    /// Probability that a pushed message is lost in transit.
    pub loss_rate: f64,
    /// How many leading steps of each cycle gossip disturbers forge in
    /// (see [`VectorGossipEngine::set_corruption`]). Push-sum has no
    /// damping, so an attacker forging *every* step inflates without
    /// bound and the cycle never converges; a bounded window leaves a
    /// fixed phantom bias the consensus settles on.
    pub corruption_steps: usize,
    /// Worker threads for [`VectorGossipEngine::par_step`].
    /// `1` = fully sequential. Results are bit-identical for every value.
    pub threads: usize,
    /// Destination-column tile width (in `f64` elements) of the step
    /// kernel. Results are bit-identical for every width ≥ 1; only wall
    /// time changes. Defaults to
    /// [`gossiptrust_core::params::tile_width`] (`GT_TILE`, 1024).
    pub tile: usize,
}

impl EngineConfig {
    /// Derive from [`Params`] for an `n`-node network
    /// (`min_steps = ⌈log₂ n⌉`, `threads` per
    /// [`Params::resolved_threads`]: the explicit setting, else
    /// `GT_THREADS`, else the machine's available parallelism).
    pub fn from_params(params: &Params, n: usize) -> Self {
        EngineConfig {
            epsilon: params.epsilon,
            patience: params.gossip_patience,
            min_steps: (n.max(2) as f64).log2().ceil() as usize,
            max_steps: params.max_gossip_steps,
            loss_rate: 0.0,
            corruption_steps: 3,
            threads: params.resolved_threads(),
            tile: gossiptrust_core::params::tile_width(),
        }
    }

    /// Builder-style setter for the message loss rate.
    pub fn with_loss_rate(mut self, loss_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss_rate), "loss rate must be in [0,1]");
        self.loss_rate = loss_rate;
        self
    }

    /// Builder-style setter for the worker thread count (≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "threads must be at least 1");
        self.threads = threads;
        self
    }

    /// Builder-style setter for the kernel's column tile width (≥ 1).
    pub fn with_tile(mut self, tile: usize) -> Self {
        assert!(tile >= 1, "tile width must be at least 1");
        self.tile = tile;
        self
    }
}

/// Outcome of a single gossip step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepOutcome {
    /// True when every alive node's detector has fired (and `min_steps`
    /// elapsed).
    pub all_converged: bool,
    /// Maximum relative estimate change observed across alive nodes in this
    /// step (`f64::INFINITY` while any estimate is still undefined).
    pub max_change: f64,
}

/// One contiguous block of consecutive node rows, stored row-major in two
/// flat arenas (`xs`, `ws` of `rows·n` elements each). Row `i` (global id)
/// lives at local offset `i - lo`.
#[derive(Clone, Debug)]
struct Slab {
    lo: usize,
    n: usize,
    xs: Vec<f64>,
    ws: Vec<f64>,
}

impl Slab {
    fn zeroed(lo: usize, rows: usize, n: usize) -> Self {
        Slab { lo, n, xs: vec![0.0; rows * n], ws: vec![0.0; rows * n] }
    }

    fn rows(&self) -> usize {
        self.xs.len() / self.n
    }

    fn x_row(&self, i: usize) -> &[f64] {
        let r = i - self.lo;
        &self.xs[r * self.n..(r + 1) * self.n]
    }

    fn w_row(&self, i: usize) -> &[f64] {
        let r = i - self.lo;
        &self.ws[r * self.n..(r + 1) * self.n]
    }
}

/// The write-side of one slab during a step: the double-buffered next
/// state, the slab's rows of the `prev_beta` convergence memory (`NaN` =
/// undefined), and the per-row `(defined, max relative change)` results.
/// Owned by exactly one worker while a step is in flight.
/// Per-node gossip disturbance: the sorted component ids whose pushed x
/// the node inflates, and the inflation factor (`None` = honest node).
type CorruptionTable = Vec<Option<(Vec<u32>, f64)>>;

#[derive(Clone, Debug)]
struct SlabTask {
    slab: Slab,
    beta: Vec<f64>,
    out: Vec<(bool, f64)>,
}

/// Everything a step reads but never writes: the pre-step state (`Arc`
/// handles onto the engine's persistent read arenas — cloning these is a
/// refcount bump, the slab payloads never move), liveness, the disturbance
/// table, the receiver-grouped send lists in CSR form (`senders of i =
/// flat[offsets[i]..offsets[i+1]]`, ascending), and the kernel tile width.
/// Shared immutably by all workers via `Arc`.
struct StepRead {
    rows_per: usize,
    slabs: Vec<Arc<Slab>>,
    alive: Arc<Vec<bool>>,
    corruption: Arc<CorruptionTable>,
    corrupt_active: bool,
    offsets: Vec<u32>,
    flat: Vec<u32>,
    tile: usize,
}

impl StepRead {
    fn row(&self, i: usize) -> (&[f64], &[f64]) {
        let s = &self.slabs[i / self.rows_per];
        (s.x_row(i), s.w_row(i))
    }

    fn senders(&self, i: usize) -> &[u32] {
        &self.flat[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// The column-tiled, multi-sender fused step kernel: for every row the
/// worker owns, walk the destination columns in `read.tile`-wide tiles
/// and, inside one tile, (a) write the retained half (or the frozen copy
/// for a dead node), (b) fold the deliveries of this row's senders in
/// ascending order — each sender's forged disturbance mass immediately
/// after its honest add — and (c) run the convergence/β bookkeeping, all
/// while the tile is cache-hot. One step thereby streams each array ~once
/// instead of once per sender. Per destination element the operation
/// sequence is exactly the untiled sweep's, so the kernel is bit-identical
/// for every tile width; it is used verbatim by both the sequential and
/// the parallel step, which is what makes *those* bit-identical.
/// Gossip disturbance: add the forged extra mass sender `s` claims on top
/// of its honest half (the receiver cannot tell — only signatures on
/// *values* could, and push-sum values are sender-claimed). Forging is
/// confined to the first `corruption_steps` of the cycle. Targets are
/// kept sorted (see `set_corruption`), so the tile's share is one
/// contiguous range. `px` is the sender's x row already sliced to
/// `t0..t1`, like `nx`.
#[inline]
fn forge(read: &StepRead, s: usize, px: &[f64], nx: &mut [f64], t0: usize, t1: usize) {
    if read.corrupt_active {
        if let Some((targets, factor)) = &read.corruption[s] {
            let a = targets.partition_point(|&j| (j as usize) < t0);
            let b = targets.partition_point(|&j| (j as usize) < t1);
            for &j in &targets[a..b] {
                let j = j as usize - t0;
                nx[j] += 0.5 * px[j] * (factor - 1.0);
            }
        }
    }
}

fn step_slab(read: &StepRead, task: &mut SlabTask) {
    let n = task.slab.n;
    let lo = task.slab.lo;
    for r in 0..task.slab.rows() {
        let i = lo + r;
        let alive = read.alive[i];
        let (sx, sw) = read.row(i);
        let senders = read.senders(i);
        // Per-row effective tile width. Tiling pays only when ≥ 2 senders
        // would re-stream the write tile; the dominant 0/1-sender rows of
        // Poisson(1) gossip (and frozen dead rows) stream every array
        // exactly once at any width, so a fixed tile just chops their long
        // auto-vectorized sweeps into chunks — the single-thread regression
        // PR 4 left behind. Those rows take the untiled fast path
        // (`tile = n`). Determinism rule 3 makes this free: the per-element
        // op sequence is identical for every tile width.
        let tile = if alive && senders.len() > 1 {
            read.tile.max(1)
        } else {
            n
        };
        let nx_row = &mut task.slab.xs[r * n..(r + 1) * n];
        let nw_row = &mut task.slab.ws[r * n..(r + 1) * n];
        let beta_row = &mut task.beta[r * n..(r + 1) * n];
        // Convergence accumulators carry across tiles; the `max` fold
        // visits `j` in the same ascending order as the untiled sweep.
        let mut change: f64 = 0.0;
        let mut defined = true;
        let mut t0 = 0;
        while t0 < n {
            let t1 = (t0 + tile).min(n);
            let nx = &mut nx_row[t0..t1];
            let nw = &mut nw_row[t0..t1];
            if !alive {
                // Frozen state carries over unchanged (a dead node also
                // receives nothing: its senders were filtered at draw
                // time, so the sender fold is empty).
                nx.copy_from_slice(&sx[t0..t1]);
                nw.copy_from_slice(&sw[t0..t1]);
                t0 = t1;
                continue;
            }
            // Uniform gossip gives a row Poisson(1) senders, so 0 and 1
            // dominate; fuse their retain+merge into a single pass over
            // the tile (identical per-element op sequence — `0.5·s` then
            // `+ 0.5·p` — just without round-tripping the intermediate
            // through the write slice, which cannot change a bit).
            match *senders {
                [] => {
                    for (d, &s) in nx.iter_mut().zip(&sx[t0..t1]) {
                        *d = 0.5 * s;
                    }
                    for (d, &s) in nw.iter_mut().zip(&sw[t0..t1]) {
                        *d = 0.5 * s;
                    }
                }
                [s] => {
                    let s = s as usize;
                    let (px, pw) = read.row(s);
                    let px = &px[t0..t1];
                    for ((d, &o), &p) in nx.iter_mut().zip(&sx[t0..t1]).zip(px) {
                        *d = 0.5 * o + 0.5 * p;
                    }
                    for ((d, &o), &p) in nw.iter_mut().zip(&sw[t0..t1]).zip(&pw[t0..t1]) {
                        *d = 0.5 * o + 0.5 * p;
                    }
                    forge(read, s, px, nx, t0, t1);
                }
                _ => {
                    for (d, &s) in nx.iter_mut().zip(&sx[t0..t1]) {
                        *d = 0.5 * s;
                    }
                    for (d, &s) in nw.iter_mut().zip(&sw[t0..t1]) {
                        *d = 0.5 * s;
                    }
                    for &s in senders {
                        let s = s as usize;
                        let (px, pw) = read.row(s);
                        let px = &px[t0..t1];
                        for (d, &v) in nx.iter_mut().zip(px) {
                            *d += 0.5 * v;
                        }
                        for (d, &v) in nw.iter_mut().zip(&pw[t0..t1]) {
                            *d += 0.5 * v;
                        }
                        forge(read, s, px, nx, t0, t1);
                    }
                }
            }
            // Convergence bookkeeping, fused into the tile while the
            // merged values are hot: every element of this tile already
            // holds its final post-step value (all merges for a column
            // happen within its tile).
            if alive {
                let beta = &mut beta_row[t0..t1];
                for j in 0..t1 - t0 {
                    let w = nw[j];
                    if w > 0.0 {
                        let b = nx[j] / w;
                        let prev = beta[j];
                        if prev.is_nan() {
                            change = f64::INFINITY;
                        } else {
                            let denom = b.abs().max(f64::MIN_POSITIVE);
                            change = change.max((b - prev).abs() / denom);
                        }
                        beta[j] = b;
                    } else {
                        defined = false;
                        beta[j] = f64::NAN;
                    }
                }
            }
            t0 = t1;
        }
        task.out[r] = if alive {
            (defined, change)
        } else {
            (true, 0.0)
        };
    }
}

/// A job handed to a pool worker: the shared read-state plus one slab it
/// exclusively writes this step. A worker may receive several jobs per
/// step (its cost-balanced share of the over-decomposed slabs).
struct StepJob {
    read: Arc<StepRead>,
    task: SlabTask,
}

/// The persistent worker pool: `threads − 1` long-lived threads (the
/// caller thread computes its own share of the slabs), created once per
/// engine on the first parallel step and reused for every subsequent step
/// and cycle — no per-step thread spawns. Work is exchanged by
/// *ownership*: each step a worker receives its `SlabTask`s by value, one
/// job per slab, and sends each back when done, so no locking or unsafe
/// aliasing is involved.
#[derive(Debug)]
struct WorkerPool {
    job_txs: Vec<mpsc::Sender<StepJob>>,
    result_rx: mpsc::Receiver<SlabTask>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        let (result_tx, result_rx) = mpsc::channel();
        let mut job_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<StepJob>();
            let result_tx = result_tx.clone();
            handles.push(thread::spawn(move || {
                while let Ok(StepJob { read, mut task }) = rx.recv() {
                    step_slab(&read, &mut task);
                    // Release the shared state before reporting back so the
                    // main thread can reclaim it with `Arc::try_unwrap`.
                    drop(read);
                    if result_tx.send(task).is_err() {
                        break;
                    }
                }
            }));
            job_txs.push(tx);
        }
        WorkerPool { job_txs, result_rx, handles }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels ends the worker loops.
        self.job_txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// How many slabs each step-executing thread gets on average. > 1 so the
/// per-step sender-weighted assignment has units to balance with; small
/// enough that per-slab dispatch overhead stays negligible.
const SLABS_PER_THREAD: usize = 4;

/// The synchronous-round vector gossip engine.
#[derive(Debug)]
pub struct VectorGossipEngine {
    n: usize,
    config: EngineConfig,
    /// Step-executing threads (caller + pool workers), ≥ 1: the
    /// configured thread count clamped to `n`.
    bins: usize,
    /// Rows per slab: slab `k` holds rows `k·rows_per ..`.
    rows_per: usize,
    /// Current state: persistent slab-partitioned flat arenas behind
    /// `Arc`s. During a step every thread reads them through cheap `Arc`
    /// clones; `finish_step` reclaims uniqueness and swaps each freshly
    /// written buffer in. The payloads are allocated once and never move.
    cur: Vec<Arc<Slab>>,
    /// Write buffers + convergence memory, one task per slab. `None` only
    /// transiently while a task is checked out to a pool worker.
    tasks: Vec<Option<SlabTask>>,
    streaks: Vec<usize>,
    alive: Arc<Vec<bool>>,
    /// Gossip disturbance: per-node sorted list of components whose pushed
    /// x the node inflates, and the inflation factor (None = honest).
    corruption: Arc<CorruptionTable>,
    stats: GossipStats,
    step_idx: usize,
    // Reused per-step scratch (send table + CSR build), so a step allocates
    // nothing in steady state.
    sends: Vec<u32>,
    csr_offsets: Vec<u32>,
    csr_cursor: Vec<u32>,
    csr_flat: Vec<u32>,
    /// Lazily spawned on the first parallel step; lives as long as the
    /// engine. Never cloned.
    pool: Option<WorkerPool>,
    /// Step-timing/bytes hooks; `None` (the default) compiles the
    /// instrumentation down to a branch on a cold field.
    obs: Option<EngineObs>,
}

impl Clone for VectorGossipEngine {
    fn clone(&self) -> Self {
        VectorGossipEngine {
            n: self.n,
            config: self.config.clone(),
            bins: self.bins,
            rows_per: self.rows_per,
            // Deep-copy the read arenas: the clone must own its buffers
            // uniquely or the buffer-swap publish would see a shared Arc.
            cur: self.cur.iter().map(|s| Arc::new((**s).clone())).collect(),
            tasks: self.tasks.clone(),
            streaks: self.streaks.clone(),
            alive: self.alive.clone(),
            corruption: self.corruption.clone(),
            stats: self.stats,
            step_idx: self.step_idx,
            sends: self.sends.clone(),
            csr_offsets: self.csr_offsets.clone(),
            csr_cursor: self.csr_cursor.clone(),
            csr_flat: self.csr_flat.clone(),
            // The clone spawns its own pool on demand.
            pool: None,
            obs: self.obs.clone(),
        }
    }
}

impl VectorGossipEngine {
    /// Engine with all state zeroed; call [`seed`](Self::seed) before
    /// stepping.
    pub fn new(n: usize, config: EngineConfig) -> Self {
        assert!(n >= 2, "gossip needs at least two nodes");
        assert!(config.patience >= 1, "patience must be >= 1");
        assert!(config.tile >= 1, "tile width must be at least 1");
        let bins = config.threads.clamp(1, n);
        // Over-decompose: several slabs per thread so the per-step
        // sender-weighted assignment can balance skewed loads. Fully
        // sequential engines keep one flat arena per buffer.
        let slab_count = if bins == 1 {
            1
        } else {
            (bins * SLABS_PER_THREAD).min(n)
        };
        let rows_per = n.div_ceil(slab_count);
        let mut cur = Vec::new();
        let mut tasks = Vec::new();
        let mut lo = 0;
        while lo < n {
            let rows = rows_per.min(n - lo);
            cur.push(Arc::new(Slab::zeroed(lo, rows, n)));
            tasks.push(Some(SlabTask {
                slab: Slab::zeroed(lo, rows, n),
                beta: vec![f64::NAN; rows * n],
                out: vec![(true, 0.0); rows],
            }));
            lo += rows;
        }
        VectorGossipEngine {
            n,
            config,
            bins,
            rows_per,
            cur,
            tasks,
            streaks: vec![0; n],
            alive: Arc::new(vec![true; n]),
            corruption: Arc::new(vec![None; n]),
            stats: GossipStats::default(),
            step_idx: 0,
            sends: vec![NO_SEND; n],
            csr_offsets: vec![0; n + 1],
            csr_cursor: vec![0; n],
            csr_flat: Vec::with_capacity(n),
            pool: None,
            obs: None,
        }
    }

    /// Attach (or with `None`, detach) the step-timing and bytes-streamed
    /// hooks. Observation never changes results: the recorded values flow
    /// out of the engine only.
    pub fn set_obs(&mut self, obs: Option<EngineObs>) {
        self.obs = obs;
    }

    /// Make `node` a *gossip disturber*: every pair it pushes has the `x`
    /// values of `targets` multiplied by `factor` (> 1 injects phantom
    /// reputation mass for those components — the "disturbance by
    /// malicious peers" the paper's robustness experiments measure; the
    /// node's own retained half stays honest, so the corruption is pure
    /// message forgery). `factor = 1` or an empty target list restores
    /// honesty.
    pub fn set_corruption(&mut self, node: NodeId, mut targets: Vec<u32>, factor: f64) {
        assert!(factor >= 0.0, "factor must be non-negative");
        assert!(targets.iter().all(|&t| (t as usize) < self.n), "corruption target out of range");
        let table = Arc::make_mut(&mut self.corruption);
        if targets.is_empty() || factor == 1.0 {
            table[node.index()] = None;
        } else {
            // Sorted so the tiled kernel can slice a tile's share out with
            // two binary searches. Reordering cannot change any value:
            // each target element receives its own independent add.
            targets.sort_unstable();
            table[node.index()] = Some((targets, factor));
        }
    }

    /// Seed a new aggregation cycle per Algorithm 2, lines 5–11, with the
    /// greedy-factor mixing folded into the weighted scores:
    ///
    /// ```text
    /// x_i[j] ← v_i(t−1) · [ (1−α)·s_ij + α·p_j ]
    /// w_i[j] ← 1  iff  j == i
    /// ```
    ///
    /// Summed over `i` this yields `(1−α)(Sᵀ·V)_j + α·p_j` because
    /// `Σ_i v_i = 1`, i.e. exactly one centralized iteration of Eq. 2.
    pub fn seed(
        &mut self,
        matrix: &TrustMatrix,
        v_prev: &ReputationVector,
        prior: &Prior,
        alpha: f64,
    ) {
        assert_eq!(matrix.n(), self.n, "matrix size mismatch");
        assert_eq!(v_prev.n(), self.n, "vector size mismatch");
        assert_eq!(prior.n(), self.n, "prior size mismatch");
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        let n = self.n;
        let p = prior.to_dense();
        for slab in &mut self.cur {
            let slab = Arc::get_mut(slab).expect("no step in flight");
            for r in 0..slab.rows() {
                let i = slab.lo + r;
                let id = NodeId::from_index(i);
                let vi = v_prev.score(id);
                let xi = &mut slab.xs[r * n..(r + 1) * n];
                // α-jump share, spread per the prior.
                for (x, &pj) in xi.iter_mut().zip(&p) {
                    *x = vi * alpha * pj;
                }
                // (1−α) share along the trust row.
                if matrix.row_is_dangling(id) {
                    let share = vi * (1.0 - alpha) / n as f64;
                    for x in xi.iter_mut() {
                        *x += share;
                    }
                } else {
                    let (cols, vals) = matrix.row(id);
                    for (&c, &s) in cols.iter().zip(vals) {
                        xi[c as usize] += vi * (1.0 - alpha) * s;
                    }
                }
                let wi = &mut slab.ws[r * n..(r + 1) * n];
                wi.fill(0.0);
                wi[i] = 1.0;
            }
        }
        for task in &mut self.tasks {
            let task = task.as_mut().expect("no step in flight");
            task.beta.fill(f64::NAN);
        }
        self.streaks.fill(0);
        self.step_idx = 0;
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> GossipStats {
        self.stats
    }

    /// Mark a node dead: it stops sending and receiving; pushes addressed to
    /// it are lost. Its state is frozen (the mass it holds leaves the
    /// computation — exactly what a crash does to push-sum).
    pub fn kill(&mut self, node: NodeId) {
        Arc::make_mut(&mut self.alive)[node.index()] = false;
    }

    /// Revive a node (it re-enters gossip with its frozen state).
    pub fn revive(&mut self, node: NodeId) {
        Arc::make_mut(&mut self.alive)[node.index()] = true;
    }

    /// Whether `node` is alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// `(x, w)` state row of node `i`.
    fn row(&self, i: usize) -> (&[f64], &[f64]) {
        let s = &self.cur[i / self.rows_per];
        (s.x_row(i), s.w_row(i))
    }

    /// Total `(Σx[j], Σw[j])` over all nodes for component `j` — conserved
    /// while no messages are lost and no nodes die.
    pub fn component_mass(&self, j: NodeId) -> (f64, f64) {
        let j = j.index();
        let mut x = 0.0;
        let mut w = 0.0;
        for i in 0..self.n {
            let (xs, ws) = self.row(i);
            x += xs[j];
            w += ws[j];
        }
        (x, w)
    }

    /// Node `i`'s current estimate of the full score vector:
    /// `β_j = x_j/w_j`, with 0 where `w_j = 0` (no information yet).
    pub fn extract(&self, i: NodeId) -> Vec<f64> {
        let (xs, ws) = self.row(i.index());
        xs.iter()
            .zip(ws)
            .map(|(&x, &w)| if w > 0.0 { x / w } else { 0.0 })
            .collect()
    }

    /// The mean of all alive nodes' estimates — the lowest-variance readout
    /// of the consensus, used by the cycle driver. Streams the flat arenas
    /// row-major (one linear pass).
    pub fn mean_estimate(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.n];
        let mut count = 0usize;
        for i in 0..self.n {
            if !self.alive[i] {
                continue;
            }
            count += 1;
            let (xs, ws) = self.row(i);
            for (a, (&x, &w)) in acc.iter_mut().zip(xs.iter().zip(ws)) {
                if w > 0.0 {
                    *a += x / w;
                }
            }
        }
        assert!(count > 0, "no alive nodes");
        for a in acc.iter_mut() {
            *a /= count as f64;
        }
        acc
    }

    /// Maximum over components of (max−min) spread of estimates across
    /// alive nodes — a global consensus-quality oracle used in tests.
    /// Single row-major pass over the flat arenas, tracking per-component
    /// running min/max (the old column-major walk was the worst possible
    /// access pattern for the row-major layout).
    pub fn consensus_spread(&self) -> f64 {
        let mut lo = vec![f64::INFINITY; self.n];
        let mut hi = vec![f64::NEG_INFINITY; self.n];
        for i in 0..self.n {
            if !self.alive[i] {
                continue;
            }
            let (xs, ws) = self.row(i);
            for j in 0..self.n {
                let w = ws[j];
                if w <= 0.0 {
                    return f64::INFINITY;
                }
                let b = xs[j] / w;
                lo[j] = lo[j].min(b);
                hi[j] = hi[j].max(b);
            }
        }
        lo.iter().zip(&hi).map(|(&l, &h)| h - l).fold(0.0, f64::max)
    }

    /// Phase 0 of a step, always sequential: draw every alive node's gossip
    /// target and loss decision in ascending sender order (the RNG
    /// consumption order both step flavours share), update the message
    /// counters, and build the receiver-grouped CSR send lists (senders
    /// ascending within each receiver). Returns whether disturbance is
    /// active this step.
    fn draw_sends<C: TargetChooser, R: Rng + ?Sized>(&mut self, chooser: &C, rng: &mut R) -> bool {
        let n = self.n;
        for i in 0..n {
            self.sends[i] = NO_SEND;
            if !self.alive[i] {
                continue;
            }
            let t = chooser.choose(i, self.step_idx, n, rng);
            self.stats.messages_sent += 1;
            self.stats.triplets_sent += n as u64;
            let lost = !self.alive[t]
                || (self.config.loss_rate > 0.0 && rng.random::<f64>() < self.config.loss_rate);
            if lost {
                self.stats.messages_dropped += 1;
            } else {
                self.sends[i] = t as u32;
            }
        }
        // Counting sort into CSR: offsets, then fill ascending.
        self.csr_offsets.fill(0);
        for &t in &self.sends {
            if t != NO_SEND {
                self.csr_offsets[t as usize + 1] += 1;
            }
        }
        for i in 0..n {
            self.csr_offsets[i + 1] += self.csr_offsets[i];
        }
        self.csr_cursor.copy_from_slice(&self.csr_offsets[..n]);
        self.csr_flat.clear();
        self.csr_flat.resize(self.csr_offsets[n] as usize, 0);
        for (i, &t) in self.sends.iter().enumerate() {
            if t != NO_SEND {
                let c = &mut self.csr_cursor[t as usize];
                self.csr_flat[*c as usize] = i as u32;
                *c += 1;
            }
        }
        self.step_idx < self.config.corruption_steps && self.corruption.iter().any(Option::is_some)
    }

    /// Package the read-only step state: `Arc` handles onto the persistent
    /// read arenas (a refcount bump per slab — the payloads never move)
    /// plus the CSR buffers, which are moved out and handed back by
    /// [`Self::restore_read`].
    fn make_read(&mut self, corrupt_active: bool) -> StepRead {
        StepRead {
            rows_per: self.rows_per,
            slabs: self.cur.clone(),
            alive: self.alive.clone(),
            corruption: self.corruption.clone(),
            corrupt_active,
            offsets: std::mem::take(&mut self.csr_offsets),
            flat: std::mem::take(&mut self.csr_flat),
            tile: self.config.tile,
        }
    }

    fn restore_read(&mut self, read: StepRead) {
        self.csr_offsets = read.offsets;
        self.csr_flat = read.flat;
        // Dropping `read` here releases its slab `Arc` clones, restoring
        // unique ownership of the read arenas to the engine.
    }

    /// Distribute the slabs over the step-executing threads (bin 0 = the
    /// caller) by **sender-weighted cost**: row `i` costs `2 + senders(i)`
    /// array streams (retain/β plus one per delivery), summed per slab and
    /// assigned greedily, heaviest slab first, to the least-loaded bin
    /// (LPT). Deterministic: ties break on the lower slab / bin index.
    /// Values cannot depend on the assignment — only wall time does.
    fn weighted_bins(&self) -> Vec<Vec<usize>> {
        let mut order: Vec<(u64, usize)> = (0..self.cur.len())
            .map(|k| {
                let lo = k * self.rows_per;
                let hi = lo + self.cur[k].rows();
                let sends = (self.csr_offsets[hi] - self.csr_offsets[lo]) as u64;
                (2 * (hi - lo) as u64 + sends, k)
            })
            .collect();
        order.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut loads = vec![0u64; self.bins];
        let mut bins = vec![Vec::new(); self.bins];
        for (cost, k) in order {
            let b = (0..self.bins).min_by_key(|&b| (loads[b], b)).expect("bins >= 1");
            loads[b] += cost;
            bins[b].push(k);
        }
        // Ascending within a bin: the owning thread then walks memory in
        // address order.
        for bin in &mut bins {
            bin.sort_unstable();
        }
        bins
    }

    /// Publish the step by **buffer swap**: reclaim unique ownership of
    /// each read arena (every step participant has dropped its `Arc`
    /// clones by now) and swap the task's freshly written slab with it —
    /// the written buffer becomes the readable state, the old state
    /// becomes the task's write buffer for the next step. Then fold the
    /// per-row convergence results into the streak counters and account
    /// the step's estimated memory traffic.
    fn finish_step(&mut self) -> StepOutcome {
        for (cur, task) in self.cur.iter_mut().zip(&mut self.tasks) {
            let task = task.as_mut().expect("all tasks returned");
            let cur = Arc::get_mut(cur).expect("readers released at publish");
            std::mem::swap(cur, &mut task.slab);
        }
        self.step_idx += 1;
        self.stats.steps += 1;
        self.stats.bytes_streamed +=
            crate::stats::step_bytes_estimate(self.n, self.csr_flat.len(), self.config.tile);

        let mut max_change: f64 = 0.0;
        let mut all = true;
        for task in &self.tasks {
            let task = task.as_ref().expect("all tasks returned");
            let lo = task.slab.lo;
            for (r, &(defined, change)) in task.out.iter().enumerate() {
                let i = lo + r;
                if !self.alive[i] {
                    continue;
                }
                if defined && change <= self.config.epsilon {
                    self.streaks[i] += 1;
                } else {
                    self.streaks[i] = 0;
                }
                max_change = max_change.max(change);
                if !defined {
                    max_change = f64::INFINITY;
                }
                all &= self.streaks[i] >= self.config.patience;
            }
        }
        let all_converged = all && self.step_idx >= self.config.min_steps;
        StepOutcome { all_converged, max_change }
    }

    /// Execute one synchronous gossip step, sequentially.
    pub fn step<C: TargetChooser, R: Rng + ?Sized>(
        &mut self,
        chooser: &C,
        rng: &mut R,
    ) -> StepOutcome {
        // One cold branch when unobserved; one clock read when observed.
        let sw = self.obs.as_ref().map(|_| Stopwatch::start());
        let bytes0 = self.stats.bytes_streamed;
        let corrupt_active = self.draw_sends(chooser, rng);
        #[cfg(feature = "invariants")]
        let expected = self.expected_masses_after(corrupt_active);
        let read = self.make_read(corrupt_active);
        for task in &mut self.tasks {
            step_slab(&read, task.as_mut().expect("no step in flight"));
        }
        self.restore_read(read);
        let outcome = self.finish_step();
        #[cfg(feature = "invariants")]
        self.assert_masses(&expected, "VectorGossipEngine::step");
        if let (Some(sw), Some(obs)) = (sw, self.obs.as_ref()) {
            obs.step_ns.record(sw.elapsed_ns());
            obs.bytes_streamed.add(self.stats.bytes_streamed - bytes0);
        }
        outcome
    }

    /// A data-parallel [`step`](Self::step) over the engine's persistent
    /// worker pool, producing **bit-identical** results to the sequential
    /// step for the same RNG state — including under message loss, dead
    /// nodes and gossip disturbance (see the module docs for the
    /// determinism contract). With `threads = 1` this *is* the sequential
    /// step. The pool is spawned on the first call and reused across steps
    /// and cycles.
    pub fn par_step<C: TargetChooser, R: Rng + ?Sized>(
        &mut self,
        chooser: &C,
        rng: &mut R,
    ) -> StepOutcome {
        if self.bins == 1 {
            // Delegation: the sequential step carries the instrumentation,
            // so the step is never timed (or bytes-counted) twice.
            return self.step(chooser, rng);
        }
        let sw = self.obs.as_ref().map(|_| Stopwatch::start());
        let bytes0 = self.stats.bytes_streamed;
        let corrupt_active = self.draw_sends(chooser, rng);
        #[cfg(feature = "invariants")]
        let expected = self.expected_masses_after(corrupt_active);
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::new(self.bins - 1));
        }
        let assignment = self.weighted_bins();
        let read = Arc::new(self.make_read(corrupt_active));
        // Shadow run of the sequential kernel over a copy of every task:
        // the bit-identity contract checked against the pool's results
        // below, every step, while the feature is on.
        #[cfg(feature = "invariants")]
        let shadow: Vec<SlabTask> = {
            let mut shadow: Vec<SlabTask> = self
                .tasks
                .iter()
                .map(|t| t.clone().expect("no step in flight"))
                .collect();
            for task in &mut shadow {
                step_slab(&read, task);
            }
            shadow
        };
        // Bins 1.. go to the workers (one job per owned slab, queued up
        // front); the caller thread computes bin 0's share meanwhile.
        let pool = self.pool.as_ref().expect("pool just created");
        let mut outstanding = 0;
        for (b, slabs) in assignment.iter().enumerate().skip(1) {
            for &k in slabs {
                let task = self.tasks[k].take().expect("no step in flight");
                pool.job_txs[b - 1]
                    .send(StepJob { read: Arc::clone(&read), task })
                    .expect("gossip worker exited");
                outstanding += 1;
            }
        }
        for &k in &assignment[0] {
            let mut own = self.tasks[k].take().expect("no step in flight");
            step_slab(&read, &mut own);
            self.tasks[k] = Some(own);
        }
        for _ in 0..outstanding {
            let task = pool.result_rx.recv().expect("gossip worker panicked");
            let k = task.slab.lo / self.rows_per;
            self.tasks[k] = Some(task);
        }
        let read = Arc::try_unwrap(read)
            .unwrap_or_else(|_| unreachable!("workers released the read state"));
        self.restore_read(read);
        #[cfg(feature = "invariants")]
        self.assert_par_matches_shadow(&shadow);
        let outcome = self.finish_step();
        #[cfg(feature = "invariants")]
        self.assert_masses(&expected, "VectorGossipEngine::par_step");
        if let (Some(sw), Some(obs)) = (sw, self.obs.as_ref()) {
            obs.step_ns.record(sw.elapsed_ns());
            obs.bytes_streamed.add(self.stats.bytes_streamed - bytes0);
        }
        outcome
    }

    /// Per-component `(Σx, Σw)` totals this step *should* end with,
    /// derived from the send table before the step runs: the pre-step
    /// totals, minus half the row of every alive sender whose push is
    /// lost (loss-rate drop or dead receiver), plus the phantom mass
    /// every *delivered* push from a disturber forges while the
    /// corruption window is active. Injected faults are accounted, not
    /// tolerated — so the conservation check stays exact under them.
    #[cfg(feature = "invariants")]
    fn expected_masses_after(&self, corrupt_active: bool) -> (Vec<f64>, Vec<f64>) {
        let n = self.n;
        let mut ex = vec![0.0; n];
        let mut ew = vec![0.0; n];
        for i in 0..n {
            let (xs, ws) = self.row(i);
            for j in 0..n {
                ex[j] += xs[j];
                ew[j] += ws[j];
            }
        }
        for i in 0..n {
            let delivered = self.sends[i] != NO_SEND;
            if self.alive[i] && !delivered {
                let (xs, ws) = self.row(i);
                for j in 0..n {
                    ex[j] -= 0.5 * xs[j];
                    ew[j] -= 0.5 * ws[j];
                }
            }
            if corrupt_active && delivered {
                if let Some((targets, factor)) = &self.corruption[i] {
                    let (xs, _) = self.row(i);
                    for &j in targets {
                        ex[j as usize] += 0.5 * xs[j as usize] * (factor - 1.0);
                    }
                }
            }
        }
        (ex, ew)
    }

    /// Check every component's post-step mass against the accounting from
    /// [`Self::expected_masses_after`].
    #[cfg(feature = "invariants")]
    fn assert_masses(&self, expected: &(Vec<f64>, Vec<f64>), context: &str) {
        use gossiptrust_core::invariants::check_mass;
        let n = self.n;
        let mut ax = vec![0.0; n];
        let mut aw = vec![0.0; n];
        for i in 0..n {
            let (xs, ws) = self.row(i);
            for j in 0..n {
                ax[j] += xs[j];
                aw[j] += ws[j];
            }
        }
        for j in 0..n {
            check_mass(j, expected.0[j], ax[j], context);
            check_mass(j, expected.1[j], aw[j], context);
        }
    }

    /// Compare the pool-computed tasks against the sequential shadow run
    /// **bit for bit** (`to_bits`, so NaN convergence memory compares
    /// exactly too) — the determinism contract, enforced every parallel
    /// step while the feature is on.
    #[cfg(feature = "invariants")]
    fn assert_par_matches_shadow(&self, shadow: &[SlabTask]) {
        for (k, (task, shadow)) in self.tasks.iter().zip(shadow).enumerate() {
            let task = task.as_ref().expect("all tasks returned");
            let same_bits = |a: &[f64], b: &[f64]| {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            };
            assert!(
                same_bits(&task.slab.xs, &shadow.slab.xs)
                    && same_bits(&task.slab.ws, &shadow.slab.ws)
                    && same_bits(&task.beta, &shadow.beta),
                "invariant violated [VectorGossipEngine::par_step]: slab {k} diverged \
                 from the sequential kernel (bit-identity contract)"
            );
            assert_eq!(
                task.out, shadow.out,
                "invariant violated [VectorGossipEngine::par_step]: slab {k} convergence \
                 results diverged from the sequential kernel"
            );
        }
    }

    /// Run until all alive nodes converge or the step budget is exhausted,
    /// using the parallel step whenever the engine is configured with more
    /// than one thread. Returns the number of steps taken in this call and
    /// whether convergence was reached.
    pub fn run<C: TargetChooser, R: Rng + ?Sized>(
        &mut self,
        chooser: &C,
        rng: &mut R,
    ) -> (usize, bool) {
        let parallel = self.bins > 1;
        let mut steps = 0;
        while steps < self.config.max_steps {
            let out = if parallel {
                self.par_step(chooser, rng)
            } else {
                self.step(chooser, rng)
            };
            steps += 1;
            if out.all_converged {
                return (steps, true);
            }
        }
        (steps, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chooser::UniformChooser;
    use gossiptrust_core::matrix::TrustMatrixBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star(n: usize) -> TrustMatrix {
        let mut b = TrustMatrixBuilder::new(n);
        for i in 1..n {
            b.record(NodeId::from_index(i), NodeId(0), 1.0);
        }
        b.record(NodeId(0), NodeId(1), 1.0);
        b.build()
    }

    fn config(n: usize) -> EngineConfig {
        EngineConfig::from_params(&Params::for_network(n), n)
    }

    /// One lossless gossip cycle must reproduce the exact matrix–vector
    /// product on every node.
    #[test]
    fn converges_to_exact_matvec() {
        let n = 24;
        let m = star(n);
        let v0 = ReputationVector::uniform(n);
        let prior = Prior::uniform(n);
        let alpha = 0.15;
        let mut engine = VectorGossipEngine::new(n, config(n));
        engine.seed(&m, &v0, &prior, alpha);
        let mut rng = StdRng::seed_from_u64(11);
        let (_, converged) = engine.run(&UniformChooser, &mut rng);
        assert!(converged);
        // Exact target.
        let mut exact = vec![0.0; n];
        m.transpose_mul(v0.values(), &mut exact).unwrap();
        prior.mix_into(&mut exact, alpha);
        for i in 0..n {
            let est = engine.extract(NodeId::from_index(i));
            for j in 0..n {
                let rel = (est[j] - exact[j]).abs() / exact[j].max(1e-12);
                assert!(rel < 1e-3, "node {i} comp {j}: {} vs {}", est[j], exact[j]);
            }
        }
    }

    #[test]
    fn seeding_sums_to_one_centralized_iteration() {
        let n = 10;
        let m = star(n);
        let v0 = ReputationVector::uniform(n);
        let prior = Prior::over_nodes(n, &[NodeId(0), NodeId(1)]);
        let alpha = 0.3;
        let mut engine = VectorGossipEngine::new(n, config(n));
        engine.seed(&m, &v0, &prior, alpha);
        let mut exact = vec![0.0; n];
        m.transpose_mul(v0.values(), &mut exact).unwrap();
        prior.mix_into(&mut exact, alpha);
        #[allow(clippy::needless_range_loop)] // index drives multiple arrays
        for j in 0..n {
            let (x, w) = engine.component_mass(NodeId::from_index(j));
            assert!((x - exact[j]).abs() < 1e-12, "component {j}");
            assert!((w - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mass_conserved_without_loss() {
        let n = 12;
        let m = star(n);
        let mut engine = VectorGossipEngine::new(n, config(n));
        engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.0);
        let before: Vec<(f64, f64)> =
            (0..n).map(|j| engine.component_mass(NodeId::from_index(j))).collect();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            engine.step(&UniformChooser, &mut rng);
        }
        for (j, &(x0, w0)) in before.iter().enumerate() {
            let (x1, w1) = engine.component_mass(NodeId::from_index(j));
            assert!((x0 - x1).abs() < 1e-12, "x mass of comp {j}");
            assert!((w0 - w1).abs() < 1e-12, "w mass of comp {j}");
        }
    }

    /// Attaching the obs hooks must be invisible to results: an observed
    /// engine is bit-identical to a bare one, step for step, while its
    /// histogram/counter faithfully mirror the engine's own accounting.
    #[test]
    fn observation_is_bit_transparent() {
        let n = 16;
        let m = star(n);
        let mut bare = VectorGossipEngine::new(n, config(n).with_threads(2));
        let mut seen = bare.clone();
        bare.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        seen.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        let registry = gossiptrust_obs::Registry::new();
        let obs = EngineObs {
            step_ns: registry.histogram("gt_gossip_step_ns"),
            bytes_streamed: registry.counter("gt_gossip_bytes_streamed_total"),
        };
        seen.set_obs(Some(obs.clone()));
        let mut rng_a = StdRng::seed_from_u64(29);
        let mut rng_b = StdRng::seed_from_u64(29);
        for _ in 0..20 {
            bare.par_step(&UniformChooser, &mut rng_a);
            seen.par_step(&UniformChooser, &mut rng_b);
        }
        let a = bare.mean_estimate();
        let b = seen.mean_estimate();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits(), "observed engine must be bit-identical");
        }
        assert_eq!(obs.step_ns.count(), 20);
        assert_eq!(obs.bytes_streamed.get(), seen.stats().bytes_streamed);
    }

    #[test]
    fn loss_drops_messages_but_still_converges_roughly() {
        let n = 24;
        let m = star(n);
        let cfg = config(n).with_loss_rate(0.10);
        let mut engine = VectorGossipEngine::new(n, cfg);
        engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        let mut rng = StdRng::seed_from_u64(17);
        let (_, converged) = engine.run(&UniformChooser, &mut rng);
        assert!(converged, "lossy gossip should still converge");
        assert!(engine.stats().messages_dropped > 0);
        // The ratios still approximate the exact product on average:
        // push-sum loses x and w *together*, so ratios stay roughly (not
        // exactly) unbiased; individual components can drift when the drops
        // hit a component's consensus weight early, so we check the mean.
        let mut exact = vec![0.0; n];
        m.transpose_mul(&vec![1.0 / n as f64; n], &mut exact).unwrap();
        Prior::uniform(n).mix_into(&mut exact, 0.15);
        let est = engine.mean_estimate();
        let mean_rel: f64 =
            (0..n).map(|j| (est[j] - exact[j]).abs() / exact[j]).sum::<f64>() / n as f64;
        assert!(mean_rel < 0.35, "mean rel err {mean_rel}");
    }

    #[test]
    fn dead_node_freezes_and_others_converge() {
        let n = 16;
        let m = star(n);
        let mut engine = VectorGossipEngine::new(n, config(n));
        engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        // Let node 5's consensus weight spread before the crash; if a node
        // dies before its w seed ever leaves it, its own score component
        // becomes unaggregatable in this cycle (all of w_5 is frozen).
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..6 {
            engine.step(&UniformChooser, &mut rng);
        }
        engine.kill(NodeId(5));
        assert!(!engine.is_alive(NodeId(5)));
        let frozen = engine.extract(NodeId(5));
        let (_, converged) = engine.run(&UniformChooser, &mut rng);
        assert!(converged);
        assert_eq!(engine.extract(NodeId(5)), frozen, "dead node state must not change");
    }

    #[test]
    fn consensus_spread_shrinks() {
        let n = 16;
        let m = star(n);
        let mut engine = VectorGossipEngine::new(n, config(n));
        engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..4 {
            engine.step(&UniformChooser, &mut rng);
        }
        let early = engine.consensus_spread();
        for _ in 0..60 {
            engine.step(&UniformChooser, &mut rng);
        }
        let late = engine.consensus_spread();
        assert!(late < early || early == f64::INFINITY, "spread {early} -> {late}");
        assert!(late < 1e-3);
    }

    /// `mean_estimate` and `consensus_spread` are defined in terms of the
    /// per-node `extract` readout; pin the row-major implementations to
    /// that definition.
    #[test]
    fn readouts_match_extract() {
        let n = 12;
        let m = star(n);
        let mut engine = VectorGossipEngine::new(n, config(n).with_threads(3));
        engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        let mut rng = StdRng::seed_from_u64(41);
        // Step until every node's consensus weight has spread (w > 0
        // everywhere) so extract's 0-fallback never fires and the oracles
        // below match the readouts' definitions exactly.
        for _ in 0..200 {
            engine.step(&UniformChooser, &mut rng);
            if engine.consensus_spread().is_finite() {
                break;
            }
        }
        assert!(engine.consensus_spread().is_finite());
        engine.kill(NodeId(7));
        let per_node: Vec<Vec<f64>> =
            (0..n).map(|i| engine.extract(NodeId::from_index(i))).collect();
        let alive: Vec<usize> = (0..n).filter(|&i| i != 7).collect();
        // Oracle mean over alive nodes' extract values.
        let mut mean = vec![0.0; n];
        for &i in &alive {
            for j in 0..n {
                mean[j] += per_node[i][j];
            }
        }
        for v in mean.iter_mut() {
            *v /= alive.len() as f64;
        }
        let got = engine.mean_estimate();
        for j in 0..n {
            assert!((got[j] - mean[j]).abs() < 1e-15, "mean comp {j}");
        }
        // Oracle spread over alive nodes' extract values (all w > 0, so
        // this matches consensus_spread's definition).
        let mut worst: f64 = 0.0;
        for j in 0..n {
            let lo = alive.iter().map(|&i| per_node[i][j]).fold(f64::INFINITY, f64::min);
            let hi = alive
                .iter()
                .map(|&i| per_node[i][j])
                .fold(f64::NEG_INFINITY, f64::max);
            worst = worst.max(hi - lo);
        }
        let got = engine.consensus_spread();
        assert!((got - worst).abs() < 1e-15, "spread {got} vs oracle {worst}");
    }

    #[test]
    fn consensus_spread_is_infinite_while_weights_are_missing() {
        let n = 8;
        let m = star(n);
        let mut engine = VectorGossipEngine::new(n, config(n));
        engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        // Right after seeding every node only holds its own weight.
        assert_eq!(engine.consensus_spread(), f64::INFINITY);
    }

    #[test]
    fn min_steps_is_respected() {
        let n = 8;
        let m = star(n);
        let mut cfg = config(n);
        cfg.min_steps = 20;
        let mut engine = VectorGossipEngine::new(n, cfg);
        engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        let mut rng = StdRng::seed_from_u64(31);
        let (steps, converged) = engine.run(&UniformChooser, &mut rng);
        assert!(converged);
        assert!(steps >= 20, "converged after only {steps} steps");
    }

    #[test]
    fn reseeding_resets_detectors() {
        let n = 8;
        let m = star(n);
        let mut engine = VectorGossipEngine::new(n, config(n));
        let v0 = ReputationVector::uniform(n);
        engine.seed(&m, &v0, &Prior::uniform(n), 0.15);
        let mut rng = StdRng::seed_from_u64(37);
        let (_, c1) = engine.run(&UniformChooser, &mut rng);
        assert!(c1);
        // New cycle must run again (not instantly report converged).
        engine.seed(&m, &v0, &Prior::uniform(n), 0.15);
        let out = engine.step(&UniformChooser, &mut rng);
        assert!(!out.all_converged);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_single_node() {
        let _ = VectorGossipEngine::new(1, config(2));
    }

    #[test]
    fn corrupt_sender_inflates_its_component() {
        let n = 16;
        let m = star(n);
        let run = |corrupt: bool| {
            let mut engine = VectorGossipEngine::new(n, config(n));
            engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
            if corrupt {
                engine.set_corruption(NodeId(5), vec![5], 4.0);
            }
            let mut rng = StdRng::seed_from_u64(9);
            engine.run(&UniformChooser, &mut rng);
            let est = engine.mean_estimate();
            ReputationVector::from_weights(est.iter().map(|&x| x.max(0.0)).collect()).unwrap()
        };
        let honest = run(false);
        let corrupted = run(true);
        assert!(
            corrupted.score(NodeId(5)) > honest.score(NodeId(5)) * 1.2,
            "forged mass should inflate node 5: {} vs {}",
            corrupted.score(NodeId(5)),
            honest.score(NodeId(5))
        );
    }

    #[test]
    fn corruption_can_be_cleared() {
        let n = 8;
        let mut engine = VectorGossipEngine::new(n, config(n));
        engine.set_corruption(NodeId(1), vec![1], 3.0);
        engine.set_corruption(NodeId(1), vec![], 3.0); // cleared
        engine.set_corruption(NodeId(2), vec![2], 1.0); // factor 1 = honest
        let m = star(n);
        engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        // With all corruption cleared, mass is conserved.
        let before: Vec<(f64, f64)> =
            (0..n).map(|j| engine.component_mass(NodeId::from_index(j))).collect();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            engine.step(&UniformChooser, &mut rng);
        }
        for (j, &(x0, _)) in before.iter().enumerate() {
            let (x1, _) = engine.component_mass(NodeId::from_index(j));
            assert!((x0 - x1).abs() < 1e-12, "comp {j}");
        }
    }

    /// Pathologically skewed target distribution: every sender pushes to
    /// node 0 or node 1, so a handful of rows carry (almost) the whole
    /// sender load — the worst case for the per-step sender-weighted slab
    /// assignment, and unreachable with `UniformChooser`. Self-pushes
    /// (sender 0/1 drawing itself) are allowed by the trait and exercise
    /// the merge-back path.
    struct HotspotChooser;

    impl TargetChooser for HotspotChooser {
        fn choose<R: Rng + ?Sized>(
            &self,
            _sender: usize,
            _step: usize,
            n: usize,
            rng: &mut R,
        ) -> usize {
            rng.random_range(0..2.min(n))
        }
    }

    /// Drive a sequential reference and one pool engine per thread count
    /// through 12 lockstep steps over the full fault matrix — message loss
    /// × gossip disturbance × dead nodes — asserting bit-identical state,
    /// outcomes and counters after every step.
    fn assert_bit_identity_matrix<C: TargetChooser>(chooser: &C, label: &str) {
        let n = 32;
        let m = star(n);
        for loss in [0.0, 0.15] {
            for corrupt in [false, true] {
                for dead in [false, true] {
                    let build = |threads: usize| {
                        let mut e = VectorGossipEngine::new(
                            n,
                            config(n).with_loss_rate(loss).with_threads(threads),
                        );
                        e.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
                        if corrupt {
                            e.set_corruption(NodeId(5), vec![5, 11], 4.0);
                            e.set_corruption(NodeId(6), vec![6], 2.5);
                        }
                        if dead {
                            e.kill(NodeId(9));
                        }
                        e
                    };
                    let mut seq = build(1);
                    let mut rng_seq = StdRng::seed_from_u64(77);
                    let mut pars: Vec<(VectorGossipEngine, StdRng)> = [1usize, 2, 3, 4, 8]
                        .iter()
                        .map(|&t| (build(t), StdRng::seed_from_u64(77)))
                        .collect();
                    for step in 0..12 {
                        let a = seq.step(chooser, &mut rng_seq);
                        for (par, rng_par) in pars.iter_mut() {
                            let t = par.config().threads;
                            let b = par.par_step(chooser, rng_par);
                            assert_eq!(
                                a, b,
                                "outcome diverged ({label}, step={step}, threads={t}, \
                                 loss={loss}, corrupt={corrupt}, dead={dead})"
                            );
                            for i in 0..n {
                                let id = NodeId::from_index(i);
                                assert_eq!(
                                    seq.extract(id),
                                    par.extract(id),
                                    "node {i} state diverged ({label}, threads={t})"
                                );
                            }
                            assert_eq!(seq.stats(), par.stats());
                        }
                    }
                }
            }
        }
    }

    /// The pool-parallel step must be bit-identical to the sequential step
    /// for the same RNG stream — the full fault matrix at thread counts
    /// 1–4 and 8, under uniform gossip targets.
    #[test]
    fn par_step_is_bit_identical_to_step() {
        assert_bit_identity_matrix(&UniformChooser, "uniform");
    }

    /// Same matrix under a maximally uneven sender load (all pushes land
    /// on two rows): the sender-weighted slab assignment shifts work
    /// between threads every step, and none of it may change a bit.
    #[test]
    fn par_step_is_bit_identical_under_skewed_sender_load() {
        assert_bit_identity_matrix(&HotspotChooser, "hotspot");
    }

    /// The kernel's column tile width must not change a single output bit:
    /// sweep degenerate (1), non-dividing, exactly-dividing and
    /// larger-than-row widths against the default, sequentially and with a
    /// pool, under loss + corruption + a dead node.
    #[test]
    fn tile_width_is_bit_identical() {
        let n = 33; // not a multiple of any swept width > 1
        let m = star(n);
        let build = |tile: usize, threads: usize| {
            let mut e = VectorGossipEngine::new(
                n,
                config(n).with_loss_rate(0.1).with_threads(threads).with_tile(tile),
            );
            e.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
            e.set_corruption(NodeId(4), vec![2, 9, 30], 3.0);
            e.kill(NodeId(7));
            e
        };
        for threads in [1usize, 3] {
            let mut reference = build(1024, threads);
            let mut rng_ref = StdRng::seed_from_u64(55);
            let mut swept: Vec<(VectorGossipEngine, StdRng)> = [1usize, 3, 8, 11, 32, 33]
                .iter()
                .map(|&tile| (build(tile, threads), StdRng::seed_from_u64(55)))
                .collect();
            for step in 0..10 {
                let a = reference.par_step(&UniformChooser, &mut rng_ref);
                for (eng, rng) in swept.iter_mut() {
                    let tile = eng.config().tile;
                    let b = eng.par_step(&UniformChooser, rng);
                    assert_eq!(a, b, "outcome diverged (tile={tile}, step={step})");
                    for i in 0..n {
                        let id = NodeId::from_index(i);
                        let (rx, rw) = reference.row(i);
                        let (ex, ew) = eng.row(i);
                        let same = |p: &[f64], q: &[f64]| {
                            p.iter().zip(q).all(|(a, b)| a.to_bits() == b.to_bits())
                        };
                        assert!(
                            same(rx, ex) && same(rw, ew),
                            "row {id:?} bits diverged (tile={tile}, threads={threads})"
                        );
                    }
                }
            }
        }
    }

    /// The sender-weighted LPT assignment: every slab lands in exactly one
    /// bin, and a single overloaded slab is isolated from the rest.
    #[test]
    fn weighted_bins_isolate_a_hot_slab() {
        let n = 32;
        let mut engine = VectorGossipEngine::new(n, config(n).with_threads(2));
        // threads=2 → 8 slabs of 4 rows. Forge a send table where rows
        // 0..4 (slab 0) received 100 pushes and nobody else received any:
        // slab 0 costs 2·4 + 100 = 108 streams, the others 8 each.
        assert_eq!(engine.cur.len(), 8);
        assert_eq!(engine.rows_per, 4);
        engine.csr_offsets.fill(100);
        for j in 0..4 {
            engine.csr_offsets[j] = 25 * j as u32;
        }
        let bins = engine.weighted_bins();
        assert_eq!(bins.len(), 2);
        // LPT: the 108-cost slab goes first and alone; the seven 8-cost
        // slabs (total 56) all fit the other bin before it catches up.
        assert_eq!(bins[0], vec![0]);
        assert_eq!(bins[1], vec![1, 2, 3, 4, 5, 6, 7]);
        // And on a uniform table every bin gets a share, each slab once.
        for (j, off) in engine.csr_offsets.iter_mut().enumerate() {
            *off = j as u32;
        }
        let bins = engine.weighted_bins();
        let mut seen: Vec<usize> = bins.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        assert!(bins.iter().all(|b| !b.is_empty()));
    }

    /// The persistent pool survives reseeding: a parallel engine driven
    /// across two full aggregation cycles matches the sequential reference
    /// exactly.
    #[test]
    fn pool_is_reused_across_cycles() {
        let n = 24;
        let m = star(n);
        let mut seq = VectorGossipEngine::new(n, config(n).with_threads(1));
        let mut par = VectorGossipEngine::new(n, config(n).with_threads(4));
        let v0 = ReputationVector::uniform(n);
        let mut rng_a = StdRng::seed_from_u64(13);
        let mut rng_b = StdRng::seed_from_u64(13);
        for _cycle in 0..2 {
            seq.seed(&m, &v0, &Prior::uniform(n), 0.15);
            par.seed(&m, &v0, &Prior::uniform(n), 0.15);
            let (steps_a, conv_a) = seq.run(&UniformChooser, &mut rng_a);
            let (steps_b, conv_b) = par.run(&UniformChooser, &mut rng_b);
            assert_eq!((steps_a, conv_a), (steps_b, conv_b));
            for i in 0..n {
                let id = NodeId::from_index(i);
                assert_eq!(seq.extract(id), par.extract(id), "node {i}");
            }
            assert_eq!(seq.stats(), par.stats());
        }
    }

    #[test]
    fn cloned_engine_is_independent_and_identical() {
        let n = 16;
        let m = star(n);
        let mut a = VectorGossipEngine::new(n, config(n).with_threads(2));
        a.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        let mut rng = StdRng::seed_from_u64(3);
        a.par_step(&UniformChooser, &mut rng); // pool is live
        let mut b = a.clone();
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        a.par_step(&UniformChooser, &mut rng_a);
        b.par_step(&UniformChooser, &mut rng_b);
        for i in 0..n {
            let id = NodeId::from_index(i);
            assert_eq!(a.extract(id), b.extract(id), "node {i}");
        }
    }

    #[test]
    fn par_step_converges_like_step() {
        let n = 24;
        let m = star(n);
        let mut engine = VectorGossipEngine::new(n, config(n).with_threads(4));
        engine.seed(&m, &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        let mut rng = StdRng::seed_from_u64(5);
        let mut converged = false;
        for _ in 0..engine.config().max_steps {
            if engine.par_step(&UniformChooser, &mut rng).all_converged {
                converged = true;
                break;
            }
        }
        assert!(converged);
        let mut exact = vec![0.0; n];
        m.transpose_mul(&vec![1.0 / n as f64; n], &mut exact).unwrap();
        Prior::uniform(n).mix_into(&mut exact, 0.15);
        let est = engine.mean_estimate();
        for j in 0..n {
            let rel = (est[j] - exact[j]).abs() / exact[j];
            assert!(rel < 1e-3, "comp {j}: {rel}");
        }
    }
}

/// Tests of the `invariants` feature's engine-side checks: the faulted
/// fast path must *pass* the accounting (faults are accounted, not
/// tolerated), and a seeded discrepancy must *trip* it.
#[cfg(all(test, feature = "invariants"))]
mod invariant_tests {
    use super::*;
    use crate::chooser::UniformChooser;
    use gossiptrust_core::matrix::TrustMatrixBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize) -> TrustMatrix {
        let mut b = TrustMatrixBuilder::new(n);
        for i in 0..n {
            b.record(NodeId::from_index(i), NodeId::from_index((i + 1) % n), 1.0);
        }
        b.build()
    }

    fn seeded(n: usize, threads: usize, loss: f64) -> VectorGossipEngine {
        let config = EngineConfig::from_params(&Params::for_network(n), n)
            .with_threads(threads)
            .with_loss_rate(loss);
        let mut engine = VectorGossipEngine::new(n, config);
        engine.seed(&ring(n), &ReputationVector::uniform(n), &Prior::uniform(n), 0.15);
        engine
    }

    /// Loss, a dead node and an active disturber together: every step's
    /// internal mass accounting and the par/seq shadow check must hold.
    #[test]
    fn faulted_steps_satisfy_the_accounting() {
        let n = 48;
        let mut engine = seeded(n, 4, 0.25);
        engine.kill(NodeId(5));
        engine.set_corruption(NodeId(2), vec![0, 7], 5.0);
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..12 {
            engine.par_step(&UniformChooser, &mut rng);
        }
        // And sequentially, same fault mix.
        let mut engine = seeded(n, 1, 0.25);
        engine.kill(NodeId(9));
        engine.set_corruption(NodeId(3), vec![1], 4.0);
        for _ in 0..12 {
            engine.step(&UniformChooser, &mut rng);
        }
    }

    /// A conservation accounting that disagrees with the state by half a
    /// node's component — the smallest bug class the checker exists for —
    /// must panic.
    #[test]
    #[should_panic(expected = "diverged from conservation accounting")]
    fn leaked_mass_trips_the_checker() {
        let n = 16;
        let engine = seeded(n, 1, 0.0);
        let mut ex = Vec::with_capacity(n);
        let mut ew = Vec::with_capacity(n);
        for j in 0..n {
            let (x, w) = engine.component_mass(NodeId::from_index(j));
            ex.push(x);
            ew.push(w);
        }
        // Pretend component 0 should hold half a node's share more than
        // the state actually does.
        ex[0] += 0.5 / n as f64;
        engine.assert_masses(&(ex, ew), "test");
    }
}
