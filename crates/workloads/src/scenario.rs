//! One-stop experiment scenario bundling population + feedback matrices.

use crate::feedback::{self, FeedbackConfig};
use crate::population::{Population, ThreatConfig};
use gossiptrust_core::matrix::TrustMatrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a full robustness scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of peers.
    pub n: usize,
    /// Threat model.
    pub threat: ThreatConfig,
    /// Feedback-graph parameters.
    pub feedback: FeedbackConfig,
}

impl ScenarioConfig {
    /// Paper defaults for an `n`-peer network with threat model `threat`.
    pub fn new(n: usize, threat: ThreatConfig) -> Self {
        ScenarioConfig { n, threat, feedback: FeedbackConfig::default() }
    }

    /// Scaled-down feedback parameters for small test networks (keeps the
    /// degree distribution feasible when `n` is far below 1000).
    pub fn small(n: usize, threat: ThreatConfig) -> Self {
        let d_max = (n / 2).clamp(4, 200);
        let d_avg = (d_max / 4).max(2);
        ScenarioConfig {
            n,
            threat,
            feedback: FeedbackConfig { d_avg, d_max, transactions_per_edge: 5, target_skew: 0.8 },
        }
    }
}

/// A generated scenario: who is malicious, what the truth is, and what the
/// reputation system gets to see.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The peer population (kinds + authenticity rates).
    pub population: Population,
    /// Ground-truth trust matrix (all feedback truthful).
    pub honest: TrustMatrix,
    /// Polluted trust matrix (malicious feedback applied).
    pub polluted: TrustMatrix,
    /// Feedback edges generated.
    pub edges: usize,
}

impl Scenario {
    /// Generate a scenario deterministically from `rng`.
    pub fn generate<R: Rng + ?Sized>(config: &ScenarioConfig, rng: &mut R) -> Self {
        let population = Population::generate(config.n, &config.threat, rng);
        let out = feedback::generate(&population, &config.feedback, rng);
        Scenario { population, honest: out.honest, polluted: out.polluted, edges: out.edges }
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.population.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scenario_is_deterministic() {
        let cfg = ScenarioConfig::small(50, ThreatConfig::independent(0.2));
        let a = Scenario::generate(&cfg, &mut StdRng::seed_from_u64(1));
        let b = Scenario::generate(&cfg, &mut StdRng::seed_from_u64(1));
        assert_eq!(a.honest, b.honest);
        assert_eq!(a.polluted, b.polluted);
        assert_eq!(a.population, b.population);
    }

    #[test]
    fn small_config_scales_degrees() {
        let cfg = ScenarioConfig::small(20, ThreatConfig::benign());
        assert!(cfg.feedback.d_max <= 10);
        assert!(cfg.feedback.d_avg >= 2);
        let s = Scenario::generate(&cfg, &mut StdRng::seed_from_u64(2));
        assert_eq!(s.n(), 20);
        assert!(s.edges > 0);
    }

    #[test]
    fn default_config_uses_table2() {
        let cfg = ScenarioConfig::new(1000, ThreatConfig::independent(0.2));
        assert_eq!(cfg.feedback.d_avg, 20);
        assert_eq!(cfg.feedback.d_max, 200);
    }

    #[test]
    fn benign_scenario_has_identical_matrices() {
        let cfg = ScenarioConfig::small(40, ThreatConfig::benign());
        let s = Scenario::generate(&cfg, &mut StdRng::seed_from_u64(3));
        assert_eq!(s.honest, s.polluted);
    }
}
