//! Compact peer identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a peer node in the P2P network.
///
/// Node ids are dense indices `0..n` into the trust matrix and reputation
/// vector. A `u32` keeps gossip triplets small (the paper's per-node state is
/// `O(n)` triplets, so entry size matters at scale).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index into dense per-network arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Iterate over all ids of an `n`-node network: `0, 1, ..., n-1`.
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> + Clone {
        (0..n).map(NodeId::from_index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for i in [0usize, 1, 7, 1000, u32::MAX as usize] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn all_enumerates_dense_ids() {
        let ids: Vec<NodeId> = NodeId::all(4).collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId(42).to_string(), "N42");
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn from_index_overflow_panics() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn ordering_matches_indices() {
        assert!(NodeId(3) < NodeId(10));
    }
}
