//! The simulated file catalog (§6.4).
//!
//! "There are over 100,000 files simulated in these experiments. The number
//! of copies of each file is determined by a Power-law distribution with a
//! popularity rate φ = 1.2. Each peer is assigned with a number of files
//! based on the Sarioiu distribution."
//!
//! [`FileCatalog::generate`] reconciles the two distributions: per-peer
//! capacities are drawn from the Saroiu model and rescaled so the total
//! placement count can host every file at least once; per-file copy counts
//! follow a rank-`φ` power law over that total. File ids double as
//! popularity ranks (file 0 is the most replicated), which the query
//! workload exploits.

use crate::saroiu::SaroiuFiles;
use gossiptrust_core::id::NodeId;
use rand::Rng;

/// A placed file catalog: which peers hold a copy of which file.
#[derive(Clone, Debug)]
pub struct FileCatalog {
    /// `holders[f]` = sorted peer indices holding file `f` (non-empty).
    holders: Vec<Vec<u32>>,
    /// `peer_files[p]` = file ids held by peer `p`.
    peer_files: Vec<Vec<u32>>,
}

impl FileCatalog {
    /// Generate a catalog of `num_files` files over `n` peers.
    ///
    /// Copy counts follow `rank^(−phi)` (paper: `φ = 1.2`), scaled to the
    /// total peer capacity from `saroiu` (rescaled up if the capacities
    /// cannot host one copy of every file). Every file ends up with at
    /// least one holder.
    pub fn generate<R: Rng + ?Sized>(
        n: usize,
        num_files: usize,
        phi: f64,
        saroiu: &SaroiuFiles,
        rng: &mut R,
    ) -> Self {
        assert!(n >= 1, "need at least one peer");
        assert!(num_files >= 1, "need at least one file");
        assert!(phi > 0.0, "popularity rate must be positive");

        // Per-peer capacities, rescaled so Σ capacities ≥ num_files.
        let mut capacities = saroiu.sample_counts(n, rng);
        let mut total: usize = capacities.iter().sum();
        if total < num_files {
            if total == 0 {
                capacities = vec![num_files / n + 1; n];
            } else {
                let scale = num_files as f64 / total as f64;
                for c in capacities.iter_mut() {
                    *c = ((*c as f64) * scale).ceil() as usize;
                }
            }
            total = capacities.iter().sum();
        }

        // Per-file copy counts ∝ rank^(−φ), at least 1, summing ≈ total.
        let weights: Vec<f64> = (1..=num_files).map(|r| (r as f64).powf(-phi)).collect();
        let wsum: f64 = weights.iter().sum();
        let mut copies: Vec<usize> = weights
            .iter()
            .map(|w| ((w / wsum) * total as f64).round().max(1.0) as usize)
            .collect();
        // Cap any file's copies at n (a peer holds at most one copy).
        for c in copies.iter_mut() {
            *c = (*c).min(n);
        }

        // Place each file's copies on distinct peers sampled with
        // probability proportional to peer capacity (capacity acts as a
        // weight, not a hard quota). Rejection sampling against a cumulative
        // capacity table keeps this O(c·log n) per file; near-complete files
        // simply take every peer.
        let cumulative: Vec<f64> = {
            let mut acc = 0.0;
            capacities
                .iter()
                .map(|&c| {
                    // +1 smoothing so zero-capacity free riders can still
                    // host the occasional unpopular file.
                    acc += c as f64 + 1.0;
                    acc
                })
                .collect()
        };
        let cap_total = *cumulative.last().expect("n >= 1");

        let mut holders: Vec<Vec<u32>> = Vec::with_capacity(num_files);
        let mut peer_files: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut in_file = vec![false; n]; // scratch membership mask
        for (f, &c) in copies.iter().enumerate() {
            let mut hs: Vec<u32> = Vec::with_capacity(c);
            if c >= n {
                hs.extend(0..n as u32);
            } else {
                let mut attempts = 0usize;
                let max_attempts = 30 * c + 50;
                while hs.len() < c && attempts < max_attempts {
                    attempts += 1;
                    let u: f64 = rng.random::<f64>() * cap_total;
                    let p =
                        match cumulative.binary_search_by(|x| x.partial_cmp(&u).expect("finite")) {
                            Ok(i) => (i + 1).min(n - 1),
                            Err(i) => i.min(n - 1),
                        };
                    if !in_file[p] {
                        in_file[p] = true;
                        hs.push(p as u32);
                    }
                }
                // Rejection exhausted (very popular file on a tiny network):
                // top up with the first peers not yet holding it.
                if hs.len() < c {
                    #[allow(clippy::needless_range_loop)] // index drives multiple arrays
                    for p in 0..n {
                        if hs.len() >= c {
                            break;
                        }
                        if !in_file[p] {
                            in_file[p] = true;
                            hs.push(p as u32);
                        }
                    }
                }
                for &p in &hs {
                    in_file[p as usize] = false;
                }
            }
            debug_assert!(!hs.is_empty());
            hs.sort_unstable();
            for &p in &hs {
                peer_files[p as usize].push(f as u32);
            }
            holders.push(hs);
        }

        FileCatalog { holders, peer_files }
    }

    /// Number of files.
    pub fn num_files(&self) -> usize {
        self.holders.len()
    }

    /// Number of peers the catalog was generated for.
    pub fn n(&self) -> usize {
        self.peer_files.len()
    }

    /// Sorted peers holding file `f`.
    pub fn holders(&self, file: u32) -> &[u32] {
        &self.holders[file as usize]
    }

    /// Files held by `peer`.
    pub fn files_of(&self, peer: NodeId) -> &[u32] {
        &self.peer_files[peer.index()]
    }

    /// Copy count of file `f`.
    pub fn copies(&self, file: u32) -> usize {
        self.holders[file as usize].len()
    }

    /// Total placements across all files.
    pub fn total_copies(&self) -> usize {
        self.holders.iter().map(Vec::len).sum()
    }

    /// Whether `peer` holds `file`.
    pub fn peer_has(&self, peer: NodeId, file: u32) -> bool {
        self.holders[file as usize].binary_search(&(peer.0)).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog(n: usize, files: usize, seed: u64) -> FileCatalog {
        let mut rng = StdRng::seed_from_u64(seed);
        FileCatalog::generate(n, files, 1.2, &SaroiuFiles::default(), &mut rng)
    }

    #[test]
    fn every_file_has_a_holder() {
        let c = catalog(50, 2_000, 1);
        for f in 0..2_000u32 {
            assert!(!c.holders(f).is_empty(), "file {f} unplaced");
        }
    }

    #[test]
    fn holders_are_distinct_and_sorted() {
        let c = catalog(40, 500, 2);
        for f in 0..500u32 {
            let hs = c.holders(f);
            for w in hs.windows(2) {
                assert!(w[0] < w[1], "file {f} holders not strictly sorted");
            }
            assert!(hs.iter().all(|&p| (p as usize) < 40));
        }
    }

    #[test]
    fn popular_files_have_more_copies() {
        let c = catalog(200, 5_000, 3);
        // Rank-0 file must have (weakly) more copies than deep-tail files,
        // and the head should be clearly above the tail on average.
        let head: f64 = (0..50).map(|f| c.copies(f) as f64).sum::<f64>() / 50.0;
        let tail: f64 = (4_000..4_050).map(|f| c.copies(f) as f64).sum::<f64>() / 50.0;
        assert!(head > 2.0 * tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn peer_files_is_consistent_with_holders() {
        let c = catalog(30, 300, 4);
        for f in 0..300u32 {
            for &p in c.holders(f) {
                assert!(c.files_of(NodeId(p)).contains(&f));
                assert!(c.peer_has(NodeId(p), f));
            }
        }
        let total_from_peers: usize = (0..30).map(|p| c.files_of(NodeId(p)).len()).sum();
        assert_eq!(total_from_peers, c.total_copies());
    }

    #[test]
    fn capacity_scaling_hosts_all_files() {
        // More files than default capacities can host → rescaling kicks in.
        let c = catalog(10, 5_000, 5);
        assert_eq!(c.num_files(), 5_000);
        assert!(c.total_copies() >= 5_000);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = catalog(25, 400, 9);
        let b = catalog(25, 400, 9);
        for f in 0..400u32 {
            assert_eq!(a.holders(f), b.holders(f));
        }
    }
}
