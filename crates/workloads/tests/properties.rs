//! Property-based tests for the workload generators.

use gossiptrust_core::id::NodeId;
use gossiptrust_workloads::feedback::{self, FeedbackConfig};
use gossiptrust_workloads::files::FileCatalog;
use gossiptrust_workloads::population::{PeerKind, Population, ThreatConfig};
use gossiptrust_workloads::powerlaw::{BoundedPareto, DegreeSequence, TwoSegmentZipf, Zipf};
use gossiptrust_workloads::queries::QueryWorkload;
use gossiptrust_workloads::saroiu::SaroiuFiles;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zipf: pmf sums to 1, is monotone nonincreasing, and samples stay in
    /// range for any exponent.
    #[test]
    fn zipf_invariants(n in 1usize..300, s in 0.0f64..3.0, seed in 0u64..500) {
        let z = Zipf::new(n, s);
        let total: f64 = (1..=n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for r in 1..n {
            prop_assert!(z.pmf(r) >= z.pmf(r + 1) - 1e-12);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let r = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&r));
        }
    }

    /// The two-segment query law is a valid distribution with a head that
    /// decays no faster than the tail.
    #[test]
    fn two_segment_invariants(n in 10usize..2_000, brk in 1usize..500) {
        let brk = brk.min(n);
        let t = TwoSegmentZipf::new(n, brk, 0.63, 1.24);
        let total: f64 = (1..=n).map(|r| t.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for r in 1..n {
            prop_assert!(t.pmf(r) >= t.pmf(r + 1) - 1e-12, "rank {}", r);
        }
    }

    /// Bounded Pareto samples stay in [xmin, xmax].
    #[test]
    fn pareto_bounds(xmin in 0.5f64..50.0, span in 1.0f64..1000.0, a in 0.2f64..3.0, seed in 0u64..300) {
        let p = BoundedPareto::new(xmin, xmin + span, a);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..300 {
            let x = p.sample(&mut rng);
            prop_assert!(x >= xmin - 1e-9 && x <= xmin + span + 1e-9, "x = {}", x);
        }
    }

    /// The fitted degree distribution hits its target mean within 10% for
    /// any sane (d_avg, d_max) pair.
    #[test]
    fn degree_sequence_mean(d_avg in 2usize..50, extra in 10usize..300) {
        let d_max = d_avg + extra;
        let d = DegreeSequence::new(d_avg, d_max);
        prop_assert!((d.mean() - d_avg as f64).abs() / d_avg as f64 < 0.1,
            "fit mean {} target {}", d.mean(), d_avg);
    }

    /// Populations: exact malicious count, kinds consistent with γ, and
    /// authenticity ranges respected.
    #[test]
    fn population_invariants(n in 2usize..300, gamma in 0.0f64..1.0, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = Population::generate(n, &ThreatConfig::independent(gamma), &mut rng);
        let expected = (gamma * n as f64).floor() as usize;
        prop_assert_eq!(pop.malicious_peers().len(), expected);
        prop_assert_eq!(pop.honest_peers().len(), n - expected);
        for i in 0..n {
            let id = NodeId::from_index(i);
            let a = pop.authenticity(id);
            match pop.kind(id) {
                PeerKind::Honest => prop_assert!((0.90..=1.0).contains(&a)),
                _ => prop_assert!((0.05..=0.20).contains(&a)),
            }
        }
    }

    /// Collusion groups partition the malicious peers exactly.
    #[test]
    fn collusion_partition(n in 10usize..200, gamma in 0.05f64..0.5, size in 2usize..8, seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = Population::generate(n, &ThreatConfig::collusive(gamma, size), &mut rng);
        let malicious = pop.malicious_peers();
        let groups = pop.collusion_group_count();
        let total_in_groups: usize = (0..groups).map(|g| pop.collusion_group(g as u32).len()).sum();
        prop_assert_eq!(total_in_groups, malicious.len());
        for g in 0..groups {
            let members = pop.collusion_group(g as u32);
            prop_assert!(members.len() <= size);
            prop_assert!(!members.is_empty());
        }
    }

    /// Feedback generation: both matrices are row-stochastic, honest rows
    /// are identical across them, and edge counts agree.
    #[test]
    fn feedback_matrix_invariants(n in 6usize..80, gamma in 0.0f64..0.5, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = Population::generate(n, &ThreatConfig::independent(gamma), &mut rng);
        let cfg = FeedbackConfig {
            d_avg: 3,
            d_max: (n / 2).max(4),
            transactions_per_edge: 4,
            target_skew: 0.8,
        };
        let out = feedback::generate(&pop, &cfg, &mut rng);
        prop_assert!(out.honest.is_row_stochastic(1e-9));
        prop_assert!(out.polluted.is_row_stochastic(1e-9));
        for i in 0..n {
            let id = NodeId::from_index(i);
            if !pop.kind(id).is_malicious() {
                prop_assert_eq!(out.honest.row(id), out.polluted.row(id), "honest row {} differs", i);
            }
        }
    }

    /// File catalogs place every file on at least one distinct-peer set.
    #[test]
    fn catalog_invariants(n in 3usize..60, files in 1usize..400, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = FileCatalog::generate(n, files, 1.2, &SaroiuFiles::default(), &mut rng);
        prop_assert_eq!(c.num_files(), files);
        for f in 0..files as u32 {
            let hs = c.holders(f);
            prop_assert!(!hs.is_empty(), "file {} unplaced", f);
            for w in hs.windows(2) {
                prop_assert!(w[0] < w[1], "file {} holders not strictly sorted", f);
            }
            prop_assert!(hs.iter().all(|&p| (p as usize) < n));
        }
    }

    /// Queries stay within the catalog and peer ranges.
    #[test]
    fn query_ranges(n in 1usize..100, files in 1usize..500, seed in 0u64..200) {
        let w = QueryWorkload::new(n, files);
        let mut rng = StdRng::seed_from_u64(seed);
        for q in w.sample_batch(200, &mut rng) {
            prop_assert!(q.requester.index() < n);
            prop_assert!((q.file as usize) < files);
        }
    }
}
