//! # gossiptrust-core
//!
//! Core reputation types and mathematics for the GossipTrust reputation
//! system (Zhou & Hwang, IPDPS 2007).
//!
//! This crate is the *pure-math substrate* shared by every other crate in the
//! workspace. It contains no networking and no randomness of its own (all
//! stochastic functions take a caller-supplied RNG), which keeps every
//! simulation in the workspace deterministic and reproducible.
//!
//! The main pieces are:
//!
//! * [`NodeId`] — compact peer identifier.
//! * [`LocalTrust`] — per-node accumulation of raw feedback scores `r_ij`
//!   and their normalization into `s_ij` (Eq. 1 of the paper).
//! * [`TrustMatrix`] — the sparse, row-stochastic normalized trust matrix
//!   `S = (s_ij)`.
//! * [`ReputationVector`] — the global reputation vector `V(t)` with the
//!   distance/error metrics used throughout the evaluation (including the
//!   RMS relative error of Eq. 8).
//! * [`PowerIteration`] — the exact, centralized computation of
//!   `V(t+1) = Sᵀ·V(t)` (Eq. 2) that serves as the ground-truth oracle for
//!   every accuracy experiment.
//! * [`PowerNodeSelector`] / [`Prior`] — dynamic power-node selection and the
//!   greedy-factor `α` mixing borrowed from PowerTrust.
//! * [`VectorConvergence`] / [`RatioTracker`] — the convergence detectors for
//!   the outer aggregation loop (threshold `δ`) and the inner gossip loop
//!   (threshold `ε`).
//!
//! # Quick example
//!
//! ```
//! use gossiptrust_core::prelude::*;
//!
//! // Three peers; peer 0 rates peer 1 with 4 stars and peer 2 with 1 star...
//! let mut builder = TrustMatrixBuilder::new(3);
//! builder.record(NodeId(0), NodeId(1), 4.0);
//! builder.record(NodeId(0), NodeId(2), 1.0);
//! builder.record(NodeId(1), NodeId(0), 2.0);
//! builder.record(NodeId(2), NodeId(0), 5.0);
//! let matrix = builder.build();
//!
//! // Exact global reputation by power iteration (Eq. 2).
//! let solver = PowerIteration::new(Params::default());
//! let outcome = solver.solve(&matrix, &Prior::uniform(3));
//! let v = outcome.vector;
//! assert!((v.values().iter().sum::<f64>() - 1.0).abs() < 1e-12);
//! // Peer 0 receives all of peer 1's and peer 2's trust: it must rank first.
//! assert_eq!(v.ranking()[0], NodeId(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod error;
pub mod id;
pub mod invariants;
pub mod local;
pub mod matrix;
pub mod metrics;
pub mod params;
pub mod power_iter;
pub mod power_nodes;
pub mod prelude;
pub mod qof;
pub mod vector;

pub use convergence::{RatioTracker, VectorConvergence};
pub use error::CoreError;
pub use id::NodeId;
pub use local::LocalTrust;
pub use matrix::{TrustMatrix, TrustMatrixBuilder};
pub use params::Params;
pub use power_iter::{PowerIteration, SolveOutcome};
pub use power_nodes::{PowerNodeSelector, Prior};
pub use vector::ReputationVector;
